"""Fig. 3 — LRU vs Random vs reserved LRU (top 20%), naive prefetch, 50%.

Paper shape: reserved LRU gains at most ~11% on the thrashing apps (SRD,
HSD, MRQ, STN), sometimes below Random, and loses heavily (up to 53%) on
the region-moving apps (B+T, HYB).
"""

from conftest import run_artifact
from repro.harness import figures


def test_fig3(benchmark, capsys):
    result = run_artifact(benchmark, capsys, figures.fig3)
    # Shape guard: reserved LRU must lose on the Type VI apps.
    assert result.series["lru-20"]["B+T"] < 1.0
    assert result.series["lru-20"]["HYB"] < 1.0
