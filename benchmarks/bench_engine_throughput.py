"""Engine microbenchmarks — simulator throughput, not a paper artifact.

These are conventional pytest-benchmark measurements (multiple rounds) of
the simulation engine itself: accesses simulated per second on a hit-heavy
stream and on a fault-heavy stream.  They guard against performance
regressions in the hot paths (SM burst loop, TLB lookup, GMMU service).
"""

import numpy as np

from repro.config import SimConfig, SMConfig
from repro.engine.simulator import Simulator
from repro.workloads.base import Workload


def _hit_heavy_workload():
    # One footprint pass, then many re-touches: dominated by the hit path.
    footprint = 512
    sweep = np.arange(footprint, dtype=np.int64)
    return Workload(
        name="hits", pattern_type="I", footprint_pages=footprint,
        accesses=np.concatenate([sweep] + [sweep] * 9),
    )


def _fault_heavy_workload():
    # Cyclic thrash at 50%: nearly every access faults.
    footprint = 512
    sweep = np.arange(footprint, dtype=np.int64)
    return Workload(
        name="faults", pattern_type="IV", footprint_pages=footprint,
        accesses=np.concatenate([sweep] * 4),
    )


CFG = SimConfig(sm=SMConfig(num_sms=8))


def test_hit_path_throughput(benchmark):
    def run():
        return Simulator(_hit_heavy_workload(), oversubscription=None, config=CFG).run()

    result = benchmark(run)
    benchmark.extra_info["accesses"] = result.stats.accesses


def test_fault_path_throughput(benchmark):
    def run():
        return Simulator(_fault_heavy_workload(), oversubscription=0.5, config=CFG).run()

    result = benchmark(run)
    benchmark.extra_info["far_faults"] = result.stats.far_faults
