"""Engine microbenchmarks — simulator throughput, not a paper artifact.

These are conventional pytest-benchmark measurements (multiple rounds) of
the simulation engine itself: accesses simulated per second on a hit-heavy
stream and on a fault-heavy stream, for **both** data-structure backends
(``SimConfig.backend``).  They guard against performance regressions in
the hot paths (SM burst loop, TLB lookup, GMMU service).

The workload definitions live in :mod:`repro.harness.bench` — the same
ones ``repro bench`` and the CI ratchet time — so pytest-benchmark runs
and the committed ``BENCH_baseline.json`` measure the same thing.  Any
randomised inputs (fault-case write flags) are drawn from the
config-seeded ``SimConfig.make_rng`` stream, never from ambient RNG
state.
"""

import pytest

from repro.engine.simulator import Simulator
from repro.harness.bench import (
    bench_config,
    fault_heavy_workload,
    hit_heavy_workload,
)
from repro.harness.cache import config_fingerprint

BACKENDS = ["object", "array"]


@pytest.mark.parametrize("backend", BACKENDS)
def test_hit_path_throughput(benchmark, backend):
    workload = hit_heavy_workload()

    def run():
        return Simulator(
            workload, oversubscription=None, config=bench_config(backend)
        ).run()

    result = benchmark(run)
    benchmark.extra_info["accesses"] = result.stats.accesses
    benchmark.extra_info["backend"] = backend
    benchmark.extra_info["config_fingerprint"] = config_fingerprint(bench_config())


@pytest.mark.parametrize("backend", BACKENDS)
def test_fault_path_throughput(benchmark, backend):
    workload = fault_heavy_workload(config=bench_config())

    def run():
        return Simulator(
            workload, oversubscription=0.5, config=bench_config(backend)
        ).run()

    result = benchmark(run)
    benchmark.extra_info["far_faults"] = result.stats.far_faults
    benchmark.extra_info["backend"] = backend
    benchmark.extra_info["config_fingerprint"] = config_fingerprint(bench_config())
