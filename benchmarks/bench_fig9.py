"""Fig. 9 — Random / LRU-10% / LRU-20% / CPPE vs the baseline, full suite.

Paper shape: reserved LRU helps the thrashing types but never beats CPPE;
LRU-10% loses ~27% on Type VI at 50%; simply changing the eviction policy
does not fix the baseline's inefficiency.
"""

from conftest import run_artifact
from repro.analysis.metrics import mean
from repro.harness import figures
from repro.workloads.suite import benchmarks_by_type


def test_fig9(benchmark, capsys):
    result = run_artifact(benchmark, capsys, figures.fig9)
    type_iv = [s.abbr for s in benchmarks_by_type("IV")]
    type_vi = [s.abbr for s in benchmarks_by_type("VI")]
    for rate in ("75%", "50%"):
        cppe = result.series[f"cppe@{rate}"]
        for other in ("random", "lru-10", "lru-20"):
            pts = result.series[f"{other}@{rate}"]
            # CPPE wins on average against every alternative policy.
            assert mean(cppe.values()) > mean(pts.values()), (rate, other)
            # And on the thrashing type specifically.
            assert mean(cppe[a] for a in type_iv) >= mean(
                pts[a] for a in type_iv
            ), (rate, other)
    # Reserved LRU hurts capacity-sensitive Type VI at 50%.
    lru10 = result.series["lru-10@50%"]
    assert mean(lru10[a] for a in type_vi) < 1.0
