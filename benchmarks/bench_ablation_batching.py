"""Ablation (ours) — UVM fault-buffer batch servicing.

The paper's runtime services one fault group per 20 us operation.  Real
UVM drains the fault buffer in batches; this ablation sweeps the batch
size and shows how much of the baseline's fault-bound runtime is the
serialised base cost (and that the *relative* CPPE-vs-baseline shape is
robust to the servicing model).
"""

from dataclasses import replace

from conftest import run_artifact
from repro.config import SimConfig, UVMConfig
from repro.engine.simulator import Simulator
from repro.harness.baselines import build_setup
from repro.harness.figures import FigureResult
from repro.workloads.suite import make_workload

APPS = ["2DC", "SRD", "NW"]
BATCHES = [1, 2, 4, 8]


def _run(app, setup, batch, rate=0.5):
    cfg = SimConfig(uvm=UVMConfig(fault_batch_size=batch))
    policy, prefetcher = build_setup(setup)
    return Simulator(
        make_workload(app), policy=policy, prefetcher=prefetcher,
        oversubscription=rate, config=cfg,
    ).run()


def test_ablation_fault_batching(benchmark, capsys):
    def generate():
        series = {}
        for batch in BATCHES:
            points = {}
            for app in APPS:
                base1 = _run(app, "baseline", 1)
                batched = _run(app, "baseline", batch)
                points[app] = base1.total_cycles / batched.total_cycles
            series[f"batch={batch}"] = points
        return FigureResult(
            name="ablation-batching",
            description="baseline speedup from fault-buffer batch servicing "
                        "(relative to batch=1, 50% oversubscription)",
            series=series,
        )

    result = run_artifact(benchmark, capsys, generate)
    assert all(v == 1.0 for v in result.series["batch=1"].values())
    # Larger batches never hurt and help the fault-bound apps.
    for app in APPS:
        assert result.series["batch=8"][app] >= 0.95
    assert max(result.series["batch=8"].values()) > 1.3


def test_cppe_advantage_robust_to_batching(benchmark, capsys):
    """CPPE's win over the baseline survives a batched servicing model."""

    def run():
        speedups = {}
        for batch in (1, 4):
            base = _run("SRD", "baseline", batch)
            cppe = _run("SRD", "cppe", batch)
            speedups[batch] = cppe.speedup_over(base)
        return speedups

    speedups = benchmark.pedantic(run, rounds=1, iterations=1)
    with capsys.disabled():
        print(f"\nSRD cppe-vs-baseline speedup by batch size: {speedups}\n")
    assert all(s > 1.2 for s in speedups.values())
