"""Section VI-C — storage overhead of CPPE's three structures.

Paper numbers (native footprints): 731 / 559 entries (8.6 / 6.6 KB) at
75% / 50%; evicted-chunk buffer 73 / 51 entries; pattern buffer 37.2% /
88.7% of the chain length.  Our footprints are scaled to one quarter, so
entry counts scale accordingly while the *relations* must hold: more
entries at 75% than 50%, KB = entries x 12 / 1024, and a pattern buffer
that grows (relative to the chain) as oversubscription deepens.
"""

from conftest import run_artifact
from repro.harness import tables


def test_overhead(benchmark, capsys):
    result = run_artifact(benchmark, capsys, tables.overhead)
    row75, row50 = result.rows
    entries75, kb75 = row75[1], row75[2]
    entries50, kb50 = row50[1], row50[2]
    assert entries75 > entries50  # more resident chunks at 75%
    assert abs(kb75 - entries75 * 12 / 1024) < 0.05
    assert abs(kb50 - entries50 * 12 / 1024) < 0.05
    # Deeper oversubscription -> pattern buffer larger relative to chain.
    assert row50[4] > row75[4]
    # Storage stays tiny (the paper's point: negligible driver overhead).
    assert kb75 < 16.0 and kb50 < 16.0
