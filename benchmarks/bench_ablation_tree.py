"""Ablation (ours) — sequential-local vs tree-based neighborhood prefetch.

Ganguly et al. [16] observed the CUDA driver's tree-based neighborhood
prefetcher; the paper's evaluation uses the simpler sequential-local (64 KB
chunk) prefetcher.  This ablation compares the two under LRU: for dense
streaming apps the tree prefetcher batches more pages per fault service
(fewer, larger services); under deep oversubscription its larger batches
raise eviction pressure.
"""

from conftest import run_artifact
from repro.harness.experiment import RunSpec, run_one
from repro.harness.figures import FigureResult, _avg, _speedup_series

APPS = ["HOT", "2DC", "BKP", "NW", "STN", "B+T"]


def test_ablation_tree(benchmark, capsys):
    def generate():
        series = {}
        for rate in (0.5,):
            sub = _speedup_series(APPS, ["tree"], "baseline", rate, scale=1.0)
            series[f"tree@{rate:.0%}"] = sub["tree"]
        return FigureResult(
            name="ablation-tree",
            description="tree-based neighborhood prefetch vs sequential-local (LRU)",
            series=series,
            averages=_avg(series),
        )

    result = run_artifact(benchmark, capsys, generate)
    assert all(v > 0 for v in result.series["tree@50%"].values())


def test_tree_batches_more_pages_per_service(benchmark, capsys):
    def run():
        base = run_one(RunSpec("2DC", "baseline", None))
        tree = run_one(RunSpec("2DC", "tree", None))
        return base, tree

    base, tree = benchmark.pedantic(run, rounds=1, iterations=1)
    base_batch = base.stats.pages_migrated / base.stats.fault_service_ops
    tree_batch = tree.stats.pages_migrated / tree.stats.fault_service_ops
    with capsys.disabled():
        print(
            f"\npages/service: locality={base_batch:.1f} tree={tree_batch:.1f} "
            f"services: {base.stats.fault_service_ops} vs "
            f"{tree.stats.fault_service_ops}\n"
        )
    assert tree_batch > base_batch
    assert tree.stats.fault_service_ops < base.stats.fault_service_ops
