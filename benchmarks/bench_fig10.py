"""Fig. 10 — disabling prefetch once memory fills, vs baseline and CPPE.

Paper shape: disabling prefetch costs regular applications up to 85%; it
helps only the severe thrashers (SAD at 50%, NW, MVT, BIC); CPPE beats
disabling everywhere except SAD, whose evicted chunks carry no stable
pattern while being strongly capacity-sensitive.
"""

from conftest import run_artifact
from repro.harness import figures


def test_fig10(benchmark, capsys):
    result = run_artifact(benchmark, capsys, figures.fig10)
    for rate in ("75%", "50%"):
        stop = result.series[f"stop-on-full@{rate}"]
        cppe = result.series[f"cppe@{rate}"]
        # Regular apps suffer from disabling prefetch.
        for app in ("HOT", "2DC"):
            assert stop[app] < 0.9, (rate, app)
        # The strided crashers prefer disabling over naive prefetch...
        for app in ("MVT", "BIC"):
            assert stop[app] > 1.0, (rate, app)
            # ...but CPPE beats disabling for them.
            assert cppe[app] > stop[app], (rate, app)


def test_fig10_with_crash_budget(benchmark, capsys):
    """The paper's presentation: baseline crashes for MVT/BIC ('X'), so
    those bars normalise to the prefetch-off run instead."""

    def run():
        return figures.fig10(apps=["MVT", "BIC"], crash_budget=8.0)

    result = run_artifact(benchmark, capsys, run)
    assert any("crashed" in note for note in result.notes)
    for rate in ("75%", "50%"):
        assert result.series[f"cppe@{rate}"]["MVT"] > 1.0
