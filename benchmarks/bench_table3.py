"""Table III — max per-interval untouch level in the first four intervals.

Paper shape: a wide range (0..60); Types II/III/V/VI sit high, Types I/IV
low; MRU-friendly apps (HSD, LEU, SRD) stay below T1 = 32.
"""

from conftest import run_artifact
from repro.harness import tables


def test_table3(benchmark, capsys):
    result = run_artifact(benchmark, capsys, tables.table3)
    d = result.as_dict()
    for rate in ("75%", "50%"):
        # The MRU-favouring Type IV thrashers keep low untouch levels...
        assert d[(rate, "SRD")] < 32
        assert d[(rate, "HSD")] < 32
        # ...while stride-4 MVT/BIC and region-moving B+T sit high.
        assert d[(rate, "MVT")] >= 32
        assert d[(rate, "B+T")] > d[(rate, "SRD")]
