"""Shared benchmark plumbing.

Each ``bench_*`` module regenerates one artifact of the paper's evaluation
(figure, table, or sensitivity study), prints it, and records the headline
numbers in ``benchmark.extra_info`` so ``pytest benchmarks/ --benchmark-only
--benchmark-json=...`` captures them.  Every artifact run also gets a
machine-readable sidecar: ``run_artifact`` stamps the simulation config
fingerprint (the persistent result-cache key component) into
``extra_info`` and, when ``REPRO_BENCH_JSON_DIR`` is set, writes one JSON
document per artifact keyed by that fingerprint — so downstream tooling
can join benchmark numbers to cached simulation results without parsing
rendered tables.

Simulation results are memoised per process (the same baseline run feeds
several figures), so each bench's wall time covers only the simulations not
already performed by earlier benches in the session.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest


@pytest.fixture(autouse=True, scope="session")
def _no_disk_cache():
    """Benchmarks time real simulations; a warm persistent result cache
    would silently turn them into disk-read benchmarks."""
    from repro.harness import cache as cache_mod

    previous = cache_mod.set_active_cache(None)
    yield
    cache_mod.set_active_cache(previous)


def _artifact_fingerprint(extra_info):
    """The config fingerprint keying this artifact's JSON sidecar.

    Defaults to the fingerprint of the default ``SimConfig`` (what every
    figure/table regeneration runs under); a bench that simulates under a
    custom config passes ``config_fingerprint=...`` explicitly.
    """
    explicit = extra_info.get("config_fingerprint")
    if explicit is not None:
        return explicit
    from repro.config import SimConfig
    from repro.harness.cache import config_fingerprint

    return config_fingerprint(SimConfig())


def run_artifact(benchmark, capsys, fn, **extra_info):
    """Benchmark ``fn`` once, print its rendered artifact, record extras."""
    result = benchmark.pedantic(fn, rounds=1, iterations=1)
    for key, value in extra_info.items():
        benchmark.extra_info[key] = value
    if hasattr(result, "averages"):
        benchmark.extra_info["averages"] = {
            k: round(v, 3) for k, v in result.averages.items()
        }
    fingerprint = _artifact_fingerprint(benchmark.extra_info)
    benchmark.extra_info["config_fingerprint"] = fingerprint

    json_dir = os.environ.get("REPRO_BENCH_JSON_DIR")
    if json_dir:
        out = Path(json_dir)
        out.mkdir(parents=True, exist_ok=True)
        doc = {
            "artifact": benchmark.name,
            "config_fingerprint": fingerprint,
            "extra_info": {
                k: v
                for k, v in benchmark.extra_info.items()
                if isinstance(v, (str, int, float, bool, dict, list, type(None)))
            },
        }
        path = out / f"{benchmark.name}.{fingerprint[:12]}.json"
        path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")

    with capsys.disabled():
        print("\n" + result.render() + "\n")
    return result
