"""Shared benchmark plumbing.

Each ``bench_*`` module regenerates one artifact of the paper's evaluation
(figure, table, or sensitivity study), prints it, and records the headline
numbers in ``benchmark.extra_info`` so ``pytest benchmarks/ --benchmark-only
--benchmark-json=...`` captures them.

Simulation results are memoised per process (the same baseline run feeds
several figures), so each bench's wall time covers only the simulations not
already performed by earlier benches in the session.
"""

from __future__ import annotations

import pytest


@pytest.fixture(autouse=True, scope="session")
def _no_disk_cache():
    """Benchmarks time real simulations; a warm persistent result cache
    would silently turn them into disk-read benchmarks."""
    from repro.harness import cache as cache_mod

    previous = cache_mod.set_active_cache(None)
    yield
    cache_mod.set_active_cache(previous)


def run_artifact(benchmark, capsys, fn, **extra_info):
    """Benchmark ``fn`` once, print its rendered artifact, record extras."""
    result = benchmark.pedantic(fn, rounds=1, iterations=1)
    for key, value in extra_info.items():
        benchmark.extra_info[key] = value
    if hasattr(result, "averages"):
        benchmark.extra_info["averages"] = {
            k: round(v, 3) for k, v in result.averages.items()
        }
    with capsys.disabled():
        print("\n" + result.render() + "\n")
    return result
