"""Fig. 8 — CPPE speedup over the state-of-the-art baseline, full suite.

Paper shape: ~1.56x / 1.64x average at 75% / 50% (up to 10.97x); large wins
on Type IV and on the severe thrashers SAD/HIS/NW; ~1.0 on Types I and VI;
MVT/BIC crash in the paper's baseline (our simulator completes them, so
they appear as the largest finite speedups instead).
"""

from conftest import run_artifact
from repro.analysis.metrics import mean
from repro.harness import figures
from repro.workloads.suite import BENCHMARKS


def test_fig8(benchmark, capsys):
    result = run_artifact(benchmark, capsys, figures.fig8)
    for rate in ("75%", "50%"):
        points = result.series[f"cppe@{rate}"]
        avg = mean(points.values())
        # Paper band, generously widened for the scaled substrate.
        assert 1.2 < avg < 2.5, f"average at {rate} out of band: {avg:.2f}"
        # Type IV all win.
        for app in ("SRD", "HSD", "MRQ", "STN"):
            assert points[app] > 1.1, (rate, app)
        # Type I neutral.
        for app in ("2DC", "3DC"):
            assert 0.9 < points[app] < 1.15, (rate, app)
        # The strided crashers gain the most.
        assert max(points, key=points.get) in ("MVT", "BIC", "SAD", "NW")
