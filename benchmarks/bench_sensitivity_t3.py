"""Section VI-A sensitivity — the forward-distance limit T3, swept 16..40.

Paper shape: SRD/HSD/MRQ adjust continuously at runtime; a limit of 32 has
the best average performance among the candidates.
"""

from conftest import run_artifact
from repro.harness import tables


def test_sensitivity_t3(benchmark, capsys):
    result = run_artifact(benchmark, capsys, tables.sensitivity_t3)
    by_t3 = {row[0]: row[1] for row in result.rows}
    # All candidates beat the baseline on these thrashing apps.
    assert all(v > 1.0 for v in by_t3.values())
    # The paper's chosen value performs within 5% of the best candidate.
    best = max(by_t3.values())
    assert by_t3[32] >= 0.95 * best
