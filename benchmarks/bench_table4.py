"""Table IV — cumulative untouch level over the first four intervals for
applications whose Table III maximum stays below T1.

Paper shape: T2 = 40 separates HSD (MRU-friendly, below) from the apps that
favour LRU (above).
"""

from conftest import run_artifact
from repro.harness import tables


def test_table4(benchmark, capsys):
    result = run_artifact(benchmark, capsys, tables.table4)
    apps = {row[1] for row in result.rows}
    # The filter removed the highest-untouch apps (MVT/BIC exceed T1 in
    # every early interval); borderline apps like B+T may pass the filter
    # at one rate, as DWT/NW do in the paper's own Table IV.
    assert "MVT" not in apps and "BIC" not in apps
    # HSD (MRU-friendly) stays below T2 wherever it appears.
    d = result.as_dict()
    for rate in ("75%", "50%"):
        if (rate, "HSD") in d:
            assert d[(rate, "HSD")] < 40
