"""Ablation (ours) — isolating CPPE's two halves.

``mhpe-naive``   = MHPE eviction + naive whole-chunk prefetch;
``lru-pattern``  = LRU eviction + pattern-aware prefetch;
``cppe``         = both, coordinated.

Expected shape: the eviction half carries the thrashing (Type IV) wins, the
prefetch half carries the strided (MVT/NW) wins, and full CPPE matches or
beats each half on its home turf — the paper's fine-grained-coordination
thesis.
"""

from conftest import run_artifact
from repro.harness import figures

APPS = ["SRD", "HSD", "STN", "MVT", "NW", "SAD", "B+T"]


def test_ablation_coordination(benchmark, capsys):
    def generate():
        from repro.harness.figures import FigureResult, _avg, _speedup_series

        series = {}
        for rate in (0.5,):
            sub = _speedup_series(
                APPS, ["mhpe-naive", "lru-pattern", "cppe"], "baseline",
                rate, scale=1.0,
            )
            for name, pts in sub.items():
                series[f"{name}@{rate:.0%}"] = pts
        return FigureResult(
            name="ablation-coordination",
            description="MHPE-only vs pattern-prefetch-only vs full CPPE",
            series=series,
            averages=_avg(series),
        )

    result = run_artifact(benchmark, capsys, generate)
    mhpe = result.series["mhpe-naive@50%"]
    pattern = result.series["lru-pattern@50%"]
    cppe = result.series["cppe@50%"]
    # Eviction half owns Type IV; prefetch half owns the strided apps.
    assert mhpe["SRD"] > 1.2
    assert pattern["MVT"] > 1.5
    # Full CPPE holds both wins simultaneously.
    assert cppe["SRD"] > 1.2 and cppe["MVT"] > 1.5
