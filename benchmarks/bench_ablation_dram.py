"""Ablation (ours) — flat walk latency vs the GDDR5 channel model.

DESIGN.md deviation #4 argues DRAM timing is far below fault-latency scale
and does not affect any studied effect.  This ablation *checks* that claim:
switching the page-table walker from the flat per-level latency to the
12-channel GDDR5 queueing model must leave the CPPE-vs-baseline speedups
essentially unchanged.
"""

from conftest import run_artifact
from repro.config import SimConfig, TranslationConfig
from repro.engine.simulator import Simulator
from repro.harness.baselines import build_setup
from repro.harness.figures import FigureResult
from repro.workloads.suite import make_workload

APPS = ["SRD", "NW", "B+T"]


def _speedup(app, use_dram, rate=0.5):
    cfg = SimConfig(translation=TranslationConfig(use_dram_model=use_dram))
    results = {}
    for setup in ("baseline", "cppe"):
        policy, prefetcher = build_setup(setup)
        results[setup] = Simulator(
            make_workload(app), policy=policy, prefetcher=prefetcher,
            oversubscription=rate, config=cfg,
        ).run()
    return results["cppe"].speedup_over(results["baseline"])


def test_ablation_dram_model(benchmark, capsys):
    def generate():
        series = {
            "flat-walk": {app: _speedup(app, False) for app in APPS},
            "gddr5-model": {app: _speedup(app, True) for app in APPS},
        }
        return FigureResult(
            name="ablation-dram",
            description="CPPE speedup with flat vs GDDR5-modelled walk latency",
            series=series,
            notes=["the studied effects are fault-latency bound; the DRAM "
                   "model must not change who wins (DESIGN.md deviation #4)"],
        )

    result = run_artifact(benchmark, capsys, generate)
    for app in APPS:
        flat = result.series["flat-walk"][app]
        dram = result.series["gddr5-model"][app]
        assert abs(flat - dram) / flat < 0.15, (app, flat, dram)
