"""Fig. 4 — eviction blow-up from prefetching once memory is full (LRU, 50%).

Paper shape: most applications change < 20%; SAD and NW blow up ~10x; MVT
and BIC crash outright (reproduced here both as an eviction ratio and, with
a crash budget, as an actual ``crashed`` run).
"""

from conftest import run_artifact
from repro.harness import figures
from repro.harness.experiment import RunSpec, run_one


def test_fig4(benchmark, capsys):
    result = run_artifact(benchmark, capsys, figures.fig4)
    ratios = result.series["eviction-ratio"]
    assert ratios["MVT"] == max(ratios.values())
    assert ratios["MVT"] > 5.0
    assert "SAD" in ratios and "NW" in ratios


def test_fig4_crash_model(benchmark, capsys):
    """With an eviction budget, the paper's MVT/BIC crashes reproduce."""

    def run():
        return [
            run_one(RunSpec(app, "baseline", 0.5, crash_budget_factor=8.0))
            for app in ("MVT", "BIC")
        ]

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    with capsys.disabled():
        for r in results:
            print(f"\n{r.workload}: crashed={r.crashed} ({r.crash_reason})")
    assert all(r.crashed for r in results)
