"""Section IV-B sensitivity — untouch level vs fixed forward distance 1..10.

Paper shape: regular applications' untouch level drops sharply once the
distance reaches ~2; irregular applications stay high across the range,
which is what makes untouch level a usable classifier in 2..8.
"""

from conftest import run_artifact
from repro.harness import tables


def test_sensitivity_fd(benchmark, capsys):
    result = run_artifact(benchmark, capsys, tables.sensitivity_fd)
    d = result.as_dict()
    # Regular untouch at distance >= 2 is far below distance 1.
    assert d[(2, "regular")] <= d[(1, "regular")]
    # Irregular stays clearly above regular throughout the usable range.
    for dist in (2, 4, 6, 8):
        assert d[(dist, "irregular")] > d[(dist, "regular")]
