"""Fig. 7 — pattern deletion Scheme-1 vs Scheme-2 under full CPPE.

Paper shape: similar for MVT/SPV/B+T/BIC/SAD; Scheme-2 wins for fixed-
stride apps (NW, HIS); Scheme-1 wins for slow-populating chunks (BFS, HWL);
Scheme-2 ~3%/7% better on average and is the adopted configuration.
"""

from conftest import run_artifact
from repro.analysis.metrics import mean
from repro.harness import figures


def test_fig7(benchmark, capsys):
    result = run_artifact(benchmark, capsys, figures.fig7)
    for rate in ("75%", "50%"):
        s1 = result.series[f"scheme-1@{rate}"]
        s2 = result.series[f"scheme-2@{rate}"]
        # Scheme-2 at least matches Scheme-1 on average.
        assert mean(s2.values()) >= 0.97 * mean(s1.values())
        # Fixed-stride HIS prefers Scheme-2.
        assert s2["HIS"] >= s1["HIS"] * 0.98
