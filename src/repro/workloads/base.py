"""Workload container and SM-distribution helpers.

A :class:`Workload` is a global stream of virtual page numbers plus a
parallel write-flag array.  ``per_sm_traces`` distributes the stream over
the GPU's SMs:

* ``"interleave"`` (default) — element-wise round robin, modelling the
  block-cyclic scheduling of GPU thread blocks: all SMs advance through the
  same phase of the pattern together, so concurrent faults to one chunk
  merge in the GMMU exactly as coalesced warp accesses do;
* ``"block"`` — contiguous split, modelling coarse spatial partitioning.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from ..errors import WorkloadError
from ..units import PAGES_PER_CHUNK

__all__ = ["Workload", "interleave_split", "block_split"]


def interleave_split(arr: np.ndarray, n: int) -> List[np.ndarray]:
    """Round-robin split of ``arr`` into ``n`` subsequences."""
    if n <= 0:
        raise WorkloadError(f"need a positive SM count, got {n}")
    return [arr[i::n] for i in range(n)]


def block_split(arr: np.ndarray, n: int) -> List[np.ndarray]:
    """Contiguous split of ``arr`` into ``n`` nearly equal blocks."""
    if n <= 0:
        raise WorkloadError(f"need a positive SM count, got {n}")
    return [np.array(part) for part in np.array_split(arr, n)]


@dataclass
class Workload:
    """A named, reproducible page-access stream."""

    name: str
    pattern_type: str  # "I" .. "VI"
    footprint_pages: int
    accesses: np.ndarray
    writes: Optional[np.ndarray] = None
    base_vpn: int = 0x80000
    distribution: str = "interleave"
    description: str = ""
    params: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.accesses = np.asarray(self.accesses, dtype=np.int64)
        if self.footprint_pages <= 0:
            raise WorkloadError(f"{self.name}: footprint must be positive")
        if self.accesses.size == 0:
            raise WorkloadError(f"{self.name}: empty access stream")
        if self.accesses.min() < 0 or self.accesses.max() >= self.footprint_pages:
            raise WorkloadError(
                f"{self.name}: accesses must lie in [0, {self.footprint_pages})"
            )
        if self.writes is not None:
            self.writes = np.asarray(self.writes, dtype=bool)
            if self.writes.shape != self.accesses.shape:
                raise WorkloadError(f"{self.name}: writes/accesses shape mismatch")
        if self.distribution not in ("interleave", "block"):
            raise WorkloadError(
                f"{self.name}: unknown distribution {self.distribution!r}"
            )

    @property
    def num_accesses(self) -> int:
        return int(self.accesses.size)

    @property
    def footprint_chunks(self) -> int:
        return -(-self.footprint_pages // PAGES_PER_CHUNK)

    @property
    def unique_pages_touched(self) -> int:
        return int(np.unique(self.accesses).size)

    def absolute_accesses(self) -> np.ndarray:
        """Access stream rebased to ``base_vpn`` (what SMs actually issue)."""
        return self.accesses + self.base_vpn

    def per_sm_traces(
        self, num_sms: int
    ) -> List[Tuple[np.ndarray, Optional[np.ndarray]]]:
        """Distribute the stream over ``num_sms`` SMs.

        Returns one ``(trace, writes)`` pair per SM; traces are rebased to
        ``base_vpn``.
        """
        split = interleave_split if self.distribution == "interleave" else block_split
        traces = split(self.absolute_accesses(), num_sms)
        if self.writes is None:
            return [(t, None) for t in traces]
        write_parts = split(self.writes, num_sms)
        return list(zip(traces, write_parts))

    def capacity_for(self, oversubscription: Optional[float]) -> int:
        """Device capacity in frames for an oversubscription rate.

        ``oversubscription=0.75`` means 75% of the footprint fits (Section
        VI); ``None`` models unlimited memory (capacity exceeds footprint by
        one chunk so eviction never triggers).
        """
        if oversubscription is None:
            return self.footprint_pages + PAGES_PER_CHUNK
        if not 0.0 < oversubscription <= 1.0:
            raise WorkloadError(
                f"oversubscription must be in (0, 1], got {oversubscription}"
            )
        capacity = int(round(self.footprint_pages * oversubscription))
        # Keep at least four chunks so chunk-granular eviction can operate.
        return max(capacity, 4 * PAGES_PER_CHUNK)
