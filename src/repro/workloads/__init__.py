"""Synthetic workloads reproducing the access-pattern taxonomy of Table II."""

from .base import Workload, interleave_split, block_split
from .patterns import (
    streaming,
    partly_repetitive,
    mostly_repetitive,
    thrashing,
    repetitive_thrashing,
    region_moving,
)
from .suite import (
    BENCHMARKS,
    BenchmarkSpec,
    get_benchmark,
    make_workload,
    benchmarks_by_type,
)
from .trace_io import (
    TraceProfile,
    downsample,
    load_trace,
    profile_trace,
    save_trace,
)

__all__ = [
    "Workload",
    "interleave_split",
    "block_split",
    "streaming",
    "partly_repetitive",
    "mostly_repetitive",
    "thrashing",
    "repetitive_thrashing",
    "region_moving",
    "BENCHMARKS",
    "BenchmarkSpec",
    "get_benchmark",
    "make_workload",
    "benchmarks_by_type",
    "TraceProfile",
    "downsample",
    "load_trace",
    "profile_trace",
    "save_trace",
]
