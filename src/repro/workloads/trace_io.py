"""Trace persistence and characterisation.

Supports the bring-your-own-trace workflow (see ``examples/custom_workload
.py``): traces captured from real applications (one virtual page index per
memory operation) can be stored compactly as ``.npz``, reloaded as
:class:`~repro.workloads.base.Workload` objects, down-sampled for quick
runs, and characterised — footprint, reuse, stride, working-set curve —
with the same vocabulary as the paper's Table II taxonomy.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Union

import numpy as np

from ..errors import WorkloadError
from ..units import PAGES_PER_CHUNK
from .base import Workload

__all__ = [
    "save_trace",
    "load_trace",
    "downsample",
    "TraceProfile",
    "profile_trace",
]


def _npz_path(path: Path) -> Path:
    """The path ``np.savez`` actually writes for ``path``.

    Mirrors numpy's rule exactly — append ``.npz`` unless the *name string*
    already ends with it — using ``with_name`` rather than ``with_suffix``,
    so suffixless (``trace``), multi-dot (``trace.v1.2``) and trailing-dot
    (``trace.``) names all resolve to the real on-disk file instead of a
    re-derived guess (``with_suffix`` raises on trailing-dot names and
    *replaces* the last suffix instead of appending).
    """
    if path.name.endswith(".npz"):
        return path
    return path.with_name(path.name + ".npz")


def save_trace(workload: Workload, path: Union[str, Path]) -> Path:
    """Store a workload's trace as a compressed ``.npz``.

    Returns the path actually written: the on-disk target is computed
    *once* (:func:`_npz_path`) before writing and handed to numpy already
    carrying its ``.npz`` suffix, so the returned path can never drift
    from the file numpy created.
    """
    path = _npz_path(Path(path))
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(
        path,
        accesses=workload.accesses,
        writes=(workload.writes if workload.writes is not None
                else np.zeros(0, dtype=bool)),
        footprint_pages=np.int64(workload.footprint_pages),
        name=np.str_(workload.name),
        pattern_type=np.str_(workload.pattern_type),
        distribution=np.str_(workload.distribution),
    )
    return path


def load_trace(path: Union[str, Path]) -> Workload:
    """Load a workload previously written by :func:`save_trace`.

    Accepts either the exact path :func:`save_trace` returned or the
    original suffixless argument (the fallback applies the same
    ``.npz``-append rule the writer used).
    """
    path = Path(path)
    if not path.exists() and _npz_path(path).exists():
        path = _npz_path(path)
    with np.load(path, allow_pickle=False) as data:
        writes = data["writes"]
        return Workload(
            name=str(data["name"]),
            pattern_type=str(data["pattern_type"]),
            footprint_pages=int(data["footprint_pages"]),
            accesses=data["accesses"],
            writes=writes if writes.size else None,
            distribution=str(data["distribution"]),
        )


def downsample(workload: Workload, factor: int) -> Workload:
    """Keep every ``factor``-th access (quick-look runs on huge traces).

    Down-sampling preserves the *ordering* and rough shape of a pattern but
    thins reuse, so treat results as qualitative.
    """
    if factor <= 0:
        raise WorkloadError(f"factor must be positive, got {factor}")
    if factor == 1:
        return workload
    accesses = workload.accesses[::factor]
    if accesses.size == 0:
        raise WorkloadError("downsampling removed every access")
    return Workload(
        name=f"{workload.name}/ds{factor}",
        pattern_type=workload.pattern_type,
        footprint_pages=workload.footprint_pages,
        accesses=accesses,
        writes=None if workload.writes is None else workload.writes[::factor],
        distribution=workload.distribution,
        description=f"{workload.description} (1/{factor} sampled)",
    )


@dataclass(frozen=True)
class TraceProfile:
    """Characterisation of one trace."""

    name: str
    num_accesses: int
    footprint_pages: int
    unique_pages: int
    touches_per_page_mean: float
    #: Fraction of accesses whose page was seen before (any distance).
    reuse_fraction: float
    #: Most common non-zero |stride| between consecutive accesses.
    dominant_stride: int
    #: Fraction of consecutive-access strides equal to the dominant one.
    dominant_stride_fraction: float
    #: Chunk-level coverage: mean fraction of each touched chunk's pages
    #: that are touched (low => pattern-prefetch opportunity).
    chunk_coverage_mean: float
    #: Unique pages in each quarter of the trace (working-set drift).
    quarter_working_sets: tuple

    def summary(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "accesses": self.num_accesses,
            "footprint": self.footprint_pages,
            "unique_pages": self.unique_pages,
            "touches/page": round(self.touches_per_page_mean, 2),
            "reuse": round(self.reuse_fraction, 3),
            "stride": self.dominant_stride,
            "stride_frac": round(self.dominant_stride_fraction, 3),
            "chunk_coverage": round(self.chunk_coverage_mean, 3),
        }


def profile_trace(workload: Workload) -> TraceProfile:
    """Compute a :class:`TraceProfile` (vectorised; fine for 1M accesses).

    A zero-access trace (e.g. one filtered/truncated to nothing after
    construction) profiles to all-zero statistics instead of crashing on
    ``min()`` / ``mean()`` of empty arrays.
    """
    acc = workload.accesses
    if acc.size == 0:
        return TraceProfile(
            name=workload.name,
            num_accesses=0,
            footprint_pages=workload.footprint_pages,
            unique_pages=0,
            touches_per_page_mean=0.0,
            reuse_fraction=0.0,
            dominant_stride=0,
            dominant_stride_fraction=0.0,
            chunk_coverage_mean=0.0,
            quarter_working_sets=(),
        )
    unique, counts = np.unique(acc, return_counts=True)

    # Reuse: accesses beyond each page's first occurrence.
    reuse_fraction = float((acc.size - unique.size) / acc.size) if acc.size else 0.0

    # Dominant stride among consecutive accesses.
    if acc.size > 1:
        strides = np.abs(np.diff(acc))
        strides = strides[strides > 0]
        if strides.size:
            vals, n = np.unique(strides, return_counts=True)
            idx = int(np.argmax(n))
            dominant = int(vals[idx])
            dominant_frac = float(n[idx] / strides.size)
        else:
            dominant, dominant_frac = 0, 0.0
    else:
        dominant, dominant_frac = 0, 0.0

    # Chunk coverage.
    chunk_ids = unique // PAGES_PER_CHUNK
    touched_per_chunk = np.bincount(chunk_ids - chunk_ids.min())
    touched_per_chunk = touched_per_chunk[touched_per_chunk > 0]
    coverage = float(np.mean(touched_per_chunk) / PAGES_PER_CHUNK)

    quarters = np.array_split(acc, 4)
    quarter_ws = tuple(int(np.unique(q).size) for q in quarters if q.size)

    return TraceProfile(
        name=workload.name,
        num_accesses=int(acc.size),
        footprint_pages=workload.footprint_pages,
        unique_pages=int(unique.size),
        touches_per_page_mean=float(np.mean(counts)),
        reuse_fraction=reuse_fraction,
        dominant_stride=dominant,
        dominant_stride_fraction=dominant_frac,
        chunk_coverage_mean=coverage,
        quarter_working_sets=quarter_ws,
    )
