"""Access-pattern generators for the six workload types of Table II.

Each generator returns ``(accesses, writes)`` as numpy arrays of page
indices (0 .. footprint-1) and write flags.  The taxonomy follows HPE [15]:

* **Type I — Streaming**: one (or few) sequential passes, no reuse.
* **Type II — Partly repetitive**: sequential sweeps plus a hot region that
  is revisited between phases.
* **Type III — Mostly repetitive**: repeated sweeps over *strided* subsets
  (NW touches every 2nd page of a chunk, MVT/BIC every 4th) or an irregular
  frontier (BFS); chunks are only partially populated for long stretches.
* **Type IV — Thrashing**: cyclic sweeps over the whole footprint; with
  capacity below the footprint, LRU evicts exactly the page needed next.
* **Type V — Repetitive-thrashing**: cyclic sweeps interleaved with a hot
  repeated region.
* **Type VI — Region moving**: a working-set window slides across the
  footprint; pages behind the window are dead — LRU-friendly, MRU-hostile.

All generators are deterministic given ``seed`` and vectorised with numpy
(trace construction is never the simulation bottleneck).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..errors import WorkloadError

__all__ = [
    "streaming",
    "partly_repetitive",
    "mostly_repetitive",
    "thrashing",
    "repetitive_thrashing",
    "region_moving",
]

Trace = Tuple[np.ndarray, np.ndarray]


def _writes(rng: np.random.Generator, n: int, fraction: float) -> np.ndarray:
    return rng.random(n) < fraction


def _check(footprint: int) -> None:
    if footprint <= 0:
        raise WorkloadError(f"footprint must be positive, got {footprint}")


def _finalize(
    parts: list, footprint: int, seed: int, write_fraction: float
) -> Trace:
    accesses = np.concatenate([np.asarray(p, dtype=np.int64) for p in parts])
    if accesses.size == 0:
        raise WorkloadError("generator produced an empty trace")
    if accesses.min() < 0 or accesses.max() >= footprint:
        raise WorkloadError("generator produced out-of-range pages")
    rng = np.random.default_rng(seed + 0x9E3779B9)
    return accesses, _writes(rng, accesses.size, write_fraction)


def streaming(
    footprint: int,
    sweeps: int = 1,
    touches_per_page: int = 2,
    seed: int = 0,
    write_fraction: float = 0.3,
    skip_fraction: float = 0.0,
) -> Trace:
    """Type I: sequential pass(es), each page touched a few times in a row.

    ``skip_fraction`` leaves a random subset of pages untouched per sweep
    (e.g. LEU's sparse cell accesses), producing a nonzero untouch level in
    prefetched chunks.
    """
    _check(footprint)
    if sweeps <= 0 or touches_per_page <= 0:
        raise WorkloadError("sweeps and touches_per_page must be positive")
    if not 0.0 <= skip_fraction < 1.0:
        raise WorkloadError(f"skip_fraction must be in [0, 1), got {skip_fraction}")
    rng = np.random.default_rng(seed)
    parts = []
    for _ in range(sweeps):
        pages = np.arange(footprint, dtype=np.int64)
        if skip_fraction:
            keep = rng.random(footprint) >= skip_fraction
            pages = pages[keep]
        parts.append(np.repeat(pages, touches_per_page))
    return _finalize(parts, footprint, seed, write_fraction)


def partly_repetitive(
    footprint: int,
    hot_fraction: float = 0.25,
    hot_repeats: int = 6,
    sweeps: int = 2,
    touches_per_page: int = 1,
    seed: int = 0,
    write_fraction: float = 0.3,
    skip_fraction: float = 0.0,
) -> Trace:
    """Type II: sequential sweeps with a revisited hot region in between."""
    _check(footprint)
    if not 0.0 < hot_fraction <= 1.0:
        raise WorkloadError(f"hot_fraction must be in (0, 1], got {hot_fraction}")
    if not 0.0 <= skip_fraction < 1.0:
        raise WorkloadError(f"skip_fraction must be in [0, 1), got {skip_fraction}")
    hot_pages = max(1, int(footprint * hot_fraction))
    rng = np.random.default_rng(seed)
    hot = np.tile(np.arange(hot_pages, dtype=np.int64), hot_repeats)
    parts = []
    for i in range(sweeps):
        pages = np.arange(footprint, dtype=np.int64)
        if skip_fraction:
            keep = rng.random(footprint) >= skip_fraction
            pages = pages[keep]
        parts.append(np.repeat(pages, touches_per_page))
        if i < sweeps - 1:
            parts.append(hot)
    return _finalize(parts, footprint, seed, write_fraction)


def mostly_repetitive(
    footprint: int,
    stride: int = 2,
    repeats: int = 4,
    phases: int = 2,
    touches_per_page: int = 1,
    seed: int = 0,
    write_fraction: float = 0.3,
    frontier: bool = False,
    frontier_levels: int = 12,
) -> Trace:
    """Type III: repeated strided sweeps, or an irregular frontier (BFS).

    With ``stride=k`` only every k-th page is touched during a phase; the
    next phase shifts the offset, so a chunk's touch pattern is a fixed
    stride for long stretches — the idiom CPPE's pattern buffer exploits.
    With ``frontier=True`` the trace is a BFS-like sequence of random page
    sets that grows then shrinks; chunks take many intervals to populate.
    """
    _check(footprint)
    rng = np.random.default_rng(seed)
    parts = []
    if frontier:
        peak = max(4, footprint // 4)
        for level in range(frontier_levels):
            # Bell-shaped frontier size.
            ramp = 1 - abs(2 * level / max(1, frontier_levels - 1) - 1)
            size = max(2, int(peak * ramp))
            pages = rng.choice(footprint, size=size, replace=False).astype(np.int64)
            # Each frontier page touched, some re-touched (edge traffic).
            parts.append(np.repeat(pages, touches_per_page))
            retouch = rng.choice(pages, size=max(1, size // 2), replace=True)
            parts.append(retouch.astype(np.int64))
    else:
        if stride <= 0:
            raise WorkloadError(f"stride must be positive, got {stride}")
        for phase in range(phases):
            offset = phase % stride
            strided = np.arange(offset, footprint, stride, dtype=np.int64)
            phase_part = np.repeat(strided, touches_per_page)
            parts.extend([phase_part] * repeats)
    return _finalize(parts, footprint, seed, write_fraction)


def thrashing(
    footprint: int,
    sweeps: int = 6,
    touches_per_page: int = 1,
    seed: int = 0,
    write_fraction: float = 0.3,
) -> Trace:
    """Type IV: cyclic sweeps over the full footprint (LRU's worst case)."""
    _check(footprint)
    if sweeps < 2:
        raise WorkloadError("thrashing needs at least two sweeps to thrash")
    sweep = np.repeat(np.arange(footprint, dtype=np.int64), touches_per_page)
    return _finalize([sweep] * sweeps, footprint, seed, write_fraction)


def repetitive_thrashing(
    footprint: int,
    hot_fraction: float = 0.2,
    hot_repeats: int = 3,
    sweeps: int = 4,
    stride: int = 1,
    touches_per_page: int = 1,
    seed: int = 0,
    write_fraction: float = 0.3,
) -> Trace:
    """Type V: cyclic (possibly strided) sweeps with an interleaved hot set."""
    _check(footprint)
    if stride <= 0:
        raise WorkloadError(f"stride must be positive, got {stride}")
    hot_pages = max(1, int(footprint * hot_fraction))
    hot = np.tile(np.arange(hot_pages, dtype=np.int64), hot_repeats)
    # The stride offset is fixed across sweeps: applications like HIS touch
    # the same strided subset every pass (Fig. 7 discussion), which is the
    # stable intra-chunk pattern the pattern buffer exploits.
    strided = np.arange(0, footprint, stride, dtype=np.int64)
    sweep = np.repeat(strided, touches_per_page)
    parts = []
    for _ in range(sweeps):
        parts.append(sweep)
        parts.append(hot)
    return _finalize(parts, footprint, seed, write_fraction)


def region_moving(
    footprint: int,
    window_pages: Optional[int] = None,
    step: Optional[int] = None,
    rounds_per_window: int = 3,
    seed: int = 0,
    write_fraction: float = 0.3,
    touch_fraction: float = 1.0,
) -> Trace:
    """Type VI: a sliding working-set window (B+T node splits, HYB buckets).

    Pages inside the current window are revisited ``rounds_per_window``
    times in random order; the window then advances by ``step``.  Pages
    behind the window are never needed again, so recency (LRU) is the right
    signal and MRU-style eviction is harmful.  ``touch_fraction < 1`` makes
    each window touch only a random subset of its pages (tree nodes are
    scattered within a region), which is why Type VI applications show the
    highest untouch levels in Table III.
    """
    _check(footprint)
    if window_pages is None:
        window_pages = max(16, footprint // 8)
    if step is None:
        step = max(1, window_pages // 2)
    if window_pages <= 0 or step <= 0:
        raise WorkloadError("window_pages and step must be positive")
    if not 0.0 < touch_fraction <= 1.0:
        raise WorkloadError(f"touch_fraction must be in (0, 1], got {touch_fraction}")
    rng = np.random.default_rng(seed)
    parts = []
    start = 0
    while start < footprint:
        end = min(footprint, start + window_pages)
        window = np.arange(start, end, dtype=np.int64)
        if touch_fraction < 1.0:
            size = max(1, int(window.size * touch_fraction))
            window = rng.choice(window, size=size, replace=False)
        for _ in range(rounds_per_window):
            parts.append(rng.permutation(window))
        start += step
    return _finalize(parts, footprint, seed, write_fraction)
