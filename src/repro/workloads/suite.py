"""The 23-application workload suite of Table II, scaled for simulation.

Footprints are the paper's megabytes converted at 64 pages/MB (one quarter
of the native 256 pages/MB) with a floor of 1024 pages (64 chunks), so the
footprint-to-capacity ratios of the oversubscription experiments are
preserved while every chunk chain stays large relative to the fixed
interval geometry (16-page chunks, 64-page intervals) the paper's
thresholds assume.  Generator parameters encode each application's
access-pattern character as described in the paper:

* NW touches every 2nd page of a chunk, MVT/BIC every 4th (Section IV-C);
* HIS has a fixed intra-chunk stride (Fig. 7 discussion);
* BFS chunks "usually needed a long time to be fully populated" (frontier);
* B+T/HYB are region-moving with sparse per-window touches (their Table III
  untouch levels are the highest of the suite);
* Type IV applications are pure cyclic thrashers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..errors import WorkloadError
from ..registry import register_table
from .base import Workload
from . import patterns

__all__ = [
    "BenchmarkSpec",
    "BENCHMARKS",
    "get_benchmark",
    "make_workload",
    "benchmarks_by_type",
]


@dataclass(frozen=True)
class BenchmarkSpec:
    """Static description of one suite application."""

    abbr: str
    full_name: str
    suite: str
    pattern_type: str  # "I" .. "VI"
    footprint_pages: int
    generator: str  # name of a function in repro.workloads.patterns
    params: dict = field(default_factory=dict)
    seed: int = 0
    description: str = ""
    #: How thread blocks map to SMs: "interleave" (element-cyclic, the GPU
    #: default here) or "block" (contiguous spatial tiles, typical for
    #: tiled stencil kernels).
    distribution: str = "interleave"

    def scaled_footprint(self, scale: float) -> int:
        return max(64, int(round(self.footprint_pages * scale)))


def _spec(abbr, full_name, suite, ptype, pages, generator, seed, desc="",
          distribution="interleave", **params):
    return BenchmarkSpec(
        abbr=abbr,
        full_name=full_name,
        suite=suite,
        pattern_type=ptype,
        footprint_pages=pages,
        generator=generator,
        params=params,
        seed=seed,
        description=desc,
        distribution=distribution,
    )


#: Table II, scaled.  Keyed by abbreviation.
BENCHMARKS: Dict[str, BenchmarkSpec] = {
    s.abbr: s
    for s in [
        # --- Type I: streaming -------------------------------------------------
        _spec("HOT", "hotspot", "Rodinia", "I", 1024, "streaming", 11,
              "stencil sweep, single pass", sweeps=2, touches_per_page=2),
        _spec("LEU", "leukocyte", "Rodinia", "I", 1024, "streaming", 12,
              "sparse cell detection stream", sweeps=3, touches_per_page=2,
              skip_fraction=0.15),
        _spec("2DC", "2DCONV", "Polybench", "I", 8192, "streaming", 13,
              "2-D convolution stream", sweeps=1, touches_per_page=2),
        _spec("3DC", "3DCONV", "Polybench", "I", 8160, "streaming", 14,
              "3-D convolution stream", sweeps=1, touches_per_page=2),
        # --- Type II: partly repetitive ---------------------------------------
        _spec("BKP", "backprop", "Rodinia", "II", 1024, "partly_repetitive", 21,
              "layered passes with hot weight region", hot_fraction=0.3,
              hot_repeats=4, sweeps=3),
        _spec("PAT", "pathfinder", "Rodinia", "II", 2464, "partly_repetitive", 22,
              "row sweeps with sparse reuse", hot_fraction=0.1, hot_repeats=4,
              sweeps=3, skip_fraction=0.25),
        _spec("DWT", "dwt2d", "Rodinia", "II", 1728, "partly_repetitive", 23,
              "wavelet level sweeps", hot_fraction=0.25, hot_repeats=3,
              sweeps=3, skip_fraction=0.3),
        _spec("KMN", "kmeans", "Parboil", "II", 8320, "partly_repetitive", 24,
              "feature sweeps with hot centroids", hot_fraction=0.05,
              hot_repeats=8, sweeps=2, skip_fraction=0.25),
        # --- Type III: mostly repetitive ---------------------------------------
        _spec("SAD", "sad", "Parboil", "III", 1024, "mostly_repetitive", 31,
              "block-matching with stride-2 reuse", stride=2, repeats=8,
              phases=2, touches_per_page=2),
        _spec("NW", "nw", "Rodinia", "III", 2048, "mostly_repetitive", 32,
              "diagonal wavefront: stride-2 intra-chunk", stride=2, repeats=4,
              phases=2),
        _spec("BFS", "bfs", "Rodinia", "III", 2381, "mostly_repetitive", 33,
              "frontier expansion", frontier=True, frontier_levels=16,
              touches_per_page=2),
        _spec("MVT", "MVT", "Polybench", "III", 4102, "mostly_repetitive", 34,
              "matrix-vector: stride-4 intra-chunk", stride=4, repeats=6,
              phases=2),
        _spec("BIC", "BICG", "Polybench", "III", 4102, "mostly_repetitive", 35,
              "bi-conjugate gradient kernels: stride-4", stride=4, repeats=6,
              phases=2),
        # --- Type IV: thrashing --------------------------------------------------
        _spec("SRD", "srad_v2", "Rodinia", "IV", 6144, "thrashing", 41,
              "full-footprint diffusion sweeps over tiled rows", sweeps=5,
              distribution="block"),
        _spec("HSD", "hotspot3D", "Rodinia", "IV", 1536, "thrashing", 42,
              "3-D stencil cyclic sweeps", sweeps=8),
        _spec("MRQ", "mri-q", "Parboil", "IV", 1024, "thrashing", 43,
              "Q-matrix cyclic sweeps, element-cyclic blocks", sweeps=12,
              touches_per_page=2),
        _spec("STN", "stencil", "Parboil", "IV", 1024, "thrashing", 44,
              "7-point stencil cyclic sweeps over tiles", sweeps=16,
              distribution="block"),
        # --- Type V: repetitive-thrashing ---------------------------------------
        _spec("HWL", "heartwall", "Rodinia", "V", 2605, "repetitive_thrashing", 51,
              "frame sweeps with hot template", hot_fraction=0.15,
              hot_repeats=3, sweeps=4),
        _spec("SGM", "sgemm", "Parboil", "V", 1024, "repetitive_thrashing", 52,
              "tiled GEMM panels", hot_fraction=0.25, hot_repeats=4, sweeps=6),
        _spec("HIS", "histo", "Parboil", "V", 1024, "repetitive_thrashing", 53,
              "strided histogram bins + hot counters", hot_fraction=0.1,
              hot_repeats=3, sweeps=6, stride=2),
        _spec("SPV", "spmv", "Parboil", "V", 1747, "repetitive_thrashing", 54,
              "sparse rows: strided + hot vector", hot_fraction=0.15,
              hot_repeats=3, sweeps=4, stride=2),
        # --- Type VI: region moving ----------------------------------------------
        _spec("B+T", "b+tree", "Rodinia", "VI", 2221, "region_moving", 61,
              "moving node region ~45% of footprint, sparse touches",
              rounds_per_window=3, touch_fraction=0.5, window_pages=1000,
              step=500),
        _spec("HYB", "hybridsort", "Rodinia", "VI", 6656, "region_moving", 62,
              "bucket-by-bucket processing, bucket ~45% of footprint",
              rounds_per_window=2, touch_fraction=0.7, window_pages=3000,
              step=1500),
    ]
}

# Table-driven bulk registration: each BenchmarkSpec becomes a ``workload``
# component (``repro components list --kind workload``), so services can
# enumerate the suite without importing this module's tables directly.
# ``make_workload`` below stays the single construction path.
register_table("workload", BENCHMARKS)

#: Applications shown in Fig. 3 (thrashing + irregular comparison).
FIG3_APPS: List[str] = ["SRD", "HSD", "MRQ", "STN", "B+T", "HYB"]

#: Applications the paper reports as crashing in the naive baseline.
CRASHING_APPS: List[str] = ["MVT", "BIC"]


def get_benchmark(abbr: str) -> BenchmarkSpec:
    """Look up a benchmark by abbreviation (case-insensitive)."""
    spec = BENCHMARKS.get(abbr) or BENCHMARKS.get(abbr.upper())
    if spec is None:
        raise WorkloadError(
            f"unknown benchmark {abbr!r}; known: {', '.join(sorted(BENCHMARKS))}"
        )
    return spec


def benchmarks_by_type(pattern_type: str) -> List[BenchmarkSpec]:
    """All benchmarks of one access-pattern type ('I' .. 'VI')."""
    found = [s for s in BENCHMARKS.values() if s.pattern_type == pattern_type]
    if not found:
        raise WorkloadError(f"no benchmarks of type {pattern_type!r}")
    return found


def make_workload(
    abbr: str, scale: float = 1.0, seed: Optional[int] = None
) -> Workload:
    """Instantiate the named benchmark's synthetic trace.

    ``scale`` shrinks/grows the footprint (tests use scale < 1 for speed);
    ``seed`` overrides the spec's default seed.
    """
    if scale <= 0:
        raise WorkloadError(f"scale must be positive, got {scale}")
    spec = get_benchmark(abbr)
    generator: Callable = getattr(patterns, spec.generator)
    footprint = spec.scaled_footprint(scale)
    use_seed = spec.seed if seed is None else seed
    accesses, writes = generator(footprint, seed=use_seed, **spec.params)
    return Workload(
        name=spec.abbr,
        pattern_type=spec.pattern_type,
        footprint_pages=footprint,
        accesses=accesses,
        writes=writes,
        description=spec.description,
        distribution=spec.distribution,
        params={"scale": scale, "seed": use_seed, **spec.params},
    )
