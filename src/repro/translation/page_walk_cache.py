"""Shared page walk cache.

Caches upper-level (non-leaf) page-table entries keyed by (level, node id).
A walk that finds its deepest non-leaf level cached skips the memory
accesses for that level and everything above it.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..config import PageWalkCacheConfig

__all__ = ["PageWalkCache"]


class PageWalkCache:
    """Set-associative cache of page-table interior nodes."""

    __slots__ = ("config", "_sets", "_num_sets", "_assoc", "hits", "misses")

    def __init__(self, config: PageWalkCacheConfig):
        self.config = config
        self._assoc = config.associativity
        self._num_sets = max(1, config.entries // config.associativity)
        self._sets: List[Dict[Tuple[int, int], None]] = [
            {} for _ in range(self._num_sets)
        ]
        self.hits = 0
        self.misses = 0

    @property
    def latency(self) -> int:
        return self.config.latency

    def _set_for(self, key: Tuple[int, int]) -> Dict[Tuple[int, int], None]:
        level, node = key
        return self._sets[(node * 7 + level) % self._num_sets]

    def lookup(self, key: Tuple[int, int]) -> bool:
        s = self._set_for(key)
        if key in s:
            del s[key]
            s[key] = None
            self.hits += 1
            return True
        self.misses += 1
        return False

    def insert(self, key: Tuple[int, int]) -> None:
        s = self._set_for(key)
        if key in s:
            del s[key]
        elif len(s) >= self._assoc:
            s.pop(next(iter(s)))
        s[key] = None

    def flush(self) -> None:
        for s in self._sets:
            s.clear()

    def occupancy(self) -> int:
        return sum(len(s) for s in self._sets)
