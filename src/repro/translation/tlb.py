"""Set-associative TLB with per-set LRU replacement.

Used for both the per-SM private L1 TLBs (128-entry, 1-cycle) and the shared
L2 TLB (512-entry, 16-way, 10-cycle) of Table I.  Python dicts preserve
insertion order, so per-set LRU is a pop-and-reinsert on hit.
"""

from __future__ import annotations

from typing import Dict, List

from ..config import TLBConfig

__all__ = ["TLB"]


class TLB:
    """A set-associative translation lookaside buffer."""

    __slots__ = ("config", "_sets", "_num_sets", "_assoc", "hits", "misses")

    def __init__(self, config: TLBConfig):
        self.config = config
        self._num_sets = config.num_sets
        self._assoc = config.associativity
        # Each set is an insertion-ordered dict vpn -> None; oldest = LRU.
        self._sets: List[Dict[int, None]] = [{} for _ in range(self._num_sets)]
        self.hits = 0
        self.misses = 0

    @property
    def hit_latency(self) -> int:
        return self.config.hit_latency

    def lookup(self, vpn: int) -> bool:
        """Probe for ``vpn``; refreshes LRU order on hit."""
        s = self._sets[vpn % self._num_sets]
        if vpn in s:
            # Move to MRU (end of the ordered dict).
            del s[vpn]
            s[vpn] = None
            self.hits += 1
            return True
        self.misses += 1
        return False

    def insert(self, vpn: int) -> None:
        """Fill ``vpn``, evicting the set's LRU entry if needed."""
        s = self._sets[vpn % self._num_sets]
        if vpn in s:
            del s[vpn]
        elif len(s) >= self._assoc:
            # Oldest inserted key is the LRU victim.
            s.pop(next(iter(s)))
        s[vpn] = None

    def invalidate(self, vpn: int) -> bool:
        """Shoot down ``vpn``; returns True if it was present."""
        s = self._sets[vpn % self._num_sets]
        if vpn in s:
            del s[vpn]
            return True
        return False

    def flush(self) -> None:
        for s in self._sets:
            s.clear()

    def occupancy(self) -> int:
        return sum(len(s) for s in self._sets)

    def __contains__(self, vpn: int) -> bool:
        return vpn in self._sets[vpn % self._num_sets]
