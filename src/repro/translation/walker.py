"""Highly-threaded page table walker.

Supports ``concurrent_walks`` simultaneous walks (64 in Table I).  Walk
latency is the page-walk-cache probe plus one memory access per page-table
level that must actually be fetched; the PWC caches the non-leaf levels, so
the deepest cached level determines where the walk (re)starts.

Concurrency is modelled with a reservation heap of walk finish times: a walk
issued while all walker threads are busy is delayed until the earliest
running walk retires.  This keeps the walker off the event queue (walks are
charged inline on the SM's access path) while still producing queueing delay
under bursts of TLB misses.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Tuple

from ..config import WalkerConfig
from ..memsim.dram import DRAMModel
from ..memsim.page_table import PageTable
from .page_walk_cache import PageWalkCache

__all__ = ["PageTableWalker"]


class PageTableWalker:
    """Threaded walker over a radix page table with a shared walk cache.

    With a :class:`~repro.memsim.dram.DRAMModel` attached, each page-table
    level fetched from memory goes through the GDDR5 channel model instead
    of the flat ``memory_access_latency`` constant.
    """

    def __init__(self, config: WalkerConfig, page_table: PageTable,
                 pwc: PageWalkCache, dram: Optional[DRAMModel] = None):
        self.config = config
        self.page_table = page_table
        self.pwc = pwc
        self.dram = dram
        self._busy_until: List[int] = []  # min-heap of walk finish times
        self.walks = 0
        self.total_walk_cycles = 0
        self.total_queue_delay = 0

    def walk(self, vpn: int, time: int) -> Tuple[int, bool]:
        """Perform a walk for ``vpn`` starting at ``time``.

        Returns ``(latency_cycles, resident)``.  ``latency_cycles`` includes
        any queueing delay waiting for a free walker thread.  ``resident`` is
        False when the leaf PTE is absent — a far fault.
        """
        self.walks += 1

        # Queueing: reclaim finished walks, then wait for a slot if saturated.
        busy = self._busy_until
        while busy and busy[0] <= time:
            heapq.heappop(busy)
        queue_delay = 0
        if len(busy) >= self.config.concurrent_walks:
            earliest = heapq.heappop(busy)
            queue_delay = earliest - time
        start = time + queue_delay

        keys = self.page_table.node_keys(vpn)
        levels = self.config.levels
        # Find the deepest cached non-leaf level; the walk resumes below it.
        deepest_cached = -1
        for level in range(levels - 2, -1, -1):
            if self.pwc.lookup(keys[level]):
                deepest_cached = level
                break
        # Fetch every level below the deepest cached one (leaf included).
        latency = self.pwc.latency
        if self.dram is not None:
            fetch_time = start + latency
            for level in range(deepest_cached + 1, levels):
                # 8-byte PTEs: the node id gives the table's base "address".
                address = keys[level][1] * 8
                step = self.dram.read(address, fetch_time)
                latency += step
                fetch_time += step
        else:
            fetched_levels = levels - 1 - deepest_cached
            latency += fetched_levels * self.config.memory_access_latency
        # Install the interior nodes this walk brought in.
        for level in range(deepest_cached + 1, levels - 1):
            self.pwc.insert(keys[level])

        finish = start + latency
        heapq.heappush(busy, finish)
        self.total_walk_cycles += latency
        self.total_queue_delay += queue_delay
        resident = self.page_table.is_resident(vpn)
        return queue_delay + latency, resident
