"""Address translation substrate: TLBs, page walk cache, walker (Fig. 1)."""

from .tlb import TLB
from .page_walk_cache import PageWalkCache
from .walker import PageTableWalker
from .hierarchy import TranslationHierarchy

__all__ = ["TLB", "PageWalkCache", "PageTableWalker", "TranslationHierarchy"]
