"""The complete translation path of Fig. 1.

Per-SM private L1 TLBs backed by a shared L2 TLB, a shared page walk cache,
and a highly-threaded page table walker.  ``translate`` charges the latency
of the access path and reports whether the page is resident; a non-resident
outcome is a far fault (handled by the GMMU, not here).

On eviction the GMMU calls :meth:`shootdown` to invalidate stale entries in
every TLB (the unmap side of migrating a page back to the host).
"""

from __future__ import annotations

from typing import List, Tuple

from ..config import TranslationConfig
from ..engine.stats import SimStats
from ..memsim.dram import DRAMModel
from ..memsim.page_table import PageTable
from .page_walk_cache import PageWalkCache
from .tlb import TLB
from .walker import PageTableWalker

__all__ = ["TranslationHierarchy"]


class TranslationHierarchy:
    """L1 TLBs (per SM) -> shared L2 TLB -> walker (PWC + page table)."""

    def __init__(self, config: TranslationConfig, num_sms: int,
                 page_table: PageTable, stats: SimStats):
        self.config = config
        self.stats = stats
        self.page_table = page_table
        self.l1_tlbs: List[TLB] = [TLB(config.l1) for _ in range(num_sms)]
        self.l2_tlb = TLB(config.l2)
        self.pwc = PageWalkCache(config.pwc)
        self.dram = DRAMModel() if config.use_dram_model else None
        self.walker = PageTableWalker(
            config.walker, page_table, self.pwc, dram=self.dram
        )

    def translate(self, sm_id: int, vpn: int, time: int) -> Tuple[int, bool]:
        """Translate ``vpn`` for SM ``sm_id`` at ``time``.

        Returns ``(latency_cycles, resident)``.  TLB fills happen only for
        resident pages (a faulting walk installs nothing — the page has no
        mapping yet).
        """
        stats = self.stats
        if not self.config.enabled:
            return 0, self.page_table.is_resident(vpn)

        l1 = self.l1_tlbs[sm_id]
        if l1.lookup(vpn):
            stats.l1_tlb_hits += 1
            return l1.hit_latency, True
        stats.l1_tlb_misses += 1
        latency = l1.hit_latency

        if self.l2_tlb.lookup(vpn):
            stats.l2_tlb_hits += 1
            latency += self.l2_tlb.hit_latency
            l1.insert(vpn)
            return latency, True
        stats.l2_tlb_misses += 1
        latency += self.l2_tlb.hit_latency

        walk_latency, resident = self.walker.walk(vpn, time + latency)
        stats.page_walks += 1
        latency += walk_latency
        if resident:
            l1.insert(vpn)
            self.l2_tlb.insert(vpn)
        return latency, resident

    def fill(self, sm_id: int, vpn: int) -> None:
        """Install a translation after a fault replay.

        The replayed access goes back through the translation path in real
        hardware; the walk's latency is already covered by the fault service
        time, so only the fills are modelled.
        """
        self.l1_tlbs[sm_id].insert(vpn)
        self.l2_tlb.insert(vpn)

    def shootdown(self, vpn: int) -> None:
        """Invalidate ``vpn`` everywhere (page is being evicted)."""
        hit = False
        for l1 in self.l1_tlbs:
            hit |= l1.invalidate(vpn)
        hit |= self.l2_tlb.invalidate(vpn)
        if hit:
            self.stats.tlb_shootdowns += 1

    def sync_counter_stats(self) -> None:
        """Copy component hit/miss counters into the shared stats bag.

        The per-access counters are already incremented in ``translate``;
        this copies the PWC counters, which are only tracked locally.
        """
        self.stats.pwc_hits = self.pwc.hits
        self.stats.pwc_misses = self.pwc.misses
        self.stats.walker_queue_delay_cycles = self.walker.total_queue_delay
