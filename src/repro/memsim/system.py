"""The staged memory-system pipeline (GMMU + host-side UVM runtime).

What used to be one god-object (``memsim.gmmu.GMMU``) is four explicit
stages behind the :class:`MemorySystem` facade::

    SM far fault
        │
    FaultFrontend        intake, duplicate merge into in-flight migrations
        │ queued
    MigrationScheduler   batch formation (prefetcher consult), service
        │                slots, PCIe charging, migration completion
        ├─► EvictionService   victim selection, unmap + TLB shootdown +
        │                     writeback, the CPPE coordination hook
        └─► IntervalClock     64-migrated-pages interval geometry,
                              per-interval policy telemetry

Stages communicate through narrow seams (the frontend's coverage map, the
shared :class:`FrameLedger`, the clock's ``current_interval``), never by
reaching into each other's internals — which is what makes multiple
:class:`MemorySystem` instances on one event queue (multi-GPU scenarios,
see ``repro.engine.multi``) expressible.

The decomposition is behavior-preserving: ``tests/test_system_differential.py``
proves byte-identical results and traces against the pre-refactor monolith.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Set

from ..config import SimConfig, UVMConfig
from ..engine.events import EventQueue
from ..engine.stats import IntervalRecord, SimStats
from ..errors import SimulationError, ThrashingCrash
from ..obs import DISABLED, Observability
from ..policies.base import EvictionPolicy, PolicyContext
from ..prefetch.base import PrefetchContext, Prefetcher
from ..translation.hierarchy import TranslationHierarchy
from .chunk_chain import ChunkChain, ChunkEntry
from .device_memory import DeviceMemory
from .fault import FarFault, InFlightMigration
from .page_table import PageTable
from .pcie import PCIeLink

__all__ = [
    "FrameLedger",
    "IntervalClock",
    "FaultFrontend",
    "EvictionService",
    "MigrationScheduler",
    "MemorySystem",
]


class FrameLedger:
    """Frame-reservation accounting shared by the scheduler and the evictor.

    The scheduler reserves frames for pages it has put in flight; the
    eviction service must not count those as free when deciding whether a
    batch still fits.  This tiny shared object is the only capacity state
    the two stages exchange.
    """

    __slots__ = ("_device", "_pages_per_chunk", "reserved")

    def __init__(self, device: DeviceMemory, pages_per_chunk: int) -> None:
        self._device = device
        self._pages_per_chunk = pages_per_chunk
        #: Frames promised to in-flight migrations but not yet allocated.
        self.reserved = 0

    @property
    def free_unreserved(self) -> int:
        """Free frames not already promised to an in-flight migration."""
        return self._device.free_frames - self.reserved

    @property
    def memory_full(self) -> bool:
        """True once a whole chunk no longer fits without eviction."""
        return self.free_unreserved < self._pages_per_chunk


class IntervalClock:
    """Stage: interval geometry (one interval per 64 migrated pages).

    Counts migrated pages, faults and evictions per interval, and on each
    boundary builds the :class:`IntervalRecord` that drives the policies'
    adaptation (Tables III/IV telemetry) — implementing the
    :class:`repro.policies.base.IntervalSource` protocol policies read.
    """

    def __init__(
        self,
        uvm: UVMConfig,
        stats: SimStats,
        policy: EvictionPolicy,
        pcie: PCIeLink,
        obs: Observability,
    ) -> None:
        self.uvm = uvm
        self.stats = stats
        self.policy = policy
        self.pcie = pcie
        self.obs = obs
        self._trace = obs.tracer
        self._pages_migrated = 0
        self._interval_index = 0
        self._interval_faults = 0
        self._interval_evictions = 0

    @property
    def current_interval(self) -> int:
        return self._interval_index

    @property
    def pages_migrated(self) -> int:
        return self._pages_migrated

    def note_fault(self) -> None:
        self._interval_faults += 1

    def note_eviction(self) -> None:
        self._interval_evictions += 1

    def advance(self, migrated_pages: int, time: int) -> None:
        """Credit migrated pages; tick every interval boundary crossed.

        A single batch can straddle a boundary (or several), so this loops:
        each completed interval gets its own record and policy callback.
        """
        self._pages_migrated += migrated_pages
        while self._pages_migrated >= (self._interval_index + 1) * self.uvm.interval_pages:
            record = IntervalRecord(
                index=self._interval_index,
                end_time=time,
                faults=self._interval_faults,
                chunks_evicted=self._interval_evictions,
            )
            self.policy.on_interval_end(record, time)
            self.stats.record_interval(record)
            if self._trace.enabled:
                # The policy filled the strategy/distance/untouch fields in
                # ``record`` above; pattern occupancy comes from the metrics
                # registry (cross-component read, 0 when no pattern buffer).
                self._trace.emit(
                    "interval", time,
                    index=record.index,
                    strategy=record.strategy,
                    forward_distance=record.forward_distance,
                    untouch_level=record.untouch_total,
                    wrong_evictions=record.wrong_evictions,
                    faults=record.faults,
                    chunks_evicted=record.chunks_evicted,
                    pattern_occupancy=self.obs.metrics.value(
                        "pattern.occupancy"
                    ),
                    bytes_h2d=self.pcie.bytes_to_device,
                    bytes_d2h=self.pcie.bytes_to_host,
                )
            self._interval_index += 1
            self._interval_faults = 0
            self._interval_evictions = 0


class FaultFrontend:
    """Stage: far-fault intake and duplicate merging.

    Owns the pending-fault queue and the coverage map (vpn → in-flight
    migration).  A fault whose page is already on its way merges into that
    migration (the replayable far-fault hardware of [9]); everything else
    queues for the scheduler.
    """

    def __init__(
        self,
        uvm: UVMConfig,
        stats: SimStats,
        policy: EvictionPolicy,
        clock: IntervalClock,
        obs: Observability,
    ) -> None:
        self.uvm = uvm
        self.stats = stats
        self.policy = policy
        self.clock = clock
        self._trace = obs.tracer
        self.pending: Deque[FarFault] = deque()
        #: vpn -> the in-flight migration that will install it.
        self.covered: Dict[int, InFlightMigration] = {}
        metrics = obs.metrics
        self._m_faults = metrics.counter("gmmu.far_faults")
        self._m_merged = metrics.counter("gmmu.merged_faults")

    def covering(self, vpn: int) -> Optional[InFlightMigration]:
        return self.covered.get(vpn)

    def cover(self, vpn: int, mig: InFlightMigration) -> None:
        self.covered[vpn] = mig

    def uncover(self, vpn: int) -> None:
        self.covered.pop(vpn, None)

    def note_merged(self) -> None:
        """Account one merged (deduplicated) fault."""
        self.stats.merged_faults += 1
        self._m_merged.inc()

    def merge(self, fault: FarFault, mig: InFlightMigration) -> None:
        """Attach ``fault`` to an in-flight migration that covers its page."""
        mig.attach(fault)
        self.note_merged()

    def intake(self, fault: FarFault) -> bool:
        """Accept one far fault; returns True when it was queued (i.e. the
        scheduler should pump) and False when it merged in flight."""
        self.stats.far_faults += 1
        self.clock.note_fault()
        self._m_faults.inc()
        ppc = self.uvm.pages_per_chunk
        self.policy.on_fault(fault.vpn, fault.vpn // ppc, fault.time)
        if self._trace.enabled:
            self._trace.emit(
                "fault", fault.time, chunk=fault.vpn // ppc,
                **fault.trace_args(),
            )

        covering = self.covered.get(fault.vpn)
        if covering is not None:
            # The page is already on its way: merge.
            self.merge(fault, covering)
            return False
        self.pending.append(fault)
        return True


class EvictionService:
    """Stage: victim selection and chunk retirement.

    Asks the policy for victims when a batch does not fit, unmaps their
    pages (TLB shootdown + writeback accounting), and feeds each evicted
    chunk's touch pattern back to the policy and the prefetcher — the CPPE
    coordination point (``on_chunk_evicted``).
    """

    def __init__(
        self,
        uvm: UVMConfig,
        device: DeviceMemory,
        page_table: PageTable,
        chain: ChunkChain,
        pcie: PCIeLink,
        ledger: FrameLedger,
        policy: EvictionPolicy,
        prefetcher: Prefetcher,
        translation: Optional[TranslationHierarchy],
        stats: SimStats,
        clock: IntervalClock,
        obs: Observability,
        footprint_pages: Optional[int],
    ) -> None:
        self.uvm = uvm
        self.device = device
        self.page_table = page_table
        self.chain = chain
        self.pcie = pcie
        self.ledger = ledger
        self.policy = policy
        self.prefetcher = prefetcher
        self.translation = translation
        self.stats = stats
        self.clock = clock
        self._trace = obs.tracer
        self._memory_full_seen = False
        self._footprint_pages = footprint_pages
        self._m_evictions = obs.metrics.counter("gmmu.chunks_evicted")

    def ensure_capacity(self, frames_needed: int, time: int) -> int:
        """Evict chunks until ``frames_needed`` frames are free.

        Returns the number of victim chunks evicted."""
        if self.ledger.free_unreserved >= frames_needed:
            return 0
        if not self._memory_full_seen:
            self._memory_full_seen = True
            if self._trace.enabled:
                self._trace.emit(
                    "memory_full", time, chain_length=len(self.chain),
                    capacity_frames=self.device.capacity,
                )
            self.policy.on_memory_full(time)
        shortfall = frames_needed - self.ledger.free_unreserved
        victims = self.policy.select_victims(shortfall, time)
        for entry in victims:
            self.evict_chunk(entry, time)
        if self.ledger.free_unreserved < frames_needed:
            raise SimulationError(
                f"policy {self.policy.name} freed "
                f"{self.ledger.free_unreserved} frames of the {frames_needed} "
                "needed — select_victims violated its contract"
            )
        return len(victims)

    def evict_chunk(self, entry: ChunkEntry, time: int) -> None:
        """Unmap every resident page of ``entry`` and retire its metadata."""
        ppc = self.uvm.pages_per_chunk
        base = entry.chunk_id * ppc
        dirty_pages = 0
        evicted_pages = 0
        for i in range(ppc):
            if not entry.is_resident(i):
                continue
            vpn = base + i
            frame, accessed, dirty = self.page_table.unmap(vpn)
            self.device.free(frame)
            if self.translation is not None:
                self.translation.shootdown(vpn)
            if dirty:
                dirty_pages += 1
            evicted_pages += 1
            entry.clear_resident(i)
        # Residency cleared above, so untouch accounting reads the masks as
        # they stood at unmap time via the snapshot below.
        self.chain.remove(entry.chunk_id)
        self.stats.chunks_evicted += 1
        self.stats.pages_evicted += evicted_pages
        self.stats.dirty_pages_written_back += dirty_pages
        self.clock.note_eviction()
        self._m_evictions.inc()
        if dirty_pages:
            # Writebacks ride the duplex link: bytes counted, latency not on
            # the fault-service critical path (see DESIGN.md).
            self.pcie.transfer_to_host(dirty_pages, time=time)
            self.stats.bytes_device_to_host = self.pcie.bytes_to_host
        # Prefetch accuracy accounting.
        touched_prefetched = bin(entry.prefetch_mask & entry.touched_mask).count("1")
        self.stats.prefetched_pages_touched += touched_prefetched

        # Untouch level must reflect what was migrated, so give the policy a
        # snapshot with residency restored.  Every migrated page is either a
        # prefetched page (prefetch_mask) or a demand page, and demand pages
        # are touched on fault replay before any later eviction can run, so
        # touched|prefetch is exactly the pre-eviction residency.
        snapshot = ChunkEntry(entry.chunk_id, entry.insert_interval)
        snapshot.resident_mask = entry.touched_mask | entry.prefetch_mask
        snapshot.touched_mask = entry.touched_mask
        snapshot.prefetch_mask = entry.prefetch_mask
        snapshot.counter = entry.counter
        if self._trace.enabled:
            self._trace.emit(
                "eviction", time, chunk=entry.chunk_id, pages=evicted_pages,
                dirty=dirty_pages, untouch=snapshot.untouch_level(),
                strategy=self.policy.current_strategy,
            )
        self.policy.on_chunk_evicted(snapshot, time)
        self.prefetcher.on_chunk_evicted(
            entry.chunk_id,
            entry.touched_mask,
            snapshot.untouch_level(),
            self.policy.current_strategy,
            time=time,
        )
        self._check_crash_budget()

    def _check_crash_budget(self) -> None:
        factor = self.uvm.crash_eviction_budget_factor
        if factor is None or self._footprint_pages is None:
            return
        footprint_chunks = max(1, self._footprint_pages // self.uvm.pages_per_chunk)
        budget = int(factor * footprint_chunks)
        if self.stats.chunks_evicted > budget:
            raise ThrashingCrash(self.stats.chunks_evicted, budget)


class MigrationScheduler:
    """Stage: the fault-service loop.

    Runs a (configurably parallel, default serial) set of service slots:
    each service op consults the prefetcher for the page batch, asks the
    eviction service to make room, charges the 20 µs service latency plus
    PCIe transfer time, and — on completion — installs the pages, wakes the
    merged faults, and credits the interval clock.
    """

    def __init__(
        self,
        uvm: UVMConfig,
        device: DeviceMemory,
        page_table: PageTable,
        chain: ChunkChain,
        pcie: PCIeLink,
        events: EventQueue,
        stats: SimStats,
        ledger: FrameLedger,
        frontend: FaultFrontend,
        evictor: EvictionService,
        clock: IntervalClock,
        policy: EvictionPolicy,
        prefetcher: Prefetcher,
        obs: Observability,
    ) -> None:
        self.uvm = uvm
        self.device = device
        self.page_table = page_table
        self.chain = chain
        self.pcie = pcie
        self.events = events
        self.stats = stats
        self.ledger = ledger
        self.frontend = frontend
        self.evictor = evictor
        self.clock = clock
        self.policy = policy
        self.prefetcher = prefetcher
        self._trace = obs.tracer
        self.in_flight: Dict[int, InFlightMigration] = {}  # keyed by mig.token
        self._next_migration_token = 0
        self._active_services = 0
        self._h_batch = obs.metrics.histogram("gmmu.batch_pages")

    # ------------------------------------------------------- service loop

    def pump(self, time: int) -> None:
        """Fill free service slots from the frontend's pending queue."""
        while (
            self._active_services < self.uvm.fault_parallelism
            and self.frontend.pending
        ):
            fault = self.frontend.pending.popleft()
            if not self.begin_service(fault, time):
                continue

    def max_batch(self) -> int:
        """Largest allowed migration batch.

        Clamps aggressive prefetchers (the tree prefetcher can request a
        whole 2 MB region) to half of device memory: the driver never
        evicts the working set wholesale to make room for a prefetch.
        """
        return max(self.uvm.pages_per_chunk, self.device.capacity // 2)

    def _gather_pages(
        self, fault: FarFault, in_batch: Set[int]
    ) -> Optional[List[int]]:
        """Consult the prefetcher for ``fault``; returns the page batch or
        None when the fault needs no migration of its own.

        ``in_batch`` holds pages already claimed by the service op being
        assembled; those are skipped like resident/in-flight pages and, when
        the demand page itself is among them, the fault simply joins the op.
        """
        if self.frontend.covering(fault.vpn) is not None or fault.vpn in in_batch:
            return None
        resident = self.page_table.is_resident
        covered = self.frontend.covered
        skip: Callable[[int], bool] = (
            lambda vpn: resident(vpn) or vpn in covered or vpn in in_batch
        )
        pages = self.prefetcher.pages_to_migrate(
            fault.vpn, self.ledger.memory_full, skip, time=fault.time
        )
        if not pages or fault.vpn not in pages:
            raise SimulationError(
                f"prefetcher {self.prefetcher.name} did not include the "
                f"demand page {fault.vpn}"
            )
        max_batch = self.max_batch()
        if len(pages) > max_batch:
            # Prefetchers order the demand page first, so truncation keeps it.
            pages = pages[:max_batch]
        return pages

    def begin_service(self, fault: FarFault, time: int) -> bool:
        """Start one fault-service op.  Returns False if the fault resolved
        without a new migration (page arrived while it was queued).

        With ``fault_batch_size > 1`` the op drains further pending faults
        from the buffer, amortising the base service latency across chunks
        (UVM batch processing; the paper's configuration services one fault
        group per op).
        """
        if self.page_table.is_resident(fault.vpn):
            fault.on_resolve(time)
            return False
        covering = self.frontend.covering(fault.vpn)
        if covering is not None:
            self.frontend.merge(fault, covering)
            return False

        in_batch: Set[int] = set()
        pages = self._gather_pages(fault, in_batch)
        assert pages is not None  # neither covered nor in an empty batch
        batch_faults = [fault]
        batch_pages: List[int] = list(pages)
        in_batch.update(pages)

        budget = self.uvm.fault_batch_size - 1
        max_total = self.max_batch()
        pending = self.frontend.pending
        while budget > 0 and pending and len(batch_pages) < max_total:
            nxt = pending[0]
            if self.page_table.is_resident(nxt.vpn):
                pending.popleft()
                nxt.on_resolve(time)
                continue
            extra = self._gather_pages(nxt, in_batch)
            if extra is None:
                # Covered by an in-flight migration or by this very batch.
                pending.popleft()
                if nxt.vpn in in_batch:
                    batch_faults.append(nxt)
                    self.frontend.note_merged()
                else:
                    covering = self.frontend.covered[nxt.vpn]
                    self.frontend.merge(nxt, covering)
                continue
            if len(batch_pages) + len(extra) > max_total:
                break
            pending.popleft()
            batch_faults.append(nxt)
            batch_pages.extend(extra)
            in_batch.update(extra)
            budget -= 1

        victims_evicted = self.evictor.ensure_capacity(len(batch_pages), time)
        self.ledger.reserved += len(batch_pages)

        mig = InFlightMigration(
            chunk_id=fault.vpn // self.uvm.pages_per_chunk,
            pages=set(batch_pages),
            start_time=time,
            token=self._next_migration_token,
        )
        self._next_migration_token += 1
        for f in batch_faults:
            mig.attach(f)
        for vpn in batch_pages:
            self.frontend.cover(vpn, mig)
        self.in_flight[mig.token] = mig
        self._active_services += 1

        self._h_batch.observe(len(batch_pages))
        transfer = self.pcie.transfer_to_device(len(batch_pages), time=time)
        latency = (
            self.uvm.fault_latency_cycles
            + transfer
            + victims_evicted * self.uvm.eviction_overhead_cycles
        )
        mig.finish_time = time + latency
        self.stats.fault_service_ops += 1
        self.stats.bytes_host_to_device = self.pcie.bytes_to_device
        self.events.schedule(
            mig.finish_time, lambda t, m=mig: self.complete_migration(m, t)
        )
        return True

    # ----------------------------------------------------- migration finish

    def complete_migration(self, mig: InFlightMigration, time: int) -> None:
        ppc = self.uvm.pages_per_chunk
        demand_vpns = {f.vpn for f in mig.faults}
        # Group pages by chunk (pattern prefetch stays within one chunk, but
        # the tree prefetcher can cross chunks).
        by_chunk: Dict[int, List[int]] = {}
        for vpn in sorted(mig.pages):
            by_chunk.setdefault(vpn // ppc, []).append(vpn)

        for chunk_id, vpns in by_chunk.items():
            entry = self.chain.get(chunk_id)
            is_new = entry is None
            if entry is None:
                entry = ChunkEntry(chunk_id, self.clock.current_interval)
            for vpn in vpns:
                frame = self.device.allocate()
                self.page_table.map(vpn, frame)
                idx = vpn % ppc
                entry.mark_resident(idx)
                if vpn in demand_vpns:
                    self.stats.demand_pages += 1
                else:
                    entry.prefetch_mask |= 1 << idx
                    self.stats.prefetched_pages += 1
                self.frontend.uncover(vpn)
            # HPE-style counter pollution: migration bumps the counter by the
            # number of pages migrated (Inefficiency 1 of the paper).
            entry.counter = min(16, entry.counter + len(vpns))
            if is_new:
                self.policy.insert_chunk(entry, time)

        migrated = len(mig.pages)
        self.ledger.reserved -= migrated
        self.stats.pages_migrated += migrated
        if self._trace.enabled:
            # Chrome duration slice: anchored at the start, dur in cycles
            # (the exporter converts both to microseconds).
            self._trace.emit(
                "migration", mig.start_time, dur=time - mig.start_time,
                demand=len(mig.faults), **mig.trace_args(),
            )
        self.clock.advance(migrated, time)

        del self.in_flight[mig.token]
        self._active_services -= 1
        for fault in mig.faults:
            fault.on_resolve(time)
        self.stats.chain_length_peak = self.chain.length_peak
        self.pump(time)


class MemorySystem:
    """Facade: the staged unified-memory runtime for one simulated GPU.

    Owns the shared mechanism structures (device memory, page table, chunk
    chain, PCIe link, RNG) and wires the four stages together; SMs and the
    :class:`~repro.engine.simulator.Simulator` talk only to this surface.
    """

    def __init__(
        self,
        config: SimConfig,
        capacity_frames: int,
        events: EventQueue,
        stats: SimStats,
        policy: EvictionPolicy,
        prefetcher: Prefetcher,
        translation: Optional[TranslationHierarchy] = None,
        footprint_pages: Optional[int] = None,
        obs: Optional[Observability] = None,
    ):
        self.config = config
        self.uvm = config.uvm
        self.events = events
        self.stats = stats
        self.policy = policy
        self.prefetcher = prefetcher
        self.translation = translation
        self.obs = obs or DISABLED

        self.device = DeviceMemory(capacity_frames)
        self._page_table = (
            translation.page_table if translation is not None
            else PageTable(config.translation.walker.levels)
        )
        self.chain = ChunkChain()
        self.pcie = PCIeLink(
            self.uvm.interconnect_gbps, self.uvm.clock_hz, self.uvm.page_size,
            obs=self.obs,
        )
        #: The injected mechanism RNG stream (seeded in SimConfig, never
        #: constructed here — REPRO106).
        self.rng: random.Random = config.make_rng()

        self.ledger = FrameLedger(self.device, self.uvm.pages_per_chunk)
        self.clock = IntervalClock(
            self.uvm, stats, policy, self.pcie, self.obs
        )
        self.frontend = FaultFrontend(
            self.uvm, stats, policy, self.clock, self.obs
        )
        self.evictor = EvictionService(
            self.uvm, self.device, self._page_table, self.chain, self.pcie,
            self.ledger, policy, prefetcher, translation, stats, self.clock,
            self.obs, footprint_pages,
        )
        self.scheduler = MigrationScheduler(
            self.uvm, self.device, self._page_table, self.chain, self.pcie,
            events, stats, self.ledger, self.frontend, self.evictor,
            self.clock, policy, prefetcher, self.obs,
        )

        policy.attach(
            PolicyContext(
                chain=self.chain,
                stats=stats,
                config=config,
                rng=self.rng,
                clock=self.clock,
                obs=self.obs,
            )
        )
        prefetcher.attach(
            PrefetchContext(config=config, stats=stats, obs=self.obs)
        )

    # ------------------------------------------------------------------ API

    @property
    def page_table(self) -> PageTable:
        return self._page_table

    @page_table.setter
    def page_table(self, page_table: PageTable) -> None:
        """Rebind the page table on every stage (single source of truth —
        the Simulator installs its own table when translation is off)."""
        self._page_table = page_table
        self.evictor.page_table = page_table
        self.scheduler.page_table = page_table

    @property
    def current_interval(self) -> int:
        return self.clock.current_interval

    @property
    def memory_full(self) -> bool:
        """True once a whole chunk no longer fits without eviction."""
        return self.ledger.memory_full

    def is_resident(self, vpn: int) -> bool:
        return self._page_table.is_resident(vpn)

    def touch_page(self, sm_id: int, vpn: int, is_write: bool, time: int) -> None:
        """Record a successful access to a resident page."""
        self._page_table.record_access(vpn, is_write)
        ppc = self.uvm.pages_per_chunk
        entry = self.chain.get(vpn // ppc)
        if entry is None:
            raise SimulationError(f"resident vpn {vpn} has no chunk entry")
        entry.mark_touched(vpn % ppc)
        self.policy.on_page_touched(entry, vpn, time)

    def handle_fault(self, fault: FarFault) -> None:
        """Entry point for an SM's far fault."""
        if self.frontend.intake(fault):
            self.scheduler.pump(fault.time)

    # ------------------------------------------------------------- reporting

    def drain_check(self) -> None:
        """Assert no faults are stuck at end of simulation."""
        if self.frontend.pending or self.scheduler.in_flight:
            raise SimulationError(
                f"simulation ended with {len(self.frontend.pending)} pending "
                f"and {len(self.scheduler.in_flight)} in-flight migrations"
            )
