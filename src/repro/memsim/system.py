"""The staged memory-system pipeline (GMMU + host-side UVM runtime).

What used to be one god-object (``memsim.gmmu.GMMU``) is four explicit
stages behind the :class:`MemorySystem` facade::

    SM far fault
        │
    FaultFrontend        intake, duplicate merge into in-flight migrations
        │ queued
    MigrationScheduler   batch formation (prefetcher consult), service
        │                slots, PCIe charging, migration completion
        ├─► EvictionService   victim selection, unmap + TLB shootdown +
        │                     writeback, the CPPE coordination hook
        └─► IntervalClock     64-migrated-pages interval geometry,
                              per-interval policy telemetry

Stages communicate through narrow seams (the frontend's coverage map, the
shared :class:`FrameLedger`, the clock's ``current_interval``), never by
reaching into each other's internals — which is what makes multiple
:class:`MemorySystem` instances on one event queue (multi-GPU scenarios,
see ``repro.engine.multi``) expressible.

The decomposition is behavior-preserving: ``tests/test_system_differential.py``
proves byte-identical results and traces against the pre-refactor monolith.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Deque, Dict, List, Optional, Set

from ..config import SimConfig, UVMConfig
from ..engine.events import EventQueue
from ..engine.stats import IntervalRecord, SimStats
from ..errors import CapacityError, SimulationError, ThrashingCrash
from ..obs import DISABLED, Observability
from ..policies.base import EvictionPolicy, PolicyContext
from ..policies.hpe import HPEPolicy
from ..policies.lru import LRUPolicy
from ..policies.mhpe import MHPEPolicy
from ..policies.random_policy import RandomPolicy
from ..policies.reserved_lru import ReservedLRUPolicy
from ..prefetch.base import PrefetchContext, Prefetcher
from ..translation.hierarchy import TranslationHierarchy
from .array_backend import ArrayChunkChain, ArrayCoverage, ArrayPageTable
from .chunk_chain import ChunkChain, ChunkEntry
from .device_memory import DeviceMemory
from .fault import FarFault, InFlightMigration
from .page_table import PageTable
from .pcie import PCIeLink

__all__ = [
    "FrameLedger",
    "IntervalClock",
    "FaultFrontend",
    "EvictionService",
    "MigrationScheduler",
    "MemorySystem",
    "policy_touch_kind",
]


def policy_touch_kind(policy: EvictionPolicy) -> Optional[str]:
    """Classify a policy's ``on_page_touched`` for the array fast path.

    Exact ``type()`` matches only: a subclass may override the hook, so it
    falls through to ``None`` (= call the hook dynamically).  The returned
    kind names the touch side-effect recipe the fast paths replay inline:

    * ``"lru"``  — move to tail, refresh ``last_ref_interval``;
    * ``"hpe"``  — saturating counter bump, move to tail, refresh;
    * ``"mhpe"`` — move at most once per interval, refresh on first touch;
    * ``"ref"``  — refresh ``last_ref_interval`` only.
    """
    ptype = type(policy)
    if ptype is LRUPolicy or ptype is ReservedLRUPolicy:
        return "lru"
    if ptype is HPEPolicy:
        return "hpe"
    if ptype is MHPEPolicy:
        return "mhpe"
    if ptype is RandomPolicy:
        return "ref"
    return None


class FrameLedger:
    """Frame-reservation accounting shared by the scheduler and the evictor.

    The scheduler reserves frames for pages it has put in flight; the
    eviction service must not count those as free when deciding whether a
    batch still fits.  This tiny shared object is the only capacity state
    the two stages exchange.
    """

    __slots__ = ("_device", "_pages_per_chunk", "reserved")

    def __init__(self, device: DeviceMemory, pages_per_chunk: int) -> None:
        self._device = device
        self._pages_per_chunk = pages_per_chunk
        #: Frames promised to in-flight migrations but not yet allocated.
        self.reserved = 0

    @property
    def free_unreserved(self) -> int:
        """Free frames not already promised to an in-flight migration."""
        return self._device.free_frames - self.reserved

    @property
    def memory_full(self) -> bool:
        """True once a whole chunk no longer fits without eviction."""
        return self.free_unreserved < self._pages_per_chunk


class IntervalClock:
    """Stage: interval geometry (one interval per 64 migrated pages).

    Counts migrated pages, faults and evictions per interval, and on each
    boundary builds the :class:`IntervalRecord` that drives the policies'
    adaptation (Tables III/IV telemetry) — implementing the
    :class:`repro.policies.base.IntervalSource` protocol policies read.
    """

    def __init__(
        self,
        uvm: UVMConfig,
        stats: SimStats,
        policy: EvictionPolicy,
        pcie: PCIeLink,
        obs: Observability,
    ) -> None:
        self.uvm = uvm
        self.stats = stats
        self.policy = policy
        self.pcie = pcie
        self.obs = obs
        self._trace = obs.tracer
        self._pages_migrated = 0
        self._interval_index = 0
        self._interval_faults = 0
        self._interval_evictions = 0

    @property
    def current_interval(self) -> int:
        return self._interval_index

    @property
    def pages_migrated(self) -> int:
        return self._pages_migrated

    def note_fault(self) -> None:
        self._interval_faults += 1

    def note_eviction(self) -> None:
        self._interval_evictions += 1

    def advance(self, migrated_pages: int, time: int) -> None:
        """Credit migrated pages; tick every interval boundary crossed.

        A single batch can straddle a boundary (or several), so this loops:
        each completed interval gets its own record and policy callback.
        The number of crossings is computed arithmetically up front (the
        vectorized form of the old per-boundary comparison loop); the loop
        body runs once per completed interval, as before.
        """
        self._pages_migrated += migrated_pages
        crossings = (
            self._pages_migrated // self.uvm.interval_pages - self._interval_index
        )
        for _ in range(crossings):
            record = IntervalRecord(
                index=self._interval_index,
                end_time=time,
                faults=self._interval_faults,
                chunks_evicted=self._interval_evictions,
            )
            self.policy.on_interval_end(record, time)
            self.stats.record_interval(record)
            if self._trace.enabled:
                # The policy filled the strategy/distance/untouch fields in
                # ``record`` above; pattern occupancy comes from the metrics
                # registry (cross-component read, 0 when no pattern buffer).
                self._trace.emit(
                    "interval", time,
                    index=record.index,
                    strategy=record.strategy,
                    forward_distance=record.forward_distance,
                    untouch_level=record.untouch_total,
                    wrong_evictions=record.wrong_evictions,
                    faults=record.faults,
                    chunks_evicted=record.chunks_evicted,
                    pattern_occupancy=self.obs.metrics.value(
                        "pattern.occupancy"
                    ),
                    bytes_h2d=self.pcie.bytes_to_device,
                    bytes_d2h=self.pcie.bytes_to_host,
                )
            self._interval_index += 1
            self._interval_faults = 0
            self._interval_evictions = 0


class FaultFrontend:
    """Stage: far-fault intake and duplicate merging.

    Owns the pending-fault queue and the coverage map (vpn → in-flight
    migration).  A fault whose page is already on its way merges into that
    migration (the replayable far-fault hardware of [9]); everything else
    queues for the scheduler.
    """

    def __init__(
        self,
        uvm: UVMConfig,
        stats: SimStats,
        policy: EvictionPolicy,
        clock: IntervalClock,
        obs: Observability,
    ) -> None:
        self.uvm = uvm
        self.stats = stats
        self.policy = policy
        self.clock = clock
        self._trace = obs.tracer
        self.pending: Deque[FarFault] = deque()
        #: vpn -> the in-flight migration that will install it.
        self.covered: Dict[int, InFlightMigration] = {}
        metrics = obs.metrics
        self._m_faults = metrics.counter("gmmu.far_faults")
        self._m_merged = metrics.counter("gmmu.merged_faults")

    def covering(self, vpn: int) -> Optional[InFlightMigration]:
        return self.covered.get(vpn)

    def cover(self, vpn: int, mig: InFlightMigration) -> None:
        self.covered[vpn] = mig

    def uncover(self, vpn: int) -> None:
        self.covered.pop(vpn, None)

    def note_merged(self) -> None:
        """Account one merged (deduplicated) fault."""
        self.stats.merged_faults += 1
        self._m_merged.inc()

    def merge(self, fault: FarFault, mig: InFlightMigration) -> None:
        """Attach ``fault`` to an in-flight migration that covers its page."""
        mig.attach(fault)
        self.note_merged()

    def intake(self, fault: FarFault) -> bool:
        """Accept one far fault; returns True when it was queued (i.e. the
        scheduler should pump) and False when it merged in flight."""
        self.stats.far_faults += 1
        self.clock.note_fault()
        self._m_faults.inc()
        ppc = self.uvm.pages_per_chunk
        self.policy.on_fault(fault.vpn, fault.vpn // ppc, fault.time)
        if self._trace.enabled:
            self._trace.emit(
                "fault", fault.time, chunk=fault.vpn // ppc,
                **fault.trace_args(),
            )

        covering = self.covered.get(fault.vpn)
        if covering is not None:
            # The page is already on its way: merge.
            self.merge(fault, covering)
            return False
        self.pending.append(fault)
        return True


class EvictionService:
    """Stage: victim selection and chunk retirement.

    Asks the policy for victims when a batch does not fit, unmaps their
    pages (TLB shootdown + writeback accounting), and feeds each evicted
    chunk's touch pattern back to the policy and the prefetcher — the CPPE
    coordination point (``on_chunk_evicted``).
    """

    def __init__(
        self,
        uvm: UVMConfig,
        device: DeviceMemory,
        page_table: PageTable,
        chain: ChunkChain,
        pcie: PCIeLink,
        ledger: FrameLedger,
        policy: EvictionPolicy,
        prefetcher: Prefetcher,
        translation: Optional[TranslationHierarchy],
        stats: SimStats,
        clock: IntervalClock,
        obs: Observability,
        footprint_pages: Optional[int],
    ) -> None:
        self.uvm = uvm
        self.device = device
        self.page_table = page_table
        self.chain = chain
        self.pcie = pcie
        self.ledger = ledger
        self.policy = policy
        self.prefetcher = prefetcher
        self.translation = translation
        self.stats = stats
        self.clock = clock
        self._trace = obs.tracer
        self._memory_full_seen = False
        self._footprint_pages = footprint_pages
        self._m_evictions = obs.metrics.counter("gmmu.chunks_evicted")
        #: Maintained by MemorySystem (chain and page table must both be
        #: array-backed before the fused eviction path is safe).
        self._use_array = False

    def ensure_capacity(self, frames_needed: int, time: int) -> int:
        """Evict chunks until ``frames_needed`` frames are free.

        Returns the number of victim chunks evicted."""
        if self.ledger.free_unreserved >= frames_needed:
            return 0
        if not self._memory_full_seen:
            self._memory_full_seen = True
            if self._trace.enabled:
                self._trace.emit(
                    "memory_full", time, chain_length=len(self.chain),
                    capacity_frames=self.device.capacity,
                )
            self.policy.on_memory_full(time)
        shortfall = frames_needed - self.ledger.free_unreserved
        victims = self.policy.select_victims(shortfall, time)
        for entry in victims:
            self.evict_chunk(entry, time)
        if self.ledger.free_unreserved < frames_needed:
            raise SimulationError(
                f"policy {self.policy.name} freed "
                f"{self.ledger.free_unreserved} frames of the {frames_needed} "
                "needed — select_victims violated its contract"
            )
        return len(victims)

    def evict_chunk(self, entry: ChunkEntry, time: int) -> None:
        """Unmap every resident page of ``entry`` and retire its metadata."""
        if self._use_array:
            self._evict_chunk_array(entry, time)
            return
        ppc = self.uvm.pages_per_chunk
        base = entry.chunk_id * ppc
        dirty_pages = 0
        evicted_pages = 0
        for i in range(ppc):
            if not entry.is_resident(i):
                continue
            vpn = base + i
            frame, accessed, dirty = self.page_table.unmap(vpn)
            self.device.free(frame)
            if self.translation is not None:
                self.translation.shootdown(vpn)
            if dirty:
                dirty_pages += 1
            evicted_pages += 1
            entry.clear_resident(i)
        # Residency cleared above, so untouch accounting reads the masks as
        # they stood at unmap time via the snapshot below.
        self.chain.remove(entry.chunk_id)
        self.stats.chunks_evicted += 1
        self.stats.pages_evicted += evicted_pages
        self.stats.dirty_pages_written_back += dirty_pages
        self.clock.note_eviction()
        self._m_evictions.inc()
        if dirty_pages:
            # Writebacks ride the duplex link: bytes counted, latency not on
            # the fault-service critical path (see DESIGN.md).
            self.pcie.transfer_to_host(dirty_pages, time=time)
            self.stats.bytes_device_to_host = self.pcie.bytes_to_host
        # Prefetch accuracy accounting.
        touched_prefetched = bin(entry.prefetch_mask & entry.touched_mask).count("1")
        self.stats.prefetched_pages_touched += touched_prefetched

        # Untouch level must reflect what was migrated, so give the policy a
        # snapshot with residency restored.  Every migrated page is either a
        # prefetched page (prefetch_mask) or a demand page, and demand pages
        # are touched on fault replay before any later eviction can run, so
        # touched|prefetch is exactly the pre-eviction residency.
        snapshot = ChunkEntry(entry.chunk_id, entry.insert_interval)
        snapshot.resident_mask = entry.touched_mask | entry.prefetch_mask
        snapshot.touched_mask = entry.touched_mask
        snapshot.prefetch_mask = entry.prefetch_mask
        snapshot.counter = entry.counter
        if self._trace.enabled:
            self._trace.emit(
                "eviction", time, chunk=entry.chunk_id, pages=evicted_pages,
                dirty=dirty_pages, untouch=snapshot.untouch_level(),
                strategy=self.policy.current_strategy,
            )
        self.policy.on_chunk_evicted(snapshot, time)
        self.prefetcher.on_chunk_evicted(
            entry.chunk_id,
            entry.touched_mask,
            snapshot.untouch_level(),
            self.policy.current_strategy,
            time=time,
        )
        self._check_crash_budget()

    def _evict_chunk_array(self, entry: ChunkEntry, time: int) -> None:
        """Array-backend eviction: raw mask iteration over flat arrays with
        the TLB shootdown inlined (byte-identical to the object path)."""
        ppc = self.uvm.pages_per_chunk
        chain = self.chain
        cid = entry.chunk_id
        li = cid - chain._origin
        # Masks captured before residency is cleared — the snapshot below
        # must reflect the chunk as it stood at unmap time.
        res_mask = chain._res[li]
        tch_mask = chain._tch[li]
        pfm_mask = chain._pfm[li]
        counter = chain._ctr[li]
        insert_interval = chain._iint[li]
        base = cid * ppc
        pt = self.page_table
        p_origin = pt._origin
        frames = pt._frames
        drt = pt._dirty
        free_append = self.device._free.append
        translation = self.translation
        if translation is not None:
            l1_sets_all = [t._sets for t in translation.l1_tlbs]
            l1_num = translation.l1_tlbs[0]._num_sets if l1_sets_all else 1
            l2 = translation.l2_tlb
            l2_sets = l2._sets
            l2_num = l2._num_sets
        shootdowns = 0
        dirty_pages = 0
        evicted_pages = 0
        m = res_mask
        while m:  # ascending page order, like the object path's range loop
            low = m & -m
            m ^= low
            vpn = base + low.bit_length() - 1
            idx = vpn - p_origin
            frame = frames[idx]
            if frame < 0:
                raise SimulationError(f"vpn {vpn} not mapped")
            frames[idx] = -1
            free_append(frame)
            if drt[idx]:
                dirty_pages += 1
            evicted_pages += 1
            if translation is not None:
                hit = False
                for sets in l1_sets_all:
                    s = sets[vpn % l1_num]
                    if vpn in s:
                        del s[vpn]
                        hit = True
                s2 = l2_sets[vpn % l2_num]
                if vpn in s2:
                    del s2[vpn]
                    hit = True
                if hit:
                    shootdowns += 1
        chain._res[li] = 0
        pt._resident -= evicted_pages
        self.device._allocated -= evicted_pages
        if shootdowns:
            self.stats.tlb_shootdowns += shootdowns
        self.chain.remove(cid)
        self.stats.chunks_evicted += 1
        self.stats.pages_evicted += evicted_pages
        self.stats.dirty_pages_written_back += dirty_pages
        self.clock.note_eviction()
        self._m_evictions.inc()
        if dirty_pages:
            self.pcie.transfer_to_host(dirty_pages, time=time)
            self.stats.bytes_device_to_host = self.pcie.bytes_to_host
        self.stats.prefetched_pages_touched += bin(pfm_mask & tch_mask).count("1")
        snapshot = ChunkEntry(cid, insert_interval)
        snapshot.resident_mask = tch_mask | pfm_mask
        snapshot.touched_mask = tch_mask
        snapshot.prefetch_mask = pfm_mask
        snapshot.counter = counter
        if self._trace.enabled:
            self._trace.emit(
                "eviction", time, chunk=cid, pages=evicted_pages,
                dirty=dirty_pages, untouch=snapshot.untouch_level(),
                strategy=self.policy.current_strategy,
            )
        self.policy.on_chunk_evicted(snapshot, time)
        self.prefetcher.on_chunk_evicted(
            cid,
            tch_mask,
            snapshot.untouch_level(),
            self.policy.current_strategy,
            time=time,
        )
        self._check_crash_budget()

    def _check_crash_budget(self) -> None:
        factor = self.uvm.crash_eviction_budget_factor
        if factor is None or self._footprint_pages is None:
            return
        footprint_chunks = max(1, self._footprint_pages // self.uvm.pages_per_chunk)
        budget = int(factor * footprint_chunks)
        if self.stats.chunks_evicted > budget:
            raise ThrashingCrash(self.stats.chunks_evicted, budget)


class MigrationScheduler:
    """Stage: the fault-service loop.

    Runs a (configurably parallel, default serial) set of service slots:
    each service op consults the prefetcher for the page batch, asks the
    eviction service to make room, charges the 20 µs service latency plus
    PCIe transfer time, and — on completion — installs the pages, wakes the
    merged faults, and credits the interval clock.
    """

    def __init__(
        self,
        uvm: UVMConfig,
        device: DeviceMemory,
        page_table: PageTable,
        chain: ChunkChain,
        pcie: PCIeLink,
        events: EventQueue,
        stats: SimStats,
        ledger: FrameLedger,
        frontend: FaultFrontend,
        evictor: EvictionService,
        clock: IntervalClock,
        policy: EvictionPolicy,
        prefetcher: Prefetcher,
        obs: Observability,
    ) -> None:
        self.uvm = uvm
        self.device = device
        self.page_table = page_table
        self.chain = chain
        self.pcie = pcie
        self.events = events
        self.stats = stats
        self.ledger = ledger
        self.frontend = frontend
        self.evictor = evictor
        self.clock = clock
        self.policy = policy
        self.prefetcher = prefetcher
        self._trace = obs.tracer
        self.in_flight: Dict[int, InFlightMigration] = {}  # keyed by mig.token
        self._next_migration_token = 0
        self._active_services = 0
        self._h_batch = obs.metrics.histogram("gmmu.batch_pages")
        #: Maintained by MemorySystem (see EvictionService._use_array).
        self._use_array = False

    # ------------------------------------------------------- service loop

    def pump(self, time: int) -> None:
        """Fill free service slots from the frontend's pending queue."""
        while (
            self._active_services < self.uvm.fault_parallelism
            and self.frontend.pending
        ):
            fault = self.frontend.pending.popleft()
            if not self.begin_service(fault, time):
                continue

    def max_batch(self) -> int:
        """Largest allowed migration batch.

        Clamps aggressive prefetchers (the tree prefetcher can request a
        whole 2 MB region) to half of device memory: the driver never
        evicts the working set wholesale to make room for a prefetch.
        """
        return max(self.uvm.pages_per_chunk, self.device.capacity // 2)

    def _gather_pages(
        self, fault: FarFault, in_batch: Set[int]
    ) -> Optional[List[int]]:
        """Consult the prefetcher for ``fault``; returns the page batch or
        None when the fault needs no migration of its own.

        ``in_batch`` holds pages already claimed by the service op being
        assembled; those are skipped like resident/in-flight pages and, when
        the demand page itself is among them, the fault simply joins the op.
        """
        if self.frontend.covering(fault.vpn) is not None or fault.vpn in in_batch:
            return None
        covered = self.frontend.covered
        if self._use_array:
            # Raw-array skip predicate: prefetchers probe it once per
            # candidate page, so the dict/method indirections add up.
            pt = self.page_table
            frames = pt._frames
            p_origin = pt._origin
            nf = len(frames)
            slots = covered._slots
            c_origin = covered._origin
            ns = len(slots)

            def skip(vpn: int) -> bool:
                i = vpn - p_origin
                if 0 <= i < nf and frames[i] >= 0:
                    return True
                j = vpn - c_origin
                if 0 <= j < ns and slots[j] is not None:
                    return True
                return vpn in in_batch
        else:
            resident = self.page_table.is_resident
            skip = (
                lambda vpn: resident(vpn) or vpn in covered or vpn in in_batch
            )
        pages = self.prefetcher.pages_to_migrate(
            fault.vpn, self.ledger.memory_full, skip, time=fault.time
        )
        if not pages or fault.vpn not in pages:
            raise SimulationError(
                f"prefetcher {self.prefetcher.name} did not include the "
                f"demand page {fault.vpn}"
            )
        max_batch = self.max_batch()
        if len(pages) > max_batch:
            # Prefetchers order the demand page first, so truncation keeps it.
            pages = pages[:max_batch]
        return pages

    def begin_service(self, fault: FarFault, time: int) -> bool:
        """Start one fault-service op.  Returns False if the fault resolved
        without a new migration (page arrived while it was queued).

        With ``fault_batch_size > 1`` the op drains further pending faults
        from the buffer, amortising the base service latency across chunks
        (UVM batch processing; the paper's configuration services one fault
        group per op).
        """
        if self._use_array:
            # Flattened resident/covered checks: most queued faults resolve
            # or merge right here once their chunk's migration lands.
            pt = self.page_table
            frames = pt._frames
            idx = fault.vpn - pt._origin
            if 0 <= idx < len(frames) and frames[idx] >= 0:
                fault.on_resolve(time)
                return False
            covering = self.frontend.covered.get(fault.vpn)
            if covering is not None:
                covering.attach(fault)
                self.stats.merged_faults += 1
                self.frontend._m_merged.value += 1
                return False
        else:
            if self.page_table.is_resident(fault.vpn):
                fault.on_resolve(time)
                return False
            covering = self.frontend.covering(fault.vpn)
            if covering is not None:
                self.frontend.merge(fault, covering)
                return False

        in_batch: Set[int] = set()
        pages = self._gather_pages(fault, in_batch)
        assert pages is not None  # neither covered nor in an empty batch
        batch_faults = [fault]
        batch_pages: List[int] = list(pages)
        in_batch.update(pages)

        budget = self.uvm.fault_batch_size - 1
        max_total = self.max_batch()
        pending = self.frontend.pending
        while budget > 0 and pending and len(batch_pages) < max_total:
            nxt = pending[0]
            if self.page_table.is_resident(nxt.vpn):
                pending.popleft()
                nxt.on_resolve(time)
                continue
            extra = self._gather_pages(nxt, in_batch)
            if extra is None:
                # Covered by an in-flight migration or by this very batch.
                pending.popleft()
                if nxt.vpn in in_batch:
                    batch_faults.append(nxt)
                    self.frontend.note_merged()
                else:
                    covering = self.frontend.covered[nxt.vpn]
                    self.frontend.merge(nxt, covering)
                continue
            if len(batch_pages) + len(extra) > max_total:
                break
            pending.popleft()
            batch_faults.append(nxt)
            batch_pages.extend(extra)
            in_batch.update(extra)
            budget -= 1

        victims_evicted = self.evictor.ensure_capacity(len(batch_pages), time)
        self.ledger.reserved += len(batch_pages)

        mig = InFlightMigration(
            chunk_id=fault.vpn // self.uvm.pages_per_chunk,
            pages=set(batch_pages),
            start_time=time,
            token=self._next_migration_token,
        )
        self._next_migration_token += 1
        for f in batch_faults:
            mig.attach(f)
        for vpn in batch_pages:
            self.frontend.cover(vpn, mig)
        self.in_flight[mig.token] = mig
        self._active_services += 1

        self._h_batch.observe(len(batch_pages))
        transfer = self.pcie.transfer_to_device(len(batch_pages), time=time)
        latency = (
            self.uvm.fault_latency_cycles
            + transfer
            + victims_evicted * self.uvm.eviction_overhead_cycles
        )
        mig.finish_time = time + latency
        self.stats.fault_service_ops += 1
        self.stats.bytes_host_to_device = self.pcie.bytes_to_device
        self.events.schedule(
            mig.finish_time, lambda t, m=mig: self.complete_migration(m, t)
        )
        return True

    # ----------------------------------------------------- migration finish

    def complete_migration(self, mig: InFlightMigration, time: int) -> None:
        ppc = self.uvm.pages_per_chunk
        demand_vpns = {f.vpn for f in mig.faults}
        if self._use_array:
            self._install_pages_array(mig, demand_vpns, time)
        else:
            # Group pages by chunk (pattern prefetch stays within one chunk,
            # but the tree prefetcher can cross chunks).
            by_chunk: Dict[int, List[int]] = {}
            for vpn in sorted(mig.pages):
                by_chunk.setdefault(vpn // ppc, []).append(vpn)

            for chunk_id, vpns in by_chunk.items():
                entry = self.chain.get(chunk_id)
                is_new = entry is None
                if entry is None:
                    entry = self.chain.new_entry(
                        chunk_id, self.clock.current_interval
                    )
                for vpn in vpns:
                    frame = self.device.allocate()
                    self.page_table.map(vpn, frame)
                    idx = vpn % ppc
                    entry.mark_resident(idx)
                    if vpn in demand_vpns:
                        self.stats.demand_pages += 1
                    else:
                        entry.prefetch_mask |= 1 << idx
                        self.stats.prefetched_pages += 1
                    self.frontend.uncover(vpn)
                # HPE-style counter pollution: migration bumps the counter by
                # the number of pages migrated (Inefficiency 1 of the paper).
                entry.counter = min(16, entry.counter + len(vpns))
                if is_new:
                    self.policy.insert_chunk(entry, time)

        migrated = len(mig.pages)
        self.ledger.reserved -= migrated
        self.stats.pages_migrated += migrated
        if self._trace.enabled:
            # Chrome duration slice: anchored at the start, dur in cycles
            # (the exporter converts both to microseconds).
            self._trace.emit(
                "migration", mig.start_time, dur=time - mig.start_time,
                demand=len(mig.faults), **mig.trace_args(),
            )
        self.clock.advance(migrated, time)

        del self.in_flight[mig.token]
        self._active_services -= 1
        for fault in mig.faults:
            fault.on_resolve(time)
        self.stats.chain_length_peak = self.chain.length_peak
        self.pump(time)

    def _install_pages_array(
        self, mig: InFlightMigration, demand_vpns: Set[int], time: int
    ) -> None:
        """Array-backend page install: grow the flat arrays once for the
        batch extremes, then write frames/masks with raw indexing.  Keeps
        the exact per-chunk, ascending-vpn order of the object path."""
        ppc = self.uvm.pages_per_chunk
        pages = sorted(mig.pages)
        chain = self.chain
        pt = self.page_table
        # Arrays are contiguous, so covering both extremes covers the batch.
        pt._ensure(pages[0])
        pt._ensure(pages[-1])
        chain._ensure(pages[0] // ppc)
        chain._ensure(pages[-1] // ppc)
        p_origin = pt._origin
        frames = pt._frames
        acc = pt._accessed
        drt = pt._dirty
        c_origin = chain._origin
        res_l = chain._res
        pfm_l = chain._pfm
        ctr_l = chain._ctr
        inch = chain._inch
        device = self.device
        free = device._free
        if len(free) < len(pages):
            raise CapacityError("device memory exhausted")
        uncover = self.frontend.uncover
        interval = self.clock.current_interval
        demand = 0
        prefetched = 0
        by_chunk: Dict[int, List[int]] = {}
        for vpn in pages:
            by_chunk.setdefault(vpn // ppc, []).append(vpn)
        for chunk_id, vpns in by_chunk.items():
            li = chunk_id - c_origin
            is_new = not inch[li]
            if is_new:
                chain.new_entry(chunk_id, interval)
            base = chunk_id * ppc
            res = res_l[li]
            pfm = pfm_l[li]
            for vpn in vpns:
                idx = vpn - p_origin
                if frames[idx] >= 0:
                    raise SimulationError(f"vpn {vpn} already mapped")
                frames[idx] = free.pop()
                acc[idx] = 0
                drt[idx] = 0
                bit = 1 << (vpn - base)
                res |= bit
                if vpn in demand_vpns:
                    demand += 1
                else:
                    pfm |= bit
                    prefetched += 1
                uncover(vpn)
            res_l[li] = res
            pfm_l[li] = pfm
            ctr_l[li] = min(16, ctr_l[li] + len(vpns))
            if is_new:
                self.policy.insert_chunk(chain._handle(li), time)
        n = len(pages)
        device._allocated += n
        if device._allocated > device.peak_allocated:
            device.peak_allocated = device._allocated
        pt._resident += n
        if pt._resident > pt.resident_peak:
            pt.resident_peak = pt._resident
        self.stats.demand_pages += demand
        self.stats.prefetched_pages += prefetched


class MemorySystem:
    """Facade: the staged unified-memory runtime for one simulated GPU.

    Owns the shared mechanism structures (device memory, page table, chunk
    chain, PCIe link, RNG) and wires the four stages together; SMs and the
    :class:`~repro.engine.simulator.Simulator` talk only to this surface.
    """

    def __init__(
        self,
        config: SimConfig,
        capacity_frames: int,
        events: EventQueue,
        stats: SimStats,
        policy: EvictionPolicy,
        prefetcher: Prefetcher,
        translation: Optional[TranslationHierarchy] = None,
        footprint_pages: Optional[int] = None,
        obs: Optional[Observability] = None,
    ):
        self.config = config
        self.uvm = config.uvm
        self.events = events
        self.stats = stats
        self.policy = policy
        self.prefetcher = prefetcher
        self.translation = translation
        self.obs = obs or DISABLED

        self.device = DeviceMemory(capacity_frames)
        self._use_array = config.backend == "array"
        if translation is not None:
            self._page_table = translation.page_table
        elif self._use_array:
            self._page_table = ArrayPageTable(config.translation.walker.levels)
        else:
            self._page_table = PageTable(config.translation.walker.levels)
        self.chain = ArrayChunkChain() if self._use_array else ChunkChain()
        self._policy_kind = policy_touch_kind(policy)
        self.pcie = PCIeLink(
            self.uvm.interconnect_gbps, self.uvm.clock_hz, self.uvm.page_size,
            obs=self.obs,
        )
        #: The injected mechanism RNG stream (seeded in SimConfig, never
        #: constructed here — REPRO106).
        self.rng: random.Random = config.make_rng()

        self.ledger = FrameLedger(self.device, self.uvm.pages_per_chunk)
        self.clock = IntervalClock(
            self.uvm, stats, policy, self.pcie, self.obs
        )
        self.frontend = FaultFrontend(
            self.uvm, stats, policy, self.clock, self.obs
        )
        if self._use_array:
            # Swap the coverage dict for the origin-offset slot list; the
            # frontend/scheduler code only uses the shared dict surface.
            self.frontend.covered = ArrayCoverage()
        self.evictor = EvictionService(
            self.uvm, self.device, self._page_table, self.chain, self.pcie,
            self.ledger, policy, prefetcher, translation, stats, self.clock,
            self.obs, footprint_pages,
        )
        self.scheduler = MigrationScheduler(
            self.uvm, self.device, self._page_table, self.chain, self.pcie,
            events, stats, self.ledger, self.frontend, self.evictor,
            self.clock, policy, prefetcher, self.obs,
        )

        policy.attach(
            PolicyContext(
                chain=self.chain,
                stats=stats,
                config=config,
                rng=self.rng,
                clock=self.clock,
                obs=self.obs,
            )
        )
        prefetcher.attach(
            PrefetchContext(config=config, stats=stats, obs=self.obs)
        )
        self._refresh_backend_flags()

    # ------------------------------------------------------------------ API

    def _refresh_backend_flags(self) -> None:
        """Recompute the fast-path eligibility after (re)binding structures.

        The fused array paths need *both* the chain and the page table to be
        array-backed; an externally installed plain :class:`PageTable`
        (possible through the ``page_table`` setter) falls back to the
        generic stage code, which works on either backend through the
        shared method surface.
        """
        fast = isinstance(self.chain, ArrayChunkChain) and isinstance(
            self._page_table, ArrayPageTable
        )
        self._fast = fast
        self.evictor._use_array = fast
        self.scheduler._use_array = fast

    @property
    def page_table(self) -> PageTable:
        return self._page_table

    @page_table.setter
    def page_table(self, page_table: PageTable) -> None:
        """Rebind the page table on every stage (single source of truth —
        the Simulator installs its own table when translation is off)."""
        self._page_table = page_table
        self.evictor.page_table = page_table
        self.scheduler.page_table = page_table
        self._refresh_backend_flags()

    @property
    def current_interval(self) -> int:
        return self.clock.current_interval

    @property
    def memory_full(self) -> bool:
        """True once a whole chunk no longer fits without eviction."""
        return self.ledger.memory_full

    def is_resident(self, vpn: int) -> bool:
        return self._page_table.is_resident(vpn)

    def touch_page(self, sm_id: int, vpn: int, is_write: bool, time: int) -> None:
        """Record a successful access to a resident page."""
        if self._fast:
            pt = self._page_table
            idx = vpn - pt._origin
            frames = pt._frames
            if not (0 <= idx < len(frames)) or frames[idx] < 0:
                raise SimulationError(f"access to non-resident vpn {vpn}")
            pt._accessed[idx] = 1
            if is_write:
                pt._dirty[idx] = 1
            chain = self.chain
            cid = vpn // self.uvm.pages_per_chunk
            li = cid - chain._origin
            if not (0 <= li < len(chain._inch)) or not chain._inch[li]:
                raise SimulationError(f"resident vpn {vpn} has no chunk entry")
            chain._tch[li] |= 1 << (vpn - cid * self.uvm.pages_per_chunk)
            kind = self._policy_kind
            if kind is None:
                self.policy.on_page_touched(chain._handle(li), vpn, time)
            elif kind == "lru":
                if chain._last != cid:
                    chain.move_to_tail(cid)
                chain._lref[li] = self.clock._interval_index
            elif kind == "mhpe":
                interval = self.clock._interval_index
                if chain._lref[li] < interval:
                    chain._lref[li] = interval
                    if chain._last != cid:
                        chain.move_to_tail(cid)
            elif kind == "hpe":
                counter = chain._ctr[li]
                if counter < 16:
                    chain._ctr[li] = counter + 1
                if chain._last != cid:
                    chain.move_to_tail(cid)
                chain._lref[li] = self.clock._interval_index
            else:  # "ref": recency-blind, interval bookkeeping only
                chain._lref[li] = self.clock._interval_index
            return
        self._page_table.record_access(vpn, is_write)
        ppc = self.uvm.pages_per_chunk
        entry = self.chain.get(vpn // ppc)
        if entry is None:
            raise SimulationError(f"resident vpn {vpn} has no chunk entry")
        entry.mark_touched(vpn % ppc)
        self.policy.on_page_touched(entry, vpn, time)

    def handle_fault(self, fault: FarFault) -> None:
        """Entry point for an SM's far fault."""
        if not self._fast:
            if self.frontend.intake(fault):
                self.scheduler.pump(fault.time)
            return
        # Array fast path: FaultFrontend.intake flattened (byte-identical
        # bookkeeping; per-fault method calls add up at this rate).
        frontend = self.frontend
        stats = self.stats
        stats.far_faults += 1
        self.clock._interval_faults += 1
        frontend._m_faults.value += 1
        kind = self._policy_kind
        vpn = fault.vpn
        if kind != "lru" and kind != "ref":
            # Only HPE/MHPE (and unknown policies) implement on_fault; the
            # base-class hook is a no-op for the exact-matched LRU kinds.
            self.policy.on_fault(vpn, vpn // self.uvm.pages_per_chunk, fault.time)
        if frontend._trace.enabled:
            frontend._trace.emit(
                "fault", fault.time, chunk=vpn // self.uvm.pages_per_chunk,
                **fault.trace_args(),
            )
        mig = frontend.covered.get(vpn)
        if mig is not None:
            mig.attach(fault)
            stats.merged_faults += 1
            frontend._m_merged.value += 1
            return
        frontend.pending.append(fault)
        scheduler = self.scheduler
        if scheduler._active_services < self.uvm.fault_parallelism:
            scheduler.pump(fault.time)

    # ------------------------------------------------------------- reporting

    def drain_check(self) -> None:
        """Assert no faults are stuck at end of simulation."""
        if self.frontend.pending or self.scheduler.in_flight:
            raise SimulationError(
                f"simulation ended with {len(self.frontend.pending)} pending "
                f"and {len(self.scheduler.in_flight)} in-flight migrations"
            )
