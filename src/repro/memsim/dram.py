"""GDDR5 device-memory timing model (Table I: 12 channels, FR-FCFS,
528 GB/s aggregate).

The trace-driven simulator works at page granularity, so the only DRAM
clients on the modelled critical path are **page-table walks** (each radix
level fetched from device memory is one DRAM read).  By default the walker
charges a flat per-access latency (DESIGN.md deviation #4); enabling this
model replaces that constant with per-channel queueing:

* requests map to a channel by address hash;
* each channel is a single server with a fixed service time derived from
  row-buffer locality (row hit vs row miss, tracked per bank);
* FR-FCFS is approximated by giving row hits the shorter service time —
  at walker load levels (<= 64 concurrent walks) reorder effects beyond
  that are negligible.

This keeps the model O(1) per access while producing contention when many
concurrent walks land on one channel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..errors import ConfigError

__all__ = ["DRAMConfig", "DRAMModel"]


@dataclass(frozen=True)
class DRAMConfig:
    """Timing knobs for the GDDR5 model."""

    channels: int = 12
    banks_per_channel: int = 16
    row_bytes: int = 2048
    #: Core cycles for a row-buffer hit (CAS + transfer).
    row_hit_cycles: int = 60
    #: Core cycles for a row miss (precharge + activate + CAS).
    row_miss_cycles: int = 160

    def __post_init__(self) -> None:
        if self.channels <= 0 or self.banks_per_channel <= 0:
            raise ConfigError("channels and banks must be positive")
        if self.row_hit_cycles <= 0 or self.row_miss_cycles < self.row_hit_cycles:
            raise ConfigError(
                "need 0 < row_hit_cycles <= row_miss_cycles "
                f"(got {self.row_hit_cycles}, {self.row_miss_cycles})"
            )


class DRAMModel:
    """Per-channel single-server queue with per-bank open-row tracking."""

    def __init__(self, config: DRAMConfig = DRAMConfig()):
        self.config = config
        n = config.channels
        self._channel_free_at: List[int] = [0] * n
        self._open_rows: List[dict] = [dict() for _ in range(n)]
        self.reads = 0
        self.row_hits = 0
        self.row_misses = 0
        self.total_queue_cycles = 0

    def _map(self, address: int) -> tuple:
        cfg = self.config
        row = address // cfg.row_bytes
        channel = (row ^ (row >> 7)) % cfg.channels
        bank = (row >> 3) % cfg.banks_per_channel
        return channel, bank, row

    def read(self, address: int, time: int) -> int:
        """Issue a read at ``time``; returns its latency in cycles
        (queueing + service)."""
        cfg = self.config
        channel, bank, row = self._map(address)
        self.reads += 1

        open_rows = self._open_rows[channel]
        if open_rows.get(bank) == row:
            service = cfg.row_hit_cycles
            self.row_hits += 1
        else:
            service = cfg.row_miss_cycles
            self.row_misses += 1
            open_rows[bank] = row

        start = max(time, self._channel_free_at[channel])
        queue_delay = start - time
        self.total_queue_cycles += queue_delay
        finish = start + service
        self._channel_free_at[channel] = finish
        return finish - time

    @property
    def row_hit_rate(self) -> float:
        total = self.row_hits + self.row_misses
        return self.row_hits / total if total else 0.0
