"""CPU-GPU interconnect model.

The paper uses a 16 GB/s link with a 20 us page fault service time.  Fault
service latency is charged by the GMMU; this module charges *transfer* time
and keeps byte counters per direction.  The link is full duplex: host-to-
device migrations and device-to-host writebacks do not contend (writeback
time is therefore tracked but not added to the fault-service critical path —
see DESIGN.md, simulation model).
"""

from __future__ import annotations

from typing import Optional

from ..obs import DISABLED, Observability
from ..units import transfer_cycles

__all__ = ["PCIeLink"]


class PCIeLink:
    """Bandwidth/byte accounting for the CPU-GPU interconnect."""

    def __init__(self, bandwidth_gbps: float = 16.0, clock_hz: float = 1.4e9,
                 page_size: int = 4096, obs: Optional[Observability] = None):
        self.bandwidth_gbps = bandwidth_gbps
        self.clock_hz = clock_hz
        self.page_size = page_size
        self.bytes_to_device = 0
        self.bytes_to_host = 0
        self._page_cycles = transfer_cycles(page_size, bandwidth_gbps, clock_hz)
        obs = obs or DISABLED
        self._trace = obs.tracer
        self._m_h2d = obs.metrics.counter("pcie.bytes_h2d")
        self._m_d2h = obs.metrics.counter("pcie.bytes_d2h")

    @property
    def cycles_per_page(self) -> int:
        return self._page_cycles

    def transfer_to_device(self, num_pages: int, time: int = 0) -> int:
        """Account a host->device migration; returns transfer cycles."""
        nbytes = num_pages * self.page_size
        self.bytes_to_device += nbytes
        self._m_h2d.inc(nbytes)
        cycles = num_pages * self._page_cycles
        if self._trace.enabled:
            self._trace.emit(
                "pcie", time, dir="h2d", pages=num_pages, bytes=nbytes,
                cycles=cycles,
            )
        return cycles

    def transfer_to_host(self, num_pages: int, time: int = 0) -> int:
        """Account a device->host writeback; returns transfer cycles."""
        nbytes = num_pages * self.page_size
        self.bytes_to_host += nbytes
        self._m_d2h.inc(nbytes)
        cycles = num_pages * self._page_cycles
        if self._trace.enabled:
            self._trace.emit(
                "pcie", time, dir="d2h", pages=num_pages, bytes=nbytes,
                cycles=cycles,
            )
        return cycles
