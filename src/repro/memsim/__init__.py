"""Unified-memory substrate: device memory, page table, chunk chain, and
the staged MemorySystem pipeline (``GMMU`` is its back-compat alias)."""

from .address import chunk_of, chunk_base_vpn, chunk_vpns, page_index_in_chunk
from .device_memory import DeviceMemory
from .page_table import PageTable
from .pcie import PCIeLink
from .chunk_chain import ChunkChain, ChunkEntry
from .fault import FarFault, InFlightMigration
from .system import (
    EvictionService,
    FaultFrontend,
    FrameLedger,
    IntervalClock,
    MemorySystem,
    MigrationScheduler,
)
from .gmmu import GMMU

__all__ = [
    "MemorySystem",
    "FaultFrontend",
    "MigrationScheduler",
    "EvictionService",
    "IntervalClock",
    "FrameLedger",
    "chunk_of",
    "chunk_base_vpn",
    "chunk_vpns",
    "page_index_in_chunk",
    "DeviceMemory",
    "PageTable",
    "PCIeLink",
    "ChunkChain",
    "ChunkEntry",
    "FarFault",
    "InFlightMigration",
    "GMMU",
]
