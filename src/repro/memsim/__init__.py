"""Unified-memory substrate: device memory, page table, GMMU, chunk chain."""

from .address import chunk_of, chunk_base_vpn, chunk_vpns, page_index_in_chunk
from .device_memory import DeviceMemory
from .page_table import PageTable
from .pcie import PCIeLink
from .chunk_chain import ChunkChain, ChunkEntry
from .fault import FarFault, InFlightMigration
from .gmmu import GMMU

__all__ = [
    "chunk_of",
    "chunk_base_vpn",
    "chunk_vpns",
    "page_index_in_chunk",
    "DeviceMemory",
    "PageTable",
    "PCIeLink",
    "ChunkChain",
    "ChunkEntry",
    "FarFault",
    "InFlightMigration",
    "GMMU",
]
