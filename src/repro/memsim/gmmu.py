"""Back-compat shim: ``GMMU`` is now the staged :class:`MemorySystem`.

The 489-line god-object that used to live here was decomposed into an
explicit pipeline of stages — :class:`~repro.memsim.system.FaultFrontend`,
:class:`~repro.memsim.system.MigrationScheduler`,
:class:`~repro.memsim.system.EvictionService` and
:class:`~repro.memsim.system.IntervalClock` — behind the
:class:`~repro.memsim.system.MemorySystem` facade.  See
``repro/memsim/system.py`` for the pipeline and ``DESIGN.md`` for the
stage diagram.

This module keeps the historical name importable: ``GMMU`` is a direct
subclass adding nothing, so every constructor argument, attribute
(``chain``, ``pcie``, ``device``, ``rng``, ``page_table`` …) and method of
the old class keeps working.  New code should use
``repro.memsim.system.MemorySystem`` (or its stages) directly.
"""

from __future__ import annotations

from .system import MemorySystem

__all__ = ["GMMU"]


class GMMU(MemorySystem):
    """Unified-memory runtime for one simulated GPU (legacy name)."""
