"""GPU page table.

Two roles:

1. **Residency map** — VPN -> physical frame for pages currently in device
   memory, plus per-page *accessed* and *dirty* bits.  The accessed bit is
   what the UVM driver reads back when it unmaps a chunk at eviction time;
   it is the source of MHPE's untouch-level statistic (see DESIGN.md).
2. **Walk structure model** — a 4-level radix tree (512-ary, 9 bits per
   level, as in x86-64).  The page-table walker asks for the per-level node
   keys of a VPN so that the page walk cache can cache upper levels.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..errors import SimulationError

__all__ = ["PageTable"]

_BITS_PER_LEVEL = 9


class PageTable:
    """Radix page table with residency and access/dirty tracking."""

    __slots__ = ("levels", "_entries", "resident_peak")

    def __init__(self, levels: int = 4):
        if levels <= 0:
            raise SimulationError("page table needs at least one level")
        self.levels = levels
        # vpn -> [frame, accessed, dirty]
        self._entries: Dict[int, List] = {}
        self.resident_peak = 0

    # --- residency --------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, vpn: int) -> bool:
        return vpn in self._entries

    def is_resident(self, vpn: int) -> bool:
        return vpn in self._entries

    def frame_of(self, vpn: int) -> Optional[int]:
        entry = self._entries.get(vpn)
        return entry[0] if entry is not None else None

    def map(self, vpn: int, frame: int) -> None:
        """Install a translation.  Pages arrive untouched and clean."""
        if vpn in self._entries:
            raise SimulationError(f"vpn {vpn} already mapped")
        self._entries[vpn] = [frame, False, False]
        if len(self._entries) > self.resident_peak:
            self.resident_peak = len(self._entries)

    def unmap(self, vpn: int) -> Tuple[int, bool, bool]:
        """Remove a translation; returns (frame, accessed, dirty)."""
        entry = self._entries.pop(vpn, None)
        if entry is None:
            raise SimulationError(f"vpn {vpn} not mapped")
        return entry[0], entry[1], entry[2]

    def record_access(self, vpn: int, is_write: bool = False) -> None:
        """Set the accessed (and possibly dirty) bit, as MMU hardware would."""
        entry = self._entries.get(vpn)
        if entry is None:
            raise SimulationError(f"access to non-resident vpn {vpn}")
        entry[1] = True
        if is_write:
            entry[2] = True

    def accessed(self, vpn: int) -> bool:
        entry = self._entries.get(vpn)
        return bool(entry and entry[1])

    def dirty(self, vpn: int) -> bool:
        entry = self._entries.get(vpn)
        return bool(entry and entry[2])

    def resident_vpns(self) -> List[int]:
        """Snapshot of resident VPNs (sorted, for deterministic iteration)."""
        return sorted(self._entries)

    # --- walk structure ----------------------------------------------------

    def node_keys(self, vpn: int) -> Tuple[Tuple[int, int], ...]:
        """Per-level node identifiers touched by a walk for ``vpn``.

        Returns ``levels`` keys ordered root-first.  Key for level ``i``
        (0 = root) identifies the page-table node whose entry must be read at
        that level; the page walk cache caches the *upper* levels (all but
        the leaf), so a PWC hit on the deepest cached level shortens the walk.
        """
        keys = []
        for level in range(self.levels):
            shift = _BITS_PER_LEVEL * (self.levels - 1 - level)
            keys.append((level, vpn >> shift))
        return tuple(keys)
