"""Virtual address arithmetic.

Pages are identified by integer virtual page numbers (VPNs); a *chunk* is a
group of ``pages_per_chunk`` (default 16, i.e. a 64 KB basic block) pages
with consecutive VPNs, aligned to the chunk size — the granularity at which
the locality prefetcher migrates and the pre-eviction policy evicts.
"""

from __future__ import annotations

from typing import List

from ..units import PAGES_PER_CHUNK

__all__ = ["chunk_of", "chunk_base_vpn", "chunk_vpns", "page_index_in_chunk"]


def chunk_of(vpn: int, pages_per_chunk: int = PAGES_PER_CHUNK) -> int:
    """Chunk id containing ``vpn``."""
    return vpn // pages_per_chunk


def chunk_base_vpn(chunk_id: int, pages_per_chunk: int = PAGES_PER_CHUNK) -> int:
    """First VPN of ``chunk_id``."""
    return chunk_id * pages_per_chunk


def chunk_vpns(chunk_id: int, pages_per_chunk: int = PAGES_PER_CHUNK) -> List[int]:
    """All VPNs belonging to ``chunk_id``, in address order."""
    base = chunk_id * pages_per_chunk
    return list(range(base, base + pages_per_chunk))


def page_index_in_chunk(vpn: int, pages_per_chunk: int = PAGES_PER_CHUNK) -> int:
    """Position of ``vpn`` within its chunk (0 .. pages_per_chunk-1)."""
    return vpn % pages_per_chunk
