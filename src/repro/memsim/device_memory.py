"""GPU device memory: a frame allocator.

Capacity is expressed in 4 KB frames.  The oversubscription experiments set
``capacity = round(footprint_pages * rate)`` for rate in {0.75, 0.50} after a
first run with unlimited memory determines the footprint high-watermark,
exactly as in Section VI of the paper.
"""

from __future__ import annotations

from typing import List

from ..errors import CapacityError

__all__ = ["DeviceMemory"]


class DeviceMemory:
    """Fixed pool of physical frames with O(1) alloc/free."""

    def __init__(self, capacity_frames: int):
        if capacity_frames <= 0:
            raise CapacityError(
                f"device memory needs a positive capacity, got {capacity_frames}"
            )
        self.capacity = capacity_frames
        # Free list kept as a stack of frame numbers; deterministic order.
        self._free: List[int] = list(range(capacity_frames - 1, -1, -1))
        self._allocated = 0
        self.peak_allocated = 0

    @property
    def free_frames(self) -> int:
        return len(self._free)

    @property
    def allocated_frames(self) -> int:
        return self._allocated

    @property
    def is_full(self) -> bool:
        return not self._free

    def can_allocate(self, n: int) -> bool:
        return len(self._free) >= n

    def allocate(self) -> int:
        """Allocate one frame; raises :class:`CapacityError` when full."""
        if not self._free:
            raise CapacityError("device memory exhausted")
        frame = self._free.pop()
        self._allocated += 1
        if self._allocated > self.peak_allocated:
            self.peak_allocated = self._allocated
        return frame

    def free(self, frame: int) -> None:
        """Return a frame to the pool."""
        if not 0 <= frame < self.capacity:
            raise CapacityError(f"frame {frame} out of range 0..{self.capacity - 1}")
        self._free.append(frame)
        self._allocated -= 1
        if self._allocated < 0:
            raise CapacityError(f"double free of frame {frame}")
