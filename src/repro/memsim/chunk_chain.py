"""The chunk chain (HPE Fig. 2): a recency-ordered list of resident chunks.

The chain is a doubly-linked list with O(1) insert/remove/move.  Head is the
least-recently referenced end (LRU position), tail the most recent (MRU
position).  Entries carry the per-page *touched* bit-vector (maintained from
page-table access bits), the *resident* bit-vector (which pages of the chunk
are actually in device memory — pattern-aware prefetch migrates partial
chunks), and the HPE access counter.

Partitions (relative to the current interval ``cur``):

* **new**    — last referenced in interval ``cur``;
* **middle** — last referenced in interval ``cur - 1``;
* **old**    — everything older.  Eviction candidates come from here.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from ..errors import SimulationError

__all__ = ["ChunkEntry", "ChunkChain"]


class ChunkEntry:
    """Metadata for one resident (or partially resident) chunk."""

    __slots__ = (
        "chunk_id",
        "resident_mask",
        "touched_mask",
        "prefetch_mask",
        "counter",
        "last_ref_interval",
        "insert_interval",
        "insert_order",
        "prev",
        "next",
        "in_chain",
    )

    def __init__(
        self, chunk_id: int, interval: int, insert_order: int = 0
    ) -> None:
        self.chunk_id = chunk_id
        self.resident_mask = 0
        self.touched_mask = 0
        self.prefetch_mask = 0
        self.counter = 0
        self.last_ref_interval = interval
        self.insert_interval = interval
        self.insert_order = insert_order
        self.prev: Optional["ChunkEntry"] = None
        self.next: Optional["ChunkEntry"] = None
        self.in_chain = False

    # --- bit-vector helpers -------------------------------------------------

    def mark_resident(self, page_index: int) -> None:
        self.resident_mask |= 1 << page_index

    def clear_resident(self, page_index: int) -> None:
        self.resident_mask &= ~(1 << page_index)

    def mark_touched(self, page_index: int) -> None:
        self.touched_mask |= 1 << page_index

    def is_resident(self, page_index: int) -> bool:
        return bool(self.resident_mask >> page_index & 1)

    def is_touched(self, page_index: int) -> bool:
        return bool(self.touched_mask >> page_index & 1)

    @property
    def resident_pages(self) -> int:
        return bin(self.resident_mask).count("1")

    @property
    def touched_pages(self) -> int:
        return bin(self.touched_mask).count("1")

    def untouch_level(self) -> int:
        """Pages migrated to the GPU but never touched (the MHPE statistic)."""
        return bin(self.resident_mask & ~self.touched_mask).count("1")

    def partition(self, current_interval: int) -> str:
        if self.last_ref_interval >= current_interval:
            return "new"
        if self.last_ref_interval == current_interval - 1:
            return "middle"
        return "old"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ChunkEntry({self.chunk_id}, res={self.resident_mask:#06x}, "
            f"touch={self.touched_mask:#06x}, ctr={self.counter})"
        )


class ChunkChain:
    """Doubly-linked recency chain of :class:`ChunkEntry` with an id index."""

    def __init__(self) -> None:
        # Sentinels: _head.next is the LRU-most real entry.
        self._head = ChunkEntry(-1, 0)
        self._tail = ChunkEntry(-2, 0)
        self._head.next = self._tail
        self._tail.prev = self._head
        self._index: dict[int, ChunkEntry] = {}
        self._insert_seq = 0
        self.length_peak = 0

    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, chunk_id: int) -> bool:
        return chunk_id in self._index

    def get(self, chunk_id: int) -> Optional[ChunkEntry]:
        return self._index.get(chunk_id)

    # --- linking primitives -------------------------------------------------

    def _link_before(self, node: ChunkEntry, anchor: ChunkEntry) -> None:
        prev = anchor.prev
        assert prev is not None
        prev.next = node
        node.prev = prev
        node.next = anchor
        anchor.prev = node
        node.in_chain = True

    def _unlink(self, node: ChunkEntry) -> None:
        if not node.in_chain:
            raise SimulationError(f"chunk {node.chunk_id} not in chain")
        assert node.prev is not None and node.next is not None
        node.prev.next = node.next
        node.next.prev = node.prev
        node.prev = node.next = None
        node.in_chain = False

    # --- public operations ----------------------------------------------------

    def new_entry(self, chunk_id: int, interval: int) -> ChunkEntry:
        """Fresh (all-clear) entry for a chunk about to become resident.

        A factory rather than a bare constructor call so array-backed
        chains can hand out slot-backed handles instead of heap objects.
        """
        return ChunkEntry(chunk_id, interval)

    def insert_tail(self, entry: ChunkEntry) -> None:
        """Insert at the MRU position (normal arrival of a migrated chunk)."""
        if entry.chunk_id in self._index:
            raise SimulationError(f"chunk {entry.chunk_id} already in chain")
        entry.insert_order = self._insert_seq
        self._insert_seq += 1
        self._link_before(entry, self._tail)
        self._index[entry.chunk_id] = entry
        if len(self._index) > self.length_peak:
            self.length_peak = len(self._index)

    def insert_head(self, entry: ChunkEntry) -> None:
        """Insert at the LRU position (MHPE's wrongly-evicted re-insertion)."""
        if entry.chunk_id in self._index:
            raise SimulationError(f"chunk {entry.chunk_id} already in chain")
        entry.insert_order = self._insert_seq
        self._insert_seq += 1
        anchor = self._head.next
        assert anchor is not None
        self._link_before(entry, anchor)
        self._index[entry.chunk_id] = entry
        if len(self._index) > self.length_peak:
            self.length_peak = len(self._index)

    def remove(self, chunk_id: int) -> ChunkEntry:
        """Remove and return the entry for ``chunk_id`` (eviction)."""
        entry = self._index.pop(chunk_id, None)
        if entry is None:
            raise SimulationError(f"chunk {chunk_id} not in chain")
        self._unlink(entry)
        return entry

    def move_to_tail(self, chunk_id: int) -> None:
        """Refresh recency (LRU policies call this on touch)."""
        entry = self._index.get(chunk_id)
        if entry is None:
            raise SimulationError(f"chunk {chunk_id} not in chain")
        self._unlink(entry)
        self._link_before(entry, self._tail)
        self._index[chunk_id] = entry

    # --- iteration -----------------------------------------------------------

    def from_head(self) -> Iterator[ChunkEntry]:
        """LRU-most first."""
        node = self._head.next
        while node is not self._tail:
            assert node is not None
            nxt = node.next
            yield node
            node = nxt

    def from_tail(self) -> Iterator[ChunkEntry]:
        """MRU-most first."""
        node = self._tail.prev
        while node is not self._head:
            assert node is not None
            prv = node.prev
            yield node
            node = prv

    def old_partition_from_head(self, current_interval: int) -> Iterator[ChunkEntry]:
        """Old-partition entries, LRU-most first."""
        for entry in self.from_head():
            if entry.partition(current_interval) == "old":
                yield entry

    def old_partition_from_tail(self, current_interval: int) -> Iterator[ChunkEntry]:
        """Old-partition entries, MRU-most first."""
        for entry in self.from_tail():
            if entry.partition(current_interval) == "old":
                yield entry

    def _partitioned(
        self, entries: Iterator[ChunkEntry], current_interval: int
    ) -> List[ChunkEntry]:
        old: List[ChunkEntry] = []
        middle: List[ChunkEntry] = []
        new: List[ChunkEntry] = []
        for entry in entries:
            part = entry.partition(current_interval)
            if part == "old":
                old.append(entry)
            elif part == "middle":
                middle.append(entry)
            else:
                new.append(entry)
        return old + middle + new

    def candidates_from_tail(self, current_interval: int) -> List[ChunkEntry]:
        """Eviction candidates: old partition first (MRU-first within each
        partition), then middle, then new.

        Eviction prefers the old partition, but a policy must be able to
        evict *something* when the old partition cannot cover a request, so
        younger partitions follow in priority order.
        """
        return self._partitioned(self.from_tail(), current_interval)

    def candidates_from_head(self, current_interval: int) -> List[ChunkEntry]:
        """Eviction candidates: old partition first (LRU-first within each
        partition), then middle, then new."""
        return self._partitioned(self.from_head(), current_interval)
