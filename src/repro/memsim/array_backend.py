"""Flat-array fast path for the memory system (``SimConfig.backend="array"``).

Drop-in subclasses of the object-graph structures the stages of
:mod:`repro.memsim.system` operate on:

* :class:`ArrayPageTable` — residency/accessed/dirty state in origin-offset
  flat arrays instead of a ``vpn -> [frame, accessed, dirty]`` dict;
* :class:`ArrayChunkChain` / :class:`ArrayChunkEntry` — the recency chain as
  parallel per-chunk arrays (masks, counters, intrusive prev/next links by
  absolute chunk id) with slot-backed :class:`~repro.memsim.chunk_chain.ChunkEntry`
  handles, so policies keep their object-shaped view;
* :class:`ArrayCoverage` — the fault frontend's ``vpn -> InFlightMigration``
  coverage map as an origin-offset slot list.

The object backend remains the oracle: ``tests/test_backend_differential.py``
proves both backends byte-identical (results *and* traces) over a policy ×
prefetcher × oversubscription matrix.

Two implementation notes (see DESIGN.md "Dual-backend architecture"):

1. **Origin offsets, not 0-based indexing.**  Workloads place their
   footprint at ``Workload.base_vpn`` (default ``0x80000``), so arrays are
   indexed by ``vpn - origin`` and grow in place at either end
   (``lst.extend`` high, ``lst[:0] = ...`` low).  In-place growth preserves
   list identity, which is what lets hot loops hoist array references.
2. **Lists and bytearrays for scalar state, numpy for bulk.**  CPython
   indexes a plain list several times faster than a numpy array (scalar
   access boxes the element), and the simulation hot path is scalar — one
   page, one chunk at a time.  numpy appears where the operation is
   genuinely vectorizable: residency snapshots (:meth:`ArrayPageTable.
   resident_vpns`), per-chunk mask matrices (:func:`unpack_masks`,
   :meth:`ArrayChunkChain.mask_matrix`), and the interval-statistics
   helpers in :mod:`repro.engine.stats`.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple, cast

import numpy as np

from ..errors import SimulationError
from .chunk_chain import ChunkChain, ChunkEntry
from .fault import InFlightMigration
from .page_table import PageTable

__all__ = [
    "ArrayPageTable",
    "ArrayChunkEntry",
    "ArrayChunkChain",
    "ArrayCoverage",
    "unpack_masks",
]

#: Slack appended/prepended when an origin-offset array must grow, so growth
#: is amortised instead of per-page.
_PAD_PAGES = 4096
_PAD_CHUNKS = 512


def unpack_masks(masks: List[int], pages: int) -> "np.ndarray":
    """Bit-matrix view of per-chunk masks: shape ``(len(masks), pages)``.

    Column ``i`` is bit ``i`` (page ``i`` of the chunk), dtype uint8 — the
    numpy bit-vector form of the chain's touch/residency masks, used by the
    property tests and the vectorized stats helpers.
    """
    arr = np.asarray(masks, dtype=np.uint64).reshape(-1, 1)
    shifts = np.arange(pages, dtype=np.uint64)
    return ((arr >> shifts) & 1).astype(np.uint8)


class ArrayPageTable(PageTable):
    """Residency map over flat origin-offset arrays.

    ``_frames[vpn - origin]`` holds the physical frame (``-1`` = unmapped);
    accessed/dirty bits live in parallel bytearrays.  The radix walk
    structure (``node_keys``) is inherited unchanged — it is pure
    arithmetic on the VPN.
    """

    __slots__ = ("_frames", "_accessed", "_dirty", "_origin", "_resident")

    def __init__(
        self, levels: int = 4, origin_hint: int = 0, size_hint: int = 0
    ) -> None:
        super().__init__(levels)
        self._origin = origin_hint
        n = max(size_hint, _PAD_PAGES)
        self._frames: List[int] = [-1] * n
        self._accessed = bytearray(n)
        self._dirty = bytearray(n)
        self._resident = 0

    # --- growth -----------------------------------------------------------

    def _ensure(self, vpn: int) -> int:
        """Local index for ``vpn``, growing the arrays in place if needed."""
        idx = vpn - self._origin
        if idx < 0:
            pad = max(-idx, _PAD_PAGES)
            self._frames[:0] = [-1] * pad
            self._accessed[:0] = bytes(pad)
            self._dirty[:0] = bytes(pad)
            self._origin -= pad
            return vpn - self._origin
        n = len(self._frames)
        if idx >= n:
            pad = idx - n + 1 + _PAD_PAGES
            self._frames.extend([-1] * pad)
            self._accessed.extend(bytes(pad))
            self._dirty.extend(bytes(pad))
        return idx

    # --- residency --------------------------------------------------------

    def __len__(self) -> int:
        return self._resident

    def __contains__(self, vpn: int) -> bool:
        return self.is_resident(vpn)

    def is_resident(self, vpn: int) -> bool:
        idx = vpn - self._origin
        if 0 <= idx < len(self._frames):
            return self._frames[idx] >= 0
        return False

    def frame_of(self, vpn: int) -> Optional[int]:
        idx = vpn - self._origin
        if 0 <= idx < len(self._frames):
            frame = self._frames[idx]
            if frame >= 0:
                return frame
        return None

    def map(self, vpn: int, frame: int) -> None:
        """Install a translation.  Pages arrive untouched and clean."""
        idx = self._ensure(vpn)
        if self._frames[idx] >= 0:
            raise SimulationError(f"vpn {vpn} already mapped")
        self._frames[idx] = frame
        self._accessed[idx] = 0
        self._dirty[idx] = 0
        self._resident += 1
        if self._resident > self.resident_peak:
            self.resident_peak = self._resident

    def unmap(self, vpn: int) -> Tuple[int, bool, bool]:
        """Remove a translation; returns (frame, accessed, dirty)."""
        idx = vpn - self._origin
        if not (0 <= idx < len(self._frames)) or self._frames[idx] < 0:
            raise SimulationError(f"vpn {vpn} not mapped")
        frame = self._frames[idx]
        self._frames[idx] = -1
        self._resident -= 1
        return frame, bool(self._accessed[idx]), bool(self._dirty[idx])

    def record_access(self, vpn: int, is_write: bool = False) -> None:
        """Set the accessed (and possibly dirty) bit, as MMU hardware would."""
        idx = vpn - self._origin
        if not (0 <= idx < len(self._frames)) or self._frames[idx] < 0:
            raise SimulationError(f"access to non-resident vpn {vpn}")
        self._accessed[idx] = 1
        if is_write:
            self._dirty[idx] = 1

    def accessed(self, vpn: int) -> bool:
        idx = vpn - self._origin
        if 0 <= idx < len(self._frames) and self._frames[idx] >= 0:
            return bool(self._accessed[idx])
        return False

    def dirty(self, vpn: int) -> bool:
        idx = vpn - self._origin
        if 0 <= idx < len(self._frames) and self._frames[idx] >= 0:
            return bool(self._dirty[idx])
        return False

    def resident_vpns(self) -> List[int]:
        """Snapshot of resident VPNs (sorted) — bulk, so vectorized."""
        frames = np.asarray(self._frames, dtype=np.int64)
        vpns = np.flatnonzero(frames >= 0) + self._origin
        return cast(List[int], vpns.tolist())


class ArrayChunkEntry(ChunkEntry):
    """Slot-backed handle presenting one chain slot as a :class:`ChunkEntry`.

    All metadata fields are properties over the owning chain's parallel
    arrays, so the inherited mask helpers (``mark_resident``,
    ``untouch_level``, ``partition``, …) operate on array state unchanged.
    The handle stores only its absolute chunk id (rebase-safe: local slot
    indices are recomputed per access).
    """

    __slots__ = ("_chain",)

    def __init__(self, chain: "ArrayChunkChain", chunk_id: int) -> None:
        # Deliberately does NOT call ChunkEntry.__init__ — that would write
        # defaults through the properties into the (possibly live) slot.
        self._chain = chain
        self.chunk_id = chunk_id

    @property
    def resident_mask(self) -> int:
        c = self._chain
        return c._res[self.chunk_id - c._origin]

    @resident_mask.setter
    def resident_mask(self, value: int) -> None:
        c = self._chain
        c._res[self.chunk_id - c._origin] = value

    @property
    def touched_mask(self) -> int:
        c = self._chain
        return c._tch[self.chunk_id - c._origin]

    @touched_mask.setter
    def touched_mask(self, value: int) -> None:
        c = self._chain
        c._tch[self.chunk_id - c._origin] = value

    @property
    def prefetch_mask(self) -> int:
        c = self._chain
        return c._pfm[self.chunk_id - c._origin]

    @prefetch_mask.setter
    def prefetch_mask(self, value: int) -> None:
        c = self._chain
        c._pfm[self.chunk_id - c._origin] = value

    @property
    def counter(self) -> int:
        c = self._chain
        return c._ctr[self.chunk_id - c._origin]

    @counter.setter
    def counter(self, value: int) -> None:
        c = self._chain
        c._ctr[self.chunk_id - c._origin] = value

    @property
    def last_ref_interval(self) -> int:
        c = self._chain
        return c._lref[self.chunk_id - c._origin]

    @last_ref_interval.setter
    def last_ref_interval(self, value: int) -> None:
        c = self._chain
        c._lref[self.chunk_id - c._origin] = value

    @property
    def insert_interval(self) -> int:
        c = self._chain
        return c._iint[self.chunk_id - c._origin]

    @insert_interval.setter
    def insert_interval(self, value: int) -> None:
        c = self._chain
        c._iint[self.chunk_id - c._origin] = value

    @property
    def insert_order(self) -> int:
        c = self._chain
        return c._iord[self.chunk_id - c._origin]

    @insert_order.setter
    def insert_order(self, value: int) -> None:
        c = self._chain
        c._iord[self.chunk_id - c._origin] = value

    @property
    def in_chain(self) -> bool:
        c = self._chain
        li = self.chunk_id - c._origin
        return bool(c._inch[li])

    @in_chain.setter
    def in_chain(self, value: bool) -> None:
        c = self._chain
        c._inch[self.chunk_id - c._origin] = 1 if value else 0

    @property
    def prev(self) -> Optional[ChunkEntry]:
        c = self._chain
        cid = c._prv[self.chunk_id - c._origin]
        return c.get(cid) if cid >= 0 else None

    @prev.setter
    def prev(self, value: Optional[ChunkEntry]) -> None:
        raise SimulationError("array chain links are managed by the chain")

    @property
    def next(self) -> Optional[ChunkEntry]:
        c = self._chain
        cid = c._nxt[self.chunk_id - c._origin]
        return c.get(cid) if cid >= 0 else None

    @next.setter
    def next(self, value: Optional[ChunkEntry]) -> None:
        raise SimulationError("array chain links are managed by the chain")


class ArrayChunkChain(ChunkChain):
    """The recency chain as parallel per-chunk arrays.

    Slot ``chunk_id - _origin`` of each array holds that chunk's metadata;
    the doubly-linked recency order is intrusive, stored as *absolute*
    chunk ids in ``_prv``/``_nxt`` (``-1`` = end), so a low-side rebase
    shifts every array in lockstep and no link needs fixing up.  Iteration
    and the partition helpers are inherited where possible — they are
    defined in terms of the overridden primitives.
    """

    def __init__(self) -> None:
        # Deliberately does not call ChunkChain.__init__: the sentinel
        # nodes and dict index do not exist in this representation.
        n = _PAD_CHUNKS
        self._origin = 0
        self._res: List[int] = [0] * n
        self._tch: List[int] = [0] * n
        self._pfm: List[int] = [0] * n
        self._ctr: List[int] = [0] * n
        self._lref: List[int] = [0] * n
        self._iint: List[int] = [0] * n
        self._iord: List[int] = [0] * n
        self._prv: List[int] = [-1] * n
        self._nxt: List[int] = [-1] * n
        self._inch = bytearray(n)
        self._handles: List[Optional[ArrayChunkEntry]] = [None] * n
        self._first = -1  # absolute chunk id of the LRU-most entry
        self._last = -1  # absolute chunk id of the MRU-most entry
        self._count = 0
        self._insert_seq = 0
        self.length_peak = 0

    # --- slot management --------------------------------------------------

    def _ensure(self, chunk_id: int) -> int:
        """Local slot index for ``chunk_id``, growing arrays in place."""
        li = chunk_id - self._origin
        if li < 0:
            pad = max(-li, _PAD_CHUNKS)
            for lst in (
                self._res, self._tch, self._pfm, self._ctr,
                self._lref, self._iint, self._iord,
            ):
                lst[:0] = [0] * pad
            self._prv[:0] = [-1] * pad
            self._nxt[:0] = [-1] * pad
            self._handles[:0] = [None] * pad
            self._inch[:0] = bytes(pad)
            self._origin -= pad
            return chunk_id - self._origin
        n = len(self._inch)
        if li >= n:
            pad = li - n + 1 + _PAD_CHUNKS
            for lst in (
                self._res, self._tch, self._pfm, self._ctr,
                self._lref, self._iint, self._iord,
            ):
                lst.extend([0] * pad)
            self._prv.extend([-1] * pad)
            self._nxt.extend([-1] * pad)
            self._handles.extend([None] * pad)
            self._inch.extend(bytes(pad))
        return li

    def _handle(self, li: int) -> ArrayChunkEntry:
        handle = self._handles[li]
        if handle is None:
            handle = ArrayChunkEntry(self, li + self._origin)
            self._handles[li] = handle
        return handle

    # --- queries ----------------------------------------------------------

    def __len__(self) -> int:
        return self._count

    def __contains__(self, chunk_id: int) -> bool:
        li = chunk_id - self._origin
        return 0 <= li < len(self._inch) and bool(self._inch[li])

    def get(self, chunk_id: int) -> Optional[ChunkEntry]:
        li = chunk_id - self._origin
        if 0 <= li < len(self._inch) and self._inch[li]:
            return self._handle(li)
        return None

    # --- public operations ------------------------------------------------

    def new_entry(self, chunk_id: int, interval: int) -> ChunkEntry:
        """Reset the chunk's slot to a fresh entry and return its handle."""
        li = self._ensure(chunk_id)
        self._res[li] = 0
        self._tch[li] = 0
        self._pfm[li] = 0
        self._ctr[li] = 0
        self._lref[li] = interval
        self._iint[li] = interval
        self._iord[li] = 0
        return self._handle(li)

    def _adopt(self, entry: ChunkEntry) -> int:
        """Slot index for ``entry``, copying field values in when ``entry``
        is a foreign (plain :class:`ChunkEntry`) object rather than this
        chain's own handle — e.g. MHPE re-inserting a buffered snapshot of
        a wrongly evicted chunk."""
        li = self._ensure(entry.chunk_id)
        if self._handles[li] is not entry:
            self._res[li] = entry.resident_mask
            self._tch[li] = entry.touched_mask
            self._pfm[li] = entry.prefetch_mask
            self._ctr[li] = entry.counter
            self._lref[li] = entry.last_ref_interval
            self._iint[li] = entry.insert_interval
        return li

    def _link_tail(self, chunk_id: int, li: int) -> None:
        last = self._last
        self._prv[li] = last
        self._nxt[li] = -1
        if last >= 0:
            self._nxt[last - self._origin] = chunk_id
        else:
            self._first = chunk_id
        self._last = chunk_id
        self._inch[li] = 1
        self._count += 1
        if self._count > self.length_peak:
            self.length_peak = self._count

    def insert_tail(self, entry: ChunkEntry) -> None:
        """Insert at the MRU position (normal arrival of a migrated chunk)."""
        li = self._adopt(entry)
        if self._inch[li]:
            raise SimulationError(f"chunk {entry.chunk_id} already in chain")
        self._iord[li] = self._insert_seq
        self._insert_seq += 1
        self._link_tail(entry.chunk_id, li)

    def insert_head(self, entry: ChunkEntry) -> None:
        """Insert at the LRU position (MHPE's wrongly-evicted re-insertion)."""
        li = self._adopt(entry)
        if self._inch[li]:
            raise SimulationError(f"chunk {entry.chunk_id} already in chain")
        self._iord[li] = self._insert_seq
        self._insert_seq += 1
        chunk_id = entry.chunk_id
        first = self._first
        self._nxt[li] = first
        self._prv[li] = -1
        if first >= 0:
            self._prv[first - self._origin] = chunk_id
        else:
            self._last = chunk_id
        self._first = chunk_id
        self._inch[li] = 1
        self._count += 1
        if self._count > self.length_peak:
            self.length_peak = self._count

    def remove(self, chunk_id: int) -> ChunkEntry:
        """Remove and return the entry for ``chunk_id`` (eviction)."""
        li = chunk_id - self._origin
        if not (0 <= li < len(self._inch)) or not self._inch[li]:
            raise SimulationError(f"chunk {chunk_id} not in chain")
        prv = self._prv[li]
        nxt = self._nxt[li]
        if prv >= 0:
            self._nxt[prv - self._origin] = nxt
        else:
            self._first = nxt
        if nxt >= 0:
            self._prv[nxt - self._origin] = prv
        else:
            self._last = prv
        self._prv[li] = -1
        self._nxt[li] = -1
        self._inch[li] = 0
        self._count -= 1
        return self._handle(li)

    def move_to_tail(self, chunk_id: int) -> None:
        """Refresh recency (LRU policies call this on touch)."""
        li = chunk_id - self._origin
        if not (0 <= li < len(self._inch)) or not self._inch[li]:
            raise SimulationError(f"chunk {chunk_id} not in chain")
        if self._last == chunk_id:
            return  # unlink + relink at tail is a no-op
        prv = self._prv[li]
        nxt = self._nxt[li]
        if prv >= 0:
            self._nxt[prv - self._origin] = nxt
        else:
            self._first = nxt
        # nxt >= 0 always here: chunk_id is not the tail.
        self._prv[nxt - self._origin] = prv
        last = self._last
        self._prv[li] = last
        self._nxt[li] = -1
        self._nxt[last - self._origin] = chunk_id
        self._last = chunk_id

    # --- iteration --------------------------------------------------------

    def from_head(self) -> Iterator[ChunkEntry]:
        """LRU-most first."""
        cid = self._first
        while cid >= 0:
            li = cid - self._origin
            nxt = self._nxt[li]
            yield self._handle(li)
            cid = nxt

    def from_tail(self) -> Iterator[ChunkEntry]:
        """MRU-most first."""
        cid = self._last
        while cid >= 0:
            li = cid - self._origin
            prv = self._prv[li]
            yield self._handle(li)
            cid = prv

    # --- bulk views -------------------------------------------------------

    def chain_chunk_ids(self) -> List[int]:
        """Chunk ids in chain order, head (LRU) first."""
        out: List[int] = []
        cid = self._first
        while cid >= 0:
            out.append(cid)
            cid = self._nxt[cid - self._origin]
        return out

    def mask_matrix(self, pages_per_chunk: int) -> "np.ndarray":
        """Stacked numpy bit-vectors for the in-chain chunks, head first.

        Shape ``(len(chain), 3, pages_per_chunk)`` — rows are (resident,
        touched, prefetch) per chunk.  Bulk view for tests and analysis.
        """
        ids = self.chain_chunk_ids()
        lis = [cid - self._origin for cid in ids]
        res = unpack_masks([self._res[li] for li in lis], pages_per_chunk)
        tch = unpack_masks([self._tch[li] for li in lis], pages_per_chunk)
        pfm = unpack_masks([self._pfm[li] for li in lis], pages_per_chunk)
        return np.stack([res, tch, pfm], axis=1)


class ArrayCoverage:
    """Origin-offset slot list emulating the frontend's coverage dict.

    Duck-types the handful of ``Dict[int, InFlightMigration]`` operations
    :class:`~repro.memsim.system.FaultFrontend` and the scheduler use, so
    the stage code is backend-agnostic.
    """

    __slots__ = ("_slots", "_origin", "_empty", "_count")

    def __init__(self) -> None:
        self._slots: List[Optional[InFlightMigration]] = [None] * _PAD_PAGES
        self._origin = 0
        self._empty = True
        self._count = 0

    def _ensure(self, vpn: int) -> int:
        if self._empty:
            # Re-anchor on first use: traces are rebased to a high base VPN
            # (``Workload.base_vpn``), so anchoring at 0 would allocate the
            # whole gap below it.
            self._origin = vpn - vpn % _PAD_PAGES
            self._empty = False
        idx = vpn - self._origin
        if idx < 0:
            pad = max(-idx, _PAD_PAGES)
            self._slots[:0] = [None] * pad
            self._origin -= pad
            return vpn - self._origin
        n = len(self._slots)
        if idx >= n:
            self._slots.extend([None] * (idx - n + 1 + _PAD_PAGES))
        return idx

    def __len__(self) -> int:
        return self._count

    def __contains__(self, vpn: int) -> bool:
        idx = vpn - self._origin
        return 0 <= idx < len(self._slots) and self._slots[idx] is not None

    def __getitem__(self, vpn: int) -> InFlightMigration:
        idx = vpn - self._origin
        if 0 <= idx < len(self._slots):
            mig = self._slots[idx]
            if mig is not None:
                return mig
        raise KeyError(vpn)

    def __setitem__(self, vpn: int, mig: InFlightMigration) -> None:
        idx = self._ensure(vpn)
        if self._slots[idx] is None:
            self._count += 1
        self._slots[idx] = mig

    def get(
        self, vpn: int, default: Optional[InFlightMigration] = None
    ) -> Optional[InFlightMigration]:
        idx = vpn - self._origin
        if 0 <= idx < len(self._slots):
            mig = self._slots[idx]
            if mig is not None:
                return mig
        return default

    def pop(
        self, vpn: int, default: Optional[InFlightMigration] = None
    ) -> Optional[InFlightMigration]:
        idx = vpn - self._origin
        if 0 <= idx < len(self._slots):
            mig = self._slots[idx]
            if mig is not None:
                self._slots[idx] = None
                self._count -= 1
                return mig
        return default
