"""Far-fault bookkeeping.

A :class:`FarFault` records one SM access that missed device memory.  The
GMMU groups faults by chunk: while a migration for a chunk is in flight,
additional faults to pages covered by that migration merge into it (they are
resolved together, as the replayable-far-fault hardware of [9] does), and
faults to same-chunk pages *not* covered queue as fresh faults.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Set

__all__ = ["FarFault", "InFlightMigration"]


@dataclass
class FarFault:
    """One outstanding faulted access."""

    vpn: int
    sm_id: int
    time: int
    is_write: bool
    #: Called with the completion time when the page becomes resident.
    on_resolve: Callable[[int], None]

    def trace_args(self) -> Dict[str, Any]:
        """Structured-event payload for the observability tracer."""
        return {"vpn": self.vpn, "sm": self.sm_id, "write": self.is_write}


@dataclass
class InFlightMigration:
    """A fault-service operation the GMMU is currently executing."""

    chunk_id: int
    pages: Set[int]  # VPNs being migrated in
    faults: List[FarFault] = field(default_factory=list)
    start_time: int = 0
    finish_time: int = 0
    #: Issue-order token assigned by the GMMU; stable across processes
    #: (unlike ``id()``), so it can key bookkeeping tables.
    token: int = -1

    def covers(self, vpn: int) -> bool:
        return vpn in self.pages

    def attach(self, fault: FarFault) -> None:
        self.faults.append(fault)

    def trace_args(self) -> Dict[str, Any]:
        """Structured-event payload for the observability tracer."""
        return {
            "chunk": self.chunk_id,
            "pages": len(self.pages),
            "faults": len(self.faults),
            "token": self.token,
        }
