"""Structured event tracer with simulation-time stamps.

Components emit :class:`TraceEvent` records through a :class:`Tracer`; with
tracing disabled (the default :class:`NullTracer`) every hot call site is
guarded by ``tracer.enabled``, so a disabled run never builds the kwargs
dict — tracing is zero-overhead when off and, by construction, cannot
influence simulation state when on (the tracer only records).

Timestamps are **simulation cycles** (the event-queue clock), never wall
clock: a trace of a seeded run is itself deterministic, and ``repro lint``
REPRO101-105 hold for this module like any other simulation code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

__all__ = [
    "EVENT_KINDS",
    "TraceEvent",
    "Tracer",
    "NullTracer",
]

#: The structured record vocabulary.  Exporters key off these; emitting an
#: unknown kind raises so the vocabulary cannot silently drift.
EVENT_KINDS: Tuple[str, ...] = (
    "run_start",        # simulation begins (workload/policy/prefetcher/capacity)
    "run_end",          # simulation finished (cycles, crashed)
    "fault",            # far fault raised by an SM
    "migration",        # fault-service op completed (args: dur = latency)
    "eviction",         # one victim chunk unmapped
    "memory_full",      # device memory reached capacity for the first time
    "strategy_switch",  # eviction policy changed strategy
    "forward_distance", # MHPE forward distance set/adjusted (corrected value)
    "interval",         # interval boundary (64 migrated pages) + telemetry
    "pattern_record",   # pattern buffer stored an evicted chunk's pattern
    "pattern_hit",      # faulted page matched a recorded pattern
    "pattern_mismatch", # faulted page mismatched a recorded pattern
    "pattern_delete",   # pattern entry removed (deletion scheme)
    "pcie",             # PCIe transfer charged (h2d migration / d2h writeback)
    "worker_failure",   # harness: a spec's worker failed/timed out (no result)
)

_KNOWN_KINDS = frozenset(EVENT_KINDS)


@dataclass
class TraceEvent:
    """One structured trace record.

    ``time`` is in simulation cycles.  ``run`` labels which simulation the
    event came from when traces of several runs are merged (empty for a
    single-run trace).
    """

    time: int
    kind: str
    args: Dict[str, object] = field(default_factory=dict)
    run: str = ""

    def to_json_dict(self) -> Dict[str, object]:
        """Flat, deterministic dict for the JSONL exporter."""
        out: Dict[str, object] = {"time": self.time, "kind": self.kind}
        if self.run:
            out["run"] = self.run
        out["args"] = {k: self.args[k] for k in sorted(self.args)}
        return out


class Tracer:
    """Append-only in-memory event sink."""

    enabled = True

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []

    def __len__(self) -> int:
        return len(self.events)

    def emit(self, kind: str, time: int, **args: object) -> None:
        """Record one event.  ``time`` is the simulation clock in cycles."""
        if kind not in _KNOWN_KINDS:
            raise ValueError(f"unknown trace event kind {kind!r}")
        self.events.append(TraceEvent(time=time, kind=kind, args=args))

    def extend(self, events: Iterable[TraceEvent], run: str = "") -> None:
        """Merge events recorded elsewhere (a pool worker), tagged ``run``."""
        if run:
            self.events.extend(
                TraceEvent(time=e.time, kind=e.kind, args=e.args, run=run)
                for e in events
            )
        else:
            self.events.extend(events)

    def of_kind(self, kind: str) -> List[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    def kind_counts(self) -> Dict[str, int]:
        """``{kind: count}`` over the recorded events (sorted by kind)."""
        counts: Dict[str, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return {k: counts[k] for k in sorted(counts)}


class NullTracer(Tracer):
    """Disabled tracer: ``enabled`` is False and ``emit`` is a no-op.

    Hot paths guard on ``tracer.enabled`` so the no-op is never even
    reached during normal (untraced) simulation.
    """

    enabled = False

    def emit(self, kind: str, time: int, **args: object) -> None:
        pass
