"""Observability handle: one tracer + one metrics registry.

A single :class:`Observability` object is threaded (explicitly, never via
``SimConfig``) through ``Simulator`` -> ``GMMU`` -> policies / prefetchers /
PCIe.  Keeping it out of :class:`~repro.config.SimConfig` is deliberate:
the result-cache key is a content hash of ``(RunSpec, SimConfig)``, and
observability must be invisible to it — a traced and an untraced run of the
same config have the same key and produce bit-identical results.

The module-level :data:`DISABLED` singleton is the default everywhere; it is
stateless (null tracer, null registry) and safe to share across simulations
and processes.  Enabled instances are per-run: build one with
:func:`make_observability` (or ``Observability.enabled_()``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from .metrics import MetricsRegistry, NullRegistry
from .tracer import NullTracer, TraceEvent, Tracer

__all__ = ["ObsConfig", "Observability", "DISABLED", "make_observability"]


@dataclass(frozen=True)
class ObsConfig:
    """Picklable observability request, shipped to pool workers.

    This is *not* part of :class:`~repro.config.SimConfig` and never enters
    the result-cache key.
    """

    trace: bool = True
    metrics: bool = True

    @property
    def enabled(self) -> bool:
        return self.trace or self.metrics


class Observability:
    """The tracer/registry pair a simulation reports into."""

    def __init__(self, tracer: Tracer, metrics: MetricsRegistry) -> None:
        self.tracer = tracer
        self.metrics = metrics

    @property
    def enabled(self) -> bool:
        return self.tracer.enabled or self.metrics.enabled

    @classmethod
    def enabled_(cls) -> "Observability":
        """A fresh, fully enabled instance (one per traced run/merge)."""
        return cls(Tracer(), MetricsRegistry())

    @classmethod
    def disabled(cls) -> "Observability":
        return cls(NullTracer(), NullRegistry())

    def absorb(
        self,
        run: str,
        events: List[TraceEvent],
        snapshot: Dict[str, Dict[str, object]],
    ) -> None:
        """Merge one finished run's trace + metrics under the label ``run``.

        Callers (the harness) absorb runs in a deterministic order — input
        spec order — so a merged multi-run trace is reproducible regardless
        of pool scheduling.
        """
        self.tracer.extend(events, run=run)
        self.metrics.absorb(snapshot, prefix=run)

    def config(self) -> ObsConfig:
        """The :class:`ObsConfig` that reproduces this instance's shape."""
        return ObsConfig(
            trace=self.tracer.enabled, metrics=self.metrics.enabled
        )


#: Shared do-nothing instance: the default for every simulation component.
DISABLED = Observability.disabled()


def make_observability(config: Optional[ObsConfig]) -> Observability:
    """Build the observability described by ``config`` (None = disabled)."""
    if config is None or not config.enabled:
        return DISABLED
    return Observability(
        Tracer() if config.trace else NullTracer(),
        MetricsRegistry() if config.metrics else NullRegistry(),
    )
