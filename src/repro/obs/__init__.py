"""Simulation observability: metrics registry, event tracer, exporters.

Off by default and invisible to the result cache — see :mod:`repro.obs.core`.

Harness drivers report into the same registry as simulations: the adaptive
sweep loop (:mod:`repro.analysis.adaptive`) counts ``sweep/rounds``,
``sweep/proposed_points``, ``sweep/cached_points`` and
``sweep/simulated_points`` when handed an enabled instance, and the
experiment service (:mod:`repro.service`) counts ``service/...`` job
traffic.  :mod:`repro.obs.bus` provides the :class:`EventBus` the service
streams job/progress/fault events through.
"""

from .bus import BusEvent, EventBus
from .core import DISABLED, Observability, ObsConfig, make_observability
from .export import (
    INTERVAL_COLUMNS,
    chrome_trace,
    interval_rows,
    validate_chrome_trace,
    write_chrome_trace,
    write_intervals,
    write_jsonl,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
)
from .tracer import EVENT_KINDS, NullTracer, TraceEvent, Tracer

__all__ = [
    "BusEvent",
    "EventBus",
    "DISABLED",
    "Observability",
    "ObsConfig",
    "make_observability",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "Tracer",
    "NullTracer",
    "TraceEvent",
    "EVENT_KINDS",
    "INTERVAL_COLUMNS",
    "chrome_trace",
    "interval_rows",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_intervals",
    "write_jsonl",
]
