"""Trace exporters: JSONL, Chrome ``trace_event`` JSON, interval timeseries.

Three views of one event stream:

* **JSONL** — one structured record per line, grep/jq-friendly;
* **Chrome trace** — the ``chrome://tracing`` / Perfetto ``trace_event``
  format (JSON object with a ``traceEvents`` array): migrations render as
  duration slices, faults/evictions as instants, forward distance and
  interval telemetry as counter tracks;
* **intervals** — a per-interval timeseries table (forward distance,
  strategy, untouch level, wrong evictions, pattern-buffer occupancy, PCIe
  bytes), the data behind the paper's Figs. 3-10 style analysis.

All exporters are pure functions of the event list (plus the configured
clock for cycle->microsecond conversion) — exporting a deterministic trace
is itself deterministic.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Sequence, Tuple, Union

from ..units import DEFAULT_CLOCK_HZ
from .tracer import TraceEvent

__all__ = [
    "INTERVAL_COLUMNS",
    "write_jsonl",
    "chrome_trace",
    "write_chrome_trace",
    "validate_chrome_trace",
    "interval_rows",
    "write_intervals",
]

PathLike = Union[str, Path]

#: Column order of the per-interval timeseries.
INTERVAL_COLUMNS: Tuple[str, ...] = (
    "run",
    "index",
    "end_time",
    "strategy",
    "forward_distance",
    "untouch_level",
    "wrong_evictions",
    "faults",
    "chunks_evicted",
    "pattern_occupancy",
    "bytes_h2d",
    "bytes_d2h",
)

#: Event kind -> Chrome tid lane (one named row per subsystem per run).
_LANES: Dict[str, Tuple[int, str]] = {
    "run_start": (0, "run"),
    "run_end": (0, "run"),
    "memory_full": (0, "run"),
    "worker_failure": (0, "run"),
    "fault": (1, "gmmu"),
    "migration": (1, "gmmu"),
    "eviction": (1, "gmmu"),
    "interval": (1, "gmmu"),
    "strategy_switch": (2, "policy"),
    "forward_distance": (2, "policy"),
    "pattern_record": (3, "prefetch"),
    "pattern_hit": (3, "prefetch"),
    "pattern_mismatch": (3, "prefetch"),
    "pattern_delete": (3, "prefetch"),
    "pcie": (4, "pcie"),
}

#: Interval-event args rendered as Chrome counter tracks.
_INTERVAL_COUNTERS: Tuple[str, ...] = (
    "untouch_level",
    "wrong_evictions",
    "pattern_occupancy",
)


# --------------------------------------------------------------------- JSONL


def write_jsonl(events: Sequence[TraceEvent], path: PathLike) -> Path:
    """One sorted-key JSON object per line; returns the written path."""
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    with out.open("w", encoding="utf-8") as fh:
        for event in events:
            fh.write(json.dumps(event.to_json_dict(), sort_keys=True))
            fh.write("\n")
    return out


# -------------------------------------------------------------- Chrome trace


def _ts_us(cycles: int, clock_hz: float) -> float:
    """Simulation cycles -> trace_event microseconds."""
    return cycles * 1e6 / clock_hz


def chrome_trace(
    events: Sequence[TraceEvent], clock_hz: float = DEFAULT_CLOCK_HZ
) -> Dict[str, object]:
    """Build a ``trace_event``-format payload from ``events``.

    Runs map to Chrome *processes* (pid per run label, in first-appearance
    order), subsystems to named *threads*; migrations become ``X`` duration
    slices, scalar telemetry becomes ``C`` counter samples, everything else
    an instant.
    """
    pids: Dict[str, int] = {}
    trace_events: List[Dict[str, object]] = []

    for event in events:
        run = event.run or "run"
        if run not in pids:
            pid = len(pids) + 1
            pids[run] = pid
            trace_events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": run},
                }
            )
            for tid, lane in sorted(set(_LANES.values())):
                trace_events.append(
                    {
                        "name": "thread_name",
                        "ph": "M",
                        "pid": pid,
                        "tid": tid,
                        "args": {"name": lane},
                    }
                )
        pid = pids[run]
        tid = _LANES.get(event.kind, (0, "run"))[0]
        ts = _ts_us(event.time, clock_hz)
        args = {k: event.args[k] for k in sorted(event.args)}

        if event.kind == "migration":
            dur_cycles = args.pop("dur", 0)
            dur = dur_cycles if isinstance(dur_cycles, (int, float)) else 0
            trace_events.append(
                {
                    "name": "migration",
                    "cat": "gmmu",
                    "ph": "X",
                    "ts": ts,
                    "dur": _ts_us(int(dur), clock_hz),
                    "pid": pid,
                    "tid": tid,
                    "args": args,
                }
            )
        elif event.kind == "forward_distance":
            trace_events.append(
                {
                    "name": "forward_distance",
                    "ph": "C",
                    "ts": ts,
                    "pid": pid,
                    "tid": tid,
                    "args": {"forward_distance": args.get("value", 0)},
                }
            )
        elif event.kind == "interval":
            for series in _INTERVAL_COUNTERS:
                if series in args:
                    trace_events.append(
                        {
                            "name": series,
                            "ph": "C",
                            "ts": ts,
                            "pid": pid,
                            "tid": tid,
                            "args": {series: args[series]},
                        }
                    )
            trace_events.append(
                {
                    "name": "interval",
                    "cat": "gmmu",
                    "ph": "i",
                    "s": "p",
                    "ts": ts,
                    "pid": pid,
                    "tid": tid,
                    "args": args,
                }
            )
        else:
            trace_events.append(
                {
                    "name": event.kind,
                    "cat": _LANES.get(event.kind, (0, "run"))[1],
                    "ph": "i",
                    "s": "t",
                    "ts": ts,
                    "pid": pid,
                    "tid": tid,
                    "args": args,
                }
            )

    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {"clock_hz": clock_hz, "time_unit": "cycles->us"},
    }


def write_chrome_trace(
    events: Sequence[TraceEvent],
    path: PathLike,
    clock_hz: float = DEFAULT_CLOCK_HZ,
) -> Path:
    """Write the Chrome trace JSON (validated first); returns the path."""
    payload = chrome_trace(events, clock_hz)
    errors = validate_chrome_trace(payload)
    if errors:  # pragma: no cover - exporter and validator move in lockstep
        raise ValueError(
            f"generated Chrome trace failed validation: {errors[:3]}"
        )
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload, sort_keys=True), encoding="utf-8")
    return out


_VALID_PHASES = frozenset({"X", "i", "I", "C", "M", "B", "E", "b", "e", "n"})


def validate_chrome_trace(payload: object) -> List[str]:
    """Check ``payload`` against the ``trace_event`` JSON object format.

    Returns a list of human-readable problems (empty = valid).  This is the
    schema gate CI runs against every uploaded trace artifact.
    """
    errors: List[str] = []
    if not isinstance(payload, dict):
        return ["top level must be a JSON object with a 'traceEvents' array"]
    trace_events = payload.get("traceEvents")
    if not isinstance(trace_events, list):
        return ["'traceEvents' must be an array"]
    for i, event in enumerate(trace_events):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            errors.append(f"{where}: not an object")
            continue
        name = event.get("name")
        if not isinstance(name, str) or not name:
            errors.append(f"{where}: missing/empty 'name'")
        ph = event.get("ph")
        if ph not in _VALID_PHASES:
            errors.append(f"{where}: invalid phase {ph!r}")
            continue
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                errors.append(f"{where}: '{key}' must be an integer")
        if ph != "M":
            ts = event.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                errors.append(f"{where}: 'ts' must be a non-negative number")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                errors.append(f"{where}: 'X' event needs non-negative 'dur'")
        if ph in ("i", "I") and event.get("s") not in (None, "t", "p", "g"):
            errors.append(f"{where}: instant scope must be 't', 'p' or 'g'")
        if "args" in event and not isinstance(event["args"], dict):
            errors.append(f"{where}: 'args' must be an object")
    return errors


# ----------------------------------------------------------------- intervals


def interval_rows(events: Sequence[TraceEvent]) -> List[Dict[str, object]]:
    """The per-interval timeseries: one row per ``interval`` event, columns
    as in :data:`INTERVAL_COLUMNS` (missing telemetry renders as '')."""
    rows: List[Dict[str, object]] = []
    for event in events:
        if event.kind != "interval":
            continue
        row: Dict[str, object] = {"run": event.run, "end_time": event.time}
        for column in INTERVAL_COLUMNS:
            if column in ("run", "end_time"):
                continue
            row[column] = event.args.get(column, "")
        rows.append(row)
    return rows


def write_intervals(events: Sequence[TraceEvent], path: PathLike) -> Path:
    """Write the interval timeseries as a TSV; returns the written path."""
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    lines = ["\t".join(INTERVAL_COLUMNS)]
    for row in interval_rows(events):
        lines.append("\t".join(str(row[c]) for c in INTERVAL_COLUMNS))
    out.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return out
