"""In-process event bus: ordered fan-out of harness telemetry.

The experiment service (:mod:`repro.service`) publishes job-lifecycle,
progress and worker-fault events here and its HTTP layer streams them out
as newline-delimited JSON.  The bus itself is deliberately dumb and
deterministic: an append-only journal of :class:`BusEvent` records with
monotonically increasing sequence numbers, plus a condition variable so
readers can block for the next batch.  It assigns **no timestamps** — the
obs package sits on the simulation side of the determinism boundary
(sim-time only, no wall clock; see :mod:`repro.devtools.boundary`), so any
wall-clock annotation is the *publisher's* job, carried inside the payload
by harness-side code.

Publishers and subscribers may live on different threads; every method is
safe under the internal lock.  ``history_limit`` bounds the journal for
long-lived buses (old events are dropped from the front; sequence numbers
keep counting, so readers can detect the gap).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

__all__ = ["BusEvent", "EventBus"]


@dataclass(frozen=True)
class BusEvent:
    """One published record: a monotonic sequence number, a kind, a payload."""

    seq: int
    kind: str
    payload: Mapping[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready view (payload keys merged beside ``seq``/``kind``;
        the reserved keys always win over payload entries)."""
        out: Dict[str, object] = dict(self.payload)
        out["seq"] = self.seq
        out["kind"] = self.kind
        return out


class EventBus:
    """Append-only, thread-safe event journal with blocking reads."""

    def __init__(self, history_limit: Optional[int] = None) -> None:
        if history_limit is not None and history_limit < 1:
            raise ValueError(
                f"history_limit must be >= 1 or None, got {history_limit}"
            )
        self._cond = threading.Condition()
        self._events: List[BusEvent] = []
        self._next_seq = 1
        self._dropped = 0  # events evicted from the front of the journal
        self._closed = False
        self._history_limit = history_limit

    # --- publishing -------------------------------------------------------

    def publish(
        self, kind: str, payload: Optional[Mapping[str, object]] = None
    ) -> BusEvent:
        """Append one event and wake every blocked reader.

        Publishing on a closed bus raises ``RuntimeError`` — a closed bus
        is a terminated job's journal, and late events would be invisible
        to streams that already saw the close.
        """
        with self._cond:
            if self._closed:
                raise RuntimeError("publish on a closed EventBus")
            event = BusEvent(
                seq=self._next_seq, kind=kind, payload=dict(payload or {})
            )
            self._next_seq += 1
            self._events.append(event)
            if (
                self._history_limit is not None
                and len(self._events) > self._history_limit
            ):
                excess = len(self._events) - self._history_limit
                del self._events[:excess]
                self._dropped += excess
            self._cond.notify_all()
            return event

    def close(self) -> None:
        """Mark the journal complete and wake every blocked reader."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    # --- reading ----------------------------------------------------------

    @property
    def closed(self) -> bool:
        with self._cond:
            return self._closed

    @property
    def last_seq(self) -> int:
        """Sequence number of the most recent event (0 when empty)."""
        with self._cond:
            return self._next_seq - 1

    @property
    def dropped(self) -> int:
        """Events evicted from the journal front by ``history_limit``."""
        with self._cond:
            return self._dropped

    def events_since(self, seq: int) -> List[BusEvent]:
        """Every retained event with a sequence number greater than ``seq``
        (non-blocking snapshot, oldest first)."""
        with self._cond:
            return self._after_locked(seq)

    def wait_since(
        self, seq: int, timeout: Optional[float] = None
    ) -> Tuple[List[BusEvent], bool]:
        """Block until there is at least one event after ``seq`` or the bus
        closes; returns ``(events, closed)``.

        A ``timeout`` (seconds) bounds the wait — on expiry the call
        returns whatever is available (possibly nothing) so a streaming
        loop can interleave keep-alive work.
        """
        with self._cond:
            if timeout is None:
                while not self._after_locked(seq) and not self._closed:
                    self._cond.wait()
            elif not self._after_locked(seq) and not self._closed:
                self._cond.wait(timeout)
            return self._after_locked(seq), self._closed

    def _after_locked(self, seq: int) -> List[BusEvent]:
        # The journal is append-only and seq-ordered; binary search would
        # be fine, but journals are short-lived and bounded — linear scan
        # from the back keeps this trivially correct.
        out: List[BusEvent] = []
        for event in reversed(self._events):
            if event.seq <= seq:
                break
            out.append(event)
        out.reverse()
        return out
