"""Typed metrics registry (counters, gauges, histograms).

Simulation components register named instruments at attach time and update
them on hot paths.  With observability disabled (the default) the registry
hands out shared null instruments whose updates are no-ops, so the
simulation pays one attribute lookup and one empty call per update site —
and nothing else (no dict churn, no allocation).

Every instrument is deterministic: values derive only from simulation
events, never from wall clock or host state, so a metrics snapshot is as
reproducible as the run that produced it (``repro lint`` REPRO101-105 apply
to this module).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullCounter",
    "NullGauge",
    "NullHistogram",
    "NullRegistry",
    "DEFAULT_HISTOGRAM_BOUNDS",
]

Number = Union[int, float]

#: Power-of-two-ish bucket upper bounds suiting page/batch counts.
DEFAULT_HISTOGRAM_BOUNDS: Tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256)


class Counter:
    """Monotonically increasing counter."""

    __slots__ = ("name", "value")

    kind = "counter"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Number = 0

    def inc(self, amount: Number = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative increment {amount}")
        self.value += amount

    def snapshot_value(self) -> object:
        return self.value


class Gauge:
    """Last-write-wins instantaneous value."""

    __slots__ = ("name", "value")

    kind = "gauge"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Number = 0

    def set(self, value: Number) -> None:
        self.value = value

    def snapshot_value(self) -> object:
        return self.value


class Histogram:
    """Fixed-bound bucket histogram (cumulative counts not kept; one bucket
    per observation, plus count/total for mean derivation)."""

    __slots__ = ("name", "bounds", "bucket_counts", "count", "total")

    kind = "histogram"

    def __init__(
        self, name: str, bounds: Sequence[Number] = DEFAULT_HISTOGRAM_BOUNDS
    ) -> None:
        if list(bounds) != sorted(bounds):
            raise ValueError(f"histogram {name}: bounds must be sorted")
        self.name = name
        self.bounds: Tuple[Number, ...] = tuple(bounds)
        self.bucket_counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total: Number = 0

    def observe(self, value: Number) -> None:
        idx = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                idx = i
                break
        self.bucket_counts[idx] += 1
        self.count += 1
        self.total += value

    def snapshot_value(self) -> object:
        return {
            "bounds": list(self.bounds),
            "buckets": list(self.bucket_counts),
            "count": self.count,
            "total": self.total,
        }


Instrument = Union[Counter, Gauge, Histogram]


class NullCounter(Counter):
    """No-op counter handed out by a disabled registry."""

    __slots__ = ()

    def inc(self, amount: Number = 1) -> None:
        pass


class NullGauge(Gauge):
    """No-op gauge handed out by a disabled registry."""

    __slots__ = ()

    def set(self, value: Number) -> None:
        pass


class NullHistogram(Histogram):
    """No-op histogram handed out by a disabled registry."""

    __slots__ = ()

    def observe(self, value: Number) -> None:
        pass


class MetricsRegistry:
    """Name -> instrument map with idempotent registration.

    Registering the same name twice returns the existing instrument (so a
    policy and the GMMU may share a counter); re-registering under a
    different type is a bug and raises.
    """

    enabled = True

    def __init__(self) -> None:
        self._instruments: Dict[str, Instrument] = {}

    def __len__(self) -> int:
        return len(self._instruments)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def _register(self, instrument: Instrument) -> Instrument:
        existing = self._instruments.get(instrument.name)
        if existing is not None:
            if type(existing).kind != type(instrument).kind:
                raise ValueError(
                    f"metric {instrument.name!r} already registered as "
                    f"{type(existing).kind}, not {type(instrument).kind}"
                )
            return existing
        self._instruments[instrument.name] = instrument
        return instrument

    def counter(self, name: str) -> Counter:
        inst = self._register(Counter(name))
        assert isinstance(inst, Counter)
        return inst

    def gauge(self, name: str) -> Gauge:
        inst = self._register(Gauge(name))
        assert isinstance(inst, Gauge)
        return inst

    def histogram(
        self, name: str, bounds: Sequence[Number] = DEFAULT_HISTOGRAM_BOUNDS
    ) -> Histogram:
        inst = self._register(Histogram(name, bounds))
        assert isinstance(inst, Histogram)
        return inst

    def value(self, name: str, default: Number = 0) -> Number:
        """Current scalar value of a counter/gauge (``default`` if absent).

        Lets a component read another component's published state without a
        direct reference — e.g. the GMMU stamps the pattern buffer occupancy
        gauge into each interval record without knowing the prefetcher type.
        """
        inst = self._instruments.get(name)
        if isinstance(inst, (Counter, Gauge)):
            return inst.value
        return default

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Deterministic (name-sorted) dump of every instrument."""
        return {
            name: {"kind": inst.kind, "value": inst.snapshot_value()}
            for name, inst in sorted(self._instruments.items())
        }

    def absorb(
        self, snapshot: Dict[str, Dict[str, object]], prefix: str = ""
    ) -> None:
        """Merge a snapshot produced elsewhere (e.g. a pool worker) under
        ``prefix``.  Counters/gauges become gauges holding the snapshot
        value; histograms are stored verbatim as gauges of their dump —
        absorbed metrics are *records* of a finished run, not live
        instruments."""
        for name in sorted(snapshot):
            payload = snapshot[name]
            full = f"{prefix}/{name}" if prefix else name
            value = payload.get("value")
            if isinstance(value, (int, float)):
                gauge = Gauge(full)
                gauge.value = value
                self._instruments[full] = gauge
            else:
                # Preserve structured values (histogram dumps) losslessly.
                self._instruments[full] = _FrozenMetric(full, value)


class _FrozenMetric(Gauge):
    """An absorbed non-scalar metric (histogram dump from a worker)."""

    __slots__ = ("payload",)

    def __init__(self, name: str, payload: object) -> None:
        super().__init__(name)
        self.payload = payload

    def snapshot_value(self) -> object:
        return self.payload


class NullRegistry(MetricsRegistry):
    """Disabled registry: every registration returns a shared no-op."""

    enabled = False

    def __init__(self) -> None:
        super().__init__()
        self._null_counter = NullCounter("null")
        self._null_gauge = NullGauge("null")
        self._null_histogram = NullHistogram("null")

    def counter(self, name: str) -> Counter:
        return self._null_counter

    def gauge(self, name: str) -> Gauge:
        return self._null_gauge

    def histogram(
        self, name: str, bounds: Sequence[Number] = DEFAULT_HISTOGRAM_BOUNDS
    ) -> Histogram:
        return self._null_histogram

    def value(self, name: str, default: Number = 0) -> Number:
        return default

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        return {}

    def absorb(
        self, snapshot: Dict[str, Dict[str, object]], prefix: str = ""
    ) -> None:
        pass
