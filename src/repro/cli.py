"""Command-line interface: ``python -m repro <command>``.

Commands
========

``list``
    The 23-application suite with footprints and pattern types (Table II).
``run APP``
    One simulation; prints the stats summary (optionally as JSON).
``figure {fig3,fig4,fig7,fig8,fig9,fig10}``
    Regenerate one of the paper's figures.
``table {table3,table4,overhead,sensitivity-fd,sensitivity-t3}``
    Regenerate one of the paper's tables / sensitivity studies.
``suite``
    Baseline-vs-CPPE speedups for the whole suite at one rate.
``trace``
    Characterise a suite application's trace, or export it as ``.npz`` for
    use outside the harness (and for bring-your-own-trace round trips).
``sweep``
    Capacity sweep for one application: slowdown vs oversubscription rate,
    with working-set knee detection.  ``--adaptive`` replaces the fixed
    rate grid with the convergence-driven loop (simulate, fit a monotone
    model, sample where the curve bends, stop when fits agree or
    ``--budget`` is exhausted).
``regen``
    Regenerate any set of figures/tables (or ``all``) through the parallel
    experiment engine: ``--jobs N`` workers, persistent result cache
    (``--cache-dir PATH``), per-batch progress on stderr.
``cache``
    Inspect (``cache stats``) or clear (``cache clear``) the persistent
    result cache.
``components``
    Inspect the component registries (``components list``,
    ``components describe KIND NAME``): every registered policy,
    prefetcher, setup and workload, including plugin components pulled in
    via ``REPRO_PLUGINS`` / the ``repro.plugins`` entry-point group.
``shootout``
    Every registered eviction policy crossed with every registered
    prefetcher on one application, run as a single cached batch and
    ranked by speedup over the baseline setup.
``lint``
    Static determinism / cache-integrity / parallel-safety analysis
    (see LINTING.md).  Exit code 0 = clean, 1 = findings, 2 = usage error.
``serve``
    Run the always-on experiment service (``repro.service``): an HTTP API
    that queues submitted batches, drains them through the parallel
    engine + result cache, and streams NDJSON progress events.
``submit``
    Client for a running service: POST a batch (built from flags or a
    JSON file), optionally wait for and print the outcome.
``status``
    Client for a running service: list batches, fetch one batch's status,
    or stream its event log.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import List, Optional

from . import registry as registry_mod
from .errors import ConfigError
from .harness import cache as cache_mod
from .harness import figures as figures_mod
from .harness import shootout as shootout_mod
from .harness import tables as tables_mod
from .harness import baselines as _baselines  # noqa: F401  (registers components)
from .harness.experiment import RunSpec, run_one
from .harness.report import render_table
from .workloads.suite import BENCHMARKS

__all__ = ["main", "build_parser"]

_FIGURES = {
    "fig3": figures_mod.fig3,
    "fig4": figures_mod.fig4,
    "fig7": figures_mod.fig7,
    "fig8": figures_mod.fig8,
    "fig9": figures_mod.fig9,
    "fig10": figures_mod.fig10,
}

_TABLES = {
    "table3": tables_mod.table3,
    "table4": tables_mod.table4,
    "overhead": tables_mod.overhead,
    "sensitivity-fd": tables_mod.sensitivity_fd,
    "sensitivity-t3": tables_mod.sensitivity_t3,
    "shootout": shootout_mod.shootout_table,
}


def _setup_arg(value: str) -> str:
    """``argparse`` validator for ``--setup``-style options: any registered
    setup name, or any ``policy+prefetcher`` pair of registered components
    (so plugin components are accepted without touching this module)."""
    try:
        registry_mod.setup_components(value)
    except ConfigError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None
    return value


def _setup_help(intro: str) -> str:
    """Help text for setup options, derived from the live registry."""
    return (f"{intro}: one of {', '.join(registry_mod.names('setup'))}; "
            "or any 'policy+prefetcher' combo of registered components "
            "(see 'repro components list')")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CPPE reproduction: GPU memory oversubscription simulator",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the benchmark suite (Table II)")

    run_p = sub.add_parser("run", help="run one simulation")
    run_p.add_argument("app", help="benchmark abbreviation, e.g. SRD")
    run_p.add_argument(
        "--setup", default="cppe", type=_setup_arg, metavar="SETUP",
        help=_setup_help("policy+prefetcher pair (default: cppe)"),
    )
    run_p.add_argument(
        "--rate", type=float, default=0.5,
        help="oversubscription rate (0 < rate <= 1); 1 disables eviction",
    )
    run_p.add_argument("--scale", type=float, default=1.0,
                       help="footprint scale factor")
    run_p.add_argument("--seed", type=int, default=None)
    run_p.add_argument(
        "--instances", type=int, default=1,
        help="shard the workload across N independent MemorySystem "
             "instances on one event queue (multi-GPU smoke scenario)",
    )
    run_p.add_argument(
        "--backend", default="object", choices=("object", "array"),
        help="data-structure backend; 'array' is the fast path and is "
             "byte-identical to 'object' (see README \"Benchmarking\")",
    )
    run_p.add_argument("--json", action="store_true",
                       help="emit the stats summary as JSON")
    run_p.add_argument(
        "--baseline", default=None, type=_setup_arg, metavar="SETUP",
        help="also run this setup and report the speedup over it",
    )

    fig_p = sub.add_parser("figure", help="regenerate a paper figure")
    fig_p.add_argument("name", choices=sorted(_FIGURES))
    fig_p.add_argument("--apps", nargs="*", default=None)
    fig_p.add_argument("--scale", type=float, default=1.0)

    tab_p = sub.add_parser("table", help="regenerate a paper table")
    tab_p.add_argument("name", choices=sorted(_TABLES))
    tab_p.add_argument("--apps", nargs="*", default=None)
    tab_p.add_argument("--scale", type=float, default=1.0)

    suite_p = sub.add_parser("suite", help="baseline vs CPPE over the suite")
    suite_p.add_argument("--rate", type=float, default=0.5)
    suite_p.add_argument("--setup", default="cppe", type=_setup_arg,
                         metavar="SETUP",
                         help=_setup_help("candidate setup (default: cppe)"))
    suite_p.add_argument("--scale", type=float, default=1.0)

    trace_p = sub.add_parser(
        "trace",
        help="profile/export an app's trace, or record a traced simulation",
    )
    trace_p.add_argument("app")
    trace_p.add_argument("--scale", type=float, default=1.0)
    trace_p.add_argument("--save", metavar="PATH", default=None,
                         help="write the trace as .npz instead of profiling")
    trace_p.add_argument(
        "--trace-dir", metavar="DIR", default=None,
        help="run a traced simulation and write the trace artifacts here "
             "(bypasses the result cache)",
    )
    trace_p.add_argument(
        "--format", default="all", choices=("jsonl", "chrome", "intervals", "all"),
        help="which trace artifacts to write under --trace-dir (default: all)",
    )
    trace_p.add_argument("--setup", default="cppe", type=_setup_arg,
                         metavar="SETUP",
                         help="policy+prefetcher pair for the traced run")
    trace_p.add_argument("--rate", type=float, default=0.5,
                         help="oversubscription rate for the traced run")
    trace_p.add_argument("--seed", type=int, default=None)

    sweep_p = sub.add_parser("sweep", help="capacity sweep for one app")
    sweep_p.add_argument("app")
    sweep_p.add_argument("--setup", default="baseline", type=_setup_arg,
                         metavar="SETUP",
                         help=_setup_help("swept setup (default: baseline)"))
    sweep_p.add_argument("--rates", nargs="*", type=float, default=None,
                         help="fixed rate grid (ignored with --adaptive)")
    sweep_p.add_argument("--scale", type=float, default=1.0)
    sweep_p.add_argument("--knee-threshold", type=float, default=1.5)
    sweep_p.add_argument("--jobs", "-j", type=int, default=None,
                         help="parallel workers (default: serial)")
    sweep_p.add_argument(
        "--adaptive", action="store_true",
        help="convergence-driven sweep: seed a coarse grid, fit a monotone "
             "model, simulate where the curve bends, stop when successive "
             "fits agree (fewer simulations than a fixed grid for the same "
             "knee estimate)",
    )
    sweep_p.add_argument(
        "--budget", type=int, default=None,
        help="adaptive only: max sampled rates, seed grid included "
             "(default: 12)",
    )
    sweep_p.add_argument(
        "--tolerance", type=float, default=None,
        help="adaptive only: max relative disagreement between successive "
             "model fits counted as converged (default: 0.15)",
    )
    sweep_p.add_argument(
        "--seed-rates", nargs="*", type=float, default=None,
        help="adaptive only: first-round rate grid (default: 1.0 0.7 0.4; "
             "1.0 is always included — it anchors the slowdowns)",
    )
    sweep_p.add_argument(
        "--crash-budget-factor", type=float, default=None,
        help="enable the runaway-thrashing crash model with this eviction "
             "budget (multiples of the footprint's chunk count); crashed "
             "points are excluded from the knee and reported as crash_rate",
    )
    sweep_p.add_argument("--json", action="store_true",
                         help="emit the sweep as JSON (crashed points "
                              "carry slowdown null)")

    regen_p = sub.add_parser(
        "regen",
        help="regenerate figures/tables in parallel with a persistent cache",
    )
    regen_p.add_argument(
        "artifacts", nargs="+",
        choices=sorted(_FIGURES) + sorted(_TABLES) + ["all"],
        help="figure/table names, or 'all' for the full evaluation",
    )
    regen_p.add_argument(
        "--jobs", "-j", type=int, default=None,
        help="worker processes (default: os.cpu_count())",
    )
    regen_p.add_argument(
        "--cache-dir", default=None,
        help="result cache directory (default: $REPRO_CACHE_DIR or "
             "~/.cache/repro-cppe)",
    )
    regen_p.add_argument("--no-cache", action="store_true",
                         help="bypass the persistent result cache")
    regen_p.add_argument("--apps", nargs="*", default=None)
    regen_p.add_argument("--scale", type=float, default=1.0)
    regen_p.add_argument(
        "--keep-going", action="store_true",
        help="record failed specs and continue (exit 1 with a failure "
             "summary at the end); successful results still checkpoint "
             "into the cache, so a re-run resumes instead of restarting",
    )
    regen_p.add_argument(
        "--retries", type=int, default=2,
        help="broken-pool rebuild attempts before the serial fallback "
             "(default: 2); simulation failures are never retried",
    )
    regen_p.add_argument(
        "--timeout-s", type=float, default=None,
        help="reap workers after this many seconds without any worker "
             "completing (their specs are marked timed_out)",
    )

    lint_p = sub.add_parser(
        "lint",
        help="static determinism & cache-integrity checks (LINTING.md)",
    )
    lint_p.add_argument(
        "paths", nargs="*", default=["src"],
        help="files/directories to check (default: src)",
    )
    lint_p.add_argument("--json", action="store_true",
                        help="emit findings as JSON")
    lint_p.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    lint_p.add_argument(
        "--deep", action="store_true",
        help="whole-program analysis: call-graph worker reachability "
             "(REPRO6xx) and cache-key taint tracking (REPRO5xx)",
    )
    lint_p.add_argument(
        "--callgraph-cache", metavar="PATH", default=None,
        help="JSON file caching per-file call-graph summaries (keyed by "
             "source content hash); warm runs skip re-extraction of "
             "unchanged files.  Only meaningful with --deep",
    )

    bench_p = sub.add_parser(
        "bench",
        help="engine throughput benchmark (object vs array backend) + ratchet",
    )
    bench_p.add_argument("--quick", action="store_true",
                         help="smaller workloads / fewer rounds (CI mode)")
    bench_p.add_argument("--json", action="store_true",
                         help="emit the bench document as JSON on stdout")
    bench_p.add_argument(
        "--baseline", default="BENCH_baseline.json",
        help="baseline file to ratchet against (default: BENCH_baseline.json)",
    )
    bench_p.add_argument(
        "--tolerance", type=float, default=None,
        help="relative speedup-regression band (default: 0.15)",
    )
    bench_p.add_argument(
        "--min-speedup", type=float, default=None,
        help="absolute floor for the headline case speedup (default: 2.0)",
    )
    bench_p.add_argument(
        "--update-baseline", action="store_true",
        help="write this run to the baseline file after a passing ratchet",
    )

    shoot_p = sub.add_parser(
        "shootout",
        help="every registered policy x prefetcher combo on one app, ranked",
    )
    shoot_p.add_argument("app", nargs="?", default="SRD",
                         help="benchmark abbreviation (default: SRD)")
    shoot_p.add_argument("--rate", type=float, default=0.5,
                         help="oversubscription rate (default: 0.5)")
    shoot_p.add_argument("--scale", type=float, default=1.0,
                         help="footprint scale factor")
    shoot_p.add_argument("--seed", type=int, default=None)
    shoot_p.add_argument("--jobs", "-j", type=int, default=None,
                         help="parallel workers (default: serial)")
    shoot_p.add_argument(
        "--quick", action="store_true",
        help="CI mode: cap the footprint scale at 0.25",
    )
    shoot_p.add_argument(
        "--cache-dir", default=None,
        help="result cache directory (default: $REPRO_CACHE_DIR or "
             "~/.cache/repro-cppe)",
    )
    shoot_p.add_argument("--no-cache", action="store_true",
                         help="bypass the persistent result cache")
    shoot_p.add_argument(
        "--keep-going", action="store_true",
        help="tolerate individual combo failures (they are listed in the "
             "table notes instead of aborting the batch)",
    )
    shoot_p.add_argument("--json", action="store_true",
                         help="emit the ranked table and cache traffic as "
                              "JSON (includes new_simulations/cached)")

    comp_p = sub.add_parser(
        "components",
        help="inspect the component registries (policies, prefetchers, "
             "setups, workloads)",
    )
    comp_sub = comp_p.add_subparsers(dest="components_command", required=True)
    comp_list = comp_sub.add_parser("list", help="list registered components")
    comp_list.add_argument("--kind", choices=registry_mod.KINDS, default=None,
                           help="restrict to one registry kind")
    comp_list.add_argument("--json", action="store_true")
    comp_desc = comp_sub.add_parser(
        "describe", help="one component's builder, parameters and "
                         "fingerprint fields")
    comp_desc.add_argument("kind", choices=registry_mod.KINDS)
    comp_desc.add_argument("name")
    comp_desc.add_argument("--json", action="store_true")

    serve_p = sub.add_parser(
        "serve",
        help="run the always-on experiment service (HTTP submit/queue/stream)",
    )
    serve_p.add_argument("--host", default="127.0.0.1")
    serve_p.add_argument("--port", type=int, default=8765)
    serve_p.add_argument(
        "--state-dir", default="service-state",
        help="job snapshot directory; a restarted service resumes the "
             "queue found here (default: ./service-state)",
    )
    serve_p.add_argument("--jobs", "-j", type=int, default=1,
                         help="worker processes per batch (default: 1)")
    serve_p.add_argument(
        "--cache-dir", default=None,
        help="result cache directory (default: $REPRO_CACHE_DIR or "
             "~/.cache/repro-cppe)",
    )
    serve_p.add_argument("--no-cache", action="store_true",
                         help="bypass the persistent result cache")
    serve_p.add_argument(
        "--rate-per-s", type=float, default=0.0,
        help="sustained submissions/second (token bucket; 0 = unlimited)",
    )
    serve_p.add_argument("--burst", type=int, default=20,
                         help="token-bucket burst size (default: 20)")
    serve_p.add_argument(
        "--tenant-cap", type=int, default=0,
        help="max queued+running jobs per tenant (0 = unlimited)",
    )
    serve_p.add_argument(
        "--timeout-s", type=float, default=None,
        help="reap a batch's workers after this long without progress",
    )
    serve_p.add_argument("--retries", type=int, default=2,
                         help="broken-pool rebuild attempts (default: 2)")

    submit_p = sub.add_parser(
        "submit", help="submit a batch to a running experiment service"
    )
    submit_p.add_argument("apps", nargs="*",
                          help="benchmark abbreviations (one spec each)")
    submit_p.add_argument("--url", default="http://127.0.0.1:8765",
                          help="service base URL")
    submit_p.add_argument("--setup", default="cppe", type=_setup_arg,
                          metavar="SETUP",
                          help=_setup_help("setup for every spec"))
    submit_p.add_argument("--rate", type=float, default=0.5,
                          help="oversubscription rate (>= 1 disables)")
    submit_p.add_argument("--scale", type=float, default=1.0)
    submit_p.add_argument("--seed", type=int, default=None)
    submit_p.add_argument("--tenant", default="default")
    submit_p.add_argument("--priority", type=int, default=0)
    submit_p.add_argument(
        "--spec-file", metavar="PATH", default=None,
        help="read the full submission payload from this JSON file "
             "('-' = stdin) instead of building it from flags",
    )
    submit_p.add_argument("--no-wait", action="store_true",
                          help="return immediately after enqueueing")
    submit_p.add_argument("--json", action="store_true",
                          help="print the final status view as JSON")

    status_p = sub.add_parser(
        "status", help="query a running experiment service"
    )
    status_p.add_argument("job", nargs="?", default=None,
                          help="batch id (omit to list all batches)")
    status_p.add_argument("--url", default="http://127.0.0.1:8765")
    status_p.add_argument("--events", action="store_true",
                          help="print the batch's NDJSON event log")
    status_p.add_argument("--follow", action="store_true",
                          help="with --events: stream until the batch ends")
    status_p.add_argument("--json", action="store_true")

    cache_p = sub.add_parser("cache", help="inspect or clear the result cache")
    cache_sub = cache_p.add_subparsers(dest="cache_command", required=True)
    for cmd, help_text in (
        ("stats", "entry count, size on disk, hit/miss counters"),
        ("clear", "delete every cached result"),
    ):
        p = cache_sub.add_parser(cmd, help=help_text)
        p.add_argument("--cache-dir", default=None)
        if cmd == "stats":
            p.add_argument("--json", action="store_true")

    return parser


def _cmd_list() -> int:
    rows = [
        [s.abbr, s.full_name, s.suite, s.pattern_type, s.footprint_pages,
         s.generator, s.distribution]
        for s in BENCHMARKS.values()
    ]
    print(
        render_table(
            ["abbr", "name", "suite", "type", "pages", "generator", "mapping"],
            rows,
            title="Workload suite (Table II, footprints scaled; see DESIGN.md)",
        )
    )
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from .config import SimConfig

    rate = None if args.rate >= 1.0 else args.rate
    config = (SimConfig(backend=args.backend)
              if args.backend != "object" else None)
    result = run_one(
        RunSpec(args.app, args.setup, rate, scale=args.scale, seed=args.seed,
                instances=args.instances),
        config=config,
    )
    if args.json:
        payload = {
            "workload": result.workload,
            "setup": args.setup,
            "oversubscription": rate,
            "crashed": result.crashed,
            **result.stats.summary(),
        }
        print(json.dumps(payload, indent=2))
    else:
        rows = sorted(result.stats.summary().items())
        print(render_table(["metric", "value"], rows, title=result.label()))
    if args.baseline:
        base = run_one(
            RunSpec(args.app, args.baseline, rate, scale=args.scale,
                    seed=args.seed),
            config=config,
        )
        print(f"speedup over {args.baseline}: "
              f"{result.speedup_over(base):.2f}x")
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    kwargs = {"scale": args.scale}
    if args.apps:
        kwargs["apps"] = args.apps
    print(_FIGURES[args.name](**kwargs).render())
    return 0


def _cmd_table(args: argparse.Namespace) -> int:
    kwargs = {"scale": args.scale}
    if args.apps:
        if args.name.startswith("sensitivity"):
            print("note: --apps is ignored for sensitivity studies",
                  file=sys.stderr)
        else:
            kwargs["apps"] = args.apps
    print(_TABLES[args.name](**kwargs).render())
    return 0


def _cmd_suite(args: argparse.Namespace) -> int:
    rate = None if args.rate >= 1.0 else args.rate
    rows = []
    for app in BENCHMARKS:
        base = run_one(RunSpec(app, "baseline", rate, scale=args.scale))
        cand = run_one(RunSpec(app, args.setup, rate, scale=args.scale))
        if base.crashed or cand.crashed:
            rows.append([app, BENCHMARKS[app].pattern_type, None,
                         cand.stats.final_strategy])
        else:
            rows.append([app, BENCHMARKS[app].pattern_type,
                         cand.speedup_over(base), cand.stats.final_strategy])
        print(f"\r{len(rows)}/{len(BENCHMARKS)} done", end="", file=sys.stderr)
    print(file=sys.stderr)
    valid = [r[2] for r in rows if r[2] is not None]
    rows.append(["(mean)", "", sum(valid) / len(valid), ""])
    print(
        render_table(
            ["app", "type", f"{args.setup} speedup vs baseline", "strategy"],
            rows,
            title=f"suite at {args.rate:.0%} oversubscription",
        )
    )
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from .workloads.suite import make_workload
    from .workloads.trace_io import profile_trace, save_trace

    if args.trace_dir:
        return _traced_run(args)
    workload = make_workload(args.app, scale=args.scale)
    if args.save:
        path = save_trace(workload, args.save)
        print(f"wrote {workload.num_accesses} accesses to {path}")
        return 0
    profile = profile_trace(workload)
    rows = sorted(profile.summary().items())
    print(render_table(["property", "value"], rows,
                       title=f"trace profile: {args.app}"))
    print(f"working set per quarter: {profile.quarter_working_sets}")
    return 0


def _traced_run(args: argparse.Namespace) -> int:
    """Run one simulation with the observability layer on and export the
    trace under ``--trace-dir`` in the requested format(s)."""
    from .config import SimConfig
    from .obs import (
        INTERVAL_COLUMNS,
        Observability,
        interval_rows,
        write_chrome_trace,
        write_intervals,
        write_jsonl,
    )

    rate = None if args.rate >= 1.0 else args.rate
    spec = RunSpec(args.app, args.setup, rate, scale=args.scale,
                   seed=args.seed)
    obs = Observability.enabled_()
    result = run_one(spec, obs=obs)

    out_dir = Path(args.trace_dir)
    events = obs.tracer.events
    clock_hz = SimConfig().uvm.clock_hz
    written = []
    if args.format in ("jsonl", "all"):
        written.append(write_jsonl(events, out_dir / "trace.jsonl"))
    if args.format in ("chrome", "all"):
        written.append(
            write_chrome_trace(events, out_dir / "trace.chrome.json",
                               clock_hz=clock_hz)
        )
    if args.format in ("intervals", "all"):
        written.append(write_intervals(events, out_dir / "intervals.tsv"))

    rows = [
        [row[c] for c in INTERVAL_COLUMNS if c != "run"]
        for row in interval_rows(events)
    ]
    if rows:
        print(render_table(
            [c for c in INTERVAL_COLUMNS if c != "run"], rows,
            title=f"intervals: {result.label()}",
        ))
    counts = obs.tracer.kind_counts()
    print(render_table(
        ["event kind", "count"], sorted(counts.items()),
        title=f"{len(events)} trace events"
        + (" (crashed run)" if result.crashed else ""),
    ))
    for path in written:
        print(f"wrote {path}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    import math

    from .analysis.adaptive import AdaptiveConfig, AdaptiveSweep
    from .analysis.sweep import (
        DEFAULT_RATES,
        capacity_sweep,
        crash_rate,
        find_knee,
    )

    driver = None
    if args.adaptive:
        overrides = {"knee_threshold": args.knee_threshold}
        if args.budget is not None:
            overrides["budget"] = args.budget
        if args.tolerance is not None:
            overrides["tolerance"] = args.tolerance
        if args.seed_rates:
            overrides["seed_rates"] = tuple(args.seed_rates)
        driver = AdaptiveSweep(
            args.app, args.setup, scale=args.scale, jobs=args.jobs,
            crash_budget_factor=args.crash_budget_factor,
            adaptive=AdaptiveConfig(**overrides),
        )
        sweep = driver.run()
    else:
        rates = tuple(args.rates) if args.rates else DEFAULT_RATES
        sweep = capacity_sweep(args.app, args.setup, rates=rates,
                               scale=args.scale, jobs=args.jobs,
                               crash_budget_factor=args.crash_budget_factor)
    knee = find_knee(sweep, args.knee_threshold)
    model_knee = driver.knee_estimate() if driver is not None else None

    if args.json:
        payload = {
            "app": sweep.app,
            "setup": sweep.setup,
            "adaptive": bool(args.adaptive),
            "rounds": sweep.rounds,
            "converged": sweep.converged,
            "simulations": sweep.simulations(),
            "new_simulations": (
                driver.new_simulations if driver is not None else None
            ),
            "cached": driver.cached if driver is not None else None,
            "knee_threshold": args.knee_threshold,
            "knee": knee,
            "model_knee": model_knee,
            "crash_rate": crash_rate(sweep),
            "points": [
                {
                    "rate": p.rate,
                    # A crashed run's cycle ratio is meaningless: nan in the
                    # API, null on the wire (nan is not valid JSON).
                    "slowdown": None if math.isnan(p.slowdown) else p.slowdown,
                    "cycles": p.cycles,
                    "far_faults": p.far_faults,
                    "chunks_evicted": p.chunks_evicted,
                    "crashed": p.crashed,
                }
                for p in sweep.points
            ],
            "failures": sweep.failures,
        }
        print(json.dumps(payload, indent=2))
        return 0

    rows = [
        [f"{p.rate * 100:g}%",
         "crashed" if p.crashed else p.slowdown,
         p.far_faults, p.chunks_evicted]
        for p in sweep.points
    ]
    print(render_table(
        ["capacity", "slowdown", "faults", "evictions"],
        rows,
        title=f"{args.app} under {args.setup}: slowdown vs capacity",
    ))
    if driver is not None:
        status = "converged" if sweep.converged else "budget exhausted"
        print(f"adaptive: {status} after {sweep.rounds} round(s), "
              f"{sweep.simulations()} simulations "
              f"({driver.new_simulations} new, {driver.cached} cached)")
    if knee is None:
        print(f"no knee above {args.knee_threshold:.1f}x within tested rates")
    else:
        print(f"working-set knee (slowdown >= {args.knee_threshold:.1f}x) "
              f"at {knee:.0%} capacity")
    if model_knee is not None:
        print(f"model knee estimate: {model_knee:.1%} capacity")
    return 0


def _select_cache(cache_dir: Optional[str], no_cache: bool = False) -> None:
    """Install the cache the command line asked for as the active one."""
    if no_cache:
        cache_mod.set_active_cache(None)
    elif cache_dir:
        cache_mod.set_active_cache(cache_mod.ResultCache(cache_dir))


def _cmd_regen(args: argparse.Namespace) -> int:
    from .errors import WorkerFailure
    from .harness.faults import FaultTolerance, render_failure_summary
    from .harness.parallel import stderr_progress

    _select_cache(args.cache_dir, args.no_cache)
    regenerators = {**_FIGURES, **_TABLES}
    names = sorted(regenerators) if "all" in args.artifacts else args.artifacts
    active = cache_mod.get_active_cache()
    # One shared policy object: outcomes accumulate across every artifact,
    # so the batch-end summary covers the whole invocation.
    fault_tolerance = None
    if args.keep_going or args.retries != 2 or args.timeout_s is not None:
        fault_tolerance = FaultTolerance(
            keep_going=args.keep_going,
            retries=args.retries,
            timeout_s=args.timeout_s,
        )
    for name in names:
        before_hits, before_stores = (
            (active.hits, active.stores) if active else (0, 0)
        )
        # Harness-side wall clock: feeds the per-batch timing line on stderr
        # only, never simulation state (boundary: devtools.boundary, REPRO102).
        started = time.time()
        kwargs = dict(scale=args.scale, jobs=args.jobs,
                      progress=stderr_progress(name),
                      fault_tolerance=fault_tolerance)
        if args.apps:
            if name.startswith("sensitivity"):
                print(f"note: --apps is ignored for {name}", file=sys.stderr)
            else:
                kwargs["apps"] = args.apps
        try:
            print(regenerators[name](**kwargs).render())
        except WorkerFailure as failure:
            if fault_tolerance is None or not fault_tolerance.keep_going:
                raise
            print(f"[{name}] FAILED: {failure.label}: {failure.exc_type}",
                  file=sys.stderr)
            continue
        batch = f"[{name}] {time.time() - started:.1f}s"
        if active:
            batch += (
                f", {active.stores - before_stores} new simulations, "
                f"{active.hits - before_hits} disk-cache hits"
            )
        print(batch, file=sys.stderr)
    if fault_tolerance is not None and fault_tolerance.outcomes:
        failed = fault_tolerance.failures()
        if failed:
            print(render_failure_summary(fault_tolerance.outcomes),
                  file=sys.stderr)
            return 1
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from .devtools import all_rules, run_lint

    if args.list_rules:
        rows = [[cls.rule_id, cls.title, cls.rationale] for cls in all_rules()]
        print(render_table(["rule", "title", "rationale"], rows,
                           title="repro lint rule catalogue (see LINTING.md)"))
        return 0
    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        print(f"repro lint: no such path(s): {', '.join(missing)}",
              file=sys.stderr)
        return 2
    report = run_lint(
        args.paths, deep=args.deep, callgraph_cache=args.callgraph_cache
    )
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        for finding in report.findings:
            print(finding.render())
        summary = (
            f"{len(report.findings)} finding(s) in "
            f"{report.files_checked} file(s)"
        )
        if args.deep:
            summary += (
                f" [deep: {report.summaries_extracted} summarised, "
                f"{report.summaries_from_cache} from cache]"
            )
        print(summary if report.findings else f"clean: {summary}",
              file=sys.stderr)
    return 0 if report.ok else 1


def _cmd_bench(args: argparse.Namespace) -> int:
    from .harness import bench

    tolerance = bench.DEFAULT_TOLERANCE if args.tolerance is None else args.tolerance
    min_speedup = (
        bench.DEFAULT_MIN_SPEEDUP if args.min_speedup is None else args.min_speedup
    )
    print("running engine benchmark (both backends)...", file=sys.stderr)
    current = bench.run_bench(quick=args.quick)
    baseline = bench.load_baseline(args.baseline)
    report = bench.compare_to_baseline(
        current, baseline, tolerance=tolerance, min_speedup=min_speedup
    )
    if args.json:
        print(json.dumps(current, indent=2, sort_keys=True))
    else:
        rows = []
        for name, case in current["cases"].items():
            unit = case["unit"]
            rows.append([
                name,
                case["accesses"],
                case["far_faults"],
                f"{case['object'][f'us_per_{unit}']:.2f}",
                f"{case['array'][f'us_per_{unit}']:.2f}",
                f"{case['speedup']:.2f}x",
                "yes" if case["identical"] else "NO",
            ])
        print(render_table(
            ["case", "accesses", "faults", "object us/ev", "array us/ev",
             "speedup", "identical"],
            rows,
            title="engine throughput: object vs array backend",
        ))
    print(report.render(), file=sys.stderr)
    if report.ok and args.update_baseline:
        with open(args.baseline, "w", encoding="utf-8") as handle:
            json.dump(current, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"baseline written to {args.baseline}", file=sys.stderr)
    return 0 if report.ok else 1


def _cmd_shootout(args: argparse.Namespace) -> int:
    from .harness.faults import FaultTolerance
    from .harness.parallel import stderr_progress

    if not 0.0 < args.rate <= 1.0:
        print(f"repro shootout: --rate must be in (0, 1], got {args.rate}",
              file=sys.stderr)
        return 2
    _select_cache(args.cache_dir, args.no_cache)
    scale = min(args.scale, 0.25) if args.quick else args.scale
    fault_tolerance = (FaultTolerance(keep_going=True)
                       if args.keep_going else None)
    result = shootout_mod.run_shootout(
        args.app,
        rate=args.rate,
        scale=scale,
        seed=args.seed,
        jobs=args.jobs,
        progress=None if args.json else stderr_progress("combos"),
        fault_tolerance=fault_tolerance,
    )
    if args.json:
        print(json.dumps(result.to_dict(), indent=2))
    else:
        print(result.render())
        print(f"{result.combos} combos: {result.new_simulations} new "
              f"simulations, {result.cached} cached", file=sys.stderr)
    return 1 if result.failed else 0


def _registration_dict(reg: registry_mod.Registration) -> dict:
    payload = {
        "kind": reg.kind,
        "name": reg.name,
        "origin": reg.origin,
        "plugin": reg.plugin,
        "doc": reg.doc,
        "params": dict(reg.params_schema),
        "fingerprint_fields": list(reg.fingerprint_fields),
    }
    if reg.kind == "setup":
        policy, prefetcher = registry_mod.setup_components(reg.name)
        payload["policy"] = policy
        payload["prefetcher"] = prefetcher
    return payload


def _cmd_components(args: argparse.Namespace) -> int:
    kinds = (args.kind,) if getattr(args, "kind", None) else registry_mod.KINDS
    if args.components_command == "list":
        if args.json:
            payload = {
                kind: [_registration_dict(reg)
                       for reg in registry_mod.items(kind)]
                for kind in kinds
            }
            print(json.dumps(payload, indent=2, sort_keys=True))
            return 0
        rows = []
        for kind in kinds:
            for reg in registry_mod.items(kind):
                rows.append([kind, reg.name,
                             "plugin" if reg.plugin else "built-in",
                             reg.origin, reg.doc])
        print(render_table(
            ["kind", "name", "source", "origin", "description"], rows,
            title="registered components (repro.registry)",
        ))
        return 0
    try:
        reg = registry_mod.get(args.kind, args.name)
    except ConfigError as exc:
        print(f"repro components: {exc}", file=sys.stderr)
        return 2
    payload = _registration_dict(reg)
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    rows = [[k, v] for k, v in sorted(payload.items()) if k != "params"]
    for param, doc in sorted(payload["params"].items()):
        rows.append([f"param: {param}", doc])
    print(render_table(["property", "value"], rows,
                       title=f"{args.kind} {args.name!r}"))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .service import ExperimentService, ServiceConfig
    from .service.server import serve

    _select_cache(args.cache_dir, args.no_cache)
    service = ExperimentService(
        ServiceConfig(
            state_dir=args.state_dir,
            jobs=args.jobs,
            use_cache=not args.no_cache,
            rate_capacity=args.burst,
            rate_refill_per_s=args.rate_per_s,
            tenant_cap=args.tenant_cap,
            fault_retries=args.retries,
            spec_timeout_s=args.timeout_s,
        )
    )
    print(
        f"repro service on http://{args.host}:{args.port} "
        f"(state: {args.state_dir}, jobs: {args.jobs})",
        file=sys.stderr,
    )
    serve(service, host=args.host, port=args.port)
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    from .service.client import ServiceClient

    if args.spec_file:
        if args.spec_file == "-":
            payload = json.load(sys.stdin)
        else:
            with open(args.spec_file, encoding="utf-8") as handle:
                payload = json.load(handle)
    else:
        if not args.apps:
            print("repro submit: give APP names or --spec-file",
                  file=sys.stderr)
            return 2
        payload = {
            "specs": [
                {
                    "app": app,
                    "setup": args.setup,
                    "oversubscription": args.rate,
                    "scale": args.scale,
                    "seed": args.seed,
                }
                for app in args.apps
            ],
            "tenant": args.tenant,
            "priority": args.priority,
        }
    client = ServiceClient(args.url)
    view = client.submit(payload)
    job_id = view["job"]
    print(f"queued {job_id} ({len(view['specs'])} spec(s))", file=sys.stderr)
    if not args.no_wait:
        view = client.wait(job_id)
    if args.json:
        print(json.dumps(view, indent=2, sort_keys=True))
    else:
        _print_status_view(view)
    return 0 if view["state"] in ("queued", "running", "done") else 1


def _print_status_view(view: dict) -> None:
    rows = [
        [
            entry["label"],
            entry["status"],
            entry["retries"],
            (entry["result"] or {}).get("total_cycles"),
            entry["error"] or "",
        ]
        for entry in view["specs"]
    ]
    print(render_table(
        ["spec", "status", "retries", "cycles", "error"],
        rows,
        title=f"batch {view['job']}: {view['state']}",
    ))
    stats = view.get("stats")
    if stats:
        print(
            f"batch stats: {stats['simulated']} simulated, "
            f"{stats['memo_hits']} memo hits, {stats['cache_hits']} "
            f"cache hits, {stats['failed']} failed, "
            f"{stats['timed_out']} timed out",
            file=sys.stderr,
        )


def _cmd_status(args: argparse.Namespace) -> int:
    from .service.client import ServiceClient

    client = ServiceClient(args.url)
    if args.job is None:
        batches = client.list_batches()["batches"]
        if args.json:
            print(json.dumps(batches, indent=2, sort_keys=True))
        else:
            rows = [
                [b["job"], b["state"], b["tenant"], b["priority"], b["specs"]]
                for b in batches
            ]
            print(render_table(
                ["batch", "state", "tenant", "priority", "specs"],
                rows, title=f"{len(batches)} batch(es)",
            ))
        return 0
    if args.events:
        for event in client.events(args.job, follow=args.follow):
            print(json.dumps(event, sort_keys=True))
        return 0
    view = client.status(args.job)
    if args.json:
        print(json.dumps(view, indent=2, sort_keys=True))
    else:
        _print_status_view(view)
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    _select_cache(args.cache_dir)
    active = cache_mod.get_active_cache()
    if active is None:
        print("result cache is disabled (REPRO_CACHE=0)", file=sys.stderr)
        return 1
    if args.cache_command == "stats":
        stats = active.stats()
        if args.json:
            print(json.dumps(stats, indent=2, sort_keys=True))
        else:
            print(render_table(
                ["property", "value"], sorted(stats.items()),
                title=f"result cache at {active.root}",
            ))
        return 0
    removed = active.clear()
    print(f"removed {removed} cached results from {active.root}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "figure":
        return _cmd_figure(args)
    if args.command == "table":
        return _cmd_table(args)
    if args.command == "suite":
        return _cmd_suite(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "regen":
        return _cmd_regen(args)
    if args.command == "lint":
        return _cmd_lint(args)
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "shootout":
        return _cmd_shootout(args)
    if args.command == "components":
        return _cmd_components(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "submit":
        return _cmd_submit(args)
    if args.command == "status":
        return _cmd_status(args)
    if args.command == "cache":
        return _cmd_cache(args)
    raise AssertionError(f"unhandled command {args.command}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
