"""Unit conversions for the simulated GPU system.

The simulator's single time unit is one **GPU core cycle** at the clock
frequency of Table I (1.4 GHz).  All latency-bearing configuration values are
expressed in cycles; this module provides the conversions used to derive them
from the paper's physical quantities (20 us fault service time, 16 GB/s
CPU-GPU interconnect, 4 KB pages).
"""

from __future__ import annotations

#: Default GPU core clock (Table I: 28 SMs, 1.4 GHz).
DEFAULT_CLOCK_HZ: float = 1.4e9

#: Page size used throughout the paper (4 KB OS pages).
PAGE_SIZE_BYTES: int = 4096

#: Pages per chunk (64 KB basic block == 16 x 4 KB pages).
PAGES_PER_CHUNK: int = 16

#: Bytes per chunk.
CHUNK_SIZE_BYTES: int = PAGE_SIZE_BYTES * PAGES_PER_CHUNK


def us_to_cycles(microseconds: float, clock_hz: float = DEFAULT_CLOCK_HZ) -> int:
    """Convert microseconds to an integral number of core cycles (rounded)."""
    return int(round(microseconds * 1e-6 * clock_hz))


def cycles_to_us(cycles: float, clock_hz: float = DEFAULT_CLOCK_HZ) -> float:
    """Convert core cycles to microseconds."""
    return cycles / clock_hz * 1e6


def cycles_to_ms(cycles: float, clock_hz: float = DEFAULT_CLOCK_HZ) -> float:
    """Convert core cycles to milliseconds."""
    return cycles / clock_hz * 1e3


def transfer_cycles(
    num_bytes: int,
    bandwidth_gbps: float,
    clock_hz: float = DEFAULT_CLOCK_HZ,
) -> int:
    """Cycles to move ``num_bytes`` over a link of ``bandwidth_gbps`` GB/s.

    Uses decimal gigabytes (16 GB/s == 16e9 B/s), matching how interconnect
    bandwidth is quoted in the paper.
    """
    if num_bytes < 0:
        raise ValueError(f"num_bytes must be non-negative, got {num_bytes}")
    if bandwidth_gbps <= 0:
        raise ValueError(f"bandwidth must be positive, got {bandwidth_gbps}")
    seconds = num_bytes / (bandwidth_gbps * 1e9)
    return int(round(seconds * clock_hz))


def page_transfer_cycles(
    bandwidth_gbps: float = 16.0, clock_hz: float = DEFAULT_CLOCK_HZ
) -> int:
    """Cycles to transfer one 4 KB page (350 cycles at Table I defaults)."""
    return transfer_cycles(PAGE_SIZE_BYTES, bandwidth_gbps, clock_hz)


def mb_to_pages(megabytes: float) -> int:
    """Number of 4 KB pages in ``megabytes`` MiB-style megabytes (2**20 B)."""
    return int(round(megabytes * (1 << 20) / PAGE_SIZE_BYTES))
