"""Reserved LRU (Ganguly et al. [16]).

Identical to LRU except that the *top* ``reserve_fraction`` of the LRU chunk
chain — the entries closest to the LRU head, which under a cyclic (thrashing)
access pattern are exactly the chunks needed soonest — is protected from
eviction.  Victims are taken starting just past the reserved region.

The paper evaluates 10% and 20% reservations (LRU-10%, LRU-20%) and shows
the gain is limited for thrashing patterns and harmful for capacity-
sensitive Type VI applications (Figs. 3 and 9), because the reservation
effectively shrinks usable capacity.
"""

from __future__ import annotations

from typing import List

from ..errors import ConfigError
from ..memsim.chunk_chain import ChunkEntry
from .base import EvictionPolicy

__all__ = ["ReservedLRUPolicy"]


class ReservedLRUPolicy(EvictionPolicy):
    """LRU with the head ``reserve_fraction`` of the chain protected."""

    def __init__(self, reserve_fraction: float = 0.2):
        super().__init__()
        if not 0.0 <= reserve_fraction < 1.0:
            raise ConfigError(
                f"reserve_fraction must be in [0, 1), got {reserve_fraction}"
            )
        self.reserve_fraction = reserve_fraction
        self.name = f"lru-{int(round(reserve_fraction * 100))}%"

    @property
    def current_strategy(self) -> str:
        return "lru"

    def on_page_touched(self, entry: ChunkEntry, vpn: int, time: int) -> None:
        self.ctx.chain.move_to_tail(entry.chunk_id)
        entry.last_ref_interval = self.ctx.clock.current_interval

    def select_victims(self, frames_needed: int, time: int) -> List[ChunkEntry]:
        ordered = list(self.ctx.chain.from_head())
        reserved = int(len(ordered) * self.reserve_fraction)
        eligible = ordered[reserved:]
        # If the reservation leaves too little to evict, fall back to the
        # reserved entries from the most-protected end (must evict something).
        needed_pages = sum(e.resident_pages for e in eligible)
        if needed_pages < frames_needed:
            eligible = eligible + list(reversed(ordered[:reserved]))
        return self._take_until_enough(eligible, frames_needed)
