"""HPE — Hierarchical Page Eviction (Yu et al. [14][15]).

Implemented from the description in Section II-C of the CPPE paper; internal
details not given there are reconstructed (DESIGN.md deviation #1):

* each chunk carries a touch **counter** (0..16);
* the chain has old/middle/new partitions by reference recency;
* applications are classified from the counters of old-partition chunks at
  memory-full time into *regular*, *irregular#1* and *irregular#2*;
* regular apps use **MRU-C**: search from the MRU end of the old partition
  for the first *qualified* chunk (counter >= qualification threshold);
* irregular apps start with **LRU**; irregular#2 may switch between LRU and
  MRU-C by comparing how many intervals each strategy has lasted without
  excessive wrong evictions.

HPE was designed for GPUs *without* prefetching.  When prefetching is on,
the GMMU sets a migrated chunk's counter to the number of pages migrated —
exactly the counter pollution described as Inefficiency 1, which this
implementation faithfully reproduces so the motivation experiment can show
HPE misclassifying prefetch-heavy runs.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List

from ..engine.stats import IntervalRecord
from ..memsim.chunk_chain import ChunkEntry
from .base import EvictionPolicy

__all__ = ["HPEPolicy"]


class HPEPolicy(EvictionPolicy):
    """Counter-based hierarchical page eviction."""

    name = "hpe"

    def __init__(self) -> None:
        super().__init__()
        self._classified = False
        self._category = "regular"
        self._strategy = "mru-c"  # or "lru"
        self._qualify_threshold = 12
        self._evicted_buffer: Deque[int] = deque(maxlen=8)
        self._wrong_this_interval = 0
        self._intervals_on_strategy = 0
        self._best_run = {"mru-c": 0, "lru": 0}

    @property
    def current_strategy(self) -> str:
        return "mru" if self._strategy == "mru-c" else "lru"

    def attach(self, ctx) -> None:  # noqa: ANN001 - see base class
        super().attach(ctx)
        obs = ctx.obs
        self._trace = obs.tracer
        self._m_wrong = obs.metrics.counter("policy.wrong_evictions")
        self._m_switches = obs.metrics.counter("policy.strategy_switches")

    # --- chain events ------------------------------------------------------

    def on_page_touched(self, entry: ChunkEntry, vpn: int, time: int) -> None:
        # HPE updates the chain on every touch (16 updates per chunk).
        entry.counter = min(entry.counter + 1, 16)
        self.ctx.chain.move_to_tail(entry.chunk_id)
        entry.last_ref_interval = self.ctx.clock.current_interval

    def on_fault(self, vpn: int, chunk_id: int, time: int) -> None:
        if chunk_id in self._evicted_buffer:
            # One wrong-eviction count per chunk.
            try:
                self._evicted_buffer.remove(chunk_id)
            except ValueError:  # pragma: no cover - deque race can't happen
                pass
            self._wrong_this_interval += 1
            self.ctx.stats.wrong_evictions += 1
            self._m_wrong.inc()

    def on_chunk_evicted(self, entry: ChunkEntry, time: int) -> None:
        self._evicted_buffer.append(entry.chunk_id)

    def on_memory_full(self, time: int) -> None:
        self._classify(time)

    def on_interval_end(self, record: IntervalRecord, time: int) -> None:
        record.strategy = self.current_strategy
        record.wrong_evictions = self._wrong_this_interval
        self._intervals_on_strategy += 1
        if self._category == "irregular2":
            self._maybe_switch(time)
        self._wrong_this_interval = 0

    # --- classification and switching ---------------------------------------

    def _classify(self, time: int) -> None:
        """Classify from chunk counters (polluted by prefetch, by design)."""
        counters = [e.counter for e in self.ctx.chain.from_head()]
        if not counters:
            return
        avg = sum(counters) / len(counters)
        frac = self.ctx.config.hpe.regular_counter_fraction
        if avg >= frac * 16:
            self._category = "regular"
            self._strategy = "mru-c"
        elif avg >= 0.5 * frac * 16:
            self._category = "irregular2"
            self._strategy = "lru"
        else:
            self._category = "irregular1"
            self._strategy = "lru"
        self._qualify_threshold = max(1, int(avg))
        self._classified = True
        if self._trace.enabled:
            self._trace.emit(
                "strategy_switch", time, policy=self.name,
                from_="", to=self.current_strategy, trigger="classify",
                category=self._category, counter_avg=round(avg, 3),
            )

    def _maybe_switch(self, time: int) -> None:
        """irregular#2: switch strategies when the current one accumulates
        wrong evictions, keeping the strategy that historically lasted
        longer (a faithful-in-spirit reading of 'comparing the number of
        intervals a strategy lasts')."""
        patience = self.ctx.config.hpe.switch_patience
        if self._wrong_this_interval >= patience:
            self._best_run[self._strategy] = max(
                self._best_run[self._strategy], self._intervals_on_strategy
            )
            old = self.current_strategy
            self._strategy = "lru" if self._strategy == "mru-c" else "mru-c"
            self._intervals_on_strategy = 0
            self._m_switches.inc()
            if self._trace.enabled:
                self._trace.emit(
                    "strategy_switch", time, policy=self.name,
                    from_=old, to=self.current_strategy, trigger="patience",
                    wrong=self._wrong_this_interval,
                )

    # --- selection ------------------------------------------------------------

    def select_victims(self, frames_needed: int, time: int) -> List[ChunkEntry]:
        interval = self.ctx.clock.current_interval
        if self._strategy == "mru-c":
            ordered = self._mru_c_order(interval)
        else:
            ordered = self.ctx.chain.candidates_from_head(interval)
        return self._take_until_enough(ordered, frames_needed)

    def _mru_c_order(self, interval: int) -> List[ChunkEntry]:
        """MRU-C: qualified chunks MRU-first, then the rest MRU-first."""
        candidates = self.ctx.chain.candidates_from_tail(interval)
        qualified = [e for e in candidates if e.counter >= self._qualify_threshold]
        rest = [e for e in candidates if e.counter < self._qualify_threshold]
        return qualified + rest
