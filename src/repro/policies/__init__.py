"""Page (chunk) eviction policies.

All policies operate at chunk (64 KB) pre-eviction granularity, as in the
paper's baseline and proposals:

* :class:`LRUPolicy` — the baseline pre-eviction policy [16];
* :class:`RandomPolicy` — random victim selection [9];
* :class:`ReservedLRUPolicy` — LRU with the top N% protected [16];
* :class:`HPEPolicy` — counter-based hierarchical page eviction [14][15];
* :class:`MHPEPolicy` — the paper's modified HPE (Algorithm 1).
"""

from .base import EvictionPolicy, PolicyContext
from .lru import LRUPolicy
from .random_policy import RandomPolicy
from .reserved_lru import ReservedLRUPolicy
from .hpe import HPEPolicy
from .mhpe import MHPEPolicy

__all__ = [
    "EvictionPolicy",
    "PolicyContext",
    "LRUPolicy",
    "RandomPolicy",
    "ReservedLRUPolicy",
    "HPEPolicy",
    "MHPEPolicy",
]
