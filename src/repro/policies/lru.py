"""LRU pre-eviction policy — the state-of-the-art software baseline.

Chunks enter the chain at the MRU tail when migrated; any touch to a
resident page refreshes its chunk to the tail; victims are taken from the
LRU head.  Combined with the sequential-local prefetcher this is the
baseline of Figs. 8-10 (the combination proposed in [16] and [9][11]).
"""

from __future__ import annotations

from typing import List

from ..memsim.chunk_chain import ChunkEntry
from .base import EvictionPolicy

__all__ = ["LRUPolicy"]


class LRUPolicy(EvictionPolicy):
    """Least-recently-used chunk eviction."""

    name = "lru"

    def on_page_touched(self, entry: ChunkEntry, vpn: int, time: int) -> None:
        self.ctx.chain.move_to_tail(entry.chunk_id)
        entry.last_ref_interval = self.ctx.clock.current_interval

    def select_victims(self, frames_needed: int, time: int) -> List[ChunkEntry]:
        ordered = list(self.ctx.chain.from_head())
        return self._take_until_enough(ordered, frames_needed)
