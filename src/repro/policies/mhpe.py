"""MHPE — Modified Hierarchical Page Eviction (Section IV-B, Algorithm 1).

Differences from HPE, as specified by the paper:

* **No counters.**  Chunks are classified by the *untouch level* of evicted
  chunks (pages migrated but never touched, read from the touch bit-vector
  at unmap time).  MRU-C therefore devolves into plain MRU.
* **One chain update per chunk.**  The chain is ordered by migration order
  only; touches do not refresh recency.
* **Starts with MRU** at a *forward distance* from the MRU end of the old
  partition; switches (irreversibly) to LRU when either

  - the total untouch level of one interval reaches ``T1`` (=32), or
  - the cumulative untouch level of the first four intervals reaches
    ``T2`` (=40), checked once at the end of the fourth interval.

* **Initial forward distance** = clamp(chain_length // 100, 2, 8), computed
  when device memory first fills.
* **Adjustment**: each interval in MRU mode, the untouch level (bucketed
  into five ranges over 0..T1-1) is compared with the number of wrong
  evictions W (0..4); the larger value is added to the forward distance,
  clamped so the distance never exceeds ``T3`` (=32).
* **Wrong evictions** are detected with a buffer of recently evicted chunks
  of length ``max(8, 8 * (chain_length // 64))``; a faulting chunk found in
  the buffer counts once, and when re-migrated it is inserted at the chain
  *head* (LRU position) so MRU selection cannot thrash on it again.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Set

from ..config import MHPEConfig
from ..engine.stats import IntervalRecord
from ..memsim.chunk_chain import ChunkEntry
from .base import EvictionPolicy

__all__ = ["MHPEPolicy", "untouch_bucket"]


def untouch_bucket(untouch_level: int, t1: int = 32) -> int:
    """Map an interval's untouch level (0..t1-1) onto the five adjustment
    values.  With t1=32 the ranges are [0-3]=0, [4-10]=1, [11-17]=2,
    [18-24]=3, [25-31]=4 (Section VI-A)."""
    if untouch_level < 0:
        raise ValueError(f"untouch level must be >= 0, got {untouch_level}")
    if untouch_level <= 3:
        return 0
    if untouch_level >= t1:
        return 4
    # Remaining 4..t1-1 split into four equal ranges of width 7 when t1=32.
    width = max(1, (t1 - 4 + 3) // 4)
    return min(4, 1 + (untouch_level - 4) // width)


class MHPEPolicy(EvictionPolicy):
    """The paper's eviction policy (Algorithm 1)."""

    name = "mhpe"

    def __init__(self, config: Optional[MHPEConfig] = None):
        super().__init__()
        self._cfg_override = config
        self.strategy = "mru"
        self.forward_distance = 0
        self._memory_full = False
        self._intervals_since_full = 0
        self._untouch_this_interval = 0
        self._untouch_first_four = 0
        self._wrong_this_interval = 0
        self._evicted_buffer: Deque[int] = deque(maxlen=8)
        #: Occurrence counts mirroring ``_evicted_buffer``: the buffer is
        #: consulted on *every* fault, so membership must be O(1), not an
        #: O(n) deque scan (Section VI-C keeps the buffer small exactly to
        #: bound this cost).  A count (not a plain set) preserves exact
        #: FIFO semantics if a chunk ever appears twice.
        self._evicted_counts: Dict[int, int] = {}
        self._wrong_chunks: Set[int] = set()

    def attach(self, ctx) -> None:  # noqa: ANN001 - see base class
        super().attach(ctx)
        obs = ctx.obs
        self._trace = obs.tracer
        self._g_distance = obs.metrics.gauge("mhpe.forward_distance")
        self._m_wrong = obs.metrics.counter("policy.wrong_evictions")
        self._m_switches = obs.metrics.counter("policy.strategy_switches")

    @property
    def cfg(self) -> MHPEConfig:
        return self._cfg_override or self.ctx.config.mhpe

    @property
    def current_strategy(self) -> str:
        return self.strategy

    # --- chain events -------------------------------------------------------

    def insert_chunk(self, entry: ChunkEntry, time: int) -> None:
        entry.last_ref_interval = self.ctx.clock.current_interval
        if entry.chunk_id in self._wrong_chunks:
            # Park wrongly evicted chunks at the LRU end: MRU selection will
            # not pick them again soon, stopping the thrash loop.
            self._wrong_chunks.discard(entry.chunk_id)
            self.ctx.chain.insert_head(entry)
        else:
            self.ctx.chain.insert_tail(entry)

    def on_page_touched(self, entry: ChunkEntry, vpn: int, time: int) -> None:
        # At most one chain update per chunk per interval: the partition
        # structure (old/middle/new) is defined by the interval a chunk was
        # last *referenced* in, so references must be tracked — but unlike
        # HPE's per-touch updates, a chunk moves at most once per interval
        # (the overhead reduction Section VI-C claims).
        interval = self.ctx.clock.current_interval
        if entry.last_ref_interval < interval:
            entry.last_ref_interval = interval
            self.ctx.chain.move_to_tail(entry.chunk_id)

    def on_fault(self, vpn: int, chunk_id: int, time: int) -> None:
        # O(1) membership via the count mirror; the (rare) removal on a
        # confirmed wrong eviction is the only remaining deque scan.
        if self._evicted_counts.get(chunk_id, 0) > 0:
            self._dec_evicted(chunk_id)
            try:
                self._evicted_buffer.remove(chunk_id)
            except ValueError:  # pragma: no cover
                pass
            self._wrong_this_interval += 1
            self._wrong_chunks.add(chunk_id)
            self.ctx.stats.wrong_evictions += 1
            self._m_wrong.inc()

    def _dec_evicted(self, chunk_id: int) -> None:
        remaining = self._evicted_counts.get(chunk_id, 0) - 1
        if remaining > 0:
            self._evicted_counts[chunk_id] = remaining
        else:
            self._evicted_counts.pop(chunk_id, None)

    def on_chunk_evicted(self, entry: ChunkEntry, time: int) -> None:
        untouch = entry.untouch_level()
        self._untouch_this_interval += untouch
        self.ctx.stats.untouch_total += untouch
        buf = self._evicted_buffer
        if buf.maxlen is not None and len(buf) == buf.maxlen:
            # append() below silently drops the FIFO head; mirror that.
            self._dec_evicted(buf[0])
        buf.append(entry.chunk_id)
        self._evicted_counts[entry.chunk_id] = (
            self._evicted_counts.get(entry.chunk_id, 0) + 1
        )

    def on_memory_full(self, time: int) -> None:
        if self._memory_full:
            return
        self._memory_full = True
        chain_len = len(self.ctx.chain)
        cfg = self.cfg
        # Initial forward distance (Algorithm 1, line 7).
        distance = chain_len // cfg.init_divisor
        self.forward_distance = max(cfg.init_lo, min(cfg.init_hi, distance))
        self.ctx.stats.forward_distance_history.append(self.forward_distance)
        self._g_distance.set(self.forward_distance)
        if self._trace.enabled:
            self._trace.emit(
                "forward_distance", time, value=self.forward_distance,
                reason="initial", chain_length=chain_len,
            )
        # Evicted-chunk buffer sized from the memory footprint.
        buf_len = max(cfg.min_buffer, cfg.buffer_unit * (chain_len // cfg.buffer_divisor))
        self._evicted_buffer = deque(self._evicted_buffer, maxlen=buf_len)
        counts: Dict[int, int] = {}
        for cid in self._evicted_buffer:
            counts[cid] = counts.get(cid, 0) + 1
        self._evicted_counts = counts
        self.ctx.stats.evicted_buffer_length = buf_len

    def on_interval_end(self, record: IntervalRecord, time: int) -> None:
        record.strategy = self.strategy
        record.forward_distance = self.forward_distance
        record.untouch_total = self._untouch_this_interval
        record.wrong_evictions = self._wrong_this_interval
        if not self._memory_full:
            # Before oversubscription kicks in there are no evictions and
            # nothing to adapt.
            self._reset_interval()
            return

        self._intervals_since_full += 1
        cfg = self.cfg
        u1 = self._untouch_this_interval
        w = self._wrong_this_interval
        if self._intervals_since_full <= 4:
            self._untouch_first_four += u1

        if self.strategy == "mru":
            switch = u1 >= cfg.t1
            trigger = "t1"
            if self._intervals_since_full == 4 and not switch:
                switch = self._untouch_first_four >= cfg.t2
                trigger = "t2"
            if not cfg.switch_enabled:
                switch = False
            if switch:
                self.strategy = "lru"
                self.ctx.stats.strategy_switch_time = time
                self._m_switches.inc()
                if self._trace.enabled:
                    self._trace.emit(
                        "strategy_switch", time, policy=self.name,
                        from_="mru", to="lru", trigger=trigger,
                        untouch=u1, untouch_first_four=self._untouch_first_four,
                    )
            elif cfg.adjust_enabled and self.forward_distance < cfg.t3:
                # Algorithm 1 lines 14-15: grow by max(bucket(U1), W),
                # clamped so the distance never exceeds T3 (Section VI-A:
                # the adjustment stops once the limit is reached).
                bump = max(untouch_bucket(u1, cfg.t1), w)
                if bump:
                    self.forward_distance = min(
                        cfg.t3, self.forward_distance + bump
                    )
                    self.ctx.stats.forward_distance_history.append(
                        self.forward_distance
                    )
                    self._g_distance.set(self.forward_distance)
                    if self._trace.enabled:
                        self._trace.emit(
                            "forward_distance", time,
                            value=self.forward_distance, reason="adjust",
                            untouch=u1, wrong=w,
                        )
        self.ctx.stats.final_strategy = self.strategy
        self._reset_interval()

    def _reset_interval(self) -> None:
        self._untouch_this_interval = 0
        self._wrong_this_interval = 0

    # --- selection --------------------------------------------------------------

    def select_victims(self, frames_needed: int, time: int) -> List[ChunkEntry]:
        interval = self.ctx.clock.current_interval
        if self.strategy == "lru":
            ordered = self.ctx.chain.candidates_from_head(interval)
        else:
            candidates = self.ctx.chain.candidates_from_tail(interval)
            skip = min(self.forward_distance, max(0, len(candidates) - 1))
            ordered = candidates[skip:] + candidates[:skip]
        return self._take_until_enough(ordered, frames_needed)
