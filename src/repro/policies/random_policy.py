"""Random chunk eviction, as evaluated by Zheng et al. [9] and used as a
comparison point in Figs. 3 and 9 of the paper."""

from __future__ import annotations

from typing import List

from ..memsim.chunk_chain import ChunkEntry
from .base import EvictionPolicy

__all__ = ["RandomPolicy"]


class RandomPolicy(EvictionPolicy):
    """Uniformly random victim selection (deterministic given the seed)."""

    name = "random"

    def on_page_touched(self, entry: ChunkEntry, vpn: int, time: int) -> None:
        # Random ignores recency but keeps interval bookkeeping coherent.
        entry.last_ref_interval = self.ctx.clock.current_interval

    def select_victims(self, frames_needed: int, time: int) -> List[ChunkEntry]:
        entries = [e for e in self.ctx.chain.from_head() if e.resident_pages > 0]
        self.ctx.rng.shuffle(entries)
        return self._take_until_enough(entries, frames_needed)
