"""Eviction policy interface.

The memory system owns the *mechanism* (chunk chain bookkeeping, touch
bit-vectors, unmapping, interval ticks); a policy owns the *decisions*:

* where a newly migrated chunk enters the chain (:meth:`insert_chunk`);
* whether a page touch refreshes chain recency (:meth:`on_page_touched`);
* which chunks to evict when frames are needed (:meth:`select_victims`);
* how to react to faults, evictions, and interval boundaries.

The touched bit-vector on each :class:`~repro.memsim.chunk_chain.ChunkEntry`
is maintained by the mechanism layer regardless of policy — it models
page-table access bits that the driver reads back at unmap time.

Policies never see the memory system itself: :class:`PolicyContext` hands
them exactly the pieces they may consult, and interval geometry arrives
through the :class:`IntervalSource` stage protocol (implemented by
:class:`repro.memsim.system.IntervalClock`) rather than a callback into
mechanism internals.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Protocol

from ..config import SimConfig
from ..engine.stats import IntervalRecord, SimStats
from ..errors import SimulationError
from ..memsim.chunk_chain import ChunkChain, ChunkEntry
from ..obs import DISABLED, Observability

__all__ = ["IntervalSource", "ZERO_CLOCK", "PolicyContext", "EvictionPolicy"]


class IntervalSource(Protocol):
    """Stage protocol: a read-only view of the interval clock.

    The chain partitions ("new"/"middle"/"old") and every adaptive policy
    decision are phrased in intervals (64 migrated pages), so this is the
    only piece of mechanism state a policy may *read* at decision time.
    """

    @property
    def current_interval(self) -> int: ...


class _FixedClock:
    """Interval source pinned to interval 0 (detached-policy default)."""

    __slots__ = ()

    @property
    def current_interval(self) -> int:
        return 0


#: Stateless default clock; shared safely by every detached policy.
ZERO_CLOCK: IntervalSource = _FixedClock()


@dataclass
class PolicyContext:
    """Everything a policy may consult, handed over at attach time."""

    chain: ChunkChain
    stats: SimStats
    config: SimConfig
    rng: random.Random
    #: Interval geometry, via the stage protocol (not a mechanism callback).
    clock: IntervalSource = field(default=ZERO_CLOCK)
    #: Observability sink (tracer + metrics registry); the DISABLED
    #: singleton is stateless, so sharing it as a default is safe.
    obs: Observability = DISABLED


class EvictionPolicy:
    """Base class with no-op hooks.  Subclasses override what they need."""

    #: Human-readable policy name for reports.
    name: str = "base"

    def __init__(self) -> None:
        self.ctx: PolicyContext = None  # type: ignore[assignment]

    # --- lifecycle ---------------------------------------------------------

    def attach(self, ctx: PolicyContext) -> None:
        """Called once by the memory system before simulation starts."""
        self.ctx = ctx

    # --- chain events ------------------------------------------------------

    def insert_chunk(self, entry: ChunkEntry, time: int) -> None:
        """Place a newly migrated chunk into the chain (default: MRU tail)."""
        self.ctx.chain.insert_tail(entry)

    def on_page_touched(self, entry: ChunkEntry, vpn: int, time: int) -> None:
        """A resident page was touched (after the bit-vectors were updated)."""

    def on_fault(self, vpn: int, chunk_id: int, time: int) -> None:
        """A far fault was raised (before servicing)."""

    def on_chunk_evicted(self, entry: ChunkEntry, time: int) -> None:
        """A victim this policy selected has been evicted."""

    def on_memory_full(self, time: int) -> None:
        """Device memory reached capacity for the first time."""

    def on_interval_end(self, record: IntervalRecord, time: int) -> None:
        """An interval (64 migrated pages) completed.  ``record`` is partially
        filled by the interval clock (index, faults, evictions); policies add
        strategy telemetry."""

    # --- the decision ------------------------------------------------------

    def select_victims(self, frames_needed: int, time: int) -> List[ChunkEntry]:
        """Choose chunks whose resident pages cover ``frames_needed`` frames.

        Entries are returned in eviction order and must still be in the
        chain; the eviction service removes them, unmaps their pages and
        then calls :meth:`on_chunk_evicted` for each.
        """
        raise NotImplementedError

    # --- reporting ----------------------------------------------------------

    @property
    def current_strategy(self) -> str:
        """'lru', 'mru', 'random', ... — consumed by the pattern buffer
        (which only records under LRU) and by reports."""
        return self.name

    # --- shared helpers -----------------------------------------------------

    def _take_until_enough(
        self, ordered: List[ChunkEntry], frames_needed: int
    ) -> List[ChunkEntry]:
        """Take a prefix of ``ordered`` covering ``frames_needed`` frames."""
        victims: List[ChunkEntry] = []
        freed = 0
        for entry in ordered:
            if freed >= frames_needed:
                break
            if entry.resident_pages == 0:
                continue
            victims.append(entry)
            freed += entry.resident_pages
        if freed < frames_needed:
            raise SimulationError(
                f"{self.name}: cannot free {frames_needed} frames; only "
                f"{freed} evictable (chain length {len(self.ctx.chain)})"
            )
        return victims
