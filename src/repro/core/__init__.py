"""CPPE — the paper's primary contribution."""

from .cppe import CPPE

__all__ = ["CPPE"]
