"""CPPE: Coordinated Page Prefetch and Eviction (Section IV).

CPPE is the *pairing* of MHPE with the access pattern-aware prefetcher,
coordinated in a fine-grained manner:

* **eviction → prefetch**: every chunk MHPE evicts reports its touch
  bit-vector; chunks with untouch level >= 8 (and, by default, only once
  the eviction strategy has switched to LRU) populate the prefetcher's
  pattern buffer;
* **prefetch → eviction**: MHPE evicts chunks at prefetch granularity and
  classifies the application from what the prefetcher brought in but the
  kernel never touched.

The wiring itself lives in the GMMU (`on_chunk_evicted` carries the touch
mask and the policy's current strategy to the prefetcher); this module
provides the canonical way to construct the coordinated pair.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..config import MHPEConfig, PatternBufferConfig
from ..policies.mhpe import MHPEPolicy
from ..prefetch.pattern_aware import PatternAwarePrefetcher

__all__ = ["CPPE"]


@dataclass
class CPPE:
    """The coordinated MHPE + pattern-aware-prefetcher pair."""

    policy: MHPEPolicy
    prefetcher: PatternAwarePrefetcher

    @classmethod
    def create(
        cls,
        mhpe_config: Optional[MHPEConfig] = None,
        pattern_config: Optional[PatternBufferConfig] = None,
    ) -> "CPPE":
        """Build a fresh CPPE pair (one per simulation — both are stateful).

        ``pattern_config`` selects, among other things, the pattern deletion
        scheme (Scheme-2 by default, the paper's adopted choice).
        """
        return cls(
            policy=MHPEPolicy(mhpe_config),
            prefetcher=PatternAwarePrefetcher(pattern_config),
        )

    @classmethod
    def scheme(cls, deletion_scheme: int) -> "CPPE":
        """CPPE with a specific pattern-deletion scheme (Fig. 7 experiment)."""
        return cls.create(
            pattern_config=PatternBufferConfig(deletion_scheme=deletion_scheme)
        )
