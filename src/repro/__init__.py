"""Reproduction of *Coordinated Page Prefetch and Eviction for Memory
Oversubscription Management in GPUs* (Yu et al., IPDPS 2020).

Public API tour::

    from repro import Simulator, make_workload, SimConfig
    from repro.core import CPPE
    from repro.policies import LRUPolicy, MHPEPolicy, ReservedLRUPolicy
    from repro.prefetch import LocalityPrefetcher, PatternAwarePrefetcher

    wl = make_workload("SRD")                       # Table II application
    baseline = Simulator(wl, policy=LRUPolicy(),
                         prefetcher=LocalityPrefetcher("continue"),
                         oversubscription=0.5).run()
    pair = CPPE.create()
    cppe = Simulator(wl, policy=pair.policy, prefetcher=pair.prefetcher,
                     oversubscription=0.5).run()
    print(cppe.speedup_over(baseline))

The experiment harness (``repro.harness``) regenerates every figure and
table of the paper's evaluation; see EXPERIMENTS.md.
"""

from .config import (
    HPEConfig,
    MHPEConfig,
    PatternBufferConfig,
    SimConfig,
    SMConfig,
    TLBConfig,
    TranslationConfig,
    UVMConfig,
    WalkerConfig,
)
from .engine.simulator import SimulationResult, Simulator
from .engine.stats import SimStats
from .errors import (
    CapacityError,
    ConfigError,
    ReproError,
    SimulationError,
    ThrashingCrash,
    WorkloadError,
)
from .workloads.base import Workload
from .workloads.suite import BENCHMARKS, get_benchmark, make_workload

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # configuration
    "SimConfig",
    "SMConfig",
    "UVMConfig",
    "TLBConfig",
    "TranslationConfig",
    "WalkerConfig",
    "MHPEConfig",
    "HPEConfig",
    "PatternBufferConfig",
    # simulation
    "Simulator",
    "SimulationResult",
    "SimStats",
    # workloads
    "Workload",
    "BENCHMARKS",
    "get_benchmark",
    "make_workload",
    # errors
    "ReproError",
    "ConfigError",
    "CapacityError",
    "SimulationError",
    "WorkloadError",
    "ThrashingCrash",
]
