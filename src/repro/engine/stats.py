"""Simulation statistics.

Every counter the paper's evaluation consumes is collected here:

* runtime (cycles) — speedup figures (Figs. 3, 7, 8, 9, 10);
* chunk evictions — thrashing metric (Fig. 4);
* per-interval untouch level / wrong evictions — Tables III & IV and the
  forward-distance adjustment analysis;
* structure occupancy (chunk chain, evicted-chunk buffer, pattern buffer) —
  the overhead analysis of Section VI-C.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

__all__ = ["IntervalRecord", "SimStats", "publish_summary"]


@dataclass
class IntervalRecord:
    """Per-interval policy telemetry (one interval = 64 pages migrated)."""

    index: int
    end_time: int = 0
    untouch_total: int = 0
    wrong_evictions: int = 0
    chunks_evicted: int = 0
    faults: int = 0
    strategy: str = ""
    forward_distance: int = 0


@dataclass
class SimStats:
    """Mutable statistics bag shared by all simulator components."""

    # --- execution ---
    total_cycles: int = 0
    accesses: int = 0
    writes: int = 0
    sm_finish_times: Dict[int, int] = field(default_factory=dict)
    sm_stall_events: int = 0

    # --- translation ---
    l1_tlb_hits: int = 0
    l1_tlb_misses: int = 0
    l2_tlb_hits: int = 0
    l2_tlb_misses: int = 0
    page_walks: int = 0
    pwc_hits: int = 0
    pwc_misses: int = 0
    walker_queue_delay_cycles: int = 0
    tlb_shootdowns: int = 0

    # --- faults & migration ---
    far_faults: int = 0
    merged_faults: int = 0
    fault_service_ops: int = 0
    pages_migrated: int = 0
    demand_pages: int = 0
    prefetched_pages: int = 0
    prefetched_pages_touched: int = 0
    chunks_evicted: int = 0
    pages_evicted: int = 0
    dirty_pages_written_back: int = 0
    bytes_host_to_device: int = 0
    bytes_device_to_host: int = 0

    # --- policy telemetry ---
    wrong_evictions: int = 0
    untouch_total: int = 0
    intervals: List[IntervalRecord] = field(default_factory=list)
    strategy_switch_time: Optional[int] = None
    final_strategy: str = ""
    forward_distance_history: List[int] = field(default_factory=list)

    # --- pattern buffer ---
    pattern_inserts: int = 0
    pattern_hits: int = 0
    pattern_mismatches: int = 0
    pattern_deletions: int = 0
    pattern_prefetches: int = 0
    pattern_buffer_peak: int = 0

    # --- structure occupancy (Section VI-C overhead analysis) ---
    chain_length_peak: int = 0
    evicted_buffer_length: int = 0
    pattern_buffer_len_samples: List[int] = field(default_factory=list)

    def record_interval(self, record: IntervalRecord) -> None:
        self.intervals.append(record)

    # --- derived metrics -------------------------------------------------

    @property
    def l1_tlb_hit_rate(self) -> float:
        total = self.l1_tlb_hits + self.l1_tlb_misses
        return self.l1_tlb_hits / total if total else 0.0

    @property
    def l2_tlb_hit_rate(self) -> float:
        total = self.l2_tlb_hits + self.l2_tlb_misses
        return self.l2_tlb_hits / total if total else 0.0

    @property
    def prefetch_accuracy(self) -> float:
        """Fraction of prefetched pages that were touched before eviction."""
        if self.prefetched_pages == 0:
            return 0.0
        return self.prefetched_pages_touched / self.prefetched_pages

    @property
    def avg_untouch_per_interval(self) -> float:
        if not self.intervals:
            return 0.0
        return sum(r.untouch_total for r in self.intervals) / len(self.intervals)

    def max_untouch_first_n_intervals(self, n: int = 4) -> int:
        """Max per-interval untouch level over the first ``n`` intervals
        (the Table III statistic)."""
        head = self.intervals[:n]
        return max((r.untouch_total for r in head), default=0)

    def total_untouch_first_n_intervals(self, n: int = 4) -> int:
        """Cumulative untouch level over the first ``n`` intervals
        (the Table IV statistic)."""
        return sum(r.untouch_total for r in self.intervals[:n])

    def summary(self) -> Dict[str, float]:
        """Flat dict of headline numbers, for reporting/serialisation."""
        return {
            "total_cycles": self.total_cycles,
            "accesses": self.accesses,
            "far_faults": self.far_faults,
            "fault_service_ops": self.fault_service_ops,
            "pages_migrated": self.pages_migrated,
            "prefetched_pages": self.prefetched_pages,
            "prefetch_accuracy": round(self.prefetch_accuracy, 4),
            "chunks_evicted": self.chunks_evicted,
            "wrong_evictions": self.wrong_evictions,
            "untouch_total": self.untouch_total,
            "l1_tlb_hit_rate": round(self.l1_tlb_hit_rate, 4),
            "l2_tlb_hit_rate": round(self.l2_tlb_hit_rate, 4),
            "bytes_host_to_device": self.bytes_host_to_device,
            "bytes_device_to_host": self.bytes_device_to_host,
            "final_strategy": self.final_strategy,
        }

    def interval_arrays(self) -> Dict[str, "np.ndarray"]:
        """Interval telemetry as parallel int64 numpy columns.

        Vectorized companion to :meth:`interval_rows` for aggregate
        consumers (benchmark reports, figure pipelines): one
        ``np.int64`` array per numeric column, all the same length, in
        interval order.  Intentionally a method, not a cached field —
        the pickle byte layout of cached results must not change.
        """
        recs = self.intervals
        cols = (
            "index", "end_time", "forward_distance", "untouch_total",
            "wrong_evictions", "faults", "chunks_evicted",
        )
        return {
            name: np.fromiter(
                (getattr(r, name) for r in recs), dtype=np.int64, count=len(recs)
            )
            for name in cols
        }

    def untouch_prefix_stats(self, n: int = 4) -> Dict[str, int]:
        """Vectorized Table III/IV statistics over the first ``n`` intervals.

        Returns ``{"max": ..., "total": ...}`` — equal by construction to
        :meth:`max_untouch_first_n_intervals` /
        :meth:`total_untouch_first_n_intervals`.
        """
        head = np.fromiter(
            (r.untouch_total for r in self.intervals[:n]),
            dtype=np.int64,
            count=min(n, len(self.intervals)),
        )
        if head.size == 0:
            return {"max": 0, "total": 0}
        return {"max": int(head.max()), "total": int(head.sum())}

    def interval_rows(self) -> List[Dict[str, object]]:
        """The interval telemetry as flat dicts (reporting convenience;
        intentionally a method, not a field — the pickle byte layout of
        cached results must not change)."""
        return [
            {
                "index": r.index,
                "end_time": r.end_time,
                "strategy": r.strategy,
                "forward_distance": r.forward_distance,
                "untouch_level": r.untouch_total,
                "wrong_evictions": r.wrong_evictions,
                "faults": r.faults,
                "chunks_evicted": r.chunks_evicted,
            }
            for r in self.intervals
        ]


def publish_summary(stats: "SimStats", metrics: object) -> None:
    """Mirror the headline stats into a metrics registry as gauges.

    ``metrics`` is a :class:`repro.obs.MetricsRegistry` (typed as object to
    keep this module free of an obs import cycle); no-op under the disabled
    registry.
    """
    gauge = getattr(metrics, "gauge", None)
    if gauge is None:  # pragma: no cover - defensive
        return
    for key, value in stats.summary().items():
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            gauge(f"stats.{key}").set(value)
