"""Discrete-event simulation engine: event queue, SM model, statistics."""

from .events import Event, EventQueue
from .stats import IntervalRecord, SimStats
from .sm import StreamingMultiprocessor
from .simulator import Simulator, SimulationResult
from .multi import ShardedSimulator

__all__ = [
    "Event",
    "EventQueue",
    "IntervalRecord",
    "SimStats",
    "StreamingMultiprocessor",
    "Simulator",
    "SimulationResult",
    "ShardedSimulator",
]
