"""Streaming multiprocessor model.

Each SM executes a fixed trace of virtual-page accesses.  The model captures
exactly what the paper's mechanisms react to:

* every access pays the translation path (L1 TLB -> L2 TLB -> page walk);
* a resident page is *touched* (page-table access bit, chunk bit-vector,
  policy recency) and execution continues after a small compute gap;
* a non-resident page raises a **replayable far fault** [9]: the access is
  parked, the SM keeps issuing subsequent accesses (modelling other warps
  making progress) until ``max_outstanding_faults`` accesses are parked,
  then stalls until a fault resolves.

For event-queue efficiency an SM processes up to ``burst_length``
consecutive non-stalling accesses inside a single event, accumulating
latency locally; the resulting reordering across SMs is bounded by one
burst (a few hundred cycles), far below the 28,000-cycle fault latency that
dominates every studied effect.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Callable, Optional, Tuple

import numpy as np

from ..config import SimConfig
from ..engine.events import Event, EventQueue
from ..engine.stats import SimStats
from ..errors import SimulationError
from ..memsim.fault import FarFault
from ..memsim.gmmu import GMMU
from ..translation.hierarchy import TranslationHierarchy

__all__ = ["StreamingMultiprocessor"]


class StreamingMultiprocessor:
    """One SM executing a page-access trace."""

    def __init__(
        self,
        sm_id: int,
        trace: np.ndarray,
        writes: Optional[np.ndarray],
        config: SimConfig,
        gmmu: GMMU,
        translation: Optional[TranslationHierarchy],
        events: EventQueue,
        stats: SimStats,
        on_finish: Callable[[int, int], None],
    ):
        if writes is not None and len(writes) != len(trace):
            raise SimulationError("writes array must match trace length")
        self.sm_id = sm_id
        self.trace = np.asarray(trace, dtype=np.int64)
        self.writes = writes
        self.config = config
        self.gmmu = gmmu
        self.translation = translation
        self.events = events
        self.stats = stats
        self.on_finish = on_finish

        self._cursor = 0
        self._outstanding = 0
        self._finished = False
        self._run_event: Optional[Event] = None
        # Fused burst loop: eligible when the memory system runs the array
        # backend (gmmu._fast) and the full translation path is modelled —
        # then TLB probes, the page touch and the policy recency update can
        # be inlined over the flat arrays.  The legacy/object path is the
        # oracle; tests/test_backend_differential.py proves byte-identity.
        self._fast = (
            translation is not None
            and translation.config.enabled
            and getattr(gmmu, "_fast", False)
        )
        #: Lazily built attribute-hoist tuple for :meth:`_run_fast`;
        #: invalidated by identity check against the live page table.
        self._hoisted: Optional[Tuple] = None
        self._fill_consts: Optional[Tuple] = None
        # Boxed-window cache: fault-heavy phases re-enter the burst loop
        # every few accesses, and a numpy slice + tolist per entry would
        # dominate.  Boxing 4096 accesses at a time amortises it away while
        # keeping peak memory far below boxing the whole trace.
        self._box_lo = 0
        self._box_hi = 0
        self._boxed: Optional[list] = None
        self._boxed_writes: Optional[bytes] = None
        if self._fast:
            assert translation is not None
            l1 = translation.l1_tlbs[sm_id]
            l2 = translation.l2_tlb
            self._fill_consts = (
                l1._sets, l1._num_sets, l1._assoc,
                l2._sets, l2._num_sets, l2._assoc,
                len(self.trace), config.sm.max_outstanding_faults,
            )

    # --- scheduling -----------------------------------------------------------

    def start(self, time: int = 0) -> None:
        self._schedule_run(time)

    def _schedule_run(self, time: int) -> None:
        if self._run_event is None and not self._finished:
            self._run_event = self.events.schedule(
                time, self._run_fast if self._fast else self._run
            )

    @property
    def stalled(self) -> bool:
        return self._outstanding >= self.config.sm.max_outstanding_faults

    @property
    def done(self) -> bool:
        return self._finished

    # --- execution ---------------------------------------------------------------

    def _run(self, time: int) -> None:
        if self._fast:
            self._run_fast(time)
            return
        self._run_event = None
        sm_cfg = self.config.sm
        trace = self.trace
        n = len(trace)
        local_time = time
        budget = sm_cfg.burst_length

        while budget > 0 and self._cursor < n and not self.stalled:
            vpn = int(trace[self._cursor])
            is_write = bool(self.writes[self._cursor]) if self.writes is not None else False
            local_time += sm_cfg.compute_cycles_per_access

            if self.translation is not None:
                latency, resident = self.translation.translate(
                    self.sm_id, vpn, local_time
                )
                local_time += latency
            else:
                resident = self.gmmu.is_resident(vpn)

            self.stats.accesses += 1
            if is_write:
                self.stats.writes += 1
            self._cursor += 1
            budget -= 1

            if resident:
                self.gmmu.touch_page(self.sm_id, vpn, is_write, local_time)
                continue

            # Far fault: park the access, keep going (replayable faults).
            self._outstanding += 1
            fault = FarFault(
                vpn=vpn,
                sm_id=self.sm_id,
                time=local_time,
                is_write=is_write,
                on_resolve=self._make_resolver(vpn, is_write),
            )
            self.gmmu.handle_fault(fault)

        if self._cursor >= n:
            self._maybe_finish(local_time)
        elif self.stalled:
            self.stats.sm_stall_events += 1
            # Resumed by a fault resolution; no event scheduled.
        else:
            # Burst exhausted: yield to other SMs and continue.
            self._schedule_run(local_time)

    def _hoist(self) -> Tuple:
        """Build (and cache) the attribute-hoist tuple for `_run_fast`.

        Everything captured here is identity-stable for the lifetime of a
        run: the TLB/walker/PWC objects are never replaced, and the array
        backend grows its lists strictly in place (``extend`` /
        ``lst[:0] =``), so the list objects survive rebasing.  Origins and
        lengths are *not* captured — they change on growth and are re-read
        every burst.
        """
        gmmu = self.gmmu
        tr = self.translation
        assert tr is not None
        sm_cfg = self.config.sm
        l1 = tr.l1_tlbs[self.sm_id]
        l2 = tr.l2_tlb
        walker = tr.walker
        pwc = walker.pwc
        pt = gmmu._page_table
        chain = gmmu.chain
        hoisted = (
            pt,                                     # 0: identity check anchor
            chain,
            pt._accessed,
            pt._dirty,
            pt._frames,
            chain._tch,
            chain._lref,
            chain._ctr,
            chain._prv,
            chain._nxt,
            gmmu.clock,
            gmmu.policy,
            gmmu._policy_kind,
            gmmu.uvm.pages_per_chunk,
            l1, l1._sets, l1._num_sets, l1._assoc, l1.config.hit_latency,
            l2, l2._sets, l2._num_sets, l2._assoc, l2.config.hit_latency,
            walker,
            walker.dram is None,                    # inline (non-DRAM) walk?
            walker._busy_until,
            walker.config.concurrent_walks,
            walker.config.levels,
            walker.config.memory_access_latency,
            pwc,
            pwc._sets,
            pwc._num_sets,
            pwc._assoc,
            pwc.config.latency,
            sm_cfg.compute_cycles_per_access,
            sm_cfg.max_outstanding_faults,
            sm_cfg.burst_length,
        )
        self._hoisted = hoisted
        return hoisted

    def _run_fast(self, time: int) -> None:
        """Array-backend burst: one trace slice, everything inlined.

        Byte-identical to :meth:`_run` by construction — same per-access
        latency arithmetic, same event scheduling, same counters.  Local
        counter accumulation is flushed back to the shared stats (and the
        TLB/walker/PWC objects' own counters) before every ``handle_fault``
        and at loop exit, because fault handling can synchronously resolve
        *this* SM's earlier faults (which reads ``_cursor``/``_outstanding``)
        and can abort the run (ThrashingCrash) with the stats as they stand.
        """
        self._run_event = None
        gmmu = self.gmmu
        stats = self.stats
        hoisted = self._hoisted
        if hoisted is None or hoisted[0] is not gmmu._page_table:
            hoisted = self._hoist()
        (
            pt, chain, acc, drt, frames, tch, lref, ctr, prvl, nxtl,
            clock, policy, kind, ppc,
            l1, l1_sets, l1_num, l1_assoc, l1_lat,
            l2, l2_sets, l2_num, l2_assoc, l2_lat,
            walker, inline_walk, w_busy, w_cap, w_levels, w_mem_lat,
            pwc, pwc_sets, pwc_num, pwc_assoc, pwc_lat,
            compute, max_out, burst_length,
        ) = hoisted
        # Origins move when the arrays grow downward (between bursts only).
        p_origin = pt._origin
        c_origin = chain._origin

        n = len(self.trace)
        cursor = self._cursor
        end = min(n, cursor + burst_length)
        # Boxed window (never the whole trace: boxing a 25M-access trace to
        # Python ints up front would cost hundreds of MB).  The window
        # always covers the full burst so event boundaries — and therefore
        # event interleaving across SMs — are untouched by the caching.
        if cursor < self._box_lo or end > self._box_hi:
            lo = cursor
            hi = min(n, max(cursor + 4096, end))
            self._boxed = self.trace[lo:hi].tolist()
            self._boxed_writes = (
                self.writes[lo:hi].astype(np.uint8).tobytes()
                if self.writes is not None else None
            )
            self._box_lo = lo
            self._box_hi = hi
        vpns = self._boxed
        writes = self._boxed_writes
        base = cursor - self._box_lo
        count = end - cursor

        local_time = time
        outstanding = self._outstanding
        sm_id = self.sm_id

        accesses = 0
        writes_n = 0
        l1_hits = 0
        l1_misses = 0
        l2_hits = 0
        l2_misses = 0
        walks = 0
        w_walks = 0
        w_cycles = 0
        w_qdelay = 0
        pwc_h = 0
        pwc_m = 0

        i = 0
        while i < count:
            vpn = vpns[base + i]
            is_write = writes[base + i] != 0 if writes is not None else False
            i += 1
            local_time += compute

            # --- translation path (mirrors TranslationHierarchy.translate)
            s = l1_sets[vpn % l1_num]
            if vpn in s:
                del s[vpn]
                s[vpn] = None
                l1_hits += 1
                local_time += l1_lat
                resident = True
            else:
                l1_misses += 1
                latency = l1_lat
                s2 = l2_sets[vpn % l2_num]
                if vpn in s2:
                    del s2[vpn]
                    s2[vpn] = None
                    l2_hits += 1
                    latency += l2_lat
                    if len(s) >= l1_assoc:
                        del s[next(iter(s))]
                    s[vpn] = None
                    resident = True
                else:
                    l2_misses += 1
                    latency += l2_lat
                    if inline_walk:
                        # --- inline walk (mirrors PageTableWalker.walk,
                        # flat-latency arm).  Keys are (level, vpn >> 9*d).
                        w_walks += 1
                        wtime = local_time + latency
                        while w_busy and w_busy[0] <= wtime:
                            heappop(w_busy)
                        queue_delay = 0
                        if len(w_busy) >= w_cap:
                            queue_delay = heappop(w_busy) - wtime
                        deepest = -1
                        level = w_levels - 2
                        while level >= 0:
                            node = vpn >> (9 * (w_levels - 1 - level))
                            key = (level, node)
                            ps = pwc_sets[(node * 7 + level) % pwc_num]
                            if key in ps:
                                del ps[key]
                                ps[key] = None
                                pwc_h += 1
                                deepest = level
                                break
                            pwc_m += 1
                            level -= 1
                        wlat = pwc_lat + (w_levels - 1 - deepest) * w_mem_lat
                        level = deepest + 1
                        while level < w_levels - 1:
                            node = vpn >> (9 * (w_levels - 1 - level))
                            key = (level, node)
                            ps = pwc_sets[(node * 7 + level) % pwc_num]
                            if key in ps:
                                del ps[key]
                            elif len(ps) >= pwc_assoc:
                                ps.pop(next(iter(ps)))
                            ps[key] = None
                            level += 1
                        heappush(w_busy, wtime + queue_delay + wlat)
                        w_cycles += wlat
                        w_qdelay += queue_delay
                        pidx = vpn - p_origin
                        resident = (
                            0 <= pidx < len(frames) and frames[pidx] >= 0
                        )
                        walk_latency = queue_delay + wlat
                    else:
                        walk_latency, resident = walker.walk(
                            vpn, local_time + latency
                        )
                    walks += 1
                    latency += walk_latency
                    if resident:
                        if len(s) >= l1_assoc:
                            del s[next(iter(s))]
                        s[vpn] = None
                        if len(s2) >= l2_assoc:
                            del s2[next(iter(s2))]
                        s2[vpn] = None
                local_time += latency

            accesses += 1
            if is_write:
                writes_n += 1

            if resident:
                # --- inline touch (mirrors MemorySystem.touch_page fast path)
                idx = vpn - p_origin
                acc[idx] = 1
                if is_write:
                    drt[idx] = 1
                cid = vpn // ppc
                li = cid - c_origin
                tch[li] |= 1 << (vpn - cid * ppc)
                # Recency dispatch with ArrayChunkChain.move_to_tail inlined
                # (the touched chunk is in the chain by invariant — resident
                # pages always have a chain entry — so no membership check).
                if kind == "lru":
                    last = chain._last
                    if last != cid:
                        prv = prvl[li]
                        nxt = nxtl[li]
                        if prv >= 0:
                            nxtl[prv - c_origin] = nxt
                        else:
                            chain._first = nxt
                        prvl[nxt - c_origin] = prv
                        prvl[li] = last
                        nxtl[li] = -1
                        nxtl[last - c_origin] = cid
                        chain._last = cid
                    lref[li] = clock._interval_index
                elif kind == "mhpe":
                    interval = clock._interval_index
                    if lref[li] < interval:
                        lref[li] = interval
                        last = chain._last
                        if last != cid:
                            prv = prvl[li]
                            nxt = nxtl[li]
                            if prv >= 0:
                                nxtl[prv - c_origin] = nxt
                            else:
                                chain._first = nxt
                            prvl[nxt - c_origin] = prv
                            prvl[li] = last
                            nxtl[li] = -1
                            nxtl[last - c_origin] = cid
                            chain._last = cid
                elif kind == "hpe":
                    counter = ctr[li]
                    if counter < 16:
                        ctr[li] = counter + 1
                    last = chain._last
                    if last != cid:
                        prv = prvl[li]
                        nxt = nxtl[li]
                        if prv >= 0:
                            nxtl[prv - c_origin] = nxt
                        else:
                            chain._first = nxt
                        prvl[nxt - c_origin] = prv
                        prvl[li] = last
                        nxtl[li] = -1
                        nxtl[last - c_origin] = cid
                        chain._last = cid
                    lref[li] = clock._interval_index
                elif kind == "ref":
                    lref[li] = clock._interval_index
                else:
                    policy.on_page_touched(chain._handle(li), vpn, local_time)
                continue

            # --- far fault: sync state out, hand off, sync back in
            self._cursor = cursor + i
            outstanding += 1
            self._outstanding = outstanding
            stats.accesses += accesses
            stats.writes += writes_n
            stats.l1_tlb_hits += l1_hits
            stats.l1_tlb_misses += l1_misses
            stats.l2_tlb_hits += l2_hits
            stats.l2_tlb_misses += l2_misses
            stats.page_walks += walks
            l1.hits += l1_hits
            l1.misses += l1_misses
            l2.hits += l2_hits
            l2.misses += l2_misses
            walker.walks += w_walks
            walker.total_walk_cycles += w_cycles
            walker.total_queue_delay += w_qdelay
            pwc.hits += pwc_h
            pwc.misses += pwc_m
            accesses = writes_n = 0
            l1_hits = l1_misses = l2_hits = l2_misses = walks = 0
            w_walks = w_cycles = w_qdelay = pwc_h = pwc_m = 0
            fault = FarFault(
                vpn=vpn,
                sm_id=sm_id,
                time=local_time,
                is_write=is_write,
                on_resolve=self._make_resolver(vpn, is_write),
            )
            gmmu.handle_fault(fault)
            # begin_service can synchronously resolve this SM's earlier
            # faults (and this one), mutating _outstanding: reload.
            outstanding = self._outstanding
            if outstanding >= max_out:
                break

        self._cursor = cursor + i
        self._outstanding = outstanding
        stats.accesses += accesses
        stats.writes += writes_n
        stats.l1_tlb_hits += l1_hits
        stats.l1_tlb_misses += l1_misses
        stats.l2_tlb_hits += l2_hits
        stats.l2_tlb_misses += l2_misses
        stats.page_walks += walks
        l1.hits += l1_hits
        l1.misses += l1_misses
        l2.hits += l2_hits
        l2.misses += l2_misses
        walker.walks += w_walks
        walker.total_walk_cycles += w_cycles
        walker.total_queue_delay += w_qdelay
        pwc.hits += pwc_h
        pwc.misses += pwc_m

        if self._cursor >= n:
            self._maybe_finish(local_time)
        elif self.stalled:
            self.stats.sm_stall_events += 1
            # Resumed by a fault resolution; no event scheduled.
        else:
            # Burst exhausted: yield to other SMs and continue.
            self._schedule_run(local_time)

    def _make_resolver(self, vpn: int, is_write: bool) -> Callable[[int], None]:
        if self._fill_consts is not None:
            return self._make_resolver_fast(vpn, is_write)

        def resolve(time: int) -> None:
            # Replay the parked access: the page is resident now.  The
            # replayed access re-translates; its walk cost is part of the
            # fault service, so only the TLB fills are modelled.
            if self.translation is not None:
                self.translation.fill(self.sm_id, vpn)
            self.gmmu.touch_page(self.sm_id, vpn, is_write, time)
            was_stalled = self.stalled
            self._outstanding -= 1
            if self._outstanding < 0:
                raise SimulationError(f"SM{self.sm_id}: negative outstanding faults")
            if self._cursor >= len(self.trace):
                self._maybe_finish(time)
            elif was_stalled:
                self._schedule_run(time)

        return resolve

    def _make_resolver_fast(
        self, vpn: int, is_write: bool
    ) -> Callable[[int], None]:
        """Resolver with the TLB fills inlined (array backend only).

        Identical to the generic resolver: ``TranslationHierarchy.fill`` is
        two ``TLB.insert`` calls, reproduced on the hoisted set dicts.
        """
        assert self._fill_consts is not None
        (
            l1_sets, l1_num, l1_assoc,
            l2_sets, l2_num, l2_assoc,
            trace_len, max_out,
        ) = self._fill_consts

        def resolve(time: int) -> None:
            s = l1_sets[vpn % l1_num]
            if vpn in s:
                del s[vpn]
            elif len(s) >= l1_assoc:
                s.pop(next(iter(s)))
            s[vpn] = None
            s2 = l2_sets[vpn % l2_num]
            if vpn in s2:
                del s2[vpn]
            elif len(s2) >= l2_assoc:
                s2.pop(next(iter(s2)))
            s2[vpn] = None
            self.gmmu.touch_page(self.sm_id, vpn, is_write, time)
            outstanding = self._outstanding
            was_stalled = outstanding >= max_out
            outstanding -= 1
            self._outstanding = outstanding
            if outstanding < 0:
                raise SimulationError(f"SM{self.sm_id}: negative outstanding faults")
            if self._cursor >= trace_len:
                self._maybe_finish(time)
            elif was_stalled:
                self._schedule_run(time)

        return resolve

    def _maybe_finish(self, time: int) -> None:
        if self._finished or self._outstanding > 0 or self._cursor < len(self.trace):
            return
        self._finished = True
        self.stats.sm_finish_times[self.sm_id] = time
        self.on_finish(self.sm_id, time)
