"""Streaming multiprocessor model.

Each SM executes a fixed trace of virtual-page accesses.  The model captures
exactly what the paper's mechanisms react to:

* every access pays the translation path (L1 TLB -> L2 TLB -> page walk);
* a resident page is *touched* (page-table access bit, chunk bit-vector,
  policy recency) and execution continues after a small compute gap;
* a non-resident page raises a **replayable far fault** [9]: the access is
  parked, the SM keeps issuing subsequent accesses (modelling other warps
  making progress) until ``max_outstanding_faults`` accesses are parked,
  then stalls until a fault resolves.

For event-queue efficiency an SM processes up to ``burst_length``
consecutive non-stalling accesses inside a single event, accumulating
latency locally; the resulting reordering across SMs is bounded by one
burst (a few hundred cycles), far below the 28,000-cycle fault latency that
dominates every studied effect.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from ..config import SimConfig
from ..engine.events import Event, EventQueue
from ..engine.stats import SimStats
from ..errors import SimulationError
from ..memsim.fault import FarFault
from ..memsim.gmmu import GMMU
from ..translation.hierarchy import TranslationHierarchy

__all__ = ["StreamingMultiprocessor"]


class StreamingMultiprocessor:
    """One SM executing a page-access trace."""

    def __init__(
        self,
        sm_id: int,
        trace: np.ndarray,
        writes: Optional[np.ndarray],
        config: SimConfig,
        gmmu: GMMU,
        translation: Optional[TranslationHierarchy],
        events: EventQueue,
        stats: SimStats,
        on_finish: Callable[[int, int], None],
    ):
        if writes is not None and len(writes) != len(trace):
            raise SimulationError("writes array must match trace length")
        self.sm_id = sm_id
        self.trace = np.asarray(trace, dtype=np.int64)
        self.writes = writes
        self.config = config
        self.gmmu = gmmu
        self.translation = translation
        self.events = events
        self.stats = stats
        self.on_finish = on_finish

        self._cursor = 0
        self._outstanding = 0
        self._finished = False
        self._run_event: Optional[Event] = None

    # --- scheduling -----------------------------------------------------------

    def start(self, time: int = 0) -> None:
        self._schedule_run(time)

    def _schedule_run(self, time: int) -> None:
        if self._run_event is None and not self._finished:
            self._run_event = self.events.schedule(time, self._run)

    @property
    def stalled(self) -> bool:
        return self._outstanding >= self.config.sm.max_outstanding_faults

    @property
    def done(self) -> bool:
        return self._finished

    # --- execution ---------------------------------------------------------------

    def _run(self, time: int) -> None:
        self._run_event = None
        sm_cfg = self.config.sm
        trace = self.trace
        n = len(trace)
        local_time = time
        budget = sm_cfg.burst_length

        while budget > 0 and self._cursor < n and not self.stalled:
            vpn = int(trace[self._cursor])
            is_write = bool(self.writes[self._cursor]) if self.writes is not None else False
            local_time += sm_cfg.compute_cycles_per_access

            if self.translation is not None:
                latency, resident = self.translation.translate(
                    self.sm_id, vpn, local_time
                )
                local_time += latency
            else:
                resident = self.gmmu.is_resident(vpn)

            self.stats.accesses += 1
            if is_write:
                self.stats.writes += 1
            self._cursor += 1
            budget -= 1

            if resident:
                self.gmmu.touch_page(self.sm_id, vpn, is_write, local_time)
                continue

            # Far fault: park the access, keep going (replayable faults).
            self._outstanding += 1
            fault = FarFault(
                vpn=vpn,
                sm_id=self.sm_id,
                time=local_time,
                is_write=is_write,
                on_resolve=self._make_resolver(vpn, is_write),
            )
            self.gmmu.handle_fault(fault)

        if self._cursor >= n:
            self._maybe_finish(local_time)
        elif self.stalled:
            self.stats.sm_stall_events += 1
            # Resumed by a fault resolution; no event scheduled.
        else:
            # Burst exhausted: yield to other SMs and continue.
            self._schedule_run(local_time)

    def _make_resolver(self, vpn: int, is_write: bool) -> Callable[[int], None]:
        def resolve(time: int) -> None:
            # Replay the parked access: the page is resident now.  The
            # replayed access re-translates; its walk cost is part of the
            # fault service, so only the TLB fills are modelled.
            if self.translation is not None:
                self.translation.fill(self.sm_id, vpn)
            self.gmmu.touch_page(self.sm_id, vpn, is_write, time)
            was_stalled = self.stalled
            self._outstanding -= 1
            if self._outstanding < 0:
                raise SimulationError(f"SM{self.sm_id}: negative outstanding faults")
            if self._cursor >= len(self.trace):
                self._maybe_finish(time)
            elif was_stalled:
                self._schedule_run(time)

        return resolve

    def _maybe_finish(self, time: int) -> None:
        if self._finished or self._outstanding > 0 or self._cursor < len(self.trace):
            return
        self._finished = True
        self.stats.sm_finish_times[self.sm_id] = time
        self.on_finish(self.sm_id, time)
