"""Top-level simulator: wires workload, SMs, translation, GMMU, policy and
prefetcher, runs to completion, and returns a :class:`SimulationResult`.

This is the main entry point of the library::

    from repro import Simulator, make_workload
    from repro.core import CPPE

    wl = make_workload("SRD")
    pair = CPPE.create()
    result = Simulator(wl, policy=pair.policy, prefetcher=pair.prefetcher,
                       oversubscription=0.5).run()
    print(result.total_cycles, result.stats.far_faults)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..config import SimConfig
from ..errors import SimulationError, ThrashingCrash
from ..memsim.array_backend import ArrayPageTable
from ..memsim.page_table import PageTable
from ..memsim.system import MemorySystem
from ..obs import DISABLED, Observability
from ..policies.base import EvictionPolicy
from ..policies.lru import LRUPolicy
from ..prefetch.base import Prefetcher
from ..prefetch.locality import LocalityPrefetcher
from ..translation.hierarchy import TranslationHierarchy
from ..workloads.base import Workload
from .events import EventQueue
from .sm import StreamingMultiprocessor
from .stats import SimStats, publish_summary

__all__ = ["Simulator", "SimulationResult", "build_page_table"]

#: Safety valve: no experiment in the reproduction needs more events.
DEFAULT_MAX_EVENTS = 100_000_000


def build_page_table(config: SimConfig, workload: Workload) -> PageTable:
    """Page table for ``workload`` under ``config.backend``.

    The array backend pre-sizes its flat frame ledger to the workload's
    rebased VPN range so the simulation itself never grows the arrays (the
    ``_ensure`` growth path exists for robustness, not the steady state).
    """
    levels = config.translation.walker.levels
    if config.backend != "array":
        return PageTable(levels)
    return ArrayPageTable(
        levels,
        origin_hint=workload.base_vpn,
        size_hint=workload.footprint_pages + 1,
    )


@dataclass
class SimulationResult:
    """Outcome of one simulation run."""

    workload: str
    pattern_type: str
    policy: str
    prefetcher: str
    oversubscription: Optional[float]
    capacity_pages: int
    footprint_pages: int
    stats: SimStats = field(repr=False, default_factory=SimStats)
    crashed: bool = False
    crash_reason: str = ""

    @property
    def total_cycles(self) -> int:
        return self.stats.total_cycles

    def speedup_over(self, baseline: "SimulationResult") -> float:
        """Speedup of this run relative to ``baseline`` (>1 means faster).

        A crashed baseline has no defined runtime; callers must check
        ``crashed`` first (mirrors the 'X' entries in Fig. 10).
        """
        if self.crashed or baseline.crashed:
            raise SimulationError(
                "speedup undefined for crashed runs "
                f"(self.crashed={self.crashed}, baseline.crashed={baseline.crashed})"
            )
        if self.total_cycles == 0 or baseline.total_cycles == 0:
            raise SimulationError("run has zero cycles; was it executed?")
        return baseline.total_cycles / self.total_cycles

    def label(self) -> str:
        rate = "unl" if self.oversubscription is None else f"{self.oversubscription:.0%}"
        return f"{self.workload}@{rate}/{self.policy}+{self.prefetcher}"


class Simulator:
    """One simulated GPU executing one workload under one configuration."""

    def __init__(
        self,
        workload: Workload,
        policy: Optional[EvictionPolicy] = None,
        prefetcher: Optional[Prefetcher] = None,
        oversubscription: Optional[float] = None,
        config: Optional[SimConfig] = None,
        capacity_pages: Optional[int] = None,
        max_events: int = DEFAULT_MAX_EVENTS,
        obs: Optional[Observability] = None,
    ):
        self.workload = workload
        self.config = config or SimConfig()
        self.obs = obs or DISABLED
        self.policy = policy if policy is not None else LRUPolicy()
        self.prefetcher = (
            prefetcher if prefetcher is not None else LocalityPrefetcher()
        )
        self.oversubscription = oversubscription
        self.capacity = (
            capacity_pages
            if capacity_pages is not None
            else workload.capacity_for(oversubscription)
        )
        self.max_events = max_events

        self.events = EventQueue()
        self.stats = SimStats()
        page_table = build_page_table(self.config, workload)
        self.translation: Optional[TranslationHierarchy] = None
        if self.config.translation.enabled:
            self.translation = TranslationHierarchy(
                self.config.translation, self.config.sm.num_sms, page_table, self.stats
            )
        self.memory = MemorySystem(
            config=self.config,
            capacity_frames=self.capacity,
            events=self.events,
            stats=self.stats,
            policy=self.policy,
            prefetcher=self.prefetcher,
            translation=self.translation,
            footprint_pages=workload.footprint_pages,
            obs=self.obs,
        )
        #: Back-compat alias for the pre-refactor attribute name.
        self.gmmu = self.memory
        if self.translation is None:
            # The memory system built its own page table; keep a single
            # source of truth (the setter rebinds every stage).
            self.memory.page_table = page_table

        self._finished_sms = 0
        self.sms = []
        for sm_id, (trace, writes) in enumerate(
            workload.per_sm_traces(self.config.sm.num_sms)
        ):
            if trace.size == 0:
                self._finished_sms += 1
                continue
            self.sms.append(
                StreamingMultiprocessor(
                    sm_id=sm_id,
                    trace=trace,
                    writes=writes,
                    config=self.config,
                    gmmu=self.gmmu,
                    translation=self.translation,
                    events=self.events,
                    stats=self.stats,
                    on_finish=self._on_sm_finish,
                )
            )
        if not self.sms:
            raise SimulationError("workload produced no non-empty SM traces")

    def _on_sm_finish(self, sm_id: int, time: int) -> None:
        self._finished_sms += 1

    def run(self) -> SimulationResult:
        """Execute to completion (or crash) and return the result."""
        result = SimulationResult(
            workload=self.workload.name,
            pattern_type=self.workload.pattern_type,
            policy=self.policy.name,
            prefetcher=self.prefetcher.name,
            oversubscription=self.oversubscription,
            capacity_pages=self.capacity,
            footprint_pages=self.workload.footprint_pages,
            stats=self.stats,
        )
        trace = self.obs.tracer
        if trace.enabled:
            trace.emit(
                "run_start", 0, label=result.label(),
                workload=self.workload.name, policy=self.policy.name,
                prefetcher=self.prefetcher.name,
                capacity_pages=self.capacity,
                footprint_pages=self.workload.footprint_pages,
            )
        for sm in self.sms:
            sm.start(0)
        try:
            self.events.run(max_events=self.max_events)
        except ThrashingCrash as crash:
            result.crashed = True
            result.crash_reason = str(crash)
            self.stats.total_cycles = self.events.now
            if trace.enabled:
                trace.emit(
                    "run_end", self.events.now, label=result.label(),
                    crashed=True, reason=result.crash_reason,
                )
            publish_summary(self.stats, self.obs.metrics)
            return result

        if any(not sm.done for sm in self.sms):
            raise SimulationError(
                f"event queue drained but {sum(1 for sm in self.sms if not sm.done)}"
                " SMs have not finished (deadlock?)"
            )
        self.gmmu.drain_check()
        self.stats.total_cycles = max(
            self.stats.sm_finish_times.values(), default=self.events.now
        )
        if self.translation is not None:
            self.translation.sync_counter_stats()
        self.stats.final_strategy = self.policy.current_strategy
        if trace.enabled:
            trace.emit(
                "run_end", self.stats.total_cycles, label=result.label(),
                crashed=False, total_cycles=self.stats.total_cycles,
                far_faults=self.stats.far_faults,
            )
        publish_summary(self.stats, self.obs.metrics)
        return result
