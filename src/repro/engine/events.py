"""Deterministic discrete-event queue.

A thin wrapper over :mod:`heapq` with a monotonically increasing sequence
number to break time ties, making event ordering fully deterministic
regardless of callback identity.  Callbacks are ``callable(time)``.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..errors import SimulationError

__all__ = ["Event", "EventQueue"]


@dataclass(order=True)
class Event:
    """A scheduled callback.  Ordered by (time, seq)."""

    time: int
    seq: int
    callback: Callable[[int], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event as cancelled; it will be skipped when popped."""
        self.cancelled = True


class EventQueue:
    """Priority queue of :class:`Event` with deterministic ordering."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = 0
        self._now = 0

    @property
    def now(self) -> int:
        """Current simulation time (time of the last popped event)."""
        return self._now

    def __len__(self) -> int:
        return sum(1 for e in self._heap if not e.cancelled)

    def schedule(self, time: int, callback: Callable[[int], None]) -> Event:
        """Schedule ``callback`` at absolute ``time`` (must be >= now)."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event in the past: {time} < now {self._now}"
            )
        event = Event(time=time, seq=self._seq, callback=callback)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def schedule_after(self, delay: int, callback: Callable[[int], None]) -> Event:
        """Schedule ``callback`` ``delay`` cycles from now."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return self.schedule(self._now + delay, callback)

    def pop(self) -> Optional[Event]:
        """Pop and return the next non-cancelled event, advancing ``now``.

        Returns ``None`` when the queue is empty.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time
            return event
        return None

    def run(self, max_events: Optional[int] = None) -> int:
        """Drain the queue, dispatching callbacks.  Returns events dispatched.

        ``max_events`` guards against runaway simulations.
        """
        dispatched = 0
        while True:
            if max_events is not None and dispatched >= max_events:
                raise SimulationError(
                    f"event budget exhausted after {dispatched} events"
                )
            event = self.pop()
            if event is None:
                return dispatched
            event.callback(event.time)
            dispatched += 1
