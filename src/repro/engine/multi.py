"""Multi-instance smoke scenario: N ``MemorySystem`` pipelines, one queue.

The staged-pipeline refactor (``repro.memsim.system``) exists so that the
mechanism layer stops being one global object; this module proves the seam
is real by running **several** :class:`MemorySystem` instances — each with
its own device memory, page table, chunk chain, PCIe link, policy and
prefetcher — against a single shared :class:`EventQueue` and
:class:`SimStats`.  SMs are assigned round-robin (``sm_id % instances``),
modelling independent GPUs (or tenant partitions) that each serve their own
SMs' far faults out of an even share of the total frame budget.

This is deliberately a *minimal* scenario: no peer-to-peer migration, no
shared chain, no NVLink model — those are follow-up work.  What it must be
(and what ``tests/test_multi_instance.py`` enforces) is **deterministic**:
identical results from serial and process-pool harness paths, because all
simulation state lives in seeded, per-instance structures and every
cross-instance interaction goes through the deterministic event queue.

Enable it from the harness with ``RunSpec(instances=N)`` or from the CLI
with ``repro run APP --instances N``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..config import SimConfig
from ..errors import SimulationError, ThrashingCrash
from ..memsim.system import MemorySystem
from ..obs import DISABLED, Observability
from ..policies.base import EvictionPolicy
from ..prefetch.base import Prefetcher
from ..translation.hierarchy import TranslationHierarchy
from ..workloads.base import Workload
from .events import EventQueue
from .simulator import DEFAULT_MAX_EVENTS, SimulationResult, build_page_table
from .sm import StreamingMultiprocessor
from .stats import SimStats, publish_summary

__all__ = ["ShardedSimulator", "split_capacity"]


def split_capacity(total_frames: int, instances: int) -> List[int]:
    """Even frame split; low-index instances absorb the remainder."""
    if instances < 1:
        raise SimulationError(f"instances must be >= 1, got {instances}")
    base, rem = divmod(total_frames, instances)
    return [base + (1 if i < rem else 0) for i in range(instances)]


class ShardedSimulator:
    """One workload sharded across N independent ``MemorySystem`` instances.

    ``policies``/``prefetchers`` must hold one (fresh, unattached) instance
    per memory system — policy state is per-GPU.  All instances share the
    event queue and the stats bag (counters are additive; per-interval
    records interleave in deterministic event order).
    """

    def __init__(
        self,
        workload: Workload,
        policies: Sequence[EvictionPolicy],
        prefetchers: Sequence[Prefetcher],
        oversubscription: Optional[float] = None,
        config: Optional[SimConfig] = None,
        capacity_pages: Optional[int] = None,
        max_events: int = DEFAULT_MAX_EVENTS,
        obs: Optional[Observability] = None,
    ):
        if len(policies) != len(prefetchers) or not policies:
            raise SimulationError(
                "need one (policy, prefetcher) pair per instance; got "
                f"{len(policies)} policies / {len(prefetchers)} prefetchers"
            )
        self.workload = workload
        self.config = config or SimConfig()
        self.obs = obs or DISABLED
        self.policies = list(policies)
        self.prefetchers = list(prefetchers)
        self.instances = len(self.policies)
        self.oversubscription = oversubscription
        self.capacity = (
            capacity_pages
            if capacity_pages is not None
            else workload.capacity_for(oversubscription)
        )
        self.max_events = max_events

        self.events = EventQueue()
        self.stats = SimStats()
        self.translations: List[Optional[TranslationHierarchy]] = []
        self.systems: List[MemorySystem] = []
        for i, frames in enumerate(split_capacity(self.capacity, self.instances)):
            page_table = build_page_table(self.config, workload)
            translation: Optional[TranslationHierarchy] = None
            if self.config.translation.enabled:
                # Sized for the global SM-id space: an SM only ever queries
                # its own instance's hierarchy, so the spare L1 TLBs idle.
                translation = TranslationHierarchy(
                    self.config.translation, self.config.sm.num_sms,
                    page_table, self.stats,
                )
            system = MemorySystem(
                config=self.config,
                capacity_frames=frames,
                events=self.events,
                stats=self.stats,
                policy=self.policies[i],
                prefetcher=self.prefetchers[i],
                translation=translation,
                footprint_pages=workload.footprint_pages,
                obs=self.obs,
            )
            if translation is None:
                system.page_table = page_table
            self.translations.append(translation)
            self.systems.append(system)

        self._finished_sms = 0
        self.sms: List[StreamingMultiprocessor] = []
        for sm_id, (trace, writes) in enumerate(
            workload.per_sm_traces(self.config.sm.num_sms)
        ):
            if trace.size == 0:
                self._finished_sms += 1
                continue
            shard = sm_id % self.instances
            self.sms.append(
                StreamingMultiprocessor(
                    sm_id=sm_id,
                    trace=trace,
                    writes=writes,
                    config=self.config,
                    gmmu=self.systems[shard],
                    translation=self.translations[shard],
                    events=self.events,
                    stats=self.stats,
                    on_finish=self._on_sm_finish,
                )
            )
        if not self.sms:
            raise SimulationError("workload produced no non-empty SM traces")

    def _on_sm_finish(self, sm_id: int, time: int) -> None:
        self._finished_sms += 1

    def run(self) -> SimulationResult:
        """Execute to completion (or crash) and return the merged result."""
        result = SimulationResult(
            workload=self.workload.name,
            pattern_type=self.workload.pattern_type,
            policy=self.policies[0].name,
            prefetcher=self.prefetchers[0].name,
            oversubscription=self.oversubscription,
            capacity_pages=self.capacity,
            footprint_pages=self.workload.footprint_pages,
            stats=self.stats,
        )
        trace = self.obs.tracer
        if trace.enabled:
            trace.emit(
                "run_start", 0, label=result.label(),
                workload=self.workload.name, policy=result.policy,
                prefetcher=result.prefetcher,
                capacity_pages=self.capacity,
                footprint_pages=self.workload.footprint_pages,
                instances=self.instances,
            )
        for sm in self.sms:
            sm.start(0)
        try:
            self.events.run(max_events=self.max_events)
        except ThrashingCrash as crash:
            result.crashed = True
            result.crash_reason = str(crash)
            self.stats.total_cycles = self.events.now
            if trace.enabled:
                trace.emit(
                    "run_end", self.events.now, label=result.label(),
                    crashed=True, reason=result.crash_reason,
                )
            publish_summary(self.stats, self.obs.metrics)
            return result

        if any(not sm.done for sm in self.sms):
            raise SimulationError(
                f"event queue drained but {sum(1 for sm in self.sms if not sm.done)}"
                " SMs have not finished (deadlock?)"
            )
        for system in self.systems:
            system.drain_check()
        self.stats.total_cycles = max(
            self.stats.sm_finish_times.values(), default=self.events.now
        )
        for translation in self.translations:
            if translation is not None:
                translation.sync_counter_stats()
        # Shards adapt independently; instance 0 is the reported strategy.
        self.stats.final_strategy = self.policies[0].current_strategy
        if trace.enabled:
            trace.emit(
                "run_end", self.stats.total_cycles, label=result.label(),
                crashed=False, total_cycles=self.stats.total_cycles,
                far_faults=self.stats.far_faults,
            )
        publish_summary(self.stats, self.obs.metrics)
        return result
