"""Headline metrics: speedups, means, and the Section VI-C overhead model.

The overhead model reproduces the paper's storage-cost arithmetic: each
structure entry is a 12-byte (tag 8 B + bit-vector 4 B) record; the three
structures are the chunk chain, the evicted-chunk buffer, and the pattern
buffer.  Section VI-C reports, averaged over the suite, 731 / 559 entries
(8.6 / 6.6 KB) at 75% / 50% oversubscription.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Sequence

from ..engine.simulator import SimulationResult
from ..errors import SimulationError

__all__ = [
    "speedup",
    "geomean",
    "mean",
    "normalize_to",
    "ENTRY_BYTES",
    "OverheadReport",
    "overhead_report",
]

#: Bytes per structure entry (8-byte chunk tag + 4-byte bit set), Section VI-C.
ENTRY_BYTES = 12


def speedup(candidate: SimulationResult, baseline: SimulationResult) -> float:
    """Runtime speedup of ``candidate`` over ``baseline``."""
    return candidate.speedup_over(baseline)


def mean(values: Iterable[float]) -> float:
    vals = list(values)
    if not vals:
        raise ValueError("mean of empty sequence")
    return sum(vals) / len(vals)


def geomean(values: Iterable[float]) -> float:
    vals = list(values)
    if not vals:
        raise ValueError("geomean of empty sequence")
    if any(v <= 0 for v in vals):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def normalize_to(values: Sequence[float], reference: float) -> List[float]:
    """Normalise a series to a reference value (reference maps to 1.0)."""
    if reference == 0:
        raise ValueError("cannot normalise to zero")
    return [v / reference for v in values]


@dataclass(frozen=True)
class OverheadReport:
    """Storage overhead of CPPE's three structures for one run."""

    workload: str
    oversubscription: float
    chain_entries: int
    evicted_buffer_entries: int
    pattern_buffer_entries: int

    @property
    def total_entries(self) -> int:
        return (
            self.chain_entries
            + self.evicted_buffer_entries
            + self.pattern_buffer_entries
        )

    @property
    def total_bytes(self) -> int:
        return self.total_entries * ENTRY_BYTES

    @property
    def total_kb(self) -> float:
        return self.total_bytes / 1024.0

    @property
    def pattern_buffer_vs_chain(self) -> float:
        """Pattern buffer length as a fraction of the chunk chain length
        (the Section VI-C occupancy metric)."""
        if self.chain_entries == 0:
            return 0.0
        return self.pattern_buffer_entries / self.chain_entries


def overhead_report(result: SimulationResult) -> OverheadReport:
    """Derive the Section VI-C structure-occupancy numbers from a run."""
    if result.oversubscription is None:
        raise SimulationError(
            "overhead analysis applies to oversubscribed runs only"
        )
    stats = result.stats
    return OverheadReport(
        workload=result.workload,
        oversubscription=result.oversubscription,
        chain_entries=stats.chain_length_peak,
        evicted_buffer_entries=stats.evicted_buffer_length,
        pattern_buffer_entries=stats.pattern_buffer_peak,
    )
