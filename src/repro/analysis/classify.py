"""Untouch-level characterisation (Section IV-B and Tables III/IV).

The paper classifies applications into High-/Medium-/Low-Untouch from the
untouch level of chunks evicted during the first few intervals after memory
fills.  These helpers compute the same statistics from a finished run's
interval records.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..engine.simulator import SimulationResult

__all__ = ["UntouchProfile", "untouch_profile", "classify_untouch_category"]


@dataclass(frozen=True)
class UntouchProfile:
    """Untouch statistics for one run, mirroring Tables III and IV."""

    workload: str
    oversubscription: float
    #: Per-interval untouch totals for intervals with eviction activity.
    per_interval: List[int]
    #: Max per-interval untouch level over the first four active intervals
    #: (Table III statistic).
    max_first_four: int
    #: Total untouch level over the first four active intervals (Table IV).
    total_first_four: int


def untouch_profile(result: SimulationResult) -> UntouchProfile:
    """Extract the Table III/IV statistics from a run.

    Only intervals with eviction activity count ("the first four intervals"
    of the paper start once memory has filled and evictions begin).
    """
    active = [r for r in result.stats.intervals if r.chunks_evicted > 0]
    per_interval = [r.untouch_total for r in active]
    head = per_interval[:4]
    return UntouchProfile(
        workload=result.workload,
        oversubscription=result.oversubscription or 1.0,
        per_interval=per_interval,
        max_first_four=max(head, default=0),
        total_first_four=sum(head),
    )


def classify_untouch_category(profile: UntouchProfile, t1: int = 32, t2: int = 40) -> str:
    """Classify a profile into the paper's three categories.

    * ``high-untouch``   — some early interval reaches T1 (LRU wins);
    * ``medium-untouch`` — cumulative early untouch reaches T2 (LRU wins);
    * ``low-untouch``    — neither (MRU wins for thrashing patterns).
    """
    if profile.max_first_four >= t1:
        return "high-untouch"
    if profile.total_first_four >= t2:
        return "medium-untouch"
    return "low-untouch"
