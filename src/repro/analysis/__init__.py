"""Metrics and characterisation utilities used by the experiment harness."""

from .metrics import geomean, mean, normalize_to, speedup, OverheadReport, overhead_report
from .classify import untouch_profile, classify_untouch_category
from .sweep import SweepPoint, SweepResult, capacity_sweep, crash_rate, find_knee
from .adaptive import AdaptiveConfig, AdaptiveSweep, adaptive_sweep

__all__ = [
    "geomean",
    "mean",
    "normalize_to",
    "speedup",
    "OverheadReport",
    "overhead_report",
    "untouch_profile",
    "classify_untouch_category",
    "SweepPoint",
    "SweepResult",
    "capacity_sweep",
    "crash_rate",
    "find_knee",
    "AdaptiveConfig",
    "AdaptiveSweep",
    "adaptive_sweep",
]
