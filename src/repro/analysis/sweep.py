"""Capacity sweep: runtime vs oversubscription rate, with knee detection.

The paper evaluates two operating points (75% and 50%).  This utility
generalises that to a full curve — useful to locate the working-set knee of
an application under a given policy pair, and to compare how gracefully
different setups degrade (see ``examples/oversubscription_sweep.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import HarnessError, ReproError
from ..harness.experiment import RunSpec, run_matrix
from ..harness.faults import FaultTolerance

__all__ = ["SweepPoint", "SweepResult", "capacity_sweep", "find_knee"]

DEFAULT_RATES: Tuple[float, ...] = (1.0, 0.9, 0.8, 0.75, 0.6, 0.5, 0.4)


@dataclass(frozen=True)
class SweepPoint:
    """One (rate, outcome) sample of the curve."""

    rate: float
    cycles: int
    slowdown: float  # relative to the unconstrained run
    far_faults: int
    chunks_evicted: int
    crashed: bool = False


@dataclass
class SweepResult:
    """A full capacity-sweep curve for one app under one setup.

    ``failures`` lists the rates whose run failed in the harness under a
    ``keep_going`` fault-tolerance policy (no :class:`SweepPoint` exists for
    those — distinct from ``crashed`` points, which are simulation results).
    """

    app: str
    setup: str
    points: List[SweepPoint] = field(default_factory=list)
    failures: List[float] = field(default_factory=list)

    def slowdown_at(self, rate: float) -> float:
        for p in self.points:
            if abs(p.rate - rate) < 1e-9:
                return p.slowdown
        raise ReproError(f"rate {rate} not in sweep for {self.app}")

    def as_series(self) -> Dict[str, float]:
        return {f"{p.rate:.0%}": p.slowdown for p in self.points}


def capacity_sweep(
    app: str,
    setup: str = "baseline",
    rates: Sequence[float] = DEFAULT_RATES,
    scale: float = 1.0,
    seed: Optional[int] = None,
    jobs: Optional[int] = None,
    progress: Optional[Callable[[int, int], None]] = None,
    fault_tolerance: Optional[FaultTolerance] = None,
) -> SweepResult:
    """Run ``app`` under ``setup`` across capacity rates.

    Rates must include 1.0 (or it is added) — the unconstrained run anchors
    the slowdown normalisation.  The points are independent simulations, so
    ``jobs > 1`` fans them out over the parallel experiment engine (and all
    points go through the persistent result cache either way).

    Under a ``keep_going`` fault-tolerance policy a failed point is dropped
    from the curve and recorded in ``SweepResult.failures`` — except the
    1.0 anchor, whose loss makes every slowdown undefined and raises
    :class:`~repro.errors.HarnessError`.
    """
    rates = sorted(set(rates) | {1.0}, reverse=True)
    specs = [
        RunSpec(app, setup, None if rate >= 1.0 else rate, scale=scale, seed=seed)
        for rate in rates
    ]
    results = run_matrix(
        specs, jobs=jobs, progress=progress, fault_tolerance=fault_tolerance
    )
    result = SweepResult(app=app, setup=setup)
    reference_cycles: Optional[int] = None
    for rate, spec in zip(rates, specs):
        sim_result = results[spec.key()]
        if sim_result is None:
            if rate >= 1.0:
                raise HarnessError(
                    f"capacity sweep for {app}/{setup}: the rate-1.0 anchor "
                    "run failed; slowdowns cannot be normalised"
                )
            result.failures.append(rate)
            continue
        if rate >= 1.0:
            reference_cycles = sim_result.total_cycles
        assert reference_cycles is not None
        result.points.append(
            SweepPoint(
                rate=rate,
                cycles=sim_result.total_cycles,
                slowdown=sim_result.total_cycles / reference_cycles,
                far_faults=sim_result.stats.far_faults,
                chunks_evicted=sim_result.stats.chunks_evicted,
                crashed=sim_result.crashed,
            )
        )
    return result


def find_knee(sweep: SweepResult, threshold: float = 1.5) -> Optional[float]:
    """The largest rate at which slowdown exceeds ``threshold``.

    Returns None when the application never crosses the threshold (its
    working set fits at every tested rate).  For thrashing applications the
    knee sits near the working-set size; for streaming ones there is none.
    """
    for point in sweep.points:  # sorted by descending rate
        if point.slowdown >= threshold:
            return point.rate
    return None
