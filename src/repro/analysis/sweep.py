"""Capacity sweep: runtime vs oversubscription rate, with knee detection.

The paper evaluates two operating points (75% and 50%).  This utility
generalises that to a full curve — useful to locate the working-set knee of
an application under a given policy pair, and to compare how gracefully
different setups degrade (see ``examples/oversubscription_sweep.py``).

The sweep is split into two pure stages so other drivers (notably the
adaptive loop in :mod:`repro.analysis.adaptive`) can reuse them:

* :func:`sweep_specs` — rate list to :class:`~repro.harness.experiment.RunSpec`
  batch (anchor rate 1.0 always included, rates sorted descending);
* :func:`normalise_sweep` — raw results to a :class:`SweepResult` with
  slowdowns normalised against the rate-1.0 anchor.

Crashed-run semantics: a *crashed* simulation terminates early, so its cycle
count is not a runtime.  The rate-1.0 anchor crashing therefore raises
:class:`~repro.errors.HarnessError` (nothing can be normalised against it),
and a non-anchor crashed point carries ``slowdown = nan`` — ``cycles`` /
``far_faults`` stay available for inspection, but the ratio would be
meaningless.  :func:`find_knee` skips crashed points; use :func:`crash_rate`
to locate the crash boundary explicitly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import HarnessError, ReproError
from ..harness.experiment import RunSpec, run_matrix
from ..harness.faults import FaultTolerance

__all__ = [
    "SweepPoint",
    "SweepResult",
    "sweep_specs",
    "normalise_sweep",
    "capacity_sweep",
    "find_knee",
    "crash_rate",
]

DEFAULT_RATES: Tuple[float, ...] = (1.0, 0.9, 0.8, 0.75, 0.6, 0.5, 0.4)


@dataclass(frozen=True)
class SweepPoint:
    """One (rate, outcome) sample of the curve.

    ``slowdown`` is ``nan`` for crashed points (a crashed run's cycle count
    is not a runtime; see the module docstring).
    """

    rate: float
    cycles: int
    slowdown: float  # relative to the unconstrained run; nan when crashed
    far_faults: int
    chunks_evicted: int
    crashed: bool = False


@dataclass
class SweepResult:
    """A full capacity-sweep curve for one app under one setup.

    ``failures`` lists the rates whose run failed in the harness under a
    ``keep_going`` fault-tolerance policy (no :class:`SweepPoint` exists for
    those — distinct from ``crashed`` points, which are simulation results).

    ``rounds``/``converged`` describe how the curve was sampled: a fixed
    grid is one round with ``converged=None`` (convergence is not a concept
    there); the adaptive driver sets the number of simulate→fit→propose
    rounds it ran and whether successive model fits agreed within tolerance.
    """

    app: str
    setup: str
    points: List[SweepPoint] = field(default_factory=list)
    failures: List[float] = field(default_factory=list)
    rounds: int = 1
    converged: Optional[bool] = None

    def slowdown_at(self, rate: float) -> float:
        for p in self.points:
            if abs(p.rate - rate) < 1e-9:
                return p.slowdown
        raise ReproError(f"rate {rate} not in sweep for {self.app}")

    def as_series(self) -> Dict[str, float]:
        """``{"75%": slowdown, ...}`` — crashed points appear as ``nan``."""
        return {f"{p.rate:.0%}": p.slowdown for p in self.points}

    def simulations(self) -> int:
        """Simulations this curve cost (sampled points + harness failures)."""
        return len(self.points) + len(self.failures)


def sweep_specs(
    app: str,
    setup: str,
    rates: Sequence[float],
    scale: float = 1.0,
    seed: Optional[int] = None,
    crash_budget_factor: Optional[float] = None,
) -> Tuple[Tuple[float, ...], List[RunSpec]]:
    """The spec-build stage: rates to a :class:`RunSpec` batch.

    Rate 1.0 is always included (it anchors the slowdown normalisation) and
    the returned rates are sorted descending, one spec per rate, aligned by
    index.  Pure — safe for an adaptive driver to call once per round.
    """
    ordered = tuple(sorted(set(rates) | {1.0}, reverse=True))
    specs = [
        RunSpec(
            app,
            setup,
            None if rate >= 1.0 else rate,
            scale=scale,
            seed=seed,
            crash_budget_factor=crash_budget_factor,
        )
        for rate in ordered
    ]
    return ordered, specs


def normalise_sweep(
    app: str,
    setup: str,
    rates: Sequence[float],
    specs: Sequence[RunSpec],
    results: Dict[Tuple, Optional[object]],
    rounds: int = 1,
    converged: Optional[bool] = None,
) -> SweepResult:
    """The normalise stage: raw batch results to a :class:`SweepResult`.

    ``rates``/``specs`` must be aligned as produced by :func:`sweep_specs`
    (descending, anchor first).  Raises :class:`HarnessError` when the
    rate-1.0 anchor is missing (harness failure) *or crashed* — a crashed
    anchor has no defined runtime, so every slowdown would be a ratio
    against garbage.  Non-anchor crashed points get ``slowdown = nan``.
    """
    result = SweepResult(
        app=app, setup=setup, rounds=rounds, converged=converged
    )
    reference_cycles: Optional[int] = None
    for rate, spec in zip(rates, specs):
        sim_result = results[spec.key()]
        if sim_result is None:
            if rate >= 1.0:
                raise HarnessError(
                    f"capacity sweep for {app}/{setup}: the rate-1.0 anchor "
                    "run failed; slowdowns cannot be normalised"
                )
            result.failures.append(rate)
            continue
        if rate >= 1.0:
            if sim_result.crashed:
                reason = sim_result.crash_reason or "no reason recorded"
                raise HarnessError(
                    f"capacity sweep for {app}/{setup}: the rate-1.0 anchor "
                    f"run crashed ({reason}); a crashed run's cycle count is "
                    "not a runtime, so slowdowns cannot be normalised"
                )
            reference_cycles = sim_result.total_cycles
        assert reference_cycles is not None
        result.points.append(
            SweepPoint(
                rate=rate,
                cycles=sim_result.total_cycles,
                slowdown=(
                    float("nan")
                    if sim_result.crashed
                    else sim_result.total_cycles / reference_cycles
                ),
                far_faults=sim_result.stats.far_faults,
                chunks_evicted=sim_result.stats.chunks_evicted,
                crashed=sim_result.crashed,
            )
        )
    return result


def capacity_sweep(
    app: str,
    setup: str = "baseline",
    rates: Sequence[float] = DEFAULT_RATES,
    scale: float = 1.0,
    seed: Optional[int] = None,
    jobs: Optional[int] = None,
    progress: Optional[Callable[[int, int], None]] = None,
    fault_tolerance: Optional[FaultTolerance] = None,
    crash_budget_factor: Optional[float] = None,
) -> SweepResult:
    """Run ``app`` under ``setup`` across capacity rates (fixed grid).

    Rates must include 1.0 (or it is added) — the unconstrained run anchors
    the slowdown normalisation.  The points are independent simulations, so
    ``jobs > 1`` fans them out over the parallel experiment engine (and all
    points go through the persistent result cache either way).

    Under a ``keep_going`` fault-tolerance policy a failed point is dropped
    from the curve and recorded in ``SweepResult.failures`` — except the
    1.0 anchor, whose loss (by harness failure *or* simulated crash) makes
    every slowdown undefined and raises :class:`~repro.errors.HarnessError`.

    ``crash_budget_factor`` enables the runaway-thrashing crash model for
    every point (see :class:`~repro.harness.experiment.RunSpec`); points
    that crash carry ``slowdown = nan``.
    """
    ordered, specs = sweep_specs(
        app, setup, rates, scale=scale, seed=seed,
        crash_budget_factor=crash_budget_factor,
    )
    results = run_matrix(
        specs, jobs=jobs, progress=progress, fault_tolerance=fault_tolerance
    )
    return normalise_sweep(app, setup, ordered, specs, results)


def find_knee(sweep: SweepResult, threshold: float = 1.5) -> Optional[float]:
    """The largest rate at which slowdown exceeds ``threshold``.

    Returns None when the application never crosses the threshold (its
    working set fits at every tested rate).  For thrashing applications the
    knee sits near the working-set size; for streaming ones there is none.

    Crashed points are skipped: a crashed run's cycle count is bogus (the
    simulation terminated early), so it must never register as a threshold
    crossing.  A sweep whose curve only "crosses" by crashing therefore has
    no knee here — use :func:`crash_rate` to locate the crash boundary.
    """
    for point in sweep.points:  # sorted by descending rate
        if point.crashed:
            continue
        if not math.isnan(point.slowdown) and point.slowdown >= threshold:
            return point.rate
    return None


def crash_rate(sweep: SweepResult) -> Optional[float]:
    """The largest rate whose run crashed, or None when nothing crashed.

    The explicit companion to :func:`find_knee` for sweeps run under a
    crash model: below this rate the application does not complete at all,
    which is a harder boundary than any slowdown threshold.
    """
    crashed = [p.rate for p in sweep.points if p.crashed]
    return max(crashed) if crashed else None
