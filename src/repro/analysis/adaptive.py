"""Adaptive, convergence-driven capacity sweeps.

A fixed rate grid (``analysis.sweep.DEFAULT_RATES``) wastes simulations
where the slowdown curve is flat and under-samples where it bends.  This
module drives the same spec-build / normalise stages as
:func:`~repro.analysis.sweep.capacity_sweep` through a feedback loop
instead:

1. **simulate** a coarse seed grid through the batch engine
   (:func:`~repro.harness.experiment.submit_batch` — jobs, persistent
   cache and fault tolerance all inherited);
2. **fit** a cheap response-surface model of slowdown vs. rate — a
   monotone piecewise-cubic Hermite interpolant (Fritsch–Carlson PCHIP,
   pure numpy), which cannot overshoot between samples;
3. **propose** the next rates where the model is least trusted: intervals
   that bracket the knee threshold first, then highest curvature;
4. **check convergence** — stop when two successive fits agree within a
   tolerance everywhere on a dense rate grid, or when the simulation
   budget is exhausted.

Proposals are a pure function of prior results (no wall clock, no RNG), so
re-running a converged sweep proposes the identical rates and — because
every proposed rate flows through :class:`~repro.harness.experiment.RunSpec`
and the persistent result cache — performs **zero** new simulations.

Crashed points (``slowdown = nan``) are excluded from the model; the loop
keeps bisecting toward the crash boundary from the valid side, and
:func:`~repro.analysis.sweep.crash_rate` reports the boundary afterwards.

Observability: when given an enabled ``obs``, the driver increments the
``sweep/rounds``, ``sweep/proposed_points``, ``sweep/cached_points`` and
``sweep/simulated_points`` counters (the sweep's simulations themselves run
untraced, so the result cache stays in play).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..engine.simulator import SimulationResult
from ..errors import ReproError
from ..harness.experiment import BatchStats, submit_batch
from ..harness.faults import FaultTolerance
from ..obs import DISABLED, Observability
from .sweep import SweepResult, normalise_sweep, sweep_specs

__all__ = [
    "AdaptiveConfig",
    "AdaptiveSweep",
    "MonotoneModel",
    "adaptive_sweep",
    "fit_monotone_model",
    "models_agree",
    "propose_rates",
]

#: Dense evaluation grid used for convergence checks and model knees.
GRID_POINTS = 129


# ---------------------------------------------------------------------------
# Response-surface model: monotone PCHIP (Fritsch–Carlson), pure numpy.
# ---------------------------------------------------------------------------


def _edge_slope(h0: float, h1: float, d0: float, d1: float) -> float:
    """One-sided three-point endpoint slope with the monotonicity clamp."""
    m = ((2.0 * h0 + h1) * d0 - h0 * d1) / (h0 + h1)
    if m * d0 <= 0.0:
        return 0.0
    if d0 * d1 <= 0.0 and abs(m) > 3.0 * abs(d0):
        return 3.0 * d0
    return m


@dataclass(frozen=True)
class MonotoneModel:
    """A fitted monotone piecewise-cubic Hermite interpolant.

    Knots are ``rates`` (strictly ascending); between knots the curve is a
    cubic Hermite segment whose slopes are limited so the interpolant never
    overshoots monotone data (the Fritsch–Carlson construction).  Queries
    outside the knot span clamp to the endpoint values.
    """

    rates: Tuple[float, ...]
    values: Tuple[float, ...]
    slopes: Tuple[float, ...]

    def predict(self, query: Sequence[float]) -> np.ndarray:
        x = np.asarray(self.rates, dtype=float)
        y = np.asarray(self.values, dtype=float)
        m = np.asarray(self.slopes, dtype=float)
        q = np.clip(np.asarray(query, dtype=float), x[0], x[-1])
        idx = np.clip(np.searchsorted(x, q, side="right") - 1, 0, x.size - 2)
        h = x[idx + 1] - x[idx]
        t = (q - x[idx]) / h
        h00 = (1.0 + 2.0 * t) * (1.0 - t) ** 2
        h10 = t * (1.0 - t) ** 2
        h01 = t * t * (3.0 - 2.0 * t)
        h11 = t * t * (t - 1.0)
        return h00 * y[idx] + h10 * h * m[idx] + h01 * y[idx + 1] + h11 * h * m[idx + 1]

    def __call__(self, rate: float) -> float:
        return float(self.predict((rate,))[0])

    def knee(self, threshold: float) -> Optional[float]:
        """Largest rate where the modelled slowdown reaches ``threshold``.

        The continuous analogue of :func:`~repro.analysis.sweep.find_knee`:
        located on the dense grid, then refined by bisection inside the
        straddling cell.  None when the model never reaches the threshold.
        """
        grid = np.linspace(self.rates[0], self.rates[-1], GRID_POINTS)
        above = np.nonzero(self.predict(grid) >= threshold)[0]
        if above.size == 0:
            return None
        i = int(above[-1])
        if i == grid.size - 1:
            return float(grid[-1])
        lo, hi = float(grid[i]), float(grid[i + 1])  # f(lo) >= threshold > f(hi)
        for _ in range(40):
            mid = 0.5 * (lo + hi)
            if self(mid) >= threshold:
                lo = mid
            else:
                hi = mid
        return lo


def fit_monotone_model(
    rates: Sequence[float], slowdowns: Sequence[float]
) -> MonotoneModel:
    """Fit the monotone PCHIP through ``(rate, slowdown)`` samples.

    Needs at least two samples with distinct rates; order does not matter.
    Two samples degrade to the straight line through them.
    """
    order = np.argsort(np.asarray(rates, dtype=float))
    x = np.asarray(rates, dtype=float)[order]
    y = np.asarray(slowdowns, dtype=float)[order]
    if x.size < 2:
        raise ReproError(f"need at least two points to fit a model, got {x.size}")
    if np.any(np.diff(x) <= 0):
        raise ReproError("model rates must be distinct")
    h = np.diff(x)
    d = np.diff(y) / h
    if x.size == 2:
        m = np.array([d[0], d[0]])
    else:
        m = np.empty_like(x)
        for k in range(1, x.size - 1):
            if d[k - 1] == 0.0 or d[k] == 0.0 or (d[k - 1] > 0.0) != (d[k] > 0.0):
                m[k] = 0.0
            else:
                w1 = 2.0 * h[k] + h[k - 1]
                w2 = h[k] + 2.0 * h[k - 1]
                m[k] = (w1 + w2) / (w1 / d[k - 1] + w2 / d[k])
        m[0] = _edge_slope(h[0], h[1], d[0], d[1])
        m[-1] = _edge_slope(h[-1], h[-2], d[-1], d[-2])
    return MonotoneModel(tuple(x), tuple(y), tuple(m))


def models_agree(a: MonotoneModel, b: MonotoneModel, tolerance: float) -> bool:
    """Do two fits agree within ``tolerance`` everywhere?

    Maximum relative disagreement over a dense grid spanning the models'
    common rate range (slowdowns are >= 1, so the relative form keeps the
    tolerance meaningful from gentle 1.1x curves up to 20x cliffs).
    """
    lo = max(a.rates[0], b.rates[0])
    hi = min(a.rates[-1], b.rates[-1])
    if hi <= lo:
        return False
    grid = np.linspace(lo, hi, GRID_POINTS)
    va, vb = a.predict(grid), b.predict(grid)
    worst = float(np.max(np.abs(va - vb) / np.maximum(1.0, np.abs(vb))))
    return worst <= tolerance


# ---------------------------------------------------------------------------
# Proposal stage: where to simulate next.  Pure function of prior results.
# ---------------------------------------------------------------------------


def _quantise(rate: float) -> float:
    """Snap proposals to a 1e-3 grid so rate keys never accumulate float
    dust across rounds (proposals must reproduce exactly on re-runs)."""
    return round(rate, 3)


def _clear_of(candidate: float, taken: Sequence[float], min_gap: float) -> bool:
    return all(abs(candidate - r) >= min_gap for r in taken)


def propose_rates(
    valid: Sequence[Tuple[float, float]],
    sampled: Sequence[float],
    count: int,
    min_gap: float = 0.02,
    threshold: float = 1.5,
) -> List[float]:
    """Propose up to ``count`` new rates from prior results.

    ``valid`` holds ``(rate, slowdown)`` samples with finite slowdowns;
    ``sampled`` every rate already simulated (crashed and failed included —
    they cost budget and must not be re-proposed).  Deterministic: intervals
    between adjacent valid samples are scored — knee-threshold bracketing
    first, then discrete curvature x width — and their midpoints returned
    in score order, skipping anything within ``min_gap`` of a prior sample.

    With fewer than two valid samples there is no curve to score; the one
    recoverable situation is a valid anchor above a crashed/failed region,
    where the gap down to the highest broken sample is bisected instead.
    """
    if count <= 0:
        return []
    valid = sorted(valid)
    taken = sorted(sampled)
    if len(valid) < 2:
        if not valid:
            return []
        top = valid[-1][0]
        below = [r for r in taken if r < top]
        if not below:
            return []
        candidate = _quantise(0.5 * (max(below) + top))
        return [candidate] if _clear_of(candidate, taken, min_gap) else []

    rates = [r for r, _ in valid]
    slow = [s for _, s in valid]
    secants = [
        (slow[i + 1] - slow[i]) / (rates[i + 1] - rates[i])
        for i in range(len(rates) - 1)
    ]
    scored: List[Tuple[Tuple[int, float, float, float], float]] = []
    for i in range(len(rates) - 1):
        lo, hi = rates[i], rates[i + 1]
        width = hi - lo
        if width < 2.0 * min_gap:
            continue  # refined to the resolution floor
        crosses = (slow[i] >= threshold) != (slow[i + 1] >= threshold)
        curvature = 0.0
        if i > 0:
            curvature += abs(secants[i] - secants[i - 1])
        if i + 1 < len(secants):
            curvature += abs(secants[i + 1] - secants[i])
        midpoint = _quantise(0.5 * (lo + hi))
        score = (int(crosses), curvature * width, width, lo)
        scored.append((score, midpoint))
    scored.sort(key=lambda item: item[0], reverse=True)

    proposals: List[float] = []
    for _, midpoint in scored:
        if len(proposals) >= count:
            break
        if _clear_of(midpoint, taken, min_gap) and _clear_of(
            midpoint, proposals, min_gap
        ):
            proposals.append(midpoint)
    return proposals


# ---------------------------------------------------------------------------
# The driver.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AdaptiveConfig:
    """Tuning knobs for :class:`AdaptiveSweep`.

    ``budget`` bounds *sampled rates* (simulation attempts), not fresh
    executions — a warm cache makes rounds cheaper but never changes what
    gets proposed, so converged sweeps replay identically.

    The default ``tolerance`` (15% relative, everywhere on the dense grid)
    resolves working-set knees to well under the fixed grid's 0.1-rate
    resolution while converging in 4-6 simulations on the paper's
    thrashing apps (vs. 7 for ``DEFAULT_RATES``); tighten it when the
    whole curve matters, not just the knee.
    """

    seed_rates: Tuple[float, ...] = (1.0, 0.7, 0.4)
    budget: int = 12
    tolerance: float = 0.15
    round_size: int = 1
    min_gap: float = 0.02
    knee_threshold: float = 1.5
    max_rounds: int = 16

    def __post_init__(self) -> None:
        if self.budget < 2:
            raise ReproError(f"budget must be >= 2, got {self.budget}")
        if self.tolerance < 0:
            raise ReproError(f"tolerance must be >= 0, got {self.tolerance}")
        if self.round_size < 1:
            raise ReproError(f"round_size must be >= 1, got {self.round_size}")
        if self.max_rounds < 1:
            raise ReproError(f"max_rounds must be >= 1, got {self.max_rounds}")
        if not self.seed_rates:
            raise ReproError("seed_rates must not be empty")
        for rate in self.seed_rates:
            if not 0.0 < rate <= 1.0:
                raise ReproError(f"seed rate {rate} outside (0, 1]")


class AdaptiveSweep:
    """Convergence-driven capacity sweep for one app under one setup.

    Wraps the same spec-build / normalise stages as
    :func:`~repro.analysis.sweep.capacity_sweep` in a simulate → fit →
    propose → converge loop (module docstring).  ``run()`` returns a
    :class:`~repro.analysis.sweep.SweepResult` whose ``rounds`` /
    ``converged`` fields describe the loop; the driver keeps the fitted
    model and per-source counters for inspection afterwards.

    ``submit`` is the batch entry point (default
    :func:`~repro.harness.experiment.submit_batch`); tests inject a
    synthetic one to drive the loop over closed-form curves.
    """

    def __init__(
        self,
        app: str,
        setup: str = "baseline",
        scale: float = 1.0,
        seed: Optional[int] = None,
        crash_budget_factor: Optional[float] = None,
        jobs: Optional[int] = None,
        adaptive: Optional[AdaptiveConfig] = None,
        fault_tolerance: Optional[FaultTolerance] = None,
        progress: Optional[Callable[[int, int], None]] = None,
        obs: Optional[Observability] = None,
        submit: Optional[Callable[..., Tuple[Dict, BatchStats]]] = None,
    ):
        self.app = app
        self.setup = setup
        self.scale = scale
        self.seed = seed
        self.crash_budget_factor = crash_budget_factor
        self.jobs = jobs
        self.adaptive = adaptive or AdaptiveConfig()
        self.fault_tolerance = fault_tolerance
        self.progress = progress
        self.obs = obs or DISABLED
        self._submit = submit or submit_batch
        # Populated by run():
        self.rounds = 0
        self.converged = False
        self.model: Optional[MonotoneModel] = None
        self.history: List[Tuple[float, ...]] = []  # rates run per round
        self.new_simulations = 0  # executed fresh (not served from a cache)
        self.cached = 0  # served from the memo / persistent cache

    # -- batch plumbing -----------------------------------------------------

    def _run_round(
        self,
        rates: Sequence[float],
        sampled: Dict[float, Optional[SimulationResult]],
        by_key: Dict[Tuple, Optional[SimulationResult]],
    ) -> None:
        """Run the not-yet-sampled rates of ``rates`` through the engine."""
        ordered, specs = sweep_specs(
            self.app,
            self.setup,
            rates,
            scale=self.scale,
            seed=self.seed,
            crash_budget_factor=self.crash_budget_factor,
        )
        new = [(r, sp) for r, sp in zip(ordered, specs) if r not in sampled]
        if not new:
            return
        self.history.append(tuple(r for r, _ in new))
        results, stats = self._submit(
            [sp for _, sp in new],
            jobs=self.jobs,
            progress=self.progress,
            fault_tolerance=self.fault_tolerance,
        )
        for rate, spec in new:
            result = results[spec.key()]
            sampled[rate] = result
            by_key[spec.key()] = result
        self.new_simulations += stats.simulated
        self.cached += stats.cached
        self.obs.metrics.counter("sweep/simulated_points").inc(stats.simulated)
        self.obs.metrics.counter("sweep/cached_points").inc(stats.cached)

    def _normalise(
        self,
        sampled: Dict[float, Optional[SimulationResult]],
        by_key: Dict[Tuple, Optional[SimulationResult]],
        rounds: int,
        converged: Optional[bool],
    ) -> SweepResult:
        ordered, specs = sweep_specs(
            self.app,
            self.setup,
            sampled.keys(),
            scale=self.scale,
            seed=self.seed,
            crash_budget_factor=self.crash_budget_factor,
        )
        return normalise_sweep(
            self.app, self.setup, ordered, specs, by_key,
            rounds=rounds, converged=converged,
        )

    # -- the loop -----------------------------------------------------------

    def run(self) -> SweepResult:
        cfg = self.adaptive
        sampled: Dict[float, Optional[SimulationResult]] = {}
        by_key: Dict[Tuple, Optional[SimulationResult]] = {}
        prev_model: Optional[MonotoneModel] = None
        model: Optional[MonotoneModel] = None
        converged = False
        rounds = 0
        # Seed grid: anchor-first descending, truncated to the budget (the
        # 1.0 anchor always survives truncation — it sorts first).
        batch: Sequence[float] = tuple(
            sorted(set(cfg.seed_rates) | {1.0}, reverse=True)
        )[: cfg.budget]

        while batch and rounds < cfg.max_rounds:
            rounds += 1
            self.obs.metrics.counter("sweep/rounds").inc()
            self._run_round(batch, sampled, by_key)
            # Normalising raises HarnessError if the anchor failed/crashed.
            interim = self._normalise(sampled, by_key, rounds, None)
            valid = sorted(
                (p.rate, p.slowdown)
                for p in interim.points
                if not p.crashed and not math.isnan(p.slowdown)
            )
            if len(valid) >= 2:
                model = fit_monotone_model(
                    [r for r, _ in valid], [s for _, s in valid]
                )
                if prev_model is not None and models_agree(
                    prev_model, model, cfg.tolerance
                ):
                    converged = True
                    break
                prev_model = model
            remaining = cfg.budget - interim.simulations()
            if remaining <= 0:
                break
            batch = propose_rates(
                valid,
                sorted(sampled),
                min(cfg.round_size, remaining),
                min_gap=cfg.min_gap,
                threshold=cfg.knee_threshold,
            )
            if not batch:
                # Every interval is refined to the min_gap floor: there is
                # no informative rate left to buy with the remaining budget.
                converged = True
                break
            self.obs.metrics.counter("sweep/proposed_points").inc(len(batch))

        self.rounds = rounds
        self.converged = converged
        self.model = model
        return self._normalise(sampled, by_key, rounds, converged)

    def knee_estimate(self, threshold: Optional[float] = None) -> Optional[float]:
        """Continuous working-set knee from the fitted model (None before
        ``run()`` or when the curve never reaches the threshold)."""
        if self.model is None:
            return None
        return self.model.knee(
            self.adaptive.knee_threshold if threshold is None else threshold
        )


def adaptive_sweep(app: str, setup: str = "baseline", **kwargs) -> SweepResult:
    """One-call form of :class:`AdaptiveSweep` (drops the driver state)."""
    return AdaptiveSweep(app, setup, **kwargs).run()
