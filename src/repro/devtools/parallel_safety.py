"""Parallel-safety rules (``REPRO3xx``).

:class:`~repro.harness.parallel.ParallelRunner` fans simulations out over a
``ProcessPoolExecutor``.  Worker processes import the simulation packages
and call :func:`repro.harness.experiment._execute`; the serial path runs
the *same* code in the coordinator process.  Serial and parallel results
stay field-for-field identical only if that shared code neither depends on
nor mutates process-wide state:

* mutating a module global works in-process but each worker mutates its own
  copy — serial and parallel runs then see different state (``REPRO301``);
* a lambda / nested function / bound method handed to ``submit``/``map``
  fails to pickle at runtime, and only on the parallel path (``REPRO302``);
* mutating a shared ``SimConfig`` mid-run changes behaviour without
  changing the already-computed cache key (``REPRO303``).

Scope: :data:`~repro.devtools.boundary.PARALLEL_SCOPE` (the simulation
packages plus the experiment/parallel harness modules).
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set, Tuple

from .boundary import is_parallel_scope
from .findings import Finding
from .rules import FileContext, FileRule, dotted_name, register

__all__ = [
    "GlobalMutationRule",
    "WorkerPicklableRule",
    "ConfigMutationRule",
    "PoolExceptionRule",
]

#: Parameter names treated as "the shared config object" by REPRO303.
_CONFIG_NAMES = frozenset({"config", "cfg", "sim_config", "simconfig"})

#: Executor methods whose first argument must be a picklable callable.
_SUBMIT_METHODS = frozenset({"submit", "map"})

#: Pool dispatch/collection calls: a ``try`` whose body contains one of
#: these is "around pool dispatch" for REPRO304.
_DISPATCH_CALLS = frozenset({"wait", "as_completed"})

#: Exception names too broad to catch around pool dispatch: they swallow
#: simulation-level failures travelling back through futures and reclassify
#: them as pool breakage (the ``_POOL_ERRORS`` bug this rule exists to keep
#: out).
_OVERBROAD_EXCEPTIONS = frozenset(
    {"Exception", "BaseException", "RuntimeError", "OSError"}
)


class _ParallelScopeRule(FileRule):
    """Shared gate: parallel-safety rules apply inside PARALLEL_SCOPE."""

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not is_parallel_scope(ctx.module):
            return
        yield from self._check_scoped(ctx)

    def _check_scoped(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError  # pragma: no cover


@register
class GlobalMutationRule(_ParallelScopeRule):
    rule_id = "REPRO301"
    title = "module-global mutation in worker-reachable code"
    rationale = (
        "each pool worker gets its own copy of module globals; a function "
        "that mutates one behaves differently under serial and parallel "
        "execution, breaking the differential guarantee."
    )
    fix_hint = (
        "return the value instead, or keep the state strictly per-process "
        "and suppress with a justification"
    )

    def _check_scoped(self, ctx: FileContext) -> Iterator[Finding]:
        for fn in ast.walk(ctx.tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            declared: Set[str] = set()
            for stmt in fn.body:
                if isinstance(stmt, ast.Global):
                    declared.update(stmt.names)
            if not declared:
                continue
            for node in ast.walk(fn):
                targets: List[ast.expr] = []
                if isinstance(node, ast.Assign):
                    targets = list(node.targets)
                elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                    targets = [node.target]
                for target in targets:
                    if isinstance(target, ast.Name) and target.id in declared:
                        yield ctx.finding(
                            node,
                            self,
                            f"function `{fn.name}` mutates module global "
                            f"`{target.id}`",
                        )


@register
class WorkerPicklableRule(_ParallelScopeRule):
    rule_id = "REPRO302"
    title = "non-top-level callable submitted to a process pool"
    rationale = (
        "ProcessPoolExecutor pickles the callable by qualified name; "
        "lambdas, nested functions and bound methods fail (or drag their "
        "whole instance across the pickle boundary) — and only on the "
        "parallel path, so tests of the serial path cannot catch it."
    )
    fix_hint = "use a module-level function as the worker entry point"

    def _check_scoped(self, ctx: FileContext) -> Iterator[Finding]:
        nested = self._nested_callables(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _SUBMIT_METHODS
                and node.args
            ):
                continue
            worker = node.args[0]
            if isinstance(worker, ast.Lambda):
                yield ctx.finding(
                    worker, self, "lambda submitted as pool worker"
                )
            elif isinstance(worker, ast.Attribute):
                name = dotted_name(worker, ctx.imports)
                yield ctx.finding(
                    worker,
                    self,
                    f"attribute callable `{name or worker.attr}` submitted "
                    "as pool worker (bound methods are not picklable by "
                    "reference)",
                )
            elif isinstance(worker, ast.Name) and worker.id in nested:
                yield ctx.finding(
                    worker,
                    self,
                    f"nested function `{worker.id}` submitted as pool worker",
                )

    @staticmethod
    def _nested_callables(tree: ast.Module) -> Set[str]:
        """Names of functions/lambda-bindings defined inside other scopes."""
        nested: Set[str] = set()

        def visit(node: ast.AST, depth: int) -> None:
            for child in ast.iter_child_nodes(node):
                child_depth = depth
                if isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    if depth > 0:
                        nested.add(child.name)
                    child_depth = depth + 1
                elif isinstance(child, ast.Assign) and depth > 0:
                    if isinstance(child.value, ast.Lambda):
                        for target in child.targets:
                            if isinstance(target, ast.Name):
                                nested.add(target.id)
                elif isinstance(child, ast.ClassDef):
                    child_depth = depth + 1
                visit(child, child_depth)

        visit(tree, 0)
        return nested


@register
class ConfigMutationRule(_ParallelScopeRule):
    rule_id = "REPRO303"
    title = "mutation of a shared config object"
    rationale = (
        "SimConfig instances are shared across runs and hashed into cache "
        "keys at submission time; mutating one mid-run changes behaviour "
        "without changing the key, and workers see a different (pickled) "
        "copy than the coordinator."
    )
    fix_hint = "use dataclasses.replace / SimConfig.with_ to derive a new config"

    def _check_scoped(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            target: Tuple[ast.expr, ...] = ()
            if isinstance(node, ast.Assign):
                target = tuple(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                target = (node.target,)
            elif isinstance(node, ast.Call):
                callee = dotted_name(node.func, ctx.imports)
                if callee == "object.__setattr__" and node.args:
                    root = self._attr_root(node.args[0])
                    if root in _CONFIG_NAMES:
                        yield ctx.finding(
                            node,
                            self,
                            f"object.__setattr__ on config object `{root}`",
                        )
                continue
            for tgt in target:
                if isinstance(tgt, ast.Attribute):
                    root = self._attr_root(tgt.value)
                    if root in _CONFIG_NAMES:
                        yield ctx.finding(
                            node,
                            self,
                            f"assignment to `{root}.{tgt.attr}` mutates a "
                            "shared config object",
                        )

    @staticmethod
    def _attr_root(node: ast.expr) -> str:
        """Leftmost name of an attribute chain (``cfg.uvm`` -> ``cfg``),
        skipping a leading ``self.`` (``self.config.x`` -> ``config``)."""
        parts: List[str] = []
        cur: ast.expr = node
        while isinstance(cur, ast.Attribute):
            parts.append(cur.attr)
            cur = cur.value
        if isinstance(cur, ast.Name):
            parts.append(cur.id)
        chain = list(reversed(parts))
        if len(chain) >= 2 and chain[0] == "self":
            chain = chain[1:]
        return chain[0] if chain else ""


@register
class PoolExceptionRule(_ParallelScopeRule):
    rule_id = "REPRO304"
    title = "over-broad exception handling around pool dispatch"
    rationale = (
        "catching Exception/RuntimeError/OSError (or a bare except) around "
        "submit/map/wait swallows simulation-level errors travelling back "
        "through futures and misclassifies them as pool breakage — the "
        "batch silently re-runs serially and the real bug is masked.  "
        "Catch BrokenProcessPool/PoolError around dispatch; classify "
        "worker-side errors in the worker (envelope pattern)."
    )
    fix_hint = (
        "narrow the handler to BrokenProcessPool / PoolError; return "
        "worker exceptions inside a reply envelope instead of raising "
        "them through the future"
    )

    def _check_scoped(self, ctx: FileContext) -> Iterator[Finding]:
        tuple_bindings = self._module_tuples(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Try):
                continue
            if not self._has_dispatch(node.body):
                continue
            for handler in node.handlers:
                if handler.type is None:
                    yield ctx.finding(
                        handler,
                        self,
                        "bare `except:` around pool dispatch",
                    )
                    continue
                for name in self._broad_names(handler.type, tuple_bindings):
                    yield ctx.finding(
                        handler,
                        self,
                        f"`except {name}` around pool dispatch is too "
                        "broad (swallows simulation-level failures)",
                    )

    @staticmethod
    def _has_dispatch(body: List[ast.stmt]) -> bool:
        """True when the statements contain a pool dispatch/collection call
        (``.submit(...)`` / ``.map(...)`` / ``wait(...)`` /
        ``as_completed(...)``)."""
        for stmt in body:
            for node in ast.walk(stmt):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in (_SUBMIT_METHODS | _DISPATCH_CALLS)
                ):
                    return True
                if isinstance(func, ast.Name) and func.id in _DISPATCH_CALLS:
                    return True
        return False

    @staticmethod
    def _module_tuples(tree: ast.Module) -> dict:
        """Module-level ``NAME = (Exc, ...)`` bindings, so a handler that
        names a tuple constant is checked element-wise."""
        bindings = {}
        for stmt in tree.body:
            if not (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1):
                continue
            target = stmt.targets[0]
            if not (
                isinstance(target, ast.Name)
                and isinstance(stmt.value, ast.Tuple)
            ):
                continue
            bindings[target.id] = stmt.value.elts
        return bindings

    @classmethod
    def _broad_names(cls, type_node: ast.expr, tuple_bindings: dict):
        """Over-broad exception names reachable from a handler's type
        expression (direct, inside a literal tuple, or via a module-level
        tuple binding)."""
        elements: List[ast.expr]
        if isinstance(type_node, ast.Tuple):
            elements = list(type_node.elts)
        elif (
            isinstance(type_node, ast.Name)
            and type_node.id in tuple_bindings
        ):
            elements = list(tuple_bindings[type_node.id])
        else:
            elements = [type_node]
        for element in elements:
            name = ""
            if isinstance(element, ast.Name):
                name = element.id
            elif isinstance(element, ast.Attribute):
                name = element.attr
            if name in _OVERBROAD_EXCEPTIONS:
                yield name
