"""Determinism rules (``REPRO1xx``).

Simulation results must be a pure function of ``(RunSpec, SimConfig)`` —
that is what makes serial/parallel/fresh-process runs bit-identical and the
persistent result cache sound.  These rules flag constructs that smuggle
process- or host-specific state into code under
:data:`~repro.devtools.boundary.SIMULATION_PACKAGES`; harness code is
exempt (see :mod:`repro.devtools.boundary` for the audited boundary).
"""

from __future__ import annotations

import ast
from typing import FrozenSet, Iterator, List

from .boundary import is_simulation_module
from .findings import Finding
from .rules import FileContext, FileRule, dotted_name, register

__all__ = [
    "ModuleLevelRngRule",
    "WallClockRule",
    "EnvReadRule",
    "SetOrderRule",
    "IdKeyRule",
    "MemsimRngConstructionRule",
]

#: ``random.<ctor>`` calls that are fine: they build *seedable instances*
#: (the policies seed ``random.Random(config.seed)``), unlike the module
#: functions which share hidden global state across the whole process.
_SEEDED_RANDOM_CTORS: FrozenSet[str] = frozenset({"Random"})

#: ``numpy.random.<name>`` that construct seeded generators (Generator API);
#: everything else on ``numpy.random`` is the legacy global-state interface.
_SEEDED_NUMPY_CTORS: FrozenSet[str] = frozenset(
    {
        "Generator",
        "default_rng",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
    }
)

_WALLCLOCK_CALLS: FrozenSet[str] = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
        "os.urandom",
        "uuid.uuid1",
        "uuid.uuid4",
    }
)


class _SimulationOnlyRule(FileRule):
    """Shared gate: determinism rules apply only to simulation modules."""

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not is_simulation_module(ctx.module):
            return
        yield from self._check_simulation(ctx)

    def _check_simulation(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError  # pragma: no cover


@register
class ModuleLevelRngRule(_SimulationOnlyRule):
    rule_id = "REPRO101"
    title = "module-level RNG in simulation code"
    rationale = (
        "random.random()/np.random.rand() etc. draw from interpreter-global "
        "state shared across every caller, so results depend on call order "
        "across the whole process — parallel workers and serial runs diverge."
    )
    fix_hint = (
        "draw from a seeded instance: random.Random(config.seed) or "
        "np.random.default_rng(seed)"
    )

    def _check_simulation(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            target = dotted_name(node.func, ctx.imports)
            if target is None:
                continue
            if target.startswith("random."):
                name = target.split(".", 1)[1]
                if name not in _SEEDED_RANDOM_CTORS:
                    yield ctx.finding(
                        node, self, f"call to module-level `{target}`"
                    )
            elif target.startswith("numpy.random."):
                name = target.rsplit(".", 1)[1]
                if name not in _SEEDED_NUMPY_CTORS:
                    yield ctx.finding(
                        node, self, f"call to legacy global-state `{target}`"
                    )


@register
class WallClockRule(_SimulationOnlyRule):
    rule_id = "REPRO102"
    title = "wall-clock / host-entropy read in simulation code"
    rationale = (
        "time.time(), datetime.now(), os.urandom() and friends read host "
        "state; any influence on simulation results makes cached entries "
        "unreproducible.  Harness-side timing display is exempt — see "
        "devtools.boundary.HARNESS_PACKAGES."
    )
    fix_hint = (
        "simulation time is the event clock (Simulator cycles); move "
        "wall-clock reads to harness code"
    )

    def _check_simulation(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            target = dotted_name(node.func, ctx.imports)
            if target in _WALLCLOCK_CALLS:
                yield ctx.finding(node, self, f"call to `{target}`")


@register
class EnvReadRule(_SimulationOnlyRule):
    rule_id = "REPRO103"
    title = "environment read in simulation code"
    rationale = (
        "os.environ / os.getenv values differ across hosts and CI runs; a "
        "config knob read from the environment bypasses SimConfig and "
        "therefore the cache content hash."
    )
    fix_hint = "thread the value through SimConfig so it enters the cache key"

    def _check_simulation(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                target = dotted_name(node.func, ctx.imports)
                if target == "os.getenv":
                    yield ctx.finding(node, self, "call to `os.getenv`")
            elif isinstance(node, ast.Attribute):
                if dotted_name(node, ctx.imports) == "os.environ":
                    yield ctx.finding(node, self, "read of `os.environ`")


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


@register
class SetOrderRule(_SimulationOnlyRule):
    rule_id = "REPRO104"
    title = "iteration over a set in simulation code"
    rationale = (
        "set iteration order depends on insertion history and element "
        "hashes (incl. PYTHONHASHSEED for str keys); if the order reaches "
        "simulation state, identical configs produce different results."
    )
    fix_hint = "iterate sorted(...) or use a dict/list, which preserve order"

    def _check_simulation(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            candidates: List[ast.expr]
            if isinstance(node, (ast.For, ast.AsyncFor)):
                candidates = [node.iter]
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                candidates = [gen.iter for gen in node.generators]
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
                # list({...}) / tuple(set(...)) — order leaks into a sequence.
                if node.func.id in ("list", "tuple", "enumerate") and node.args:
                    candidates = [node.args[0]]
                else:
                    continue
            else:
                continue
            for cand in candidates:
                if _is_set_expr(cand):
                    yield ctx.finding(
                        cand, self, "iteration order of a set reaches code flow"
                    )


@register
class IdKeyRule(_SimulationOnlyRule):
    rule_id = "REPRO105"
    title = "id()-derived key in simulation code"
    rationale = (
        "id() is a memory address: unique per process, different on every "
        "run.  Keys or ordering derived from it cannot reproduce."
    )
    fix_hint = "key on a stable identifier (chunk id, page number, name)"

    def _check_simulation(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "id"
                and ctx.imports.resolve("id") is None
                and len(node.args) == 1
            ):
                yield ctx.finding(node, self, "call to builtin `id()`")


def _is_memsim_module(module: str) -> bool:
    return module == "repro.memsim" or module.startswith("repro.memsim.")


@register
class MemsimRngConstructionRule(FileRule):
    rule_id = "REPRO106"
    title = "ad-hoc RNG construction in memsim"
    rationale = (
        "repro.memsim has exactly one randomness source: the seeded stream "
        "SimConfig.make_rng() derives from config.seed.  A locally "
        "constructed random.Random(...) / default_rng(...) forks a second "
        "stream whose seed derivation is invisible to the config hash, so "
        "two code paths can silently consume different (or worse, the same) "
        "streams and break the determinism contract the result cache "
        "depends on."
    )
    fix_hint = "take the stream from config.make_rng() instead"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not _is_memsim_module(ctx.module):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            target = dotted_name(node.func, ctx.imports)
            if target is None:
                continue
            if target.startswith("random."):
                name = target.split(".", 1)[1]
                if name in _SEEDED_RANDOM_CTORS:
                    yield ctx.finding(
                        node, self, f"direct construction of `{target}`"
                    )
            elif target.startswith("numpy.random."):
                name = target.rsplit(".", 1)[1]
                if name in _SEEDED_NUMPY_CTORS:
                    yield ctx.finding(
                        node, self, f"direct construction of `{target}`"
                    )
