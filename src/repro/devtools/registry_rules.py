"""Component-registry discipline (``REPRO108``).

The component registries (:mod:`repro.registry`) are frozen after boot:
every policy/prefetcher/workload/setup must be registered by a
module-level ``register(...)`` / ``register_table(...)`` statement that
executes at import time, with literal ``kind``/``name`` arguments.  Two
downstream systems depend on that static enumerability:

* the deep-lint ``registry:`` seam (REPRO6xx reachability, REPRO501
  taint) resolves ``build("policy", name)`` call sites by fanning out to
  the builders collected from import-time registration statements — a
  registration inside a function is invisible to it, silently shrinking
  the audited closure;
* CLI choice lists, ``repro components``, and the shootout matrix
  enumerate the registry at argument-parse time — a component that only
  appears after some function runs is unlistable and unvalidatable.

So REPRO108 flags (a) registry mutator calls nested inside any function,
lambda, or class body — they run after boot, if at all — and (b) call
sites whose ``kind``/``name`` arguments are computed rather than string
literals (for ``register_table``, the table argument must be a plain
module-level name so the seam can resolve its values).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Set, Tuple

from .findings import Finding
from .rules import FileContext, FileRule, register

__all__ = ["RegistryBootRule"]

#: Public mutator functions of :mod:`repro.registry`.
_MUTATORS = frozenset({"register", "register_table"})


def _canonical_mutator(dotted: str) -> Optional[str]:
    """``register``/``register_table`` if ``dotted`` names a registry
    mutator (``repro.registry.register``, ``registry.register_table``,
    aliased roots included), else ``None``."""
    mod, _, attr = dotted.rpartition(".")
    if attr in _MUTATORS and (mod == "registry" or mod.endswith(".registry")):
        return attr
    return None


def _mutator_bindings(ctx: FileContext) -> Tuple[Dict[str, str], Set[str]]:
    """Local bindings of registry mutators in this file.

    Returns ``(functions, modules)``: local names bound directly to a
    mutator function, and local names bound to the registry *module*.
    Scanned from the AST directly because :class:`~.rules.ImportMap`
    skips relative imports (``from ..registry import register``), which
    is exactly how in-tree registrations spell it.
    """
    functions: Dict[str, str] = {}
    modules: Set[str] = set()
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ImportFrom):
            source = node.module or ""
            basename = source.rsplit(".", 1)[-1]
            for alias in node.names:
                local = alias.asname or alias.name
                if basename == "registry" and alias.name in _MUTATORS:
                    functions[local] = alias.name
                elif alias.name == "registry":
                    modules.add(local)
        elif isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.rsplit(".", 1)[-1] == "registry" and alias.asname:
                    modules.add(alias.asname)
    return functions, modules


def _mutator_call(
    call: ast.Call,
    ctx: FileContext,
    functions: Dict[str, str],
    modules: Set[str],
) -> Optional[str]:
    """Which registry mutator (if any) a call expression invokes."""
    func = call.func
    if isinstance(func, ast.Name):
        if func.id in functions:
            return functions[func.id]
        resolved = ctx.imports.resolve(func.id)
        if resolved is not None:
            return _canonical_mutator(resolved)
        return None
    if isinstance(func, ast.Attribute) and func.attr in _MUTATORS:
        if isinstance(func.value, ast.Name) and func.value.id in modules:
            return func.attr
        parts = []
        node: ast.expr = func
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if isinstance(node, ast.Name):
            parts.append(ctx.imports.resolve(node.id) or node.id)
            return _canonical_mutator(".".join(reversed(parts)))
    return None


def _call_arg(
    call: ast.Call, position: int, keyword: str
) -> Optional[ast.expr]:
    found: Optional[ast.expr] = (
        call.args[position] if len(call.args) > position else None
    )
    for kw in call.keywords:
        if kw.arg == keyword:
            found = kw.value
    return found


def _is_str_literal(node: Optional[ast.expr]) -> bool:
    return isinstance(node, ast.Constant) and isinstance(node.value, str)


def _iter_calls(
    tree: ast.Module,
) -> Iterator[Tuple[ast.Call, bool]]:
    """Every Call in the module, tagged with whether it executes at
    import time (``False`` once nested under any function or lambda)."""

    def walk(node: ast.AST, at_import: bool) -> Iterator[Tuple[ast.Call, bool]]:
        for child in ast.iter_child_nodes(node):
            nested = at_import and not isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            )
            if isinstance(child, ast.Call):
                yield child, at_import
            yield from walk(child, nested)

    yield from walk(tree, True)


@register
class RegistryBootRule(FileRule):
    rule_id = "REPRO108"
    title = "component registration outside boot, or with a computed name"
    rationale = (
        "the registries freeze after boot: the deep-lint registry: seam "
        "and the CLI/shootout choice lists enumerate components from "
        "import-time registration statements with literal kind/name "
        "arguments — a runtime or computed registration is invisible to "
        "both, so it silently escapes the audited closure and the "
        "user-facing component lists."
    )
    fix_hint = (
        "move the register()/register_table() call to module level with "
        "literal kind/name strings (register_table takes a module-level "
        "table name)"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        functions, modules = _mutator_bindings(ctx)
        for call, at_import in _iter_calls(ctx.tree):
            mutator = _mutator_call(call, ctx, functions, modules)
            if mutator is None:
                continue
            if not at_import:
                yield ctx.finding(
                    call,
                    self,
                    f"registry `{mutator}` called at runtime — components "
                    "must be registered at module import time",
                )
                continue
            kind = _call_arg(call, 0, "kind")
            if not _is_str_literal(kind):
                yield ctx.finding(
                    call,
                    self,
                    f"computed `kind` argument to `{mutator}` — the "
                    "registry seam needs a string literal",
                )
            if mutator == "register":
                name = _call_arg(call, 1, "name")
                if not _is_str_literal(name):
                    yield ctx.finding(
                        call,
                        self,
                        "computed component `name` at a `register` call "
                        "site — the registry seam and CLI choice lists "
                        "need a string literal",
                    )
            else:
                table = _call_arg(call, 1, "table")
                if not isinstance(table, ast.Name):
                    yield ctx.finding(
                        call,
                        self,
                        "`register_table` argument must be a module-level "
                        "table name, not an expression",
                    )
