"""Cache-integrity rules (``REPRO2xx``).

The persistent result cache keys every entry by a content hash over
``RunSpec`` + ``SimConfig`` (:func:`repro.harness.cache.spec_fingerprint`).
The invariant these rules guard: **every field of every hashed dataclass
must be reachable from the fingerprint functions**, and nothing on those
dataclasses may change after construction without changing the hash.

``REPRO201`` is a cross-module check: it collects dataclass definitions
from :data:`~repro.devtools.boundary.HASHED_CONFIG_MODULES` (and from any
file that defines both the dataclass and a fingerprint function, so corpus
snippets are self-contained), then inspects every *fingerprint function*
(name containing ``fingerprint`` or ``cache_key``).  A fingerprint that
hashes the whole object (``dataclasses.asdict``/``astuple`` on the
parameter, or delegation of the whole parameter to another call) covers all
fields by construction — including fields added later, which is why the
production code hashes via ``asdict``.  A fingerprint that instead
enumerates fields explicitly (``{"seed": config.seed, ...}``) is checked
field-for-field: any dataclass field it never reads is flagged, because a
newly added field would silently not change cache keys, serving stale
Figures 7–10 from the cache.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from .boundary import is_hashed_config_module
from .findings import Finding
from .rules import (
    FileContext,
    ProjectContext,
    ProjectRule,
    dotted_name,
    register,
)

__all__ = [
    "DataclassInfo",
    "collect_dataclasses",
    "CacheKeyCoverageRule",
    "MutableDefaultRule",
    "NonFieldStateRule",
]

_FINGERPRINT_NAME = re.compile(r"(fingerprint|cache_key)", re.IGNORECASE)

_MUTABLE_FACTORIES = frozenset({"list", "dict", "set", "bytearray"})


@dataclass
class DataclassInfo:
    """A dataclass definition as seen by the AST pass."""

    name: str
    module: str
    ctx: FileContext
    node: ast.ClassDef
    fields: List[str] = field(default_factory=list)
    #: (field name, anchor node) for mutable defaults / default factories.
    mutable_defaults: List[Tuple[str, ast.AST]] = field(default_factory=list)
    #: class-level assignments without annotation (invisible to asdict()).
    unannotated: List[Tuple[str, ast.AST]] = field(default_factory=list)
    #: object.__setattr__(self, <name>, ...) for names that are not fields.
    nonfield_setattr: List[Tuple[str, ast.AST]] = field(default_factory=list)


def _is_dataclass_decorator(node: ast.AST, ctx: FileContext) -> bool:
    target = node.func if isinstance(node, ast.Call) else node
    name = dotted_name(target, ctx.imports)
    return name in ("dataclasses.dataclass", "dataclass")


def _mutable_default_anchor(
    value: Optional[ast.expr], ctx: FileContext
) -> Optional[ast.AST]:
    """The offending node when a field default is mutable, else ``None``."""
    if value is None:
        return None
    if isinstance(value, (ast.List, ast.Dict, ast.Set)):
        return value
    if isinstance(value, ast.Call):
        callee = dotted_name(value.func, ctx.imports)
        if callee in ("dataclasses.field", "field"):
            for kw in value.keywords:
                if kw.arg == "default_factory" and isinstance(kw.value, ast.Name):
                    if kw.value.id in _MUTABLE_FACTORIES:
                        return kw.value
        elif callee in _MUTABLE_FACTORIES:
            return value
    return None


def _collect_one(node: ast.ClassDef, ctx: FileContext) -> DataclassInfo:
    info = DataclassInfo(name=node.name, module=ctx.module, ctx=ctx, node=node)
    for stmt in node.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            annotation = ast.dump(stmt.annotation)
            if "ClassVar" in annotation:
                continue
            info.fields.append(stmt.target.id)
            anchor = _mutable_default_anchor(stmt.value, ctx)
            if anchor is not None:
                info.mutable_defaults.append((stmt.target.id, anchor))
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and not target.id.startswith("_"):
                    info.unannotated.append((target.id, stmt))
    field_set = set(info.fields)
    for sub in ast.walk(node):
        if not isinstance(sub, ast.Call):
            continue
        if dotted_name(sub.func, ctx.imports) != "object.__setattr__":
            continue
        if len(sub.args) >= 2 and isinstance(sub.args[1], ast.Constant):
            attr = sub.args[1].value
            if isinstance(attr, str) and attr not in field_set:
                info.nonfield_setattr.append((attr, sub))
    return info


def collect_dataclasses(ctx: FileContext) -> List[DataclassInfo]:
    """All dataclass definitions in one file."""
    out: List[DataclassInfo] = []
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ClassDef) and any(
            _is_dataclass_decorator(dec, ctx) for dec in node.decorator_list
        ):
            out.append(_collect_one(node, ctx))
    return out


def _annotation_class_name(annotation: Optional[ast.expr]) -> Optional[str]:
    """Terminal class name of a parameter annotation.

    Handles ``SimConfig``, ``"RunSpec"`` (string annotation),
    ``Optional[SimConfig]`` and ``mod.SimConfig``; returns the bare class
    name for lookup against collected dataclasses.
    """
    node = annotation
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(node, ast.Subscript):  # Optional[X] / Union[X, None]
        inner = node.slice
        if isinstance(inner, ast.Tuple):
            for elt in inner.elts:
                name = _annotation_class_name(elt)
                if name is not None and name != "None":
                    return name
            return None
        return _annotation_class_name(inner)
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return None if node.id == "None" else node.id
    return None


def _is_alias_expr(value: ast.expr, aliases: Set[str]) -> bool:
    """True when ``value`` evaluates to (possibly) the aliased object itself.

    Covers plain rebinding, the ``effective = config if config is not None
    else SimConfig()`` idiom, and ``config or DEFAULT`` — but *not*
    arbitrary expressions that merely read attributes off the parameter
    (a dict built from ``cfg.seed`` is a projection, not an alias).
    """
    if isinstance(value, ast.Name):
        return value.id in aliases
    if isinstance(value, ast.IfExp):
        return _is_alias_expr(value.body, aliases) or _is_alias_expr(
            value.orelse, aliases
        )
    if isinstance(value, ast.BoolOp):
        return any(_is_alias_expr(v, aliases) for v in value.values)
    return False


def _param_aliases(fn: ast.FunctionDef, param: str) -> Set[str]:
    """``param`` plus local names rebound to (possibly) the same object."""
    aliases = {param}
    changed = True
    while changed:
        changed = False
        for stmt in ast.walk(fn):
            if not isinstance(stmt, ast.Assign):
                continue
            if not _is_alias_expr(stmt.value, aliases):
                continue
            for target in stmt.targets:
                if isinstance(target, ast.Name) and target.id not in aliases:
                    aliases.add(target.id)
                    changed = True
    return aliases


_WHOLE_OBJECT_CALLS = frozenset(
    {"dataclasses.asdict", "asdict", "dataclasses.astuple", "astuple"}
)

#: Builtins that inspect but cannot cover an object's fields — passing the
#: parameter to these does *not* count as delegating the fingerprint.
_NON_DELEGATING = frozenset(
    {"isinstance", "issubclass", "print", "len", "type", "id", "repr", "bool"}
)


def _coverage(
    fn: ast.FunctionDef, param: str, ctx: FileContext
) -> Tuple[bool, Set[str]]:
    """(whole-object hashed or delegated, explicitly read fields).

    ``dataclasses.asdict(param)`` covers every field by construction;
    passing the whole parameter to any other callable is treated as
    delegation (the callee's own fingerprinting is checked separately).
    """
    aliases = _param_aliases(fn, param)
    fields_read: Set[str] = set()
    whole = False
    for node in ast.walk(fn):
        if isinstance(node, ast.Call):
            callee = dotted_name(node.func, ctx.imports)
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                if isinstance(arg, ast.Name) and arg.id in aliases:
                    if callee in _WHOLE_OBJECT_CALLS:
                        whole = True
                    elif callee is None or callee not in _NON_DELEGATING:
                        whole = True
        elif isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
            if node.value.id in aliases:
                fields_read.add(node.attr)
    return whole, fields_read


@register
class CacheKeyCoverageRule(ProjectRule):
    rule_id = "REPRO201"
    title = "hashed dataclass field missing from fingerprint"
    rationale = (
        "a SimConfig/RunSpec field that never reaches the cache content "
        "hash means two different configurations share a cache key — "
        "regenerated figures silently reuse results from the wrong config."
    )
    fix_hint = (
        "hash the whole object (dataclasses.asdict) or add the missing "
        "field to the fingerprint payload"
    )

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        classes: Dict[str, DataclassInfo] = {}
        for ctx in project.files:
            for info in collect_dataclasses(ctx):
                classes.setdefault(info.name, info)
        if not classes:
            return
        for ctx in project.files:
            for node in ast.walk(ctx.tree):
                if not isinstance(node, ast.FunctionDef):
                    continue
                if not _FINGERPRINT_NAME.search(node.name):
                    continue
                for arg in node.args.args:
                    cls_name = _annotation_class_name(arg.annotation)
                    if cls_name is None or cls_name not in classes:
                        continue
                    info = classes[cls_name]
                    whole, fields_read = _coverage(node, arg.arg, ctx)
                    if whole or not fields_read:
                        continue  # whole-object hash / pure delegation
                    missing = sorted(set(info.fields) - fields_read)
                    if missing:
                        yield ctx.finding(
                            node,
                            self,
                            f"fingerprint `{node.name}` reads "
                            f"{sorted(fields_read)} of `{cls_name}` but "
                            f"misses field(s) {missing}",
                        )


@register
class MutableDefaultRule(ProjectRule):
    rule_id = "REPRO202"
    title = "mutable default on a hashed dataclass field"
    rationale = (
        "a list/dict/set default on a hashed config dataclass can be "
        "mutated after construction, changing simulation behaviour without "
        "changing the already-computed cache key."
    )
    fix_hint = "use an immutable default (tuple, frozenset, frozen dataclass)"

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        for ctx in project.files:
            if not is_hashed_config_module(ctx.module):
                continue
            for info in collect_dataclasses(ctx):
                for name, anchor in info.mutable_defaults:
                    yield ctx.finding(
                        anchor,
                        self,
                        f"field `{info.name}.{name}` has a mutable default",
                    )


@register
class NonFieldStateRule(ProjectRule):
    rule_id = "REPRO203"
    title = "non-field state on a hashed dataclass"
    rationale = (
        "class attributes without annotations and object.__setattr__ of "
        "non-field names are invisible to dataclasses.asdict(), so they "
        "escape the cache content hash entirely."
    )
    fix_hint = "declare it as an annotated dataclass field (or ClassVar)"

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        for ctx in project.files:
            if not is_hashed_config_module(ctx.module):
                continue
            for info in collect_dataclasses(ctx):
                for name, anchor in info.unannotated:
                    yield ctx.finding(
                        anchor,
                        self,
                        f"`{info.name}.{name}` is an unannotated class "
                        "attribute (not a dataclass field)",
                    )
                for name, anchor in info.nonfield_setattr:
                    yield ctx.finding(
                        anchor,
                        self,
                        f"`{info.name}` sets non-field attribute `{name}` "
                        "via object.__setattr__",
                    )
