"""Static-analysis devtools: the ``repro lint`` reproducibility gate.

The evaluation pipeline rests on two invariants:

1. **Determinism** — every simulation is a pure function of
   ``(RunSpec, SimConfig)``.  Serial, parallel and fresh-process runs must
   be bit-identical, otherwise the serial-vs-parallel differential tests
   and the paper's figures silently diverge.
2. **Cache-key integrity** — the persistent result cache
   (:mod:`repro.harness.cache`) is keyed by a content hash over *every*
   ``RunSpec``/``SimConfig`` field.  A config field that escapes the hash
   poisons cached Figures 7–10 with stale results.

Hand-written tests catch specific regressions; this package catches whole
*classes* of them statically, with a custom AST checker that needs no
third-party lint framework:

* :mod:`~repro.devtools.determinism` — ``REPRO1xx``: wall-clock reads,
  unseeded module-level RNG, environment reads, set-ordering, ``id()``
  keys inside the simulation packages.
* :mod:`~repro.devtools.cache_integrity` — ``REPRO2xx``: hashed-dataclass
  fields that escape fingerprint functions, mutable defaults, non-field
  state on hashed dataclasses.
* :mod:`~repro.devtools.parallel_safety` — ``REPRO3xx``: module-global
  mutation, non-picklable worker callables, config mutation in code
  reachable from :class:`~repro.harness.parallel.ParallelRunner` workers.
* :mod:`~repro.devtools.ratchet` — ``REPRO4xx``: the mypy strictness
  allowlist in ``pyproject.toml`` may only shrink.

``repro lint --deep`` adds a whole-program layer on top of the per-file
rules — a project-wide call graph (:mod:`~repro.devtools.callgraph`, with
an on-disk summary cache) feeding:

* :mod:`~repro.devtools.taint` — ``REPRO5xx``: cache-key taint analysis —
  every ``SimConfig``/``RunSpec`` field read reachable from the simulation
  entry points must be hashed or listed (with justification) in
  :data:`repro.harness.cache.FINGERPRINT_ELISIONS`.
* :mod:`~repro.devtools.reachability` — ``REPRO6xx``: the true transitive
  closure from ``harness.parallel._pool_entry`` — worker-reachable global
  or module-state mutation, nondeterminism leaking through the harness
  boundary, and drift between the closure and ``PARALLEL_SCOPE``.

Entry points: ``python -m repro lint [PATHS]`` (see :mod:`repro.cli`) or
:func:`run_lint` programmatically.  Suppress a finding with a trailing or
preceding ``# repro-lint: disable=RULEID`` comment; see LINTING.md for the
full rule catalogue.
"""

from __future__ import annotations

from .boundary import (
    HARNESS_PACKAGES,
    PARALLEL_SCOPE,
    SHARED_MODULES,
    SIMULATION_ENTRY_POINTS,
    SIMULATION_PACKAGES,
    WORKER_ENTRY_POINTS,
    is_parallel_scope,
    is_simulation_module,
)
from .checker import LintReport, run_lint
from .findings import Finding
from .rules import RULES, all_rules, get_rule

__all__ = [
    "Finding",
    "LintReport",
    "run_lint",
    "RULES",
    "all_rules",
    "get_rule",
    "SIMULATION_PACKAGES",
    "HARNESS_PACKAGES",
    "SHARED_MODULES",
    "PARALLEL_SCOPE",
    "WORKER_ENTRY_POINTS",
    "SIMULATION_ENTRY_POINTS",
    "is_simulation_module",
    "is_parallel_scope",
]
