"""Rule registry and the contexts rules run against.

Two rule shapes:

* :class:`FileRule` — checks one parsed file at a time (all determinism
  rules, most parallel-safety rules).
* :class:`ProjectRule` — checks the whole batch of parsed files at once,
  for cross-module invariants (cache-key integrity needs the dataclasses in
  ``repro.config`` *and* the fingerprint functions in
  ``repro.harness.cache``; the mypy ratchet needs ``pyproject.toml``).

Concrete rules subclass one of these and self-register with
:func:`register`; :mod:`repro.devtools.checker` instantiates every
registered rule per run.  Rule ids are ``REPRO<family><nn>``:
``1xx`` determinism, ``2xx`` cache integrity, ``3xx`` parallel safety,
``4xx`` strictness ratchet, ``9xx`` checker-internal (parse errors).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
    Type,
    Union,
)

from .findings import Finding

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (deep -> rules)
    from .deep import DeepAnalysis

__all__ = [
    "FileContext",
    "ProjectContext",
    "ImportMap",
    "Rule",
    "FileRule",
    "ProjectRule",
    "RULES",
    "register",
    "get_rule",
    "all_rules",
    "dotted_name",
    "module_directive",
]

#: ``# repro-lint: disable=REPRO101`` / ``disable=REPRO101,REPRO102`` /
#: ``disable=all``.  Anything after the rule list (e.g. an em-dash and a
#: justification) is ignored, so suppressions can carry their rationale.
_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,]+|all)", re.IGNORECASE
)

#: ``# repro-lint: module=repro.engine.fake`` — lets the lint corpus (and
#: tests) classify a file outside ``src/`` as if it lived at that dotted
#: path.  Only honoured within the first few lines of a file.
_MODULE_RE = re.compile(r"#\s*repro-lint:\s*module=([\w.]+)")
_MODULE_DIRECTIVE_WINDOW = 5


class ImportMap:
    """What each local name refers to, per the file's import statements.

    Resolves ``np`` -> ``numpy``, ``from datetime import datetime`` ->
    ``datetime.datetime``, etc., so rules can match fully-qualified call
    targets regardless of aliasing.
    """

    def __init__(self, tree: ast.AST) -> None:
        self._names: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else local
                    self._names[local] = target
            elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self._names[local] = f"{node.module}.{alias.name}"

    def resolve(self, name: str) -> Optional[str]:
        """Fully-qualified target of a local name, or ``None`` if not imported."""
        return self._names.get(name)


def dotted_name(expr: ast.AST, imports: ImportMap) -> Optional[str]:
    """Fully-qualified dotted name of a Name/Attribute chain, or ``None``.

    ``np.random.default_rng`` with ``import numpy as np`` resolves to
    ``numpy.random.default_rng``; a chain rooted at a non-imported local
    name resolves to that raw chain (callers decide whether bare names are
    meaningful — e.g. builtins).
    """
    parts: List[str] = []
    node = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    root = imports.resolve(node.id) or node.id
    parts.append(root)
    return ".".join(reversed(parts))


@dataclass
class FileContext:
    """One parsed source file plus its lint-relevant metadata."""

    path: Path
    display_path: str
    module: str
    source: str
    tree: ast.Module
    imports: ImportMap = field(init=False)
    #: line number -> suppressed rule ids ("ALL" suppresses everything).
    suppressions: Dict[int, Set[str]] = field(init=False)

    def __post_init__(self) -> None:
        self.imports = ImportMap(self.tree)
        self.suppressions = _collect_suppressions(self.source)

    def is_suppressed(self, rule: str, line: int) -> bool:
        suppressed = self.suppressions.get(line, set())
        return "ALL" in suppressed or rule.upper() in suppressed

    def finding(
        self,
        node: Union[ast.AST, Tuple[int, int]],
        rule: "Rule",
        message: str,
        fix_hint: Optional[str] = None,
    ) -> Finding:
        """Build a Finding anchored at ``node`` (or an explicit (line, col))."""
        if isinstance(node, tuple):
            line, col = node
        else:
            line = getattr(node, "lineno", 1)
            col = getattr(node, "col_offset", 0) + 1
        return Finding(
            path=self.display_path,
            line=line,
            column=col,
            rule=rule.rule_id,
            message=message,
            fix_hint=rule.fix_hint if fix_hint is None else fix_hint,
        )


def _collect_suppressions(source: str) -> Dict[int, Set[str]]:
    """Map line -> suppressed rule ids.

    A suppression comment covers its own line; a comment-only line also
    covers the next line, so violations can be annotated either inline or
    with a standalone comment above.
    """
    table: Dict[int, Set[str]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(text)
        if not match:
            continue
        spec = match.group(1)
        rules = (
            {"ALL"}
            if spec.lower() == "all"
            else {r.strip().upper() for r in spec.split(",") if r.strip()}
        )
        table.setdefault(lineno, set()).update(rules)
        if text.lstrip().startswith("#"):
            table.setdefault(lineno + 1, set()).update(rules)
    return table


def module_directive(source: str) -> Optional[str]:
    """The ``# repro-lint: module=...`` override, if present near the top."""
    for text in source.splitlines()[:_MODULE_DIRECTIVE_WINDOW]:
        match = _MODULE_RE.search(text)
        if match:
            return match.group(1)
    return None


@dataclass
class ProjectContext:
    """Everything a cross-module rule may consult."""

    files: List[FileContext]
    #: Nearest ancestor directory holding ``pyproject.toml``, when found.
    root: Optional[Path] = None
    #: Whole-program analysis built by ``repro lint --deep``; ``None`` in
    #: the default (per-file) mode.  Deep rules (REPRO5xx/6xx) no-op when
    #: this is absent.
    deep: Optional["DeepAnalysis"] = None

    def by_module(self, module: str) -> Optional[FileContext]:
        for ctx in self.files:
            if ctx.module == module:
                return ctx
        return None


class Rule:
    """Base: identity + catalogue metadata shared by both rule shapes."""

    rule_id: str = ""
    title: str = ""
    rationale: str = ""
    fix_hint: str = ""


class FileRule(Rule):
    """A rule evaluated independently on each file."""

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError  # pragma: no cover


class ProjectRule(Rule):
    """A rule evaluated once over the whole batch of files."""

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        raise NotImplementedError  # pragma: no cover


RULES: Dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: add a rule to the registry (ids must be unique)."""
    if not cls.rule_id:
        raise ValueError(f"rule {cls.__name__} has no rule_id")
    if cls.rule_id in RULES:
        raise ValueError(f"duplicate rule id {cls.rule_id}")
    RULES[cls.rule_id] = cls
    return cls


def get_rule(rule_id: str) -> Type[Rule]:
    return RULES[rule_id]


def all_rules() -> Iterable[Type[Rule]]:
    """Registered rules in rule-id order."""
    return [RULES[rule_id] for rule_id in sorted(RULES)]
