"""Cache-key taint rules (``REPRO5xx``) — ``--deep`` mode only.

The persistent result cache is sound only if the content hash
(:func:`repro.harness.cache.spec_fingerprint`) covers every
``SimConfig``/``RunSpec`` field that can influence simulation behaviour.
REPRO201 checks the fingerprint function in isolation; these rules close
the loop from the *other* side: using the call graph, they look at every
config/spec attribute actually read in code reachable from the simulation
entry points and require each one to be either hashed or deliberately,
justifiably elided via the machine-readable
``FINGERPRINT_ELISIONS`` allowlist that lives next to the fingerprints.

All three rules no-op unless :attr:`ProjectContext.deep` is populated.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, Tuple

from .findings import Finding
from .rules import FileContext, ProjectContext, ProjectRule, register

__all__ = [
    "UnhashedFieldReadRule",
    "ElisionAllowlistRule",
    "UnknownConfigAttributeRule",
]

#: Attributes that exist on every object / dataclass and never carry
#: behaviour-affecting configuration.
_UNIVERSAL_ATTRS: Set[str] = {
    "__class__",
    "__dict__",
    "__doc__",
    "__module__",
    "__dataclass_fields__",
}


def _anchor(
    project: ProjectContext, module: str
) -> Optional[FileContext]:
    return project.by_module(module)


class _DeepRule(ProjectRule):
    """Shared gate: deep rules need the whole-program analysis."""

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        if project.deep is None:
            return
        yield from self._check_deep(project)

    def _check_deep(self, project: ProjectContext) -> Iterator[Finding]:
        raise NotImplementedError  # pragma: no cover


@register
class UnhashedFieldReadRule(_DeepRule):
    rule_id = "REPRO501"
    title = "config/spec field escapes the cache content hash"
    rationale = (
        "a field of a hashed dataclass is read somewhere in the simulation "
        "closure (code reachable from harness.experiment._execute), but the "
        "fingerprint elides it — two runs differing only in that field "
        "would collide on one cache entry and silently serve each other's "
        "results."
    )
    fix_hint = (
        "hash the field, or record the elision in FINGERPRINT_ELISIONS "
        "(repro.harness.cache) with a one-line justification"
    )

    def _check_deep(self, project: ProjectContext) -> Iterator[Finding]:
        deep = project.deep
        assert deep is not None
        allow_fields = {entry.field for entry in deep.allowlist}

        # Fields each hashed class actually feeds into the hash.
        for cls in deep.hashed_classes.values():
            if cls.whole_object:
                hashed = set(cls.fields)
            else:
                hashed = set(cls.fields_hashed)
            elided: Dict[str, List[Tuple[str, int, int]]] = {}
            for site in deep.elisions:
                if site.field in cls.fields:
                    elided.setdefault(site.field, []).append(
                        (site.module, site.line, site.column)
                    )
            uncovered = (set(cls.fields) - (hashed - set(elided))) | set(elided)

            # Which uncovered fields does the simulation closure read?
            read_sites = [
                read
                for read in deep.sim_config_reads
                if read.field in uncovered
                and read.field in cls.fields
                and (read.class_hint == cls.name or not read.from_annotation)
            ]
            for field in sorted({r.field for r in read_sites}):
                if field in allow_fields:
                    continue
                # Anchor at the elision site when there is one (that is the
                # line to fix), else at the fingerprint definition.
                sites = elided.get(field)
                if sites:
                    module, line, column = sites[0]
                else:
                    module, line, column = (
                        cls.fingerprint_module,
                        cls.fingerprint_line,
                        0,
                    )
                ctx = _anchor(project, module)
                if ctx is None:
                    continue
                reader = next(r for r in read_sites if r.field == field)
                yield ctx.finding(
                    (line, column + 1),
                    self,
                    f"`{cls.name}.{field}` is read in simulation-reachable "
                    f"code (`{reader.function}` at {reader.module}:"
                    f"{reader.line}) but escapes the cache hash",
                )


@register
class ElisionAllowlistRule(_DeepRule):
    rule_id = "REPRO502"
    title = "invalid or stale fingerprint-elision allowlist entry"
    rationale = (
        "FINGERPRINT_ELISIONS is the audited record of every field "
        "deliberately left out of the cache hash; an entry without a "
        "justification defeats the audit, and an entry whose field is no "
        "longer elided (or never existed on the named dataclass) documents "
        "a hash that is not the one shipping."
    )
    fix_hint = (
        "give every entry a non-empty reason, and drop entries whose "
        "elision no longer exists in the fingerprint code"
    )

    #: Reasons shorter than this cannot plausibly justify an elision.
    _MIN_REASON = 10

    def _check_deep(self, project: ProjectContext) -> Iterator[Finding]:
        deep = project.deep
        assert deep is not None
        elided_fields = {site.field for site in deep.elisions}
        for entry in deep.allowlist:
            ctx = _anchor(project, entry.module)
            if ctx is None:
                continue
            anchor = (entry.line, entry.column + 1)
            label = f"{entry.dataclass_name}.{entry.field}"
            if len(entry.reason.strip()) < self._MIN_REASON:
                yield ctx.finding(
                    anchor,
                    self,
                    f"allowlist entry `{label}` carries no justification",
                )
                continue
            cls = deep.hashed_classes.get(entry.dataclass_name)
            if cls is not None:
                if entry.field != "*" and entry.field not in cls.fields:
                    yield ctx.finding(
                        anchor,
                        self,
                        f"allowlist entry `{label}` names a field that does "
                        f"not exist on `{cls.name}`",
                    )
                    continue
                if entry.field != "*" and entry.field not in elided_fields:
                    yield ctx.finding(
                        anchor,
                        self,
                        f"allowlist entry `{label}` is stale: the "
                        "fingerprint no longer elides this field",
                    )
            # Entries for classes outside the hashed set (e.g. ObsConfig,
            # which never reaches the cache at all) are documentation-only;
            # the justification requirement above still applies.


@register
class UnknownConfigAttributeRule(_DeepRule):
    rule_id = "REPRO503"
    title = "unknown attribute read on a hashed-config object"
    rationale = (
        "simulation-reachable code reads an attribute that is neither a "
        "field nor a method/property of the annotated config dataclass — "
        "typically a typo or a stale field name that would only fail at "
        "runtime on a rarely-taken path."
    )
    fix_hint = "use a declared field, or add the field to the dataclass"

    def _check_deep(self, project: ProjectContext) -> Iterator[Finding]:
        deep = project.deep
        assert deep is not None
        for read in deep.sim_config_reads:
            # Heuristic (name-based) receiver hints are too weak to accuse a
            # read of being invalid; only annotation-confirmed types count.
            if not read.from_annotation:
                continue
            cls = deep.hashed_classes.get(read.class_hint)
            if cls is None:
                continue
            known = set(cls.fields) | set(cls.methods) | _UNIVERSAL_ATTRS
            if read.field in known:
                continue
            ctx = _anchor(project, read.module)
            if ctx is None:
                continue
            yield ctx.finding(
                (read.line, read.column + 1),
                self,
                f"`{read.class_hint}.{read.field}` read in "
                f"`{read.function}` but `{cls.name}` declares no such "
                "field or method",
            )
