"""Project-wide import/call-graph builder with an on-disk summary cache.

The ``--deep`` lint mode (:mod:`repro.devtools.taint`,
:mod:`repro.devtools.reachability`) needs a *whole-program* view: which
functions are transitively callable from the pool-worker entry point, and
which ``SimConfig``/``RunSpec`` attribute reads are reachable from the
simulation execution seams.  The per-file rules cannot answer either
question, so this module builds the view in two stages:

1. **Extraction** — each parsed file is reduced to a
   :class:`ModuleSummary`: its functions (with resolved call targets,
   config-attribute reads, ``global`` writes, nondeterministic calls,
   container mutations and payload elisions), classes (methods + fields),
   module-level mutable containers, dispatch tables, fingerprint functions,
   and the ``FINGERPRINT_ELISIONS`` allowlist entries it declares.
   Summaries are plain JSON-serialisable data, independent of the AST they
   came from.

2. **Linking** — :class:`CallGraph` stitches the summaries together:
   import aliases (including package re-exports such as
   ``repro.policies.MHPEPolicy`` -> ``repro.policies.mhpe.MHPEPolicy``) are
   followed transitively, instantiations resolve to ``__init__`` /
   ``__post_init__``, and :meth:`CallGraph.reachable_from` computes
   transitive closures by BFS.

Call resolution is deliberately best-effort (see DESIGN.md "Call-graph
resolution"): precise for direct calls, imports, ``self.method()``,
``Cls(...).method()`` and annotated/locally-constructed receivers; the
known dynamic seams are over-approximated — a call through a module-level
dispatch table (``_POLICY_BUILDERS[name]()``) fans out to every callable
the table references, and an unresolvable ``x.method()`` fans out to every
*simulation-package* class method of that name (harness classes are only
reached through precise edges, so the over-approximation cannot drag the
whole harness into worker scope).

Because extraction is the expensive part (a full typed walk per file), the
summaries are cached on disk (:class:`SummaryCache`) keyed by the SHA-256
of each file's source: a warm cache means the deep pass re-extracts nothing
for unchanged files.  The cache stores data only — stale entries are simply
recomputed, so the file can be deleted (or persisted across CI runs via
``actions/cache``) at will.
"""

from __future__ import annotations

import ast
import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field as dataclass_field
from pathlib import Path
from typing import Any, Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from .boundary import is_simulation_module
from .determinism import _SEEDED_NUMPY_CTORS, _SEEDED_RANDOM_CTORS, _WALLCLOCK_CALLS
from .rules import FileContext

__all__ = [
    "SUMMARY_VERSION",
    "ATTR_CALL_PREFIX",
    "TABLE_PREFIX",
    "REGISTRY_PREFIX",
    "ConfigRead",
    "SiteList",
    "FunctionSummary",
    "ClassSummary",
    "ElisionEntry",
    "FingerprintInfo",
    "ModuleSummary",
    "extract_module_summary",
    "SummaryCache",
    "CallGraph",
]

#: Bumped whenever the summary shape changes; cache entries written by a
#: different version are ignored (recomputed), never migrated.
SUMMARY_VERSION = 2

#: Call-target marker for an unresolved method invocation (``x.foo()`` with
#: unknown receiver type): resolved at link time via the method-name index.
ATTR_CALL_PREFIX = "attr:"

#: Call-target marker for a subscripted call through a module-level dispatch
#: table (``_POLICY_BUILDERS[name]()``): fans out to the table's referents.
TABLE_PREFIX = "table:"

#: Call-target marker for a component-registry build
#: (``repro.registry.build("policy", name)``): fans out to every builder
#: registered for that kind anywhere in the batch (``registry:policy``), or
#: to every registered builder of any kind when the kind argument is not a
#: string literal (``registry:*``).  This is the seam that keeps plugin
#: builders — registered at import time, dispatched by name at run time —
#: inside the worker/simulation closures.
REGISTRY_PREFIX = "registry:"

#: The registry mutators whose *module-level* calls populate
#: :attr:`ModuleSummary.registrations`, and the builder facades whose call
#: sites emit ``registry:<kind>`` markers.
_REGISTRY_REGISTER_FUNCS: FrozenSet[str] = frozenset(
    {"repro.registry.register", "repro.registry.Registry.add"}
)
_REGISTRY_TABLE_FUNCS: FrozenSet[str] = frozenset(
    {"repro.registry.register_table"}
)
_REGISTRY_BUILD_FUNCS: FrozenSet[str] = frozenset(
    {"repro.registry.build", "repro.registry.Registry.build"}
)

# Receiver-name heuristics for untyped config/spec parameters.  Only used
# when no annotation is available; taint rules treat heuristic-based reads
# as lower-confidence (they gate REPRO501 on field-name membership and
# never raise REPRO503 from them).
_CONFIG_NAME_HINTS: Dict[str, str] = {
    "config": "SimConfig",
    "cfg": "SimConfig",
    "sim_config": "SimConfig",
    "simconfig": "SimConfig",
    "spec": "RunSpec",
    "run_spec": "RunSpec",
    "runspec": "RunSpec",
}

# Methods that mutate their receiver in place: a reachable call on a
# module-level container is shared-state mutation (REPRO602).
_MUTATOR_METHODS: FrozenSet[str] = frozenset(
    {
        "append",
        "appendleft",
        "add",
        "clear",
        "discard",
        "extend",
        "insert",
        "pop",
        "popitem",
        "remove",
        "setdefault",
        "update",
        "__setitem__",
    }
)

# Constructors whose module-level result is a mutable container.
_CONTAINER_CTORS: FrozenSet[str] = frozenset(
    {
        "dict",
        "list",
        "set",
        "collections.defaultdict",
        "collections.OrderedDict",
        "collections.Counter",
        "collections.deque",
    }
)

_ENV_READS: FrozenSet[str] = frozenset(
    {"os.getenv", "os.environ.get", "os.environ"}
)

_FINGERPRINT_RE = "fingerprint|cache_key"


# ---------------------------------------------------------------------------
# Summary data model (all JSON-serialisable; tuples become lists on disk, so
# everything is stored as lists from the start to keep warm and cold runs
# byte-identical).
# ---------------------------------------------------------------------------

#: ``[hint_class, field, line, col, from_annotation]``
ConfigRead = List[Any]

#: ``[label, line, col]`` — a named site inside a function body.
SiteList = List[Any]


@dataclass
class FunctionSummary:
    """One function (or method), reduced to what the deep rules consume."""

    name: str  # qualified within the module: "f" or "Cls.f"
    line: int
    calls: List[str] = dataclass_field(default_factory=list)
    config_reads: List[ConfigRead] = dataclass_field(default_factory=list)
    global_writes: List[SiteList] = dataclass_field(default_factory=list)
    nondet_calls: List[SiteList] = dataclass_field(default_factory=list)
    container_writes: List[SiteList] = dataclass_field(default_factory=list)
    elisions: List[SiteList] = dataclass_field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "line": self.line,
            "calls": self.calls,
            "config_reads": self.config_reads,
            "global_writes": self.global_writes,
            "nondet_calls": self.nondet_calls,
            "container_writes": self.container_writes,
            "elisions": self.elisions,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "FunctionSummary":
        return cls(
            name=payload["name"],
            line=payload["line"],
            calls=list(payload["calls"]),
            config_reads=[list(r) for r in payload["config_reads"]],
            global_writes=[list(r) for r in payload["global_writes"]],
            nondet_calls=[list(r) for r in payload["nondet_calls"]],
            container_writes=[list(r) for r in payload["container_writes"]],
            elisions=[list(r) for r in payload["elisions"]],
        )


@dataclass
class ClassSummary:
    """A class definition: enough to answer attribute/method lookups."""

    name: str
    line: int
    bases: List[str] = dataclass_field(default_factory=list)
    methods: List[str] = dataclass_field(default_factory=list)
    fields: List[str] = dataclass_field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "line": self.line,
            "bases": self.bases,
            "methods": self.methods,
            "fields": self.fields,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ClassSummary":
        return cls(
            name=payload["name"],
            line=payload["line"],
            bases=list(payload["bases"]),
            methods=list(payload["methods"]),
            fields=list(payload["fields"]),
        )


#: ``[dataclass_name, field, reason, line, col]`` — one parsed
#: ``FingerprintElision(...)`` entry from a ``FINGERPRINT_ELISIONS`` table.
ElisionEntry = List[Any]

#: ``[function_name, param_class, whole_object, fields_read, line]`` — one
#: fingerprint function and what it covers of its annotated parameter.
FingerprintInfo = List[Any]


@dataclass
class ModuleSummary:
    """Everything the deep pass needs to know about one file."""

    module: str
    path: str  # display path (repo-relative when under the project root)
    functions: List[FunctionSummary] = dataclass_field(default_factory=list)
    classes: List[ClassSummary] = dataclass_field(default_factory=list)
    imports: Dict[str, str] = dataclass_field(default_factory=dict)
    containers: List[SiteList] = dataclass_field(default_factory=list)
    tables: Dict[str, List[str]] = dataclass_field(default_factory=dict)
    elision_entries: List[ElisionEntry] = dataclass_field(default_factory=list)
    fingerprints: List[FingerprintInfo] = dataclass_field(default_factory=list)
    #: Component-registry kind -> builder referents registered by this
    #: module's import-time ``register(...)`` / ``register_table(...)``
    #: calls (referents use the same grammar as ``tables`` entries, so
    #: ``table:`` markers compose).
    registrations: Dict[str, List[str]] = dataclass_field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "module": self.module,
            "path": self.path,
            "functions": [f.to_dict() for f in self.functions],
            "classes": [c.to_dict() for c in self.classes],
            "imports": self.imports,
            "containers": self.containers,
            "tables": self.tables,
            "elision_entries": self.elision_entries,
            "fingerprints": self.fingerprints,
            "registrations": self.registrations,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ModuleSummary":
        return cls(
            module=payload["module"],
            path=payload["path"],
            functions=[
                FunctionSummary.from_dict(f) for f in payload["functions"]
            ],
            classes=[ClassSummary.from_dict(c) for c in payload["classes"]],
            imports=dict(payload["imports"]),
            containers=[list(c) for c in payload["containers"]],
            tables={k: list(v) for k, v in payload["tables"].items()},
            elision_entries=[list(e) for e in payload["elision_entries"]],
            fingerprints=[list(f) for f in payload["fingerprints"]],
            registrations={
                k: list(v) for k, v in payload["registrations"].items()
            },
        )


# ---------------------------------------------------------------------------
# Import resolution (handles relative imports, which rules.ImportMap skips
# on purpose: per-file rules only need absolute stdlib names).
# ---------------------------------------------------------------------------


class _ImportTable:
    """Local name -> fully qualified dotted target, for one module."""

    def __init__(self, module: str, is_package: bool, tree: ast.Module) -> None:
        self.names: Dict[str, str] = {}
        parts = module.split(".")
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    self.names[local] = target
            elif isinstance(node, ast.ImportFrom):
                if node.level == 0:
                    base = node.module or ""
                else:
                    # ``from ..x import y`` in package ``a.b.c`` resolves
                    # against a.b (level 1 from a module strips the module
                    # name itself; packages resolve level 1 to themselves).
                    anchor = parts if is_package else parts[:-1]
                    cut = len(anchor) - (node.level - 1)
                    if cut < 0:
                        continue
                    prefix = anchor[:cut]
                    base = ".".join(prefix + ([node.module] if node.module else []))
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.names[local] = (
                        base + "." + alias.name if base else alias.name
                    )

    def resolve(self, dotted: str) -> str:
        head, _, rest = dotted.partition(".")
        if head in self.names:
            resolved = self.names[head]
            return resolved + "." + rest if rest else resolved
        return dotted


def _dotted(expr: ast.expr) -> Optional[str]:
    parts: List[str] = []
    node = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _annotation_class(node: Optional[ast.expr]) -> Optional[str]:
    """Best-effort class name from an annotation (unwraps Optional/str)."""
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        text = node.value.strip().strip("'\"")
        return text.split("[")[0].split(".")[-1] or None
    if isinstance(node, ast.Subscript):
        # Optional[X] / Final[X] / "X | None" style wrappers.
        inner = node.slice
        if isinstance(inner, ast.Tuple):
            for element in inner.elts:
                name = _annotation_class(element)
                if name is not None and name != "None":
                    return name
            return None
        return _annotation_class(inner)
    if isinstance(node, ast.BinOp):  # X | None (py310 syntax in source)
        left = _annotation_class(node.left)
        if left is not None and left != "None":
            return left
        return _annotation_class(node.right)
    name = _dotted(node)
    if name is None:
        return None
    tail = name.split(".")[-1]
    return tail if tail not in {"None", "Optional", "Final"} else None


# ---------------------------------------------------------------------------
# Extraction
# ---------------------------------------------------------------------------


def _is_mutable_literal(node: ast.expr, imports: _ImportTable) -> bool:
    if isinstance(node, (ast.Dict, ast.List, ast.Set, ast.DictComp, ast.ListComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        target = _dotted(node.func)
        if target is not None and imports.resolve(target) in _CONTAINER_CTORS:
            return True
    return False


def _table_referents(node: ast.expr, imports: _ImportTable, module: str, local_defs: Set[str]) -> List[str]:
    """Callables referenced by a dispatch-table literal (incl. inside lambdas)."""
    refs: List[str] = []
    for sub in ast.walk(node):
        target: Optional[str] = None
        if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load):
            target = sub.id
        elif isinstance(sub, ast.Attribute) and isinstance(sub.ctx, ast.Load):
            target = _dotted(sub)
        if target is None:
            continue
        head = target.split(".")[0]
        if head in local_defs:
            refs.append(module + "." + target)
        elif head in imports.names:
            refs.append(imports.resolve(target))
    # Deterministic, deduplicated.
    return sorted(set(refs))


def _registry_call_kind(node: ast.Call) -> str:
    """Literal ``kind`` argument of a registry call, or ``"*"`` (unknown
    kind — conservatively fans out to every registered builder)."""
    kind_arg: Optional[ast.expr] = node.args[0] if node.args else None
    for kw in node.keywords:
        if kw.arg == "kind":
            kind_arg = kw.value
    if isinstance(kind_arg, ast.Constant) and isinstance(kind_arg.value, str):
        return kind_arg.value
    return "*"


def _registration_referents(
    call: ast.Call,
    resolved: str,
    imports: _ImportTable,
    module: str,
    local_defs: Set[str],
) -> List[str]:
    """Builder referents contributed by one import-time registration call."""
    if resolved in _REGISTRY_TABLE_FUNCS:
        table_arg: Optional[ast.expr] = (
            call.args[1] if len(call.args) > 1 else None
        )
        for kw in call.keywords:
            if kw.arg == "table":
                table_arg = kw.value
        if table_arg is None:
            return []
        if isinstance(table_arg, ast.Name):
            # Module-level table name: defer to the table seam so the
            # referent list stays in one place (summary.tables).
            return [TABLE_PREFIX + module + "." + table_arg.id]
        return _table_referents(table_arg, imports, module, local_defs)
    builder_arg: Optional[ast.expr] = (
        call.args[2] if len(call.args) > 2 else None
    )
    for kw in call.keywords:
        if kw.arg == "builder":
            builder_arg = kw.value
    if builder_arg is None:
        return []
    return _table_referents(builder_arg, imports, module, local_defs)


class _FunctionWalker:
    """Extracts one top-level function/method (nested defs included)."""

    def __init__(
        self,
        summary: FunctionSummary,
        imports: _ImportTable,
        module: str,
        local_defs: Set[str],
        local_classes: Set[str],
        module_containers: Set[str],
        module_tables: Set[str],
        self_attr_types: Dict[str, str],
        own_class: Optional[str],
    ) -> None:
        self.summary = summary
        self.imports = imports
        self.module = module
        self.local_defs = local_defs
        self.local_classes = local_classes
        self.module_containers = module_containers
        self.module_tables = module_tables
        self.self_attr_types = self_attr_types
        self.own_class = own_class
        self.param_types: Dict[str, str] = {}
        self.heuristic_types: Dict[str, str] = {}
        self.local_names: Set[str] = set()
        self.local_tables: Dict[str, List[str]] = {}
        self.global_names: Set[str] = set()

    # -- setup ----------------------------------------------------------

    def collect_params(self, fn: ast.FunctionDef) -> None:
        args = fn.args
        every = list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        if args.vararg:
            every.append(args.vararg)
        if args.kwarg:
            every.append(args.kwarg)
        for arg in every:
            self.local_names.add(arg.arg)
            hint = _annotation_class(arg.annotation)
            if hint is not None:
                self.param_types[arg.arg] = hint
            elif arg.arg in _CONFIG_NAME_HINTS:
                self.heuristic_types[arg.arg] = _CONFIG_NAME_HINTS[arg.arg]

    # -- helpers --------------------------------------------------------

    def _bind_target_names(self, target: ast.expr) -> None:
        """Names *bound* by an assignment target.

        ``x = ...`` and ``x, y = ...`` bind locals; ``D[k] = ...`` and
        ``obj.attr = ...`` do NOT bind ``D``/``obj`` — treating them as
        locals would hide module-container mutations (REPRO602).
        """
        if isinstance(target, ast.Name):
            self.local_names.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind_target_names(element)
        elif isinstance(target, ast.Starred):
            self._bind_target_names(target.value)

    def _resolve_callable(self, target: str) -> str:
        head = target.split(".")[0]
        if head in self.local_names and head not in self.local_defs:
            return ""  # shadowed by a local binding; unresolvable
        if head in self.local_defs:
            return self.module + "." + target
        return self.imports.resolve(target)

    def _add_call(self, target: str) -> None:
        if target and target not in self.summary.calls:
            self.summary.calls.append(target)

    def _receiver_hint(self, name: str) -> Tuple[Optional[str], bool]:
        """(class hint, from_annotation) for a Name receiver."""
        if name in self.param_types:
            return self.param_types[name], True
        if name in self.heuristic_types:
            return self.heuristic_types[name], False
        return None, False

    def _record_nondet(self, target: str, node: ast.AST) -> None:
        self.summary.nondet_calls.append(
            [target, node.lineno, node.col_offset]
        )

    def _check_nondet(self, resolved: str, node: ast.AST) -> None:
        if resolved in _WALLCLOCK_CALLS or resolved in _ENV_READS:
            self._record_nondet(resolved, node)
            return
        for prefix, ctors in (
            ("random.", _SEEDED_RANDOM_CTORS),
            ("numpy.random.", _SEEDED_NUMPY_CTORS),
        ):
            if resolved.startswith(prefix) and resolved not in ctors:
                self._record_nondet(resolved, node)
                return

    def _check_registry_build(self, resolved: str, node: ast.Call) -> None:
        """Registry-dispatch seam: ``build("policy", name)`` reaches every
        registered policy builder.  A literal kind narrows the fanout; a
        computed kind conservatively fans out to every registered builder
        (``registry:*``)."""
        if resolved not in _REGISTRY_BUILD_FUNCS:
            return
        self._add_call(REGISTRY_PREFIX + _registry_call_kind(node))

    # -- walk -----------------------------------------------------------

    def walk(self, fn: ast.FunctionDef) -> None:
        self.collect_params(fn)
        # First pass: locally bound names (assignments, loops, withs) so we
        # can tell module-level containers apart from same-named locals.
        for node in ast.walk(fn):
            if isinstance(node, ast.Global):
                self.global_names.update(node.names)
            elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    self._bind_target_names(target)
            elif isinstance(node, ast.For):
                self._bind_target_names(node.target)
            elif isinstance(node, ast.withitem) and node.optional_vars:
                self._bind_target_names(node.optional_vars)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node is not fn:
                    self.local_names.add(node.name)
        self.local_names -= self.global_names
        # Locally constructed receivers: x = Cls(...) types x as Cls.
        local_ctor_types: Dict[str, str] = {}
        for node in ast.walk(fn):
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Call)
            ):
                target = _dotted(node.value.func)
                if target is not None:
                    resolved = self._resolve_callable(target)
                    if resolved:
                        local_ctor_types[node.targets[0].id] = resolved
            # Local dispatch-table merge: regenerators = {**_FIGURES, ...}.
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Dict)
            ):
                merged: List[str] = []
                for key, value in zip(node.value.keys, node.value.values):
                    if key is None and isinstance(value, ast.Name):
                        if value.id in self.module_tables:
                            merged.append(
                                TABLE_PREFIX + self.module + "." + value.id
                            )
                if merged:
                    self.local_tables[node.targets[0].id] = merged

        for node in ast.walk(fn):
            self._visit(node, local_ctor_types)

    def _visit(self, node: ast.AST, local_ctor_types: Dict[str, str]) -> None:
        if isinstance(node, ast.Call):
            self._visit_call(node, local_ctor_types)
        elif isinstance(node, ast.Attribute) and isinstance(node.ctx, ast.Load):
            self._visit_attribute(node)
        elif isinstance(node, (ast.Assign, ast.AugAssign)):
            self._visit_store(node)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                self._visit_delete(target)

    def _visit_call(self, node: ast.Call, local_ctor_types: Dict[str, str]) -> None:
        func = node.func
        # Callback references passed as arguments keep the seam closed
        # (pool.submit(_pool_entry, ...), table values, progress hooks).
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            target = _dotted(arg) if isinstance(arg, (ast.Name, ast.Attribute)) else None
            if target is not None:
                head = target.split(".")[0]
                if head in self.local_defs or head in self.imports.names:
                    resolved = self._resolve_callable(target)
                    if resolved and "." in resolved:
                        self._add_call(resolved)

        if isinstance(func, ast.Name):
            resolved = self._resolve_callable(func.id)
            if resolved:
                self._add_call(resolved)
                self._check_nondet(resolved, node)
                self._check_registry_build(resolved, node)
            return
        if isinstance(func, ast.Attribute):
            receiver = func.value
            # Chained constructor: Cls(...).method()
            if isinstance(receiver, ast.Call):
                inner = _dotted(receiver.func)
                if inner is not None:
                    resolved = self._resolve_callable(inner)
                    if resolved:
                        self._add_call(resolved + "." + func.attr)
                        return
            if isinstance(receiver, ast.Name):
                name = receiver.id
                if name == "self" and self.own_class is not None:
                    self._add_call(
                        self.module + "." + self.own_class + "." + func.attr
                    )
                    return
                if name in local_ctor_types:
                    self._add_call(local_ctor_types[name] + "." + func.attr)
                    return
                # Module-level dispatch-table call: TABLE[key]() is handled
                # under Subscript below; direct module.attr() calls:
                dotted = _dotted(func)
                if dotted is not None and name in self.imports.names:
                    resolved = self.imports.resolve(dotted)
                    self._add_call(resolved)
                    self._check_nondet(resolved, node)
                    self._check_registry_build(resolved, node)
                    return
                # Mutation of a module-level container via method call.
                if (
                    name in self.module_containers
                    and name not in self.local_names
                    and func.attr in _MUTATOR_METHODS
                ):
                    self.summary.container_writes.append(
                        [name, node.lineno, node.col_offset]
                    )
                # dict.pop("field") on a payload: candidate hash elision.
                if (
                    func.attr == "pop"
                    and node.args
                    and isinstance(node.args[0], ast.Constant)
                    and isinstance(node.args[0].value, str)
                ):
                    self.summary.elisions.append(
                        [node.args[0].value, node.lineno, node.col_offset]
                    )
                hint, _ = self._receiver_hint(name)
                if hint is not None:
                    # Method call on a config-typed receiver: record as a
                    # read so properties/methods count as known attributes.
                    self.summary.config_reads.append(
                        [hint, func.attr, node.lineno, node.col_offset, False]
                    )
                    return
                self._add_call(ATTR_CALL_PREFIX + func.attr)
                return
            # Unknown receiver expression.
            self._add_call(ATTR_CALL_PREFIX + func.attr)
            return
        if isinstance(func, ast.Subscript):
            base = func.value
            if isinstance(base, ast.Name):
                if base.id in self.module_tables and base.id not in self.local_names:
                    self._add_call(TABLE_PREFIX + self.module + "." + base.id)
                elif base.id in self.local_tables:
                    for entry in self.local_tables[base.id]:
                        self._add_call(entry)

    def _visit_attribute(self, node: ast.Attribute) -> None:
        # Skip the function part of calls — handled in _visit_call.
        receiver = node.value
        if isinstance(receiver, ast.Name):
            if receiver.id == "self":
                hinted = self.self_attr_types.get(node.attr)
                # self.config / self.spec roots handled one level up (the
                # outer Attribute sees value=Attribute(self, 'config')).
                _ = hinted
                return
            dotted = _dotted(node)
            if dotted is not None:
                full = self.imports.resolve(dotted)
                if full in _ENV_READS:
                    self._record_nondet(full, node)
                    return
            hint, annotated = self._receiver_hint(receiver.id)
            if hint is not None and receiver.id not in self.local_names - set(self.param_types) - set(self.heuristic_types):
                self.summary.config_reads.append(
                    [hint, node.attr, node.lineno, node.col_offset, annotated]
                )
            return
        if isinstance(receiver, ast.Attribute) and isinstance(receiver.value, ast.Name):
            if receiver.value.id == "self":
                attr_name = receiver.attr
                hint = self.self_attr_types.get(attr_name)
                annotated = hint is not None
                if hint is None and attr_name in _CONFIG_NAME_HINTS:
                    hint = _CONFIG_NAME_HINTS[attr_name]
                if hint is not None:
                    self.summary.config_reads.append(
                        [hint, node.attr, node.lineno, node.col_offset, annotated]
                    )

    def _visit_store(self, node: ast.stmt) -> None:
        targets = (
            node.targets if isinstance(node, ast.Assign) else [node.target]  # type: ignore[attr-defined]
        )
        for target in targets:
            # global-declared rebind (the REPRO301/601 shape).
            if isinstance(target, ast.Name) and target.id in self.global_names:
                self.summary.global_writes.append(
                    [target.id, node.lineno, node.col_offset]
                )
            # Subscript store on a module-level container.
            if isinstance(target, ast.Subscript) and isinstance(target.value, ast.Name):
                name = target.value.id
                if name in self.module_containers and name not in self.local_names:
                    self.summary.container_writes.append(
                        [name, node.lineno, node.col_offset]
                    )

    def _visit_delete(self, target: ast.expr) -> None:
        if isinstance(target, ast.Subscript):
            if (
                isinstance(target.slice, ast.Constant)
                and isinstance(target.slice.value, str)
            ):
                self.summary.elisions.append(
                    [target.slice.value, target.lineno, target.col_offset]
                )
            if isinstance(target.value, ast.Name):
                name = target.value.id
                if name in self.module_containers and name not in self.local_names:
                    self.summary.container_writes.append(
                        [name, target.lineno, target.col_offset]
                    )


def _self_attr_types(cls: ast.ClassDef) -> Dict[str, str]:
    """``self.<attr>`` -> class name, from ``__init__`` param annotations."""
    types: Dict[str, str] = {}
    for stmt in cls.body:
        if not (isinstance(stmt, ast.FunctionDef) and stmt.name == "__init__"):
            continue
        params: Dict[str, str] = {}
        for arg in stmt.args.posonlyargs + stmt.args.args + stmt.args.kwonlyargs:
            hint = _annotation_class(arg.annotation)
            if hint is not None:
                params[arg.arg] = hint
        for node in ast.walk(stmt):
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Attribute)
                and isinstance(node.targets[0].value, ast.Name)
                and node.targets[0].value.id == "self"
                and isinstance(node.value, ast.Name)
                and node.value.id in params
            ):
                types[node.targets[0].attr] = params[node.value.id]
    return types


def _fingerprint_coverage(
    fn: ast.FunctionDef, imports: _ImportTable
) -> Optional[FingerprintInfo]:
    """Fingerprint functions: which annotated param class they cover, how."""
    import re

    if not re.search(_FINGERPRINT_RE, fn.name, re.IGNORECASE):
        return None
    param_name: Optional[str] = None
    param_class: Optional[str] = None
    for arg in fn.args.posonlyargs + fn.args.args + fn.args.kwonlyargs:
        hint = _annotation_class(arg.annotation)
        if hint is not None:
            param_name = arg.arg
            param_class = hint
            break
    if param_name is None or param_class is None:
        return None
    aliases = {param_name}
    # effective = spec / effective = config if ... else SimConfig() /
    # payload = asdict(spec): follow alias hops through names, or-defaults
    # and ternary-defaults.
    whole = False
    fields_read: Set[str] = set()

    def _names_in_value(value: ast.expr) -> List[str]:
        if isinstance(value, ast.Name):
            return [value.id]
        if isinstance(value, ast.BoolOp):  # config or SimConfig()
            return [v.id for v in value.values if isinstance(v, ast.Name)]
        if isinstance(value, ast.IfExp):  # config if ... else SimConfig()
            return _names_in_value(value.body) + _names_in_value(value.orelse)
        return []

    for node in ast.walk(fn):
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
        ):
            if any(n in aliases for n in _names_in_value(node.value)):
                aliases.add(node.targets[0].id)
    _NEUTRAL = {"repr", "str", "isinstance", "id", "type", "len", "print"}
    for node in ast.walk(fn):
        if isinstance(node, ast.Call):
            target = _dotted(node.func)
            resolved = imports.resolve(target) if target else None
            for arg in node.args:
                if isinstance(arg, ast.Name) and arg.id in aliases:
                    if resolved in {"dataclasses.asdict", "asdict", "vars"}:
                        whole = True
                    elif resolved is not None and resolved not in _NEUTRAL:
                        # Delegation to a helper; treat as whole-object
                        # (the helper's elisions are collected through the
                        # fingerprint closure).
                        whole = True
        elif isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
            if node.value.id in aliases:
                fields_read.add(node.attr)
    return [fn.name, param_class, whole, sorted(fields_read), fn.lineno]


def _parse_elision_entries(value: ast.expr) -> List[ElisionEntry]:
    entries: List[ElisionEntry] = []
    elements: List[ast.expr] = []
    if isinstance(value, (ast.Tuple, ast.List)):
        elements = list(value.elts)
    for element in elements:
        if not isinstance(element, ast.Call):
            continue
        args: List[Optional[str]] = []
        for arg in element.args:
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                args.append(arg.value)
            else:
                args.append(None)
        kwargs: Dict[str, str] = {}
        for kw in element.keywords:
            if (
                kw.arg is not None
                and isinstance(kw.value, ast.Constant)
                and isinstance(kw.value.value, str)
            ):
                kwargs[kw.arg] = kw.value.value
        dataclass_name = kwargs.get(
            "dataclass_name", args[0] if len(args) > 0 else None
        )
        field_name = kwargs.get("field", args[1] if len(args) > 1 else None)
        reason = kwargs.get("reason", args[2] if len(args) > 2 else None)
        entries.append(
            [
                dataclass_name or "",
                field_name or "",
                reason or "",
                element.lineno,
                element.col_offset,
            ]
        )
    return entries


def extract_module_summary(ctx: FileContext) -> ModuleSummary:
    """Reduce one parsed file to its :class:`ModuleSummary`."""
    is_package = ctx.path.name == "__init__.py"
    imports = _ImportTable(ctx.module, is_package, ctx.tree)
    summary = ModuleSummary(
        module=ctx.module, path=ctx.display_path, imports=dict(imports.names)
    )

    local_defs: Set[str] = set()
    local_classes: Set[str] = set()
    for stmt in ctx.tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            local_defs.add(stmt.name)
        elif isinstance(stmt, ast.ClassDef):
            local_defs.add(stmt.name)
            local_classes.add(stmt.name)

    # Module-level containers and dispatch tables.
    module_containers: Set[str] = set()
    module_tables: Set[str] = set()
    for stmt in ctx.tree.body:
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            if not isinstance(target, ast.Name):
                continue
            if target.id == "FINGERPRINT_ELISIONS":
                summary.elision_entries.extend(
                    _parse_elision_entries(stmt.value)
                )
            if _is_mutable_literal(stmt.value, imports):
                module_containers.add(target.id)
                summary.containers.append(
                    [target.id, stmt.lineno, stmt.col_offset]
                )
                refs = _table_referents(
                    stmt.value, imports, ctx.module, local_defs
                )
                if refs:
                    summary.tables[target.id] = refs
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            if stmt.value is not None:
                if stmt.target.id == "FINGERPRINT_ELISIONS":
                    summary.elision_entries.extend(
                        _parse_elision_entries(stmt.value)
                    )
                if _is_mutable_literal(stmt.value, imports):
                    module_containers.add(stmt.target.id)
                    summary.containers.append(
                        [stmt.target.id, stmt.lineno, stmt.col_offset]
                    )
                    refs = _table_referents(
                        stmt.value, imports, ctx.module, local_defs
                    )
                    if refs:
                        summary.tables[stmt.target.id] = refs

    # Import-time component registrations (the ``registry:`` seam):
    # module-level ``register(...)`` / ``register_table(...)`` statements
    # contribute their builders to the kind's fanout set, so a later
    # ``build("policy", name)`` call site reaches every registered builder.
    for stmt in ctx.tree.body:
        if isinstance(stmt, ast.Expr):
            maybe_call: Optional[ast.expr] = stmt.value
        elif isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            maybe_call = stmt.value
        else:
            continue
        if not isinstance(maybe_call, ast.Call):
            continue
        dotted = _dotted(maybe_call.func)
        if dotted is None:
            continue
        head = dotted.split(".")[0]
        if head in local_defs:
            resolved = ctx.module + "." + dotted
        else:
            resolved = imports.resolve(dotted)
        if (
            resolved not in _REGISTRY_REGISTER_FUNCS
            and resolved not in _REGISTRY_TABLE_FUNCS
        ):
            continue
        refs = _registration_referents(
            maybe_call, resolved, imports, ctx.module, local_defs
        )
        if refs:
            kind = _registry_call_kind(maybe_call)
            merged = set(summary.registrations.get(kind, [])) | set(refs)
            summary.registrations[kind] = sorted(merged)

    def extract_function(
        fn: ast.FunctionDef,
        qualname: str,
        own_class: Optional[str],
        self_types: Dict[str, str],
    ) -> None:
        fn_summary = FunctionSummary(name=qualname, line=fn.lineno)
        walker = _FunctionWalker(
            fn_summary,
            imports,
            ctx.module,
            local_defs,
            local_classes,
            module_containers,
            module_tables | set(summary.tables),
            self_types,
            own_class,
        )
        walker.walk(fn)
        summary.functions.append(fn_summary)
        info = _fingerprint_coverage(fn, imports)
        if info is not None and own_class is None:
            summary.fingerprints.append(info)

    for stmt in ctx.tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            extract_function(stmt, stmt.name, None, {})  # type: ignore[arg-type]
        elif isinstance(stmt, ast.ClassDef):
            bases: List[str] = []
            for base in stmt.bases:
                dotted = _dotted(base)
                if dotted is not None:
                    head = dotted.split(".")[0]
                    if head in local_classes:
                        bases.append(ctx.module + "." + dotted)
                    else:
                        bases.append(imports.resolve(dotted))
            methods: List[str] = []
            fields: List[str] = []
            for member in stmt.body:
                if isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    methods.append(member.name)
                elif isinstance(member, ast.AnnAssign) and isinstance(
                    member.target, ast.Name
                ):
                    fields.append(member.target.id)
                elif isinstance(member, ast.Assign):
                    for target in member.targets:
                        if isinstance(target, ast.Name):
                            fields.append(target.id)
            summary.classes.append(
                ClassSummary(
                    name=stmt.name,
                    line=stmt.lineno,
                    bases=bases,
                    methods=methods,
                    fields=fields,
                )
            )
            self_types = _self_attr_types(stmt)
            for member in stmt.body:
                if isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    extract_function(
                        member,  # type: ignore[arg-type]
                        stmt.name + "." + member.name,
                        stmt.name,
                        self_types,
                    )
    return summary


# ---------------------------------------------------------------------------
# On-disk summary cache
# ---------------------------------------------------------------------------


def source_digest(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


class SummaryCache:
    """Content-addressed store of :class:`ModuleSummary` JSON payloads.

    Keyed by display path; an entry is valid only when its recorded source
    digest matches the file's current content, so edits invalidate exactly
    the touched files.  The store is advisory: any read error or version
    mismatch degrades to re-extraction.
    """

    def __init__(self, path: Optional[Path]) -> None:
        self.path = path
        self.entries: Dict[str, Dict[str, Any]] = {}
        self.hits = 0
        self.misses = 0
        if path is not None:
            try:
                payload = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                payload = None
            if (
                isinstance(payload, dict)
                and payload.get("version") == SUMMARY_VERSION
                and isinstance(payload.get("entries"), dict)
            ):
                self.entries = payload["entries"]

    def lookup(self, display_path: str, digest: str) -> Optional[ModuleSummary]:
        entry = self.entries.get(display_path)
        if entry is None or entry.get("sha256") != digest:
            return None
        try:
            return ModuleSummary.from_dict(entry["summary"])
        except (KeyError, TypeError, ValueError):
            return None

    def store(self, display_path: str, digest: str, summary: ModuleSummary) -> None:
        self.entries[display_path] = {
            "sha256": digest,
            "summary": summary.to_dict(),
        }

    def save(self, keep: Iterable[str]) -> None:
        """Persist entries for ``keep`` paths (prunes files gone from the batch)."""
        if self.path is None:
            return
        kept = {k: self.entries[k] for k in keep if k in self.entries}
        payload = {"version": SUMMARY_VERSION, "entries": kept}
        self.path.parent.mkdir(parents=True, exist_ok=True)
        handle, tmp_name = tempfile.mkstemp(
            dir=str(self.path.parent), suffix=".tmp"
        )
        try:
            with os.fdopen(handle, "w", encoding="utf-8") as fh:
                json.dump(payload, fh, sort_keys=True)
            os.replace(tmp_name, str(self.path))
        except OSError:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass


# ---------------------------------------------------------------------------
# Linking
# ---------------------------------------------------------------------------


class CallGraph:
    """Linked view over a batch of module summaries."""

    def __init__(self, summaries: Dict[str, ModuleSummary]) -> None:
        self.summaries = summaries
        self.functions: Dict[str, FunctionSummary] = {}
        self.function_module: Dict[str, str] = {}
        self.classes: Dict[str, ClassSummary] = {}
        self.class_module: Dict[str, str] = {}
        self.aliases: Dict[str, str] = {}
        self.tables: Dict[str, List[str]] = {}
        self.method_index: Dict[str, List[str]] = {}
        self.registrations: Dict[str, List[str]] = {}
        for module, summary in summaries.items():
            for fn in summary.functions:
                qual = module + "." + fn.name
                self.functions[qual] = fn
                self.function_module[qual] = module
            for cls in summary.classes:
                qual = module + "." + cls.name
                self.classes[qual] = cls
                self.class_module[qual] = module
                for method in cls.methods:
                    self.method_index.setdefault(method, []).append(
                        qual + "." + method
                    )
            for local, target in summary.imports.items():
                self.aliases[module + "." + local] = target
            for name, refs in summary.tables.items():
                self.tables[module + "." + name] = refs
            for kind, refs in summary.registrations.items():
                merged = set(self.registrations.get(kind, [])) | set(refs)
                self.registrations[kind] = sorted(merged)

    # -- resolution -----------------------------------------------------

    def _dealias(self, target: str) -> str:
        seen: Set[str] = set()
        current = target
        while current not in seen:
            seen.add(current)
            if current in self.aliases:
                current = self.aliases[current]
                continue
            # Re-exported symbol with a trailing attribute:
            # repro.policies.MHPEPolicy.build -> (alias) -> ...mhpe.MHPEPolicy.build
            head, _, tail = current.rpartition(".")
            if head and head in self.aliases:
                current = self.aliases[head] + "." + tail
                continue
            break
        return current

    def _ctor_targets(self, class_qual: str, depth: int = 0) -> List[str]:
        """Function quals executed when instantiating ``class_qual``."""
        if depth > 4 or class_qual not in self.classes:
            return []
        cls = self.classes[class_qual]
        out: List[str] = []
        for ctor in ("__init__", "__post_init__"):
            qual = class_qual + "." + ctor
            if qual in self.functions:
                out.append(qual)
        if not out:
            for base in cls.bases:
                base_qual = self._dealias(base)
                out.extend(self._ctor_targets(base_qual, depth + 1))
        return out

    def resolve(self, target: str, caller_module: str) -> List[str]:
        """Function quals a recorded call target may reach."""
        if target.startswith(ATTR_CALL_PREFIX):
            name = target[len(ATTR_CALL_PREFIX):]
            out = []
            for qual in self.method_index.get(name, []):
                class_qual = qual.rsplit(".", 1)[0]
                module = self.class_module.get(class_qual, "")
                if is_simulation_module(module) or module == caller_module:
                    out.append(qual)
            return out
        if target.startswith(TABLE_PREFIX):
            table = self._dealias(target[len(TABLE_PREFIX):])
            out = []
            for ref in self.tables.get(table, []):
                out.extend(self.resolve(ref, caller_module))
            return out
        if target.startswith(REGISTRY_PREFIX):
            # Registry dispatch: fan out to every builder registered for
            # the kind (all kinds for a computed ``registry:*`` kind).
            kind = target[len(REGISTRY_PREFIX):]
            kinds = (
                sorted(self.registrations) if kind == "*" else [kind]
            )
            out = []
            for k in kinds:
                for ref in self.registrations.get(k, []):
                    out.extend(self.resolve(ref, caller_module))
            return out
        resolved = self._dealias(target)
        if resolved in self.functions:
            return [resolved]
        if resolved in self.classes:
            return self._ctor_targets(resolved)
        # Method on a resolved class: repro.engine.simulator.Simulator.run
        head, _, tail = resolved.rpartition(".")
        if head in self.classes:
            qual = head + "." + tail
            if qual in self.functions:
                return [qual]
            # Inherited method: walk base classes.
            seen: Set[str] = set()
            stack = [head]
            while stack:
                class_qual = stack.pop()
                if class_qual in seen or class_qual not in self.classes:
                    continue
                seen.add(class_qual)
                candidate = class_qual + "." + tail
                if candidate in self.functions:
                    return [candidate]
                stack.extend(
                    self._dealias(b) for b in self.classes[class_qual].bases
                )
        return []

    # -- closure --------------------------------------------------------

    def reachable_from(self, roots: Iterable[str]) -> FrozenSet[str]:
        """Transitive closure of function quals callable from ``roots``."""
        seen: Set[str] = set()
        stack = [r for r in roots if r in self.functions]
        while stack:
            qual = stack.pop()
            if qual in seen:
                continue
            seen.add(qual)
            fn = self.functions[qual]
            module = self.function_module[qual]
            for target in fn.calls:
                for resolved in self.resolve(target, module):
                    if resolved not in seen:
                        stack.append(resolved)
        return frozenset(seen)

    def modules_of(self, quals: Iterable[str]) -> FrozenSet[str]:
        return frozenset(
            self.function_module[q] for q in quals if q in self.function_module
        )
