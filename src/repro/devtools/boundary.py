"""The harness-vs-simulation boundary, made explicit.

Determinism rules must not fire on *harness* code: timing a regeneration
batch with ``time.time()`` (``repro.cli``, ``repro.harness.docgen``) is
legitimate — the wall clock feeds progress display only, never simulation
state, so it cannot perturb cached results.  The same call inside
``repro.engine`` would be a reproducibility bug.  Rather than leaving that
distinction to accident (or to scattered suppression comments), this module
is the single authority on which packages are *simulation* code (strict
determinism applies), which are *harness* code (wall clock and environment
reads allowed), and which code is reachable from
:class:`~repro.harness.parallel.ParallelRunner` worker processes
(parallel-safety rules apply).

A module's classification follows its dotted name; corpus/test files can
override their module name with a ``# repro-lint: module=...`` directive
(see :mod:`repro.devtools.checker`).

Two layers use this partition:

* the per-file rules (``REPRO1xx``/``REPRO3xx``) gate on the *package*
  sets below — a fast approximation that needs no whole-program view;
* the ``--deep`` pass (:mod:`repro.devtools.reachability`) computes the
  *true* transitive closure from the entry points below and checks the
  approximation against it (``REPRO604`` flags drift), so a package that
  becomes worker-reachable cannot silently fall out of scope.

``tests/test_boundary.py`` pins this partition against the real package
tree: renaming or adding a package without classifying it here fails the
suite, not just the intent.
"""

from __future__ import annotations

from typing import FrozenSet

__all__ = [
    "SIMULATION_PACKAGES",
    "HARNESS_PACKAGES",
    "SHARED_MODULES",
    "PARALLEL_SCOPE",
    "HASHED_CONFIG_MODULES",
    "WORKER_ENTRY_POINTS",
    "SIMULATION_ENTRY_POINTS",
    "CLI_ENTRY_POINTS",
    "is_simulation_module",
    "is_harness_module",
    "is_parallel_scope",
    "is_hashed_config_module",
]

#: Packages whose code *is* the simulation: anything nondeterministic here
#: (wall clock, unseeded RNG, env reads, set ordering, id() keys) can reach
#: simulation state and silently poison cached Figures 7-10.
SIMULATION_PACKAGES: FrozenSet[str] = frozenset(
    {
        "repro.engine",
        "repro.policies",
        "repro.prefetch",
        "repro.memsim",
        "repro.core",
        "repro.translation",
        "repro.workloads",
        # Observability runs *inside* the simulation (components emit trace
        # events and metrics from hot paths), so it is held to the same
        # determinism bar: sim-time stamps only, no wall clock, no env.
        "repro.obs",
    }
)

#: Harness-side code: drives simulations, renders artifacts, talks to the
#: OS.  Wall-clock reads (timing display), ``os.environ`` (cache location
#: knobs) and similar are *allowed* here — audited call sites:
#: ``repro.cli`` regen batch timing and ``repro.harness.docgen`` per-artifact
#: timing read the clock for stderr logging only.
HARNESS_PACKAGES: FrozenSet[str] = frozenset(
    {
        "repro.cli",
        "repro.__main__",
        "repro.harness",
        "repro.analysis",
        "repro.devtools",
        # The long-running experiment service: HTTP front end, job queue,
        # scheduler thread.  Pure harness — it *drives* simulations through
        # submit_batch and stamps wall-clock timestamps onto its event
        # stream, but no simulation state ever flows back out of it.
        "repro.service",
    }
)

#: Leaf modules shared by both sides of the boundary: configuration
#: dataclasses, the error taxonomy, and unit conversions.  They carry no
#: side effects of their own, but they *are* imported into worker
#: processes, so they sit inside :data:`PARALLEL_SCOPE` (and
#: ``tests/test_boundary.py`` requires every real module to appear in
#: exactly one of the three classification sets).
SHARED_MODULES: FrozenSet[str] = frozenset(
    {
        "repro",
        "repro.config",
        "repro.errors",
        "repro.registry",
        "repro.units",
    }
)

#: Modules whose code runs inside ``ParallelRunner`` worker processes (or is
#: imported by it): worker entry points must be top-level picklables and must
#: not mutate module globals or shared config objects, or serial and parallel
#: runs diverge.  The simulation packages are all in scope — ``_execute``
#: imports them into every worker — plus the harness modules on the worker
#: execution path (``_pool_entry`` -> ``_execute`` -> ``build_setup``) and
#: the shared leaf modules they pull in.  The ``--deep`` reachability pass
#: (REPRO604) checks this set against the actual call-graph closure.
PARALLEL_SCOPE: FrozenSet[str] = SIMULATION_PACKAGES | frozenset(
    {
        "repro.harness.experiment",
        "repro.harness.parallel",
        "repro.harness.faults",
        "repro.harness.baselines",
        "repro.config",
        "repro.errors",
        "repro.registry",
        "repro.units",
    }
)

#: Modules whose dataclasses feed the persistent result-cache content hash
#: (:func:`repro.harness.cache.spec_fingerprint`).  Every field of every
#: dataclass here must be reachable from the fingerprint; mutable or
#: non-field state on them escapes the hash.
HASHED_CONFIG_MODULES: FrozenSet[str] = frozenset(
    {
        "repro.config",
        "repro.harness.experiment",
    }
)

#: The guarded worker entry point: everything transitively callable from
#: here executes inside pool worker processes.  The ``--deep`` pass seeds
#: its worker-reachability closure at these exact qualified names.
WORKER_ENTRY_POINTS: FrozenSet[str] = frozenset(
    {"repro.harness.parallel._pool_entry"}
)

#: The simulation execution seams: the single code path every simulation
#: (serial, pool worker, traced) funnels through.  The ``--deep`` cache-key
#: taint analysis treats config/spec attribute reads reachable from here as
#: behaviour-affecting.
SIMULATION_ENTRY_POINTS: FrozenSet[str] = frozenset(
    {
        "repro.harness.experiment._execute",
        "repro.harness.experiment._execute_traced",
    }
)

#: The outermost entry point of the program (``python -m repro``); useful as
#: a whole-program reachability root for ad-hoc call-graph queries
#: (:meth:`repro.devtools.callgraph.CallGraph.reachable_from`).
CLI_ENTRY_POINTS: FrozenSet[str] = frozenset({"repro.cli.main"})


def _in_packages(module: str, packages: FrozenSet[str]) -> bool:
    return any(
        module == pkg or module.startswith(pkg + ".") for pkg in packages
    )


def is_simulation_module(module: str) -> bool:
    """True when ``module`` is simulation code (strict determinism rules)."""
    return _in_packages(module, SIMULATION_PACKAGES)


def is_harness_module(module: str) -> bool:
    """True when ``module`` is harness code (wall clock / env reads allowed)."""
    return _in_packages(module, HARNESS_PACKAGES)


def is_parallel_scope(module: str) -> bool:
    """True when ``module``'s code can run inside pool worker processes."""
    return _in_packages(module, PARALLEL_SCOPE)


def is_hashed_config_module(module: str) -> bool:
    """True when ``module``'s dataclasses feed the result-cache hash."""
    return _in_packages(module, HASHED_CONFIG_MODULES)
