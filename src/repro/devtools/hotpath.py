"""Hot-path rules: keep per-page Python loops out of ``repro.memsim``.

The array backend exists because per-page Python data-structure traffic
(set/dict membership probed once per page inside an index loop) was the
simulator's dominant cost.  This module adds a lint family (``REPRO107``)
that keeps the pattern from creeping back into the mechanism layer: page
bookkeeping iterated per index belongs in flat arrays / bit masks
(``repro.memsim.array_backend``), not in Python container probes.

The rule is deliberately scoped to ``repro.memsim`` — harness, analysis
and devtools code may loop however it likes.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .findings import Finding
from .rules import FileContext, FileRule, register

__all__ = ["PerPageMembershipLoopRule"]


def _is_memsim_module(module: str) -> bool:
    return module == "repro.memsim" or module.startswith("repro.memsim.")


def _is_range_call(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "range"
    )


@register
class PerPageMembershipLoopRule(FileRule):
    rule_id = "REPRO107"
    title = "per-page membership loop in memsim hot path"
    rationale = (
        "a `for i in range(...)` loop that probes `x in container` (or "
        "`not in`) per iteration is the per-page Python bookkeeping pattern "
        "the array backend was built to eliminate: each probe hashes a "
        "boxed int against a set/dict, and at pages-per-chunk x chunks x "
        "faults scale those probes dominate the simulator's wall time.  "
        "Inside repro.memsim, per-index page state belongs in flat arrays "
        "or bit masks (repro.memsim.array_backend) where the whole loop "
        "collapses to a vectorised operation or an O(1) mask test."
    )
    fix_hint = (
        "replace the per-index membership probe with a flat-array / "
        "bit-mask lookup (see repro.memsim.array_backend), or hoist the "
        "probe out of the loop"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not _is_memsim_module(ctx.module):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.For) or not _is_range_call(node.iter):
                continue
            for inner in ast.walk(node):
                if not isinstance(inner, ast.Compare):
                    continue
                if any(isinstance(op, (ast.In, ast.NotIn)) for op in inner.ops):
                    # Membership against a constant/tuple literal is a
                    # value comparison (e.g. `kind in ("lru", "ref")`),
                    # not per-page container traffic.
                    comparator = inner.comparators[-1]
                    if isinstance(comparator, (ast.Constant, ast.Tuple)):
                        continue
                    yield ctx.finding(
                        inner,
                        self,
                        "per-iteration membership probe inside an index "
                        "loop (`for ... in range(...)`)",
                    )
