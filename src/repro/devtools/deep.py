"""Coordinator for ``repro lint --deep``: builds the whole-program view.

:func:`build_deep_analysis` runs the two-stage pipeline from
:mod:`repro.devtools.callgraph` over an already-parsed batch of files
(re-using the checker's ASTs, so cold deep runs add no extra parsing), then
precomputes everything the REPRO5xx/6xx rules consume:

* the **worker closure** — functions transitively callable from
  :data:`~repro.devtools.boundary.WORKER_ENTRY_POINTS`
  (``harness.parallel._pool_entry``), i.e. code that actually executes
  inside pool worker processes;
* the **simulation closure** — functions reachable from
  :data:`~repro.devtools.boundary.SIMULATION_ENTRY_POINTS`
  (``harness.experiment._execute`` / ``_execute_traced``), the single seam
  every simulation funnels through;
* the **fingerprint closure** — functions reachable from any fingerprint
  function (``spec_fingerprint``/``config_fingerprint`` and helpers such as
  ``_config_payload``), which is where hash *elisions* (``del
  payload["backend"]``) are collected from;
* the hashed dataclasses (the classes fingerprint functions annotate),
  their declared fields, and every config/spec attribute read recorded in
  the simulation closure;
* the parsed ``FINGERPRINT_ELISIONS`` allowlist entries
  (:data:`repro.harness.cache.FINGERPRINT_ELISIONS`).

The result is attached to
:attr:`repro.devtools.rules.ProjectContext.deep`; rules stay declarative
and cheap because all graph work happens once, here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from .boundary import SIMULATION_ENTRY_POINTS, WORKER_ENTRY_POINTS
from .callgraph import (
    CallGraph,
    ModuleSummary,
    SummaryCache,
    extract_module_summary,
    source_digest,
)
from .rules import FileContext

__all__ = [
    "AllowlistEntry",
    "ElisionSite",
    "ConfigReadSite",
    "HashedClass",
    "DeepStats",
    "DeepAnalysis",
    "build_deep_analysis",
]


@dataclass(frozen=True)
class AllowlistEntry:
    """One parsed ``FingerprintElision(...)`` from a module's allowlist."""

    dataclass_name: str
    field: str
    reason: str
    module: str
    line: int
    column: int


@dataclass(frozen=True)
class ElisionSite:
    """A ``del payload["x"]`` / ``payload.pop("x")`` in the fingerprint closure."""

    field: str
    function: str  # fully qualified function name
    module: str
    line: int
    column: int


@dataclass(frozen=True)
class ConfigReadSite:
    """An attribute read on a (likely) hashed-config receiver."""

    class_hint: str
    field: str
    function: str
    module: str
    line: int
    column: int
    from_annotation: bool


@dataclass(frozen=True)
class HashedClass:
    """A dataclass covered by a fingerprint function."""

    name: str
    module: str
    fields: Tuple[str, ...]
    methods: Tuple[str, ...]
    #: True when the fingerprint hashes the whole object (asdict/delegation);
    #: False when it enumerates fields by hand.
    whole_object: bool
    #: Fields the fingerprint reads directly (enumerating fingerprints).
    fields_hashed: Tuple[str, ...]
    #: Anchor for findings about coverage gaps.
    fingerprint_function: str
    fingerprint_module: str
    fingerprint_line: int


@dataclass
class DeepStats:
    """Bookkeeping for the summary cache (surfaced in CLI/JSON output)."""

    files_total: int = 0
    summaries_extracted: int = 0
    summaries_from_cache: int = 0

    def to_dict(self) -> Dict[str, int]:
        return {
            "files_total": self.files_total,
            "summaries_extracted": self.summaries_extracted,
            "summaries_from_cache": self.summaries_from_cache,
        }


@dataclass
class DeepAnalysis:
    """Precomputed whole-program facts for the deep rules."""

    graph: CallGraph
    worker_functions: FrozenSet[str]
    worker_modules: FrozenSet[str]
    sim_functions: FrozenSet[str]
    sim_modules: FrozenSet[str]
    fingerprint_functions: FrozenSet[str]
    fingerprint_modules: FrozenSet[str]
    hashed_classes: Dict[str, HashedClass] = field(default_factory=dict)
    elisions: List[ElisionSite] = field(default_factory=list)
    allowlist: List[AllowlistEntry] = field(default_factory=list)
    sim_config_reads: List[ConfigReadSite] = field(default_factory=list)
    stats: DeepStats = field(default_factory=DeepStats)


def _collect_summaries(
    contexts: List[FileContext], cache: SummaryCache
) -> Tuple[Dict[str, ModuleSummary], DeepStats]:
    stats = DeepStats(files_total=len(contexts))
    summaries: Dict[str, ModuleSummary] = {}
    for ctx in contexts:
        digest = source_digest(ctx.source)
        summary = cache.lookup(ctx.display_path, digest)
        if summary is not None and summary.module == ctx.module:
            stats.summaries_from_cache += 1
        else:
            summary = extract_module_summary(ctx)
            cache.store(ctx.display_path, digest, summary)
            stats.summaries_extracted += 1
        summaries[ctx.module] = summary
    return summaries, stats


def build_deep_analysis(
    contexts: List[FileContext],
    cache_path: Optional[Path] = None,
) -> DeepAnalysis:
    """Run extraction + linking + closure computation over ``contexts``."""
    cache = SummaryCache(cache_path)
    summaries, stats = _collect_summaries(contexts, cache)
    cache.save(keep=[ctx.display_path for ctx in contexts])

    graph = CallGraph(summaries)

    worker_functions = graph.reachable_from(WORKER_ENTRY_POINTS)
    sim_functions = graph.reachable_from(SIMULATION_ENTRY_POINTS)

    # Fingerprint functions and the hashed classes they cover.
    fingerprint_roots: Set[str] = set()
    hashed_classes: Dict[str, HashedClass] = {}
    class_index: Dict[str, Tuple[str, Tuple[str, ...], Tuple[str, ...]]] = {}
    for module, summary in summaries.items():
        for cls in summary.classes:
            # Last definition of a name wins; the project has unique class
            # names for the hashed configs, which is all we resolve by name.
            class_index[cls.name] = (
                module,
                tuple(cls.fields),
                tuple(cls.methods),
            )
    for module, summary in summaries.items():
        for info in summary.fingerprints:
            fn_name, param_class, whole, fields_read, line = (
                info[0],
                info[1],
                bool(info[2]),
                list(info[3]),
                int(info[4]),
            )
            located = class_index.get(param_class)
            if located is None:
                # Name-matched but its annotated class is not a project
                # dataclass (e.g. helpers that merely mention "fingerprint");
                # not a hash root, so its del/pop sites are not elisions.
                continue
            fingerprint_roots.add(module + "." + fn_name)
            cls_module, cls_fields, cls_methods = located
            hashed_classes[param_class] = HashedClass(
                name=param_class,
                module=cls_module,
                fields=cls_fields,
                methods=cls_methods,
                whole_object=whole,
                fields_hashed=tuple(fields_read),
                fingerprint_function=fn_name,
                fingerprint_module=module,
                fingerprint_line=line,
            )

    fingerprint_functions = graph.reachable_from(fingerprint_roots)

    # Elision sites: str-keyed del/pop inside the fingerprint closure only —
    # a del on some unrelated dict elsewhere in the program is not a hash
    # elision.
    elisions: List[ElisionSite] = []
    for qual in sorted(fingerprint_functions):
        fn = graph.functions[qual]
        module = graph.function_module[qual]
        for entry in fn.elisions:
            elisions.append(
                ElisionSite(
                    field=str(entry[0]),
                    function=qual,
                    module=module,
                    line=int(entry[1]),
                    column=int(entry[2]),
                )
            )

    # The machine-readable allowlist (any module may declare one; the real
    # one lives in repro.harness.cache next to the fingerprints).
    allowlist: List[AllowlistEntry] = []
    for module in sorted(summaries):
        for raw in summaries[module].elision_entries:
            allowlist.append(
                AllowlistEntry(
                    dataclass_name=str(raw[0]),
                    field=str(raw[1]),
                    reason=str(raw[2]),
                    module=module,
                    line=int(raw[3]),
                    column=int(raw[4]),
                )
            )

    # Config/spec attribute reads inside the simulation closure.
    sim_config_reads: List[ConfigReadSite] = []
    for qual in sorted(sim_functions):
        fn = graph.functions[qual]
        module = graph.function_module[qual]
        for read in fn.config_reads:
            sim_config_reads.append(
                ConfigReadSite(
                    class_hint=str(read[0]),
                    field=str(read[1]),
                    function=qual,
                    module=module,
                    line=int(read[2]),
                    column=int(read[3]),
                    from_annotation=bool(read[4]),
                )
            )

    return DeepAnalysis(
        graph=graph,
        worker_functions=worker_functions,
        worker_modules=graph.modules_of(worker_functions),
        sim_functions=sim_functions,
        sim_modules=graph.modules_of(sim_functions),
        fingerprint_functions=fingerprint_functions,
        fingerprint_modules=graph.modules_of(fingerprint_functions),
        hashed_classes=hashed_classes,
        elisions=elisions,
        allowlist=allowlist,
        sim_config_reads=sim_config_reads,
        stats=stats,
    )
