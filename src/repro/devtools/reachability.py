"""Worker-reachability rules (``REPRO6xx``) — ``--deep`` mode only.

The per-file parallel-safety rules (REPRO301–303) gate on
:data:`~repro.devtools.boundary.PARALLEL_SCOPE` — a package-name
approximation of "runs inside pool workers".  These rules replace the
approximation with the truth: the transitive call-graph closure from
:data:`~repro.devtools.boundary.WORKER_ENTRY_POINTS`
(``harness.parallel._pool_entry``).  Anything the approximation misses is
reported here:

* REPRO601 — a ``global`` write in a worker-reachable function *outside*
  ``PARALLEL_SCOPE`` (inside the scope, REPRO301 already fires; this rule
  covers the code the heuristic cannot see).
* REPRO602 — a worker-reachable function mutating a module-level container
  (no ``global`` statement needed for ``D[k] = v``, so REPRO301 is blind
  to it anywhere).
* REPRO603 — a nondeterministic primitive (wall clock, env read,
  module-level RNG: the REPRO101/102/103 class) in a *harness* function
  reachable from the simulation entry points — the harness-boundary leak
  the per-file rules exempt by design.
* REPRO604 — boundary drift: a module is worker-reachable but absent from
  ``PARALLEL_SCOPE``, so the per-file parallel rules silently skip it.

All rules no-op unless :attr:`ProjectContext.deep` is populated.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

from .boundary import is_parallel_scope, is_simulation_module
from .findings import Finding
from .rules import ProjectContext, register
from .taint import _DeepRule

__all__ = [
    "WorkerGlobalWriteRule",
    "WorkerSharedContainerRule",
    "SimReachableNondetRule",
    "ParallelScopeDriftRule",
]


@register
class WorkerGlobalWriteRule(_DeepRule):
    rule_id = "REPRO601"
    title = "global write in a worker-reachable function"
    rationale = (
        "the function is transitively callable from "
        "harness.parallel._pool_entry, so the write happens inside pool "
        "worker processes; each worker mutates its own copy, serial runs "
        "mutate the real one, and results diverge by execution mode.  "
        "Unlike REPRO301 this is the true call-graph closure, not the "
        "PARALLEL_SCOPE package heuristic."
    )
    fix_hint = "return the value instead, or key state by (spec, config)"

    def _check_deep(self, project: ProjectContext) -> Iterator[Finding]:
        deep = project.deep
        assert deep is not None
        for qual in sorted(deep.worker_functions):
            module = deep.graph.function_module[qual]
            if is_parallel_scope(module):
                continue  # REPRO301 already covers in-scope modules
            fn = deep.graph.functions[qual]
            ctx = project.by_module(module)
            if ctx is None:
                continue
            for name, line, column in (
                (str(w[0]), int(w[1]), int(w[2])) for w in fn.global_writes
            ):
                yield ctx.finding(
                    (line, column + 1),
                    self,
                    f"`{qual}` (reachable from _pool_entry) writes global "
                    f"`{name}`",
                )


@register
class WorkerSharedContainerRule(_DeepRule):
    rule_id = "REPRO602"
    title = "worker-reachable mutation of module-level state"
    rationale = (
        "a function reachable from harness.parallel._pool_entry mutates a "
        "module-level container (dict/list/set assignment or mutator "
        "method).  No `global` statement is involved, so REPRO301 cannot "
        "see it — but the mutation is per-process all the same: worker "
        "state diverges from the coordinator and from serial runs, and "
        "memoised values poison result purity."
    )
    fix_hint = (
        "pass state explicitly through the call chain, or move the cache "
        "to the coordinator side (it must not live in worker-importable "
        "module scope)"
    )

    def _check_deep(self, project: ProjectContext) -> Iterator[Finding]:
        deep = project.deep
        assert deep is not None
        for qual in sorted(deep.worker_functions):
            module = deep.graph.function_module[qual]
            fn = deep.graph.functions[qual]
            ctx = project.by_module(module)
            if ctx is None:
                continue
            for name, line, column in (
                (str(w[0]), int(w[1]), int(w[2])) for w in fn.container_writes
            ):
                yield ctx.finding(
                    (line, column + 1),
                    self,
                    f"`{qual}` (reachable from _pool_entry) mutates "
                    f"module-level `{module}.{name}`",
                )


@register
class SimReachableNondetRule(_DeepRule):
    rule_id = "REPRO603"
    title = "nondeterministic call reachable from the simulation seam"
    rationale = (
        "harness code is exempt from the per-file determinism rules "
        "(REPRO101–103) because wall clock and environment reads there "
        "normally feed progress display, not results.  This function, "
        "however, is transitively reachable from "
        "harness.experiment._execute — its return value can flow into "
        "simulation results, so host state leaks into cached entries "
        "through the harness boundary."
    )
    fix_hint = (
        "move the nondeterministic read out of the execution path, or "
        "thread the value through SimConfig so it enters the cache key"
    )

    def _check_deep(self, project: ProjectContext) -> Iterator[Finding]:
        deep = project.deep
        assert deep is not None
        for qual in sorted(deep.sim_functions):
            module = deep.graph.function_module[qual]
            if is_simulation_module(module):
                continue  # REPRO101/102/103 already police sim packages
            fn = deep.graph.functions[qual]
            ctx = project.by_module(module)
            if ctx is None:
                continue
            for target, line, column in (
                (str(c[0]), int(c[1]), int(c[2])) for c in fn.nondet_calls
            ):
                yield ctx.finding(
                    (line, column + 1),
                    self,
                    f"`{target}` in `{qual}`, which is reachable from the "
                    "simulation entry points",
                )


@register
class ParallelScopeDriftRule(_DeepRule):
    rule_id = "REPRO604"
    title = "worker-reachable module outside PARALLEL_SCOPE"
    rationale = (
        "the module's functions execute inside pool workers (transitively "
        "reachable from harness.parallel._pool_entry) but the module is "
        "not classified in devtools.boundary.PARALLEL_SCOPE, so the "
        "per-file parallel-safety rules (REPRO301–304) silently skip it.  "
        "This is exactly how scope drift let the _POOL_ERRORS "
        "misclassification survive review."
    )
    fix_hint = (
        "add the module (or its package) to PARALLEL_SCOPE in "
        "devtools/boundary.py, or break the call edge into it"
    )

    def _check_deep(self, project: ProjectContext) -> Iterator[Finding]:
        deep = project.deep
        assert deep is not None
        # One finding per drifted module, anchored at its first reachable
        # function (deterministic: lowest line number wins).
        drifted: Dict[str, Tuple[int, str]] = {}
        for qual in deep.worker_functions:
            module = deep.graph.function_module[qual]
            if is_parallel_scope(module):
                continue
            fn = deep.graph.functions[qual]
            current = drifted.get(module)
            if current is None or fn.line < current[0]:
                drifted[module] = (fn.line, qual)
        for module in sorted(drifted):
            ctx = project.by_module(module)
            if ctx is None:
                continue
            line, qual = drifted[module]
            yield ctx.finding(
                (line, 1),
                self,
                f"`{module}` is reachable from _pool_entry (via `{qual}`) "
                "but not in PARALLEL_SCOPE",
            )
