"""Structured lint findings and their serialisations."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = ["Finding", "JSON_SCHEMA_VERSION"]

#: Bump when the JSON output shape changes (consumers key on this).
#: v2: report gained a ``deep`` object (enabled flag + summary-cache stats).
JSON_SCHEMA_VERSION = 2


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    ``path`` is repo-relative when the checker can make it so, absolute
    otherwise; ``line``/``column`` are 1-based (column 1 = first char),
    matching compiler convention so editors can jump to the location.
    """

    path: str
    line: int
    column: int
    rule: str
    message: str
    fix_hint: str = ""

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready representation (stable key set; see JSON_SCHEMA_VERSION)."""
        return {
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "rule": self.rule,
            "message": self.message,
            "fix_hint": self.fix_hint,
        }

    def render(self) -> str:
        """One-line human rendering: ``path:line:col: RULE message [hint]``."""
        text = f"{self.path}:{self.line}:{self.column}: {self.rule} {self.message}"
        if self.fix_hint:
            text += f" (hint: {self.fix_hint})"
        return text
