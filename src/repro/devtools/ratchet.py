"""Strictness-ratchet rules (``REPRO4xx``).

``pyproject.toml`` carries a per-module mypy allowlist: modules not yet
``--strict``-clean get ``ignore_errors = true`` overrides.  The allowlist
is a *ratchet* — it may only shrink.  ``REPRO401`` enforces that statically
by comparing the overrides against the baseline frozen here: adding a new
module to the allowlist (or re-adding one that already graduated to
strict, like ``repro.config`` / ``repro.harness.cache``) is a finding.
Removing entries never is.

When a module is made strict-clean, delete it from the pyproject override
*and* from :data:`MYPY_ALLOWLIST_BASELINE` in the same commit.
"""

from __future__ import annotations

from pathlib import Path
from typing import FrozenSet, Iterator, List, Tuple

try:  # py3.11+; on older interpreters the ratchet rule degrades to a no-op
    import tomllib
except ImportError:  # pragma: no cover - py<3.11 only
    tomllib = None  # type: ignore[assignment]

from .findings import Finding
from .rules import ProjectContext, ProjectRule, register

__all__ = ["MYPY_ALLOWLIST_BASELINE", "STRICT_REQUIRED", "MypyRatchetRule"]

#: Modules currently allowed to carry ``ignore_errors = true`` overrides.
#: This set may only lose members over time (delete here when a module
#: graduates to strict).  It must stay in sync with ``pyproject.toml``.
MYPY_ALLOWLIST_BASELINE: FrozenSet[str] = frozenset(
    {
        "repro.__main__",
        "repro.cli",
        "repro.errors",
        "repro.units",
        "repro.engine",
        "repro.engine.*",
        "repro.policies",
        "repro.policies.hpe",
        "repro.policies.lru",
        "repro.policies.mhpe",
        "repro.policies.random_policy",
        "repro.policies.reserved_lru",
        "repro.prefetch",
        "repro.prefetch.disabled",
        "repro.prefetch.locality",
        "repro.prefetch.pattern_aware",
        "repro.prefetch.tree_neighborhood",
        "repro.memsim",
        "repro.memsim.address",
        "repro.memsim.device_memory",
        "repro.memsim.dram",
        "repro.memsim.fault",
        "repro.memsim.gmmu",
        "repro.memsim.page_table",
        "repro.memsim.pcie",
        "repro.memsim.system",
        "repro.core",
        "repro.core.*",
        "repro.translation",
        "repro.translation.*",
        "repro.workloads",
        "repro.workloads.*",
        "repro.analysis",
        "repro.analysis.*",
        "repro.harness",
        "repro.harness.baselines",
        "repro.harness.docgen",
        "repro.harness.experiment",
        "repro.harness.figures",
        "repro.harness.parallel",
        "repro.harness.report",
        "repro.harness.store",
        "repro.harness.tables",
    }
)

#: Modules that already graduated to ``--strict``: they carry ``py.typed``
#: guarantees and must never re-enter the allowlist.
STRICT_REQUIRED: FrozenSet[str] = frozenset(
    {
        "repro.config",
        "repro.devtools.findings",
        "repro.harness.cache",
        "repro.harness.faults",
        "repro.memsim.chunk_chain",
        "repro.policies.base",
        "repro.prefetch.base",
        "repro.registry",
    }
)

#: Package whose every module must stay strict (the checker itself).
_STRICT_PACKAGES = ("repro.devtools",)


def _relaxed_modules(pyproject: Path) -> List[str]:
    """Module patterns with ``ignore_errors = true`` mypy overrides."""
    if tomllib is None:  # pragma: no cover - py<3.11 only
        return []
    with pyproject.open("rb") as fh:
        data = tomllib.load(fh)
    tool = data.get("tool", {})
    overrides = tool.get("mypy", {}).get("overrides", [])
    relaxed: List[str] = []
    for entry in overrides:
        if not isinstance(entry, dict) or not entry.get("ignore_errors"):
            continue
        modules = entry.get("module", [])
        if isinstance(modules, str):
            modules = [modules]
        relaxed.extend(str(m) for m in modules)
    return relaxed


@register
class MypyRatchetRule(ProjectRule):
    rule_id = "REPRO401"
    title = "mypy strictness allowlist grew"
    rationale = (
        "the per-module allowlist exists to burn down, not to hide new "
        "untyped code; letting it grow silently would erode the typed "
        "strict gate that backs the cache/config contracts."
    )
    fix_hint = (
        "make the new module --strict-clean instead of allowlisting it "
        "(or, for a planned module, update MYPY_ALLOWLIST_BASELINE in the "
        "same change, with review)"
    )

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        if project.root is None:
            return
        pyproject = project.root / "pyproject.toml"
        if not pyproject.is_file():
            return
        for lineno, module in self._violations(pyproject):
            yield Finding(
                path=str(pyproject),
                line=lineno,
                column=1,
                rule=self.rule_id,
                message=(
                    f"module pattern `{module}` added to the mypy "
                    "ignore_errors allowlist (the allowlist may only shrink)"
                ),
                fix_hint=self.fix_hint,
            )

    def _violations(self, pyproject: Path) -> List[Tuple[int, str]]:
        out: List[Tuple[int, str]] = []
        text = pyproject.read_text().splitlines()

        def line_of(module: str) -> int:
            quoted = f'"{module}"'
            for idx, line in enumerate(text, start=1):
                if quoted in line:
                    return idx
            return 1

        for module in _relaxed_modules(pyproject):
            strict_locked = (
                module in STRICT_REQUIRED
                or any(
                    module == pkg or module.startswith(pkg + ".")
                    for pkg in _STRICT_PACKAGES
                )
            )
            if strict_locked or module not in MYPY_ALLOWLIST_BASELINE:
                out.append((line_of(module), module))
        return out
