"""Checker orchestration: discover files, run rules, filter suppressions.

:func:`run_lint` is the single entry point used by the ``repro lint`` CLI
and by the test suite.  It expands the given paths to ``.py`` files,
parses each once, runs every registered :class:`~repro.devtools.rules.FileRule`
per file and every :class:`~repro.devtools.rules.ProjectRule` once over the
batch, drops findings covered by ``# repro-lint: disable=...`` comments,
and returns them sorted by location.

Discovery is resilient by contract: an unreadable file, a symlink loop, or
a directory the walker cannot enter produces a ``REPRO901`` finding for
that path and the run continues — a single bad path must never mask the
findings in every other file.

Module names are derived from the path (anchored at the ``repro`` package
or a ``src/`` directory); a ``# repro-lint: module=...`` directive in the
first few lines overrides the derivation, which is how the lint corpus
masquerades as simulation code.

``deep=True`` additionally builds the whole-program analysis
(:mod:`repro.devtools.deep`: call graph, worker/simulation closures,
cache-key taint) and enables the REPRO5xx/6xx rules; ``callgraph_cache``
names an on-disk summary cache keyed by source content hash so warm deep
runs skip re-extraction entirely.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from .findings import Finding
from .rules import (
    FileContext,
    FileRule,
    ProjectContext,
    ProjectRule,
    all_rules,
    module_directive,
)

# Rule modules register themselves on import; keep these imports even
# though nothing here references them by name.
from . import cache_integrity as _cache_integrity  # noqa: F401
from . import determinism as _determinism  # noqa: F401
from . import hotpath as _hotpath  # noqa: F401
from . import parallel_safety as _parallel_safety  # noqa: F401
from . import ratchet as _ratchet  # noqa: F401
from . import reachability as _reachability  # noqa: F401
from . import registry_rules as _registry_rules  # noqa: F401
from . import taint as _taint  # noqa: F401

__all__ = ["LintReport", "run_lint", "module_name_for", "PARSE_ERROR_RULE"]

#: Rule id attached to files the checker cannot read or parse at all.
PARSE_ERROR_RULE = "REPRO901"

_SKIP_DIRS = frozenset({"__pycache__", ".git", ".mypy_cache", ".ruff_cache"})

_UNREADABLE_HINT = "fix the unreadable path (everything else was still checked)"


@dataclass
class LintReport:
    """Outcome of one lint run."""

    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    #: Whether the whole-program (``--deep``) analysis ran.
    deep: bool = False
    #: Summary-cache bookkeeping when ``deep`` is set (else zeros).
    summaries_extracted: int = 0
    summaries_from_cache: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings

    def to_dict(self) -> "dict[str, object]":
        from .findings import JSON_SCHEMA_VERSION

        return {
            "version": JSON_SCHEMA_VERSION,
            "files_checked": self.files_checked,
            "deep": {
                "enabled": self.deep,
                "summaries_extracted": self.summaries_extracted,
                "summaries_from_cache": self.summaries_from_cache,
            },
            "findings": [f.to_dict() for f in self.findings],
        }


def module_name_for(path: Path) -> str:
    """Dotted module name for a file path.

    Anchors at the last path component named ``repro`` (the package) or,
    failing that, the component after a ``src`` directory; falls back to
    the bare stem.  ``__init__.py`` maps to its package.
    """
    parts = list(path.with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    anchor: Optional[int] = None
    for idx, part in enumerate(parts):
        if part == "repro":
            anchor = idx
        elif part == "src" and idx + 1 < len(parts) and anchor is None:
            anchor = idx + 1
    if anchor is None:
        return parts[-1] if parts else ""
    return ".".join(parts[anchor:])


def _walk_errors_to_findings(
    errors: List[Tuple[str, BaseException]], root: Optional[Path]
) -> List[Finding]:
    findings = []
    for location, exc in errors:
        findings.append(
            Finding(
                path=_display_path(Path(location), root),
                line=1,
                column=1,
                rule=PARSE_ERROR_RULE,
                message=f"cannot read path: {exc}",
                fix_hint=_UNREADABLE_HINT,
            )
        )
    return findings


def _iter_py_files(
    paths: Sequence[Union[str, Path]],
) -> Tuple[List[Path], List[Tuple[str, BaseException]]]:
    """Expand ``paths`` to ``.py`` files, collecting traversal errors.

    ``os.walk`` (which neither follows directory symlinks nor aborts on a
    bad entry) is used instead of ``Path.rglob`` so that one unreadable or
    looping directory degrades to a recorded error instead of killing the
    whole discovery pass.
    """
    files: List[Path] = []
    errors: List[Tuple[str, BaseException]] = []

    def on_error(exc: OSError) -> None:
        errors.append((exc.filename or "<unknown>", exc))

    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for dirpath, dirnames, filenames in os.walk(
                str(path), onerror=on_error, followlinks=False
            ):
                dirnames[:] = sorted(
                    d for d in dirnames if d not in _SKIP_DIRS
                )
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        files.append(Path(dirpath) / name)
        else:
            files.append(path)
    return files, errors


def _display_path(path: Path, root: Optional[Path]) -> str:
    if root is not None:
        try:
            return str(path.resolve().relative_to(root.resolve()))
        except (OSError, ValueError):
            pass
    return str(path)


def _find_project_root(paths: Sequence[Path]) -> Optional[Path]:
    """Nearest ancestor of the first path that holds ``pyproject.toml``."""
    for start in paths:
        try:
            candidate = start.resolve()
        except OSError:  # unresolvable (e.g. symlink loop in an argument)
            continue
        if candidate.is_file():
            candidate = candidate.parent
        for ancestor in [candidate, *candidate.parents]:
            if (ancestor / "pyproject.toml").is_file():
                return ancestor
    return None


def run_lint(
    paths: Sequence[Union[str, Path]],
    deep: bool = False,
    callgraph_cache: Optional[Union[str, Path]] = None,
) -> LintReport:
    """Lint ``paths`` (files and/or directories) with every registered rule.

    ``deep=True`` builds the whole-program call-graph analysis and enables
    the REPRO5xx/6xx rules; ``callgraph_cache`` (a JSON file path) makes
    repeated deep runs skip summary extraction for unchanged files.
    """
    report = LintReport(deep=deep)
    files, walk_errors = _iter_py_files(paths)
    root = _find_project_root([Path(p) for p in paths])
    report.findings.extend(_walk_errors_to_findings(walk_errors, root))
    contexts: List[FileContext] = []
    for path in files:
        display = _display_path(path, root)
        try:
            source = path.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=str(path))
        except (OSError, SyntaxError, ValueError) as exc:
            report.findings.append(
                Finding(
                    path=display,
                    line=getattr(exc, "lineno", 1) or 1,
                    column=1,
                    rule=PARSE_ERROR_RULE,
                    message=f"cannot parse file: {exc}",
                    fix_hint="fix the syntax error (nothing else was checked)",
                )
            )
            continue
        module = module_directive(source) or module_name_for(path)
        contexts.append(
            FileContext(
                path=path,
                display_path=display,
                module=module,
                source=source,
                tree=tree,
            )
        )
    report.files_checked = len(contexts)

    deep_analysis = None
    if deep:
        from .deep import build_deep_analysis

        deep_analysis = build_deep_analysis(
            contexts,
            cache_path=Path(callgraph_cache) if callgraph_cache else None,
        )
        report.summaries_extracted = deep_analysis.stats.summaries_extracted
        report.summaries_from_cache = deep_analysis.stats.summaries_from_cache

    file_rules: List[FileRule] = []
    project_rules: List[ProjectRule] = []
    for rule_cls in all_rules():
        rule = rule_cls()
        if isinstance(rule, FileRule):
            file_rules.append(rule)
        elif isinstance(rule, ProjectRule):
            project_rules.append(rule)

    raw: List[Finding] = []
    for ctx in contexts:
        for frule in file_rules:
            raw.extend(frule.check(ctx))
    project = ProjectContext(files=contexts, root=root, deep=deep_analysis)
    for prule in project_rules:
        raw.extend(prule.check_project(project))

    by_path: Dict[str, FileContext] = {
        ctx.display_path: ctx for ctx in contexts
    }
    for finding in raw:
        ctx_for = by_path.get(finding.path)
        if ctx_for is not None and ctx_for.is_suppressed(
            finding.rule, finding.line
        ):
            continue
        report.findings.append(finding)
    report.findings.sort(key=lambda f: (f.path, f.line, f.column, f.rule))
    return report
