"""Generate EXPERIMENTS.md: paper-reported vs measured, per table/figure.

``python -m repro.harness.docgen [OUTPUT] [--scale S] [--json-dir DIR]``

Runs every artifact of the evaluation at full scale (a few minutes), pairs
each with the corresponding claim from the paper, and writes the comparison
document.  Artifacts are also archived as JSON for provenance when
``--json-dir`` is given.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Callable, List, Optional

from ..analysis.metrics import mean
from ..errors import WorkerFailure
from . import figures, shootout, tables
from .faults import FaultTolerance, render_failure_summary
from .store import save_artifact

__all__ = ["generate", "main"]

#: The paper's reported values, quoted verbatim where possible.
PAPER_CLAIMS = {
    "fig3": (
        "Reserved LRU (top 20%) gains at most 11% on the thrashing apps, is "
        "sometimes below Random (SRD, STN), and loses up to 53% on B+T/HYB; "
        "on average it is worse than LRU and Random for these applications."
    ),
    "fig4": (
        "Prefetching once memory is full inflates evictions: SAD and NW by "
        "about an order of magnitude; MVT and BIC crash; all other "
        "applications stay within 20%."
    ),
    "fig7": (
        "Scheme-1 and Scheme-2 are similar for MVT/SPV/B+T/BIC/SAD; "
        "Scheme-2 wins where chunks carry a fixed stride (NW, HIS); "
        "Scheme-1 wins where chunks populate slowly (BFS, HWL); Scheme-2 "
        "averages 3%/7% better at 75%/50% and is adopted."
    ),
    "fig8": (
        "CPPE averages 1.56x/1.64x over the baseline at 75%/50% (up to "
        "10.97x); ~1x for Types I and VI; large wins for Type IV and the "
        "severe thrashers SAD/HIS/NW; MVT/BIC crash in the baseline but "
        "complete under CPPE."
    ),
    "fig9": (
        "Random and reserved LRU (10%/20%) improve thrashing types but "
        "never beat CPPE; LRU-10% loses 27% on Type VI at 50%; changing "
        "only the eviction policy does not fix the baseline."
    ),
    "fig10": (
        "Disabling prefetch when memory fills slows regular applications by "
        "up to 85%; it helps only SAD (at 50%), NW, MVT and BIC; CPPE beats "
        "disabling for every application except SAD."
    ),
    "table3": (
        "Max per-interval untouch level in the first four intervals ranges "
        "0..60; Types II/III/V/VI are high, Types I/IV low; T1=32 keeps "
        "MRU-friendly apps (HSD, LEU, SRD) on MRU."
    ),
    "table4": (
        "Cumulative first-four-interval untouch for the remaining apps; "
        "T2=40 separates HSD (37/30) from the LRU-favouring applications."
    ),
    "sensitivity-fd": (
        "Regular applications' untouch level drops sharply once the forward "
        "distance reaches 2; above 8 irregular applications drop too, so "
        "the usable range is 2..8."
    ),
    "sensitivity-t3": (
        "Sweeping the forward-distance limit over 16..40 (stride 4) on "
        "SRD/HSD/MRQ, 32 has the best average performance."
    ),
    "overhead": (
        "On average 731/559 structure entries (8.6/6.6 KB) at 75%/50%; "
        "evicted-chunk buffer 73/51 entries; pattern buffer 37.2%/88.7% of "
        "the chain length.  All structures live in host memory."
    ),
    "shootout": (
        "Extension artifact (no single paper figure): the paper argues — "
        "via Figs. 3, 9 and 10 — that neither an eviction policy nor a "
        "prefetcher alone fixes oversubscription thrashing; the shootout "
        "makes the full policy x prefetcher cross product explicit for one "
        "thrashing app, enumerated from the component registries, so any "
        "registered plugin component joins the comparison automatically."
    ),
}

_GENERATORS: List = [
    ("fig3", lambda scale, jobs, ft:
     figures.fig3(scale=scale, jobs=jobs, fault_tolerance=ft)),
    ("fig4", lambda scale, jobs, ft:
     figures.fig4(scale=scale, jobs=jobs, fault_tolerance=ft)),
    ("fig7", lambda scale, jobs, ft:
     figures.fig7(scale=scale, jobs=jobs, fault_tolerance=ft)),
    ("fig8", lambda scale, jobs, ft:
     figures.fig8(scale=scale, jobs=jobs, fault_tolerance=ft)),
    ("fig9", lambda scale, jobs, ft:
     figures.fig9(scale=scale, jobs=jobs, fault_tolerance=ft)),
    ("fig10", lambda scale, jobs, ft:
     figures.fig10(scale=scale, jobs=jobs, fault_tolerance=ft)),
    ("table3", lambda scale, jobs, ft:
     tables.table3(scale=scale, jobs=jobs, fault_tolerance=ft)),
    ("table4", lambda scale, jobs, ft:
     tables.table4(scale=scale, jobs=jobs, fault_tolerance=ft)),
    ("sensitivity-fd",
     lambda scale, jobs, ft:
     tables.sensitivity_fd(scale=scale, jobs=jobs, fault_tolerance=ft)),
    ("sensitivity-t3",
     lambda scale, jobs, ft:
     tables.sensitivity_t3(scale=scale, jobs=jobs, fault_tolerance=ft)),
    ("overhead", lambda scale, jobs, ft:
     tables.overhead(scale=scale, jobs=jobs, fault_tolerance=ft)),
    ("shootout", lambda scale, jobs, ft:
     shootout.shootout_table(scale=scale, jobs=jobs, fault_tolerance=ft)),
]


def _headline(name: str, artifact) -> str:
    """A one-line measured headline for the comparison table."""
    if name == "fig8":
        avg75 = mean(v for v in artifact.series["cppe@75%"].values() if v)
        avg50 = mean(v for v in artifact.series["cppe@50%"].values() if v)
        peak = max(
            v for s in artifact.series.values() for v in s.values() if v
        )
        return f"measured averages {avg75:.2f}x / {avg50:.2f}x, up to {peak:.2f}x"
    if name == "fig4":
        ratios = artifact.series["eviction-ratio"]
        worst = max(ratios, key=ratios.get)
        return f"worst blow-up {worst} at {ratios[worst]:.1f}x; {len(ratios)} apps above 1.2x"
    if name == "shootout":
        best = artifact.rows[0]
        return (f"best of {len(artifact.rows)} combos: {best[0]} "
                f"({best[1]} + {best[2]}) at {best[3]:.2f}x vs baseline")
    if hasattr(artifact, "averages") and artifact.averages:
        parts = [f"{k}={v:.2f}" for k, v in sorted(artifact.averages.items())
                 if "mean" in k][:4]
        return "; ".join(parts)
    if hasattr(artifact, "rows"):
        return f"{len(artifact.rows)} rows"
    return ""


def generate(
    output: Path,
    scale: float = 1.0,
    json_dir: Optional[Path] = None,
    names: Optional[List[str]] = None,
    jobs: Optional[int] = None,
    fault_tolerance: Optional[FaultTolerance] = None,
    log: Callable[[str], None] = lambda s: print(s, file=sys.stderr),
) -> Path:
    """Run every artifact and write the EXPERIMENTS.md comparison.

    ``jobs > 1`` routes every run matrix through the parallel experiment
    engine; either way all simulations go through the persistent result
    cache, so re-generating this document from cached results is cheap.

    Under a ``keep_going`` fault-tolerance policy an artifact whose
    generator fails outright is skipped (noted in the log and document);
    the shared policy object accumulates per-spec outcomes across all
    artifacts and the failure summary is appended to the log.
    """
    keep_going = fault_tolerance is not None and fault_tolerance.keep_going
    sections = []
    summary_rows = []
    for name, gen in _GENERATORS:
        if names and name not in names:
            continue
        # Harness-side wall clock: per-artifact timing for the stderr log
        # only, never simulation state (boundary: devtools.boundary, REPRO102).
        start = time.time()
        log(f"running {name} ...")
        try:
            artifact = gen(scale, jobs, fault_tolerance)
        except WorkerFailure as failure:
            if not keep_going:
                raise
            log(f"  FAILED: {failure.label}: {failure.exc_type}")
            summary_rows.append((name, f"FAILED ({failure.label})"))
            sections.append(
                f"## {name}\n\n"
                f"**Paper:** {PAPER_CLAIMS[name]}\n\n"
                f"**Measured:** generation failed ({failure.label}: "
                f"{failure.exc_type}); artifact omitted\n"
            )
            continue
        elapsed = time.time() - start
        log(f"  done in {elapsed:.0f}s")
        if json_dir is not None:
            save_artifact(artifact, Path(json_dir) / f"{name}.json")
        headline = _headline(name, artifact)
        summary_rows.append((name, headline))
        sections.append(
            f"## {name}\n\n"
            f"**Paper:** {PAPER_CLAIMS[name]}\n\n"
            f"**Measured:** {headline or 'see artifact below'}\n\n"
            "```\n" + artifact.render() + "\n```\n"
        )
    if fault_tolerance is not None and fault_tolerance.failures():
        log(render_failure_summary(fault_tolerance.outcomes))

    header = (
        "# EXPERIMENTS — paper-reported vs measured\n\n"
        "Generated by `python -m repro.harness.docgen` against the synthetic\n"
        "workload suite (footprints scaled 1/4 with a 1024-page floor; see\n"
        "DESIGN.md for the substitution argument).  Absolute numbers are not\n"
        "expected to match the authors' GPGPU-Sim testbed; the *shape* —\n"
        "who wins, by roughly what factor, and where the crossovers fall —\n"
        "is the reproduction target.\n\n"
        f"Workload scale: {scale}.\n\n"
        "Regeneration: `python -m repro regen all --jobs N` runs the same\n"
        "artifacts through the parallel experiment engine with a persistent\n"
        "result cache (`--cache-dir`, default `~/.cache/repro-cppe`); see\n"
        "the README's *Parallel regeneration* section.  A warm cache\n"
        "regenerates everything with zero new simulations; clear it with\n"
        "`python -m repro cache clear` whenever simulator semantics change.\n\n"
        "Integrity: cached results are only trustworthy because (a) every\n"
        "simulation is deterministic in `(RunSpec, SimConfig)` and (b) the\n"
        "cache key content-hashes every field of both.  Both invariants are\n"
        "enforced statically by `python -m repro lint` (see LINTING.md) and\n"
        "gated in CI, so the figures and tables below cannot silently come\n"
        "back from a poisoned cache.\n\n"
        "## Inspecting a run\n\n"
        "Any point in these artifacts can be re-run with full observability\n"
        "(`repro.obs`: an event trace plus a metrics registry, both off and\n"
        "zero-cost during normal regeneration):\n\n"
        "```\n"
        "python -m repro trace NW --trace-dir out --format all\n"
        "```\n\n"
        "writes `out/trace.jsonl` (one event per line), `out/trace.chrome.json`\n"
        "(open in chrome://tracing or https://ui.perfetto.dev — per-run\n"
        "processes with gmmu/policy/prefetch/pcie lanes, migration slices,\n"
        "forward-distance and untouch-level counter tracks) and\n"
        "`out/intervals.tsv` (per-interval timeseries: strategy, forward\n"
        "distance, untouch level, wrong evictions, pattern-buffer occupancy,\n"
        "PCIe bytes).  Traced runs bypass the result cache in both\n"
        "directions, and tracing never changes simulation results —\n"
        "`tests/test_obs_integration.py` asserts byte-identical\n"
        "serializations.\n\n"
        "## Adaptive sweeps\n\n"
        "Capacity sweeps (`python -m repro sweep APP`) default to the\n"
        "fixed 7-point rate grid of `analysis.sweep.DEFAULT_RATES`.  With\n"
        "`--adaptive` the sweep instead runs a simulate → fit → propose\n"
        "loop (`repro.analysis.adaptive`): a coarse seed grid, a monotone\n"
        "PCHIP fit of slowdown vs. rate, then new rates where the model is\n"
        "least trusted — the knee neighbourhood first — until successive\n"
        "fits agree within `--tolerance` (default 15%) or `--budget`\n"
        "simulations (default 12) are spent.  On the thrashing apps this\n"
        "converges in 4–6 simulations with a *continuous* knee estimate,\n"
        "where the fixed grid spends 7 to bracket the knee to 0.1.\n"
        "Proposals are a pure function of prior results, so re-running a\n"
        "converged sweep against a warm result cache performs zero new\n"
        "simulations.  Crashed points carry `slowdown = nan` (a crashed\n"
        "run's cycle count is not a runtime) and are excluded from the fit\n"
        "and from knee detection; the crash boundary is reported\n"
        "separately (`analysis.sweep.crash_rate`), and a crashed rate-1.0\n"
        "anchor aborts the sweep with `HarnessError` — nothing can be\n"
        "normalised against it.\n\n"
        "## Summary\n\n"
        "| artifact | measured headline |\n|---|---|\n"
        + "\n".join(f"| {n} | {h} |" for n, h in summary_rows)
        + "\n\n"
    )
    output = Path(output)
    output.write_text(header + "\n".join(sections))
    log(f"wrote {output}")
    return output


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("output", nargs="?", default="EXPERIMENTS.md")
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--json-dir", type=Path, default=None)
    parser.add_argument("--only", nargs="*", default=None,
                        help="generate only these artifacts")
    parser.add_argument("--jobs", "-j", type=int, default=None,
                        help="parallel workers for each run matrix")
    parser.add_argument("--keep-going", action="store_true",
                        help="record failed runs and continue instead of "
                             "aborting on the first failure")
    parser.add_argument("--retries", type=int, default=2,
                        help="broken-pool rebuild attempts (default 2)")
    parser.add_argument("--timeout-s", type=float, default=None,
                        help="reap workers after this many seconds without "
                             "any worker completing")
    args = parser.parse_args(argv)
    fault_tolerance = None
    if args.keep_going or args.retries != 2 or args.timeout_s is not None:
        fault_tolerance = FaultTolerance(
            keep_going=args.keep_going,
            retries=args.retries,
            timeout_s=args.timeout_s,
        )
    generate(Path(args.output), scale=args.scale, json_dir=args.json_dir,
             names=args.only, jobs=args.jobs, fault_tolerance=fault_tolerance)
    if fault_tolerance is not None and fault_tolerance.failures():
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
