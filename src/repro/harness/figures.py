"""Regenerators for every figure in the paper's evaluation (Figs. 3-10).

Each ``figN`` function runs the simulations that figure needs (memoised per
process) and returns a :class:`FigureResult` whose ``series`` holds the same
normalised numbers the paper plots and whose ``render()`` produces a
terminal-friendly view.  ``apps``/``rates``/``scale`` let tests regenerate a
cheap subset; the benchmarks run the full configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from typing import Callable

from ..analysis.metrics import geomean, mean
from ..engine.simulator import SimulationResult
from ..workloads.suite import BENCHMARKS, FIG3_APPS
from .experiment import RunSpec, run_matrix, run_one
from .faults import FaultTolerance
from .report import render_series, render_table

Progress = Optional[Callable[[int, int], None]]
Tolerance = Optional[FaultTolerance]

__all__ = [
    "FigureResult",
    "fig3",
    "fig4",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
]

Series = Dict[str, Dict[str, Optional[float]]]


@dataclass
class FigureResult:
    """Structured output of one figure regeneration."""

    name: str
    description: str
    series: Series
    averages: Dict[str, float] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    def render(self) -> str:
        parts = [f"== {self.name}: {self.description} =="]
        parts.append(render_series(self.series))
        if self.averages:
            parts.append(
                render_table(
                    ["series", "average"],
                    sorted(self.averages.items()),
                    title="averages",
                )
            )
        parts.extend(f"note: {n}" for n in self.notes)
        return "\n".join(parts)


def _all_apps() -> List[str]:
    return list(BENCHMARKS)


def _prewarm(
    specs: Sequence[RunSpec],
    jobs: Optional[int],
    progress: Progress = None,
    fault_tolerance: Tolerance = None,
) -> None:
    """Resolve a figure's whole run matrix up front (parallel when
    ``jobs > 1``), seeding the in-process memo so the per-app ``run_one``
    calls below are pure lookups."""
    if (
        (jobs is not None and jobs > 1)
        or progress is not None
        or fault_tolerance is not None
    ):
        run_matrix(
            list(specs),
            jobs=jobs,
            progress=progress,
            fault_tolerance=fault_tolerance,
        )


def _resolve_one(
    spec: RunSpec, fault_tolerance: Tolerance
) -> Optional[SimulationResult]:
    """``run_one`` that honours a fault-tolerance policy.

    Without a policy this is a plain ``run_one`` (raises on failure).  With
    one, the spec routes through the guarded runner — a memo/cache hit after
    ``_prewarm`` either way — and a failed spec yields ``None``, which the
    figure treats like a crashed run.
    """
    if fault_tolerance is None:
        return run_one(spec)
    return run_matrix([spec], fault_tolerance=fault_tolerance)[spec.key()]


def _matrix_specs(
    apps: Sequence[str],
    setups: Sequence[str],
    rates: Sequence[float],
    scale: float,
    crash_budget: Optional[float] = None,
) -> List[RunSpec]:
    return [
        RunSpec(app, setup, rate, scale=scale, crash_budget_factor=crash_budget)
        for rate in rates
        for app in apps
        for setup in setups
    ]


def _speedup_series(
    apps: Sequence[str],
    setups: Sequence[str],
    reference_setup: str,
    rate: float,
    scale: float,
    crash_budget: Optional[float] = None,
    fault_tolerance: Tolerance = None,
) -> Series:
    """Speedups of each setup over ``reference_setup``, per app at ``rate``.

    Crashed runs — and, under a ``keep_going`` fault-tolerance policy,
    failed ones — yield ``None`` entries (either side).
    """
    series: Series = {s: {} for s in setups}
    for app in apps:
        ref = _resolve_one(
            RunSpec(app, reference_setup, rate, scale=scale,
                    crash_budget_factor=crash_budget),
            fault_tolerance,
        )
        for setup in setups:
            cand = _resolve_one(
                RunSpec(app, setup, rate, scale=scale,
                        crash_budget_factor=crash_budget),
                fault_tolerance,
            )
            if ref is None or cand is None or ref.crashed or cand.crashed:
                series[setup][app] = None
            else:
                series[setup][app] = cand.speedup_over(ref)
    return series


def _avg(series: Series) -> Dict[str, float]:
    out = {}
    for name, points in series.items():
        vals = [v for v in points.values() if v is not None]
        if vals:
            out[f"{name} (mean)"] = mean(vals)
            out[f"{name} (geomean)"] = geomean(vals)
    return out


# ---------------------------------------------------------------------------
# Fig. 3 — LRU vs Random vs reserved LRU (motivation, Inefficiency 2)
# ---------------------------------------------------------------------------

def fig3(
    apps: Optional[Sequence[str]] = None,
    rate: float = 0.5,
    scale: float = 1.0,
    jobs: Optional[int] = None,
    progress: Progress = None,
    fault_tolerance: Tolerance = None,
) -> FigureResult:
    """LRU / Random / LRU-20% with the naive locality prefetcher at 50%
    oversubscription, normalised to LRU, for the thrashing + irregular apps."""
    apps = list(apps or FIG3_APPS)
    _prewarm(
        _matrix_specs(apps, ["baseline", "random", "lru-20"], [rate], scale),
        jobs,
        progress,
        fault_tolerance,
    )
    series = _speedup_series(
        apps, ["random", "lru-20"], "baseline", rate, scale,
        fault_tolerance=fault_tolerance,
    )
    return FigureResult(
        name="fig3",
        description=(
            "Random and reserved LRU (top 20%) vs LRU, all with the naive "
            f"locality prefetcher, {rate:.0%} oversubscription"
        ),
        series=series,
        averages=_avg(series),
        notes=[
            "paper: reserved LRU gains at most 11% on thrashing apps and "
            "loses up to 53% on B+T/HYB; on average it is worse than both "
            "LRU and Random for these applications",
        ],
    )


# ---------------------------------------------------------------------------
# Fig. 4 — thrashing from prefetching once memory is full (Inefficiency 3)
# ---------------------------------------------------------------------------

def fig4(
    apps: Optional[Sequence[str]] = None,
    rate: float = 0.5,
    scale: float = 1.0,
    threshold: float = 1.2,
    jobs: Optional[int] = None,
    progress: Progress = None,
    fault_tolerance: Tolerance = None,
) -> FigureResult:
    """Chunk evictions with prefetch-always vs prefetch-off-when-full (both
    LRU), reported as a ratio; the paper shows apps with ratio > 1.2."""
    apps = list(apps or _all_apps())
    _prewarm(
        _matrix_specs(apps, ["baseline", "stop-on-full"], [rate], scale),
        jobs,
        progress,
        fault_tolerance,
    )
    ratios: Dict[str, Optional[float]] = {}
    for app in apps:
        always = _resolve_one(
            RunSpec(app, "baseline", rate, scale=scale), fault_tolerance
        )
        off = _resolve_one(
            RunSpec(app, "stop-on-full", rate, scale=scale), fault_tolerance
        )
        if always is None or off is None:
            ratios[app] = None
        elif off.stats.chunks_evicted == 0:
            ratios[app] = None if always.stats.chunks_evicted == 0 else float("inf")
        else:
            ratios[app] = always.stats.chunks_evicted / off.stats.chunks_evicted
    shown = {
        app: r for app, r in ratios.items() if r is not None and r >= threshold
    }
    series: Series = {"eviction-ratio": shown}
    return FigureResult(
        name="fig4",
        description=(
            "eviction count: prefetch-always / prefetch-off-when-full "
            f"(LRU, {rate:.0%} oversubscription); apps above {threshold}x"
        ),
        series=series,
        averages=_avg(series),
        notes=[
            f"apps below the {threshold}x threshold (omitted, as in the "
            f"paper): {sorted(set(ratios) - set(shown))}",
            "paper: SAD and NW show ~10x; MVT and BIC crash outright "
            "(reproduce with a crash budget via RunSpec.crash_budget_factor)",
        ],
    )


# ---------------------------------------------------------------------------
# Fig. 7 — pattern deletion schemes
# ---------------------------------------------------------------------------

FIG7_APPS = ["MVT", "SPV", "B+T", "BIC", "SAD", "BFS", "NW", "HWL", "HIS"]


def fig7(
    apps: Optional[Sequence[str]] = None,
    rates: Sequence[float] = (0.75, 0.5),
    scale: float = 1.0,
    jobs: Optional[int] = None,
    progress: Progress = None,
    fault_tolerance: Tolerance = None,
) -> FigureResult:
    """CPPE with Scheme-1 vs Scheme-2 pattern deletion, normalised to the
    baseline, for the applications whose chunks enter the pattern buffer."""
    apps = list(apps or FIG7_APPS)
    _prewarm(
        _matrix_specs(apps, ["baseline", "cppe-s1", "cppe"], rates, scale),
        jobs,
        progress,
        fault_tolerance,
    )
    series: Series = {}
    for rate in rates:
        sub = _speedup_series(
            apps, ["cppe-s1", "cppe"], "baseline", rate, scale,
            fault_tolerance=fault_tolerance,
        )
        series[f"scheme-1@{rate:.0%}"] = sub["cppe-s1"]
        series[f"scheme-2@{rate:.0%}"] = sub["cppe"]
    return FigureResult(
        name="fig7",
        description="pattern deletion Scheme-1 vs Scheme-2 (CPPE vs baseline)",
        series=series,
        averages=_avg(series),
        notes=[
            "paper: Scheme-2 wins for fixed-stride apps (NW, HIS); Scheme-1 "
            "wins for slow-populating chunks (BFS, HWL); Scheme-2 is 3%/7% "
            "better on average at 75%/50% and is adopted",
        ],
    )


# ---------------------------------------------------------------------------
# Fig. 8 — CPPE vs the baseline
# ---------------------------------------------------------------------------

def fig8(
    apps: Optional[Sequence[str]] = None,
    rates: Sequence[float] = (0.75, 0.5),
    scale: float = 1.0,
    jobs: Optional[int] = None,
    progress: Progress = None,
    fault_tolerance: Tolerance = None,
) -> FigureResult:
    """CPPE speedup over the baseline for the full suite at 75% and 50%."""
    apps = list(apps or _all_apps())
    _prewarm(
        _matrix_specs(apps, ["baseline", "cppe"], rates, scale),
        jobs,
        progress,
        fault_tolerance,
    )
    series: Series = {}
    for rate in rates:
        sub = _speedup_series(
            apps, ["cppe"], "baseline", rate, scale,
            fault_tolerance=fault_tolerance,
        )
        series[f"cppe@{rate:.0%}"] = sub["cppe"]
    result = FigureResult(
        name="fig8",
        description="CPPE speedup over baseline (LRU + naive locality prefetch)",
        series=series,
        averages=_avg(series),
        notes=[
            "paper: 1.56x / 1.64x average at 75% / 50%, up to 10.97x; "
            "MVT and BIC crash in the baseline and are omitted there "
            "(our simulator completes them, with eviction blow-up instead)",
        ],
    )
    return result


# ---------------------------------------------------------------------------
# Fig. 9 — other eviction policies vs CPPE
# ---------------------------------------------------------------------------

def fig9(
    apps: Optional[Sequence[str]] = None,
    rates: Sequence[float] = (0.75, 0.5),
    scale: float = 1.0,
    jobs: Optional[int] = None,
    progress: Progress = None,
    fault_tolerance: Tolerance = None,
) -> FigureResult:
    """Random / LRU-10% / LRU-20% / CPPE normalised to the baseline."""
    apps = list(apps or _all_apps())
    _prewarm(
        _matrix_specs(
            apps, ["baseline", "random", "lru-10", "lru-20", "cppe"], rates, scale
        ),
        jobs,
        progress,
        fault_tolerance,
    )
    series: Series = {}
    for rate in rates:
        sub = _speedup_series(
            apps, ["random", "lru-10", "lru-20", "cppe"], "baseline", rate, scale,
            fault_tolerance=fault_tolerance,
        )
        for setup, points in sub.items():
            series[f"{setup}@{rate:.0%}"] = points
    return FigureResult(
        name="fig9",
        description="other eviction policies (with naive prefetch) vs CPPE",
        series=series,
        averages=_avg(series),
        notes=[
            "paper: reserved LRU helps thrashing types but never beats CPPE "
            "and hurts capacity-sensitive Type VI (LRU-10% loses 27% there "
            "at 50%); changing the eviction policy alone does not fix the "
            "baseline",
        ],
    )


# ---------------------------------------------------------------------------
# Fig. 10 — disabling prefetch under oversubscription
# ---------------------------------------------------------------------------

FIG10_APPS = ["HOT", "2DC", "BKP", "KMN", "HSD", "SAD", "NW", "MVT", "BIC"]


def fig10(
    apps: Optional[Sequence[str]] = None,
    rates: Sequence[float] = (0.75, 0.5),
    scale: float = 1.0,
    crash_budget: Optional[float] = None,
    jobs: Optional[int] = None,
    progress: Progress = None,
    fault_tolerance: Tolerance = None,
) -> FigureResult:
    """Prefetch-off-when-full and CPPE, both normalised to the naive
    baseline.  With ``crash_budget`` set, baseline runs that blow past the
    eviction budget crash (the paper's MVT/BIC 'X' marks) and normalisation
    falls back to the prefetch-off run, as the paper does."""
    apps = list(apps or FIG10_APPS)
    _prewarm(
        _matrix_specs(apps, ["baseline"], rates, scale, crash_budget=crash_budget)
        + _matrix_specs(apps, ["stop-on-full", "cppe"], rates, scale),
        jobs,
        progress,
        fault_tolerance,
    )
    series: Series = {}
    notes = [
        "paper: disabling prefetch costs up to 85% on regular apps, wins "
        "only for severe thrashers (SAD@50%, NW, MVT, BIC); CPPE beats "
        "disabling everywhere except SAD",
    ]
    for rate in rates:
        stop_pts: Dict[str, Optional[float]] = {}
        cppe_pts: Dict[str, Optional[float]] = {}
        for app in apps:
            base = _resolve_one(
                RunSpec(app, "baseline", rate, scale=scale,
                        crash_budget_factor=crash_budget),
                fault_tolerance,
            )
            stop = _resolve_one(
                RunSpec(app, "stop-on-full", rate, scale=scale), fault_tolerance
            )
            cppe = _resolve_one(
                RunSpec(app, "cppe", rate, scale=scale), fault_tolerance
            )
            if base is None or stop is None or cppe is None:
                stop_pts[app] = None
                cppe_pts[app] = None
                notes.append(
                    f"{app}@{rate:.0%}: run failed in the harness "
                    "(keep-going); omitted"
                )
            elif base.crashed:
                # Normalise to the prefetch-off run instead (paper's 'X').
                stop_pts[app] = 1.0
                cppe_pts[app] = cppe.speedup_over(stop)
                notes.append(
                    f"{app}@{rate:.0%}: baseline crashed "
                    f"({base.crash_reason}); normalised to prefetch-off"
                )
            else:
                stop_pts[app] = stop.speedup_over(base)
                cppe_pts[app] = cppe.speedup_over(base)
        series[f"stop-on-full@{rate:.0%}"] = stop_pts
        series[f"cppe@{rate:.0%}"] = cppe_pts
    return FigureResult(
        name="fig10",
        description="disabling prefetch when memory is full, vs baseline and CPPE",
        series=series,
        averages=_avg(series),
        notes=notes,
    )
