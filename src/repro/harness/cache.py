"""Persistent on-disk result cache for simulation runs.

Because every simulation is seeded and deterministic, a
:class:`~repro.engine.simulator.SimulationResult` is a pure function of its
:class:`~repro.harness.experiment.RunSpec` and the :class:`~repro.config.SimConfig`
it ran under.  This module caches results on disk keyed by a stable content
hash of both (plus a schema version), so regenerating a figure or table a
second time — even from a fresh process — reads results from disk instead of
re-simulating.

Layout: one pickle file per entry under ``<root>/<hh>/<hash>.pkl`` where
``hh`` is the first two hex digits of the key (keeps directories small).
Writes are atomic (temp file + ``os.replace``); any unreadable, truncated,
corrupted or schema-mismatched entry is treated as a miss, never an error.

The *active* cache is the one :func:`repro.harness.experiment.run_one`
consults by default.  It is lazily constructed from ``$REPRO_CACHE_DIR``
(default ``~/.cache/repro-cppe``) and can be disabled entirely with
``REPRO_CACHE=0`` or :func:`set_active_cache`\\ ``(None)``.  The test suite
installs a per-test temporary cache so tests can never poison each other.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import tempfile
from pathlib import Path
from typing import TYPE_CHECKING, Dict, Iterator, Optional, Tuple, Union, cast

from ..config import SimConfig
from ..registry import plugin_components_payload

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (experiment -> cache)
    from ..engine.simulator import SimulationResult
    from .experiment import RunSpec

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "FingerprintElision",
    "FINGERPRINT_ELISIONS",
    "ResultCache",
    "config_fingerprint",
    "spec_fingerprint",
    "serialize_result",
    "deserialize_result",
    "default_cache_dir",
    "cache_enabled",
    "get_active_cache",
    "set_active_cache",
]

#: Bump whenever simulator semantics change in a way that alters results —
#: all previously cached entries become unreachable (their keys embed the
#: old version) and are rewritten on the next regeneration.
#: v2: MHPE forward-distance clamp at T3 and pattern-buffer FIFO
#: re-record fix changed eviction/prefetch behaviour.
CACHE_SCHEMA_VERSION = 2

#: Pickle protocol pinned so "byte-identical serialization" is well-defined
#: across interpreter minor versions.
_PICKLE_PROTOCOL = 4


@dataclasses.dataclass(frozen=True)
class FingerprintElision:
    """One deliberate exclusion from the cache content hash.

    The fingerprints below hash whole objects (``dataclasses.asdict``), so
    any field *left out* is a conscious decision that must carry its
    reasoning.  This table is the machine-readable record of those
    decisions: ``repro lint --deep`` (REPRO501/REPRO502) cross-checks it
    against the actual ``del``/``pop`` elisions in the fingerprint code and
    against every config/spec field read reachable from the simulation
    entry points — an elided-but-read field without an entry here fails the
    build, as does an entry whose elision no longer exists.
    """

    dataclass_name: str
    field: str
    reason: str


#: The audited allowlist of fields that deliberately escape the hash.
#: Keep entries next to the fingerprints they describe; ``field="*"``
#: documents an entire object that never reaches the cache key.
FINGERPRINT_ELISIONS: Tuple[FingerprintElision, ...] = (
    FingerprintElision(
        dataclass_name="SimConfig",
        field="backend",
        reason=(
            "backend selects between implementations proven byte-identical "
            "(tests/test_backend_differential.py); both must share cache "
            "entries, and the key space predates the field"
        ),
    ),
    FingerprintElision(
        dataclass_name="RunSpec",
        field="instances",
        reason=(
            "elided only at its backwards-compatible default (1, the classic "
            "single-GPU run) so adding the knob did not orphan previously "
            "cached entries; any non-default value still enters the payload"
        ),
    ),
    FingerprintElision(
        dataclass_name="ObsConfig",
        field="*",
        reason=(
            "observability settings never reach cached results: traced runs "
            "force use_cache=False (run_one/docgen), and obs output is "
            "side-channel telemetry, not part of SimulationResult"
        ),
    ),
)


def _canonical_json(payload: object) -> str:
    """Deterministic JSON: sorted keys, no whitespace."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _config_payload(config: SimConfig) -> Dict[str, object]:
    """Hashable view of a config: ``asdict`` minus result-neutral fields.

    ``backend`` selects between two implementations that are proven
    byte-identical (``tests/test_backend_differential.py``), so it must not
    enter the hash: both backends share cache entries, and the key space
    predates the field.  Everything else reaches the hash by whole-object
    construction (REPRO201).
    """
    payload = dataclasses.asdict(config)
    del payload["backend"]
    return payload


def config_fingerprint(config: Optional[SimConfig]) -> str:
    """Stable content hash of a :class:`SimConfig` (``None`` = defaults).

    ``None`` and an explicitly constructed default ``SimConfig()`` hash
    identically — they run identical simulations.
    """
    effective = config if config is not None else SimConfig()
    blob = _canonical_json(_config_payload(effective))
    return hashlib.sha256(blob.encode()).hexdigest()


def spec_fingerprint(
    spec: "RunSpec",
    config: Optional[SimConfig] = None,
    schema_version: int = CACHE_SCHEMA_VERSION,
) -> str:
    """Cache key: sha256 over RunSpec fields + SimConfig fields + schema.

    Whole-object hashing via ``dataclasses.asdict`` (REPRO201): every spec
    field reaches the hash by construction.  The one refinement: extension
    fields at their backwards-compatible default are elided, so adding a
    scenario knob (``instances=1`` — the classic single-GPU run) does not
    orphan every previously cached entry.  Any non-default value still
    enters the payload and changes the key.
    """
    effective = config if config is not None else SimConfig()
    spec_fields = dataclasses.asdict(spec)
    if spec_fields.get("instances") == 1:
        del spec_fields["instances"]
    payload = {
        "schema": schema_version,
        "spec": spec_fields,
        "config": _config_payload(effective),
    }
    # Component identity sections derive from the registry's declared
    # ``fingerprint_fields``.  In-tree setups contribute nothing — the
    # payload stays byte-identical to the pre-registry format, so warm
    # caches survive (golden-key test) — but a plugin component's name,
    # origin module and declared fields enter the key whenever a plugin is
    # actually part of the setup.
    components = plugin_components_payload(spec.setup)
    if components is not None:
        payload["components"] = components
    return hashlib.sha256(_canonical_json(payload).encode()).hexdigest()


def serialize_result(result: "SimulationResult") -> bytes:
    """Canonical byte serialization of a result (what the cache stores)."""
    return pickle.dumps(result, protocol=_PICKLE_PROTOCOL)


def deserialize_result(blob: bytes) -> "SimulationResult":
    return cast("SimulationResult", pickle.loads(blob))


class ResultCache:
    """Content-addressed on-disk store of :class:`SimulationResult` objects.

    Tracks ``hits`` / ``misses`` / ``stores`` counters for the lifetime of
    the instance (figure regenerations use them to prove a warm cache does
    zero new simulations).
    """

    def __init__(
        self,
        root: Union[str, Path],
        schema_version: int = CACHE_SCHEMA_VERSION,
    ) -> None:
        self.root = Path(root)
        self.schema_version = schema_version
        self.hits = 0
        self.misses = 0
        self.stores = 0

    # --- keys & paths ----------------------------------------------------

    def key_for(self, spec: "RunSpec", config: Optional[SimConfig] = None) -> str:
        return spec_fingerprint(spec, config, schema_version=self.schema_version)

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    # --- read / write ----------------------------------------------------

    def get(
        self, spec: "RunSpec", config: Optional[SimConfig] = None
    ) -> Optional["SimulationResult"]:
        """Load a cached result, or ``None`` (a miss) if absent/unreadable."""
        key = self.key_for(spec, config)
        path = self.path_for(key)
        try:
            blob = path.read_bytes()
            payload = pickle.loads(blob)
            if (
                not isinstance(payload, dict)
                or payload.get("schema") != self.schema_version
                or payload.get("key") != key
            ):
                raise ValueError("cache entry metadata mismatch")
            result = deserialize_result(payload["result"])
        except FileNotFoundError:
            self.misses += 1
            return None
        except Exception:
            # Corrupted / truncated / stale-format entry: drop it and miss.
            self.misses += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.hits += 1
        return result

    def put(
        self,
        spec: "RunSpec",
        config: Optional[SimConfig],
        result: "SimulationResult",
    ) -> Path:
        """Atomically store ``result``; returns the entry path."""
        key = self.key_for(spec, config)
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "schema": self.schema_version,
            "key": key,
            "result": serialize_result(result),
        }
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(payload, fh, protocol=_PICKLE_PROTOCOL)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stores += 1
        return path

    # --- maintenance ------------------------------------------------------

    def _entry_paths(self) -> Iterator[Path]:
        if not self.root.is_dir():
            return
        yield from sorted(self.root.glob("*/*.pkl"))

    def _entry_schema(self, path: Path) -> Optional[int]:
        """The stored ``schema`` field of an entry, or ``None`` when the
        entry is unreadable / not in the expected envelope format."""
        try:
            payload = pickle.loads(path.read_bytes())
        except Exception:
            return None
        if isinstance(payload, dict) and isinstance(payload.get("schema"), int):
            return cast(int, payload["schema"])
        return None

    def clear(self) -> int:
        """Delete this cache's *own* entries; returns the number removed.

        Only entries whose stored ``schema`` matches ``schema_version`` are
        deleted: after a schema bump the old generation's entries belong to
        a different key space this cache can never read, so clearing must
        not destroy them (an older checkout may still be using them).
        Unreadable entries are also left alone — ``get()`` already
        self-heals those on access.
        """
        removed = 0
        for path in self._entry_paths():
            if self._entry_schema(path) != self.schema_version:
                continue
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def stats(self) -> Dict[str, object]:
        """Snapshot: on-disk entry count/bytes + lifetime counters.

        ``entries``/``bytes`` cover only this cache's schema generation;
        entries written under any other schema version (or unreadable ones)
        are surfaced separately as ``stale_entries``/``stale_bytes`` so a
        schema bump is visible instead of silently inflating the count.
        """
        entries = 0
        total_bytes = 0
        stale_entries = 0
        stale_bytes = 0
        for path in self._entry_paths():
            try:
                size = path.stat().st_size
            except OSError:
                continue
            if self._entry_schema(path) == self.schema_version:
                entries += 1
                total_bytes += size
            else:
                stale_entries += 1
                stale_bytes += size
        return {
            "root": str(self.root),
            "schema_version": self.schema_version,
            "entries": entries,
            "bytes": total_bytes,
            "stale_entries": stale_entries,
            "stale_bytes": stale_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
        }


# --- active cache (consulted by run_one by default) ------------------------

_active: Optional[ResultCache] = None
_active_configured = False  # False = lazily construct on first use


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` or ``~/.cache/repro-cppe``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-cppe"


def cache_enabled() -> bool:
    """Disk caching is on unless ``REPRO_CACHE`` is 0/off/false/no."""
    return os.environ.get("REPRO_CACHE", "1").strip().lower() not in (
        "0",
        "off",
        "false",
        "no",
    )


def get_active_cache() -> Optional[ResultCache]:
    """The process-wide cache ``run_one`` consults (lazily constructed)."""
    global _active, _active_configured
    if not _active_configured:
        _active = ResultCache(default_cache_dir()) if cache_enabled() else None
        _active_configured = True
    return _active


def set_active_cache(cache: Optional[ResultCache]) -> Optional[ResultCache]:
    """Install ``cache`` (or ``None`` to disable); returns the previous one."""
    global _active, _active_configured
    previous = _active
    _active = cache
    _active_configured = True
    return previous
