"""Experiment runner: declarative run specs + an in-process result cache.

Figures share many runs (e.g. the baseline at 50% appears in Figs. 8, 9 and
10); ``run_matrix`` memoises on the spec key so each configuration simulates
once per process.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterable, Optional, Tuple

from ..config import SimConfig
from ..engine.simulator import SimulationResult, Simulator
from ..workloads.suite import make_workload
from .baselines import build_setup

__all__ = ["RunSpec", "run_one", "run_matrix", "clear_cache"]


@dataclass(frozen=True)
class RunSpec:
    """One simulation to run: application x setup x oversubscription."""

    app: str
    setup: str  # a key of harness.baselines.SETUPS
    oversubscription: Optional[float]
    scale: float = 1.0
    seed: Optional[int] = None
    #: Enable the runaway-thrashing crash model with this eviction budget
    #: (multiples of the footprint's chunk count); None disables it.
    crash_budget_factor: Optional[float] = None

    def key(self) -> Tuple:
        return (
            self.app,
            self.setup,
            self.oversubscription,
            self.scale,
            self.seed,
            self.crash_budget_factor,
        )


_CACHE: Dict[Tuple, SimulationResult] = {}


def clear_cache() -> None:
    """Drop all memoised results (tests use this for isolation)."""
    _CACHE.clear()


def run_one(
    spec: RunSpec, config: Optional[SimConfig] = None, use_cache: bool = True
) -> SimulationResult:
    """Run (or fetch from cache) a single simulation."""
    cache_key = (spec.key(), id(config) if config is not None else None)
    if use_cache and cache_key in _CACHE:
        return _CACHE[cache_key]

    cfg = config or SimConfig()
    if spec.crash_budget_factor is not None:
        cfg = cfg.with_(
            uvm=replace(
                cfg.uvm, crash_eviction_budget_factor=spec.crash_budget_factor
            )
        )
    workload = make_workload(spec.app, scale=spec.scale, seed=spec.seed)
    policy, prefetcher = build_setup(spec.setup)
    result = Simulator(
        workload,
        policy=policy,
        prefetcher=prefetcher,
        oversubscription=spec.oversubscription,
        config=cfg,
    ).run()
    if use_cache:
        _CACHE[cache_key] = result
    return result


def run_matrix(
    specs: Iterable[RunSpec],
    config: Optional[SimConfig] = None,
    use_cache: bool = True,
) -> Dict[Tuple, SimulationResult]:
    """Run a batch of specs; returns {spec.key(): result}."""
    results: Dict[Tuple, SimulationResult] = {}
    for spec in specs:
        results[spec.key()] = run_one(spec, config=config, use_cache=use_cache)
    return results
