"""Experiment runner: declarative run specs + layered result caching.

Figures share many runs (e.g. the baseline at 50% appears in Figs. 8, 9 and
10), and whole regenerations repeat across sessions, so results are cached
at two layers:

* an in-process memo (``_CACHE``) keyed by ``(spec.key(), config hash)`` —
  each configuration simulates at most once per process;
* the persistent disk cache of :mod:`repro.harness.cache` — repeated
  regenerations in fresh processes read results from disk instead of
  re-simulating.

``run_matrix`` fans batches out over a process pool when ``jobs > 1``
(see :mod:`repro.harness.parallel`); because simulations are seeded and
deterministic, parallel and serial execution produce identical results
(enforced by ``tests/test_parallel_runner.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..config import SimConfig
from ..engine.simulator import SimulationResult, Simulator
from ..obs import Observability, ObsConfig, TraceEvent, make_observability
from ..workloads.suite import make_workload
from .baselines import build_setup
from .cache import ResultCache, config_fingerprint, get_active_cache

__all__ = [
    "RunSpec",
    "BatchStats",
    "run_one",
    "run_matrix",
    "submit_batch",
    "collapse_results",
    "spec_label",
    "clear_cache",
    "execution_count",
]


@dataclass(frozen=True)
class RunSpec:
    """One simulation to run: application x setup x oversubscription."""

    app: str
    setup: str  # a key of harness.baselines.SETUPS
    oversubscription: Optional[float]
    scale: float = 1.0
    seed: Optional[int] = None
    #: Enable the runaway-thrashing crash model with this eviction budget
    #: (multiples of the footprint's chunk count); None disables it.
    crash_budget_factor: Optional[float] = None
    #: Shard the workload across this many independent MemorySystem
    #: instances on one event queue (``repro.engine.multi``).  The default
    #: of 1 is the classic single-GPU simulator and — so that a pure
    #: refactor needs no cache schema bump — is elided from the disk-cache
    #: fingerprint (see :func:`repro.harness.cache.spec_fingerprint`).
    instances: int = 1

    def key(self) -> Tuple:
        return (
            self.app,
            self.setup,
            self.oversubscription,
            self.scale,
            self.seed,
            self.crash_budget_factor,
            self.instances,
        )


_CACHE: Dict[Tuple, SimulationResult] = {}

#: Simulations actually executed by this process (not served from any cache).
_EXECUTIONS = 0

#: Sentinel: "use the process-wide active disk cache".
_ACTIVE = object()


def execution_count() -> int:
    """Number of simulations this process has actually executed."""
    return _EXECUTIONS


def clear_cache(disk: bool = True) -> None:
    """Drop all memoised results (tests use this for isolation).

    With ``disk=True`` (the default) the active on-disk cache is emptied as
    well — required whenever simulator semantics change without a schema
    bump, and what ``repro cache clear`` calls.  Pass ``disk=False`` to drop
    only the in-process memo (e.g. to force disk-cache reads).
    """
    _CACHE.clear()
    if disk:
        active = get_active_cache()
        if active is not None:
            active.clear()


def _resolve_cache(cache) -> Optional[ResultCache]:
    if cache is _ACTIVE:
        return get_active_cache()
    return cache


def _memo_key(spec: RunSpec, config: Optional[SimConfig]) -> Tuple:
    return (spec.key(), config_fingerprint(config))


def _execute(
    spec: RunSpec,
    config: Optional[SimConfig] = None,
    obs: Optional[Observability] = None,
) -> SimulationResult:
    """Actually simulate ``spec`` (no caching).

    This is the single execution path shared by the serial runner and the
    process-pool workers, which is what makes serial-vs-parallel differential
    testing meaningful.
    """
    global _EXECUTIONS
    # Per-process diagnostic counter, read only via execution_count() in the
    # owning process; workers never aggregate it, so serial/parallel parity
    # is unaffected.
    _EXECUTIONS += 1  # repro-lint: disable=REPRO301
    cfg = config or SimConfig()
    if spec.crash_budget_factor is not None:
        cfg = cfg.with_(
            uvm=replace(
                cfg.uvm, crash_eviction_budget_factor=spec.crash_budget_factor
            )
        )
    workload = make_workload(spec.app, scale=spec.scale, seed=spec.seed)
    if spec.instances > 1:
        from ..engine.multi import ShardedSimulator  # deferred: rarely used

        pairs = [build_setup(spec.setup) for _ in range(spec.instances)]
        return ShardedSimulator(
            workload,
            policies=[p for p, _ in pairs],
            prefetchers=[pf for _, pf in pairs],
            oversubscription=spec.oversubscription,
            config=cfg,
            obs=obs,
        ).run()
    policy, prefetcher = build_setup(spec.setup)
    return Simulator(
        workload,
        policy=policy,
        prefetcher=prefetcher,
        oversubscription=spec.oversubscription,
        config=cfg,
        obs=obs,
    ).run()


def _spec_label(spec: RunSpec) -> str:
    """Deterministic run label used to tag merged trace events."""
    rate = (
        "unl"
        if spec.oversubscription is None
        else f"{spec.oversubscription:.0%}"
    )
    label = f"{spec.app}@{rate}/{spec.setup}"
    if spec.scale != 1.0:
        label += f"/x{spec.scale:g}"
    if spec.seed is not None:
        label += f"/s{spec.seed}"
    if spec.instances != 1:
        label += f"/i{spec.instances}"
    return label


def spec_label(spec: RunSpec) -> str:
    """Public alias of :func:`_spec_label`: the deterministic label under
    which a spec's trace events, fault-tolerance outcomes
    (:class:`~repro.harness.faults.SpecOutcome`) and fault-plan matches are
    recorded.  The experiment service joins API responses to outcomes
    through this label."""
    return _spec_label(spec)


def _execute_traced(
    spec: RunSpec,
    config: Optional[SimConfig],
    obs_config: ObsConfig,
) -> Tuple[SimulationResult, List[TraceEvent], Dict[str, Dict[str, object]]]:
    """Traced execution entry point (top-level, picklable: this exact
    function is submitted to process pools *and* called on the serial path,
    so merged traces are identical either way).  Returns the result plus the
    run's raw events and metrics snapshot for the parent to absorb."""
    obs = make_observability(obs_config)
    result = _execute(spec, config, obs=obs)
    return result, obs.tracer.events, obs.metrics.snapshot()


def run_one(
    spec: RunSpec,
    config: Optional[SimConfig] = None,
    use_cache: bool = True,
    cache=_ACTIVE,
    obs: Optional[Observability] = None,
) -> SimulationResult:
    """Run (or fetch from a cache layer) a single simulation.

    Lookup order: in-process memo, then the disk ``cache`` (the active one
    by default; pass ``None`` to skip disk).  ``use_cache=False`` bypasses
    and updates neither layer.

    Passing an enabled ``obs`` forces a live simulation (both cache layers
    are bypassed and left untouched: a cached result has no trace, and a
    traced run must not overwrite cache entries produced untraced); the
    run's events and metrics are absorbed into ``obs`` under the spec's
    label.
    """
    if obs is not None and obs.enabled:
        result, events, snapshot = _execute_traced(spec, config, obs.config())
        obs.absorb(_spec_label(spec), events, snapshot)
        return result
    if not use_cache:
        return _execute(spec, config)
    memo_key = _memo_key(spec, config)
    if memo_key in _CACHE:
        return _CACHE[memo_key]
    disk = _resolve_cache(cache)
    if disk is not None:
        result = disk.get(spec, config)
        if result is not None:
            _CACHE[memo_key] = result
            return result
    result = _execute(spec, config)
    if disk is not None:
        disk.put(spec, config, result)
    _CACHE[memo_key] = result
    return result


def _seed_memo(
    spec: RunSpec, config: Optional[SimConfig], result: SimulationResult
) -> None:
    """Install a result produced elsewhere (worker process / disk) in the
    in-process memo, so subsequent ``run_one`` calls hit it."""
    _CACHE[_memo_key(spec, config)] = result


@dataclass(frozen=True)
class BatchStats:
    """Where one batch's results came from (per :func:`submit_batch`)."""

    simulated: int  # executed fresh (serially or in workers)
    memo_hits: int  # served from the in-process memo
    cache_hits: int  # served from the persistent disk cache
    failed: int  # specs whose simulation failed (keep_going)
    timed_out: int  # specs reaped by the worker timeout

    @property
    def cached(self) -> int:
        """Specs served from either cache layer."""
        return self.memo_hits + self.cache_hits


def collapse_results(
    specs: Sequence[RunSpec],
    results: Sequence[Optional[SimulationResult]],
) -> Dict[Tuple, Optional[SimulationResult]]:
    """Collapse position-aligned ``(spec, result)`` pairs to ``{key: result}``.

    A batch may legitimately contain the same spec more than once (service
    clients concatenate overlapping sweeps; figures share baselines).  The
    old ``{spec.key(): r for ...}`` comprehension let *zip order* decide
    which occurrence's value survived for a shared key — so under
    ``keep_going`` a key whose occurrences resolved to both a result and a
    ``None`` (failed) could collapse to either, depending on input order.
    The mapping is now order-independent: a successful result always wins
    over ``None``; a key maps to ``None`` only when **every** occurrence
    failed.  Both outcomes remain visible to the caller — the failure is
    still recorded in the batch's :class:`SpecOutcome` list and counted in
    :class:`BatchStats`; only the *result* mapping prefers the success.
    """
    out: Dict[Tuple, Optional[SimulationResult]] = {}
    for spec, result in zip(specs, results):
        key = spec.key()
        if key not in out or out[key] is None:
            out[key] = result
    return out


def submit_batch(
    specs: Iterable[RunSpec],
    config: Optional[SimConfig] = None,
    use_cache: bool = True,
    jobs: Optional[int] = None,
    cache=_ACTIVE,
    progress: Optional[Callable[[int, int], None]] = None,
    obs: Optional[Observability] = None,
    fault_tolerance=None,
) -> Tuple[Dict[Tuple, SimulationResult], BatchStats]:
    """Run a batch through the parallel engine; also report cache traffic.

    Same contract as :func:`run_matrix` (which delegates here whenever a
    runner is needed), but always routes through
    :class:`~repro.harness.parallel.ParallelRunner` — even at ``jobs=1``,
    where the runner executes serially in-process — and returns the
    runner's per-batch :class:`BatchStats` alongside the results.  Batch
    drivers that adapt to how much work a round actually cost (e.g. the
    adaptive sweep loop) need the simulated/cached split; plain callers can
    keep using :func:`run_matrix`.
    """
    specs = list(specs)
    from .parallel import ParallelRunner  # deferred: avoids import cycle

    runner = ParallelRunner(
        jobs=jobs if jobs is not None else 1,
        cache=cache,
        progress=progress,
        fault_tolerance=fault_tolerance,
    )
    results = runner.run(specs, config=config, use_cache=use_cache, obs=obs)
    stats = BatchStats(
        simulated=runner.simulated,
        memo_hits=runner.memo_hits,
        cache_hits=runner.cache_hits,
        failed=runner.failed,
        timed_out=runner.timed_out,
    )
    return collapse_results(specs, results), stats


def run_matrix(
    specs: Iterable[RunSpec],
    config: Optional[SimConfig] = None,
    use_cache: bool = True,
    jobs: Optional[int] = None,
    cache=_ACTIVE,
    progress: Optional[Callable[[int, int], None]] = None,
    obs: Optional[Observability] = None,
    fault_tolerance=None,
) -> Dict[Tuple, SimulationResult]:
    """Run a batch of specs; returns ``{spec.key(): result}``.

    ``jobs > 1`` fans the batch out over a process pool (falling back to
    serial execution if no pool can be started); ``jobs`` of ``None``/``1``
    runs serially in-process.  ``progress(done, total)`` is invoked after
    each completed spec.  An enabled ``obs`` traces every run (cache layers
    bypassed); worker traces merge into ``obs`` in input-spec order, so the
    merged trace is identical however the batch was scheduled.

    A ``fault_tolerance`` policy (:class:`~repro.harness.faults.FaultTolerance`)
    always routes through :class:`~repro.harness.parallel.ParallelRunner` —
    even for serial batches — so per-spec outcome recording, ``keep_going``
    (failed specs map to ``None`` instead of aborting the batch), and the
    fault-injection hook behave identically at any job count.
    """
    specs = list(specs)
    if fault_tolerance is not None or (jobs is not None and jobs > 1):
        results, _ = submit_batch(
            specs,
            config=config,
            use_cache=use_cache,
            jobs=jobs,
            cache=cache,
            progress=progress,
            obs=obs,
            fault_tolerance=fault_tolerance,
        )
        return results
    out: Dict[Tuple, SimulationResult] = {}
    for i, spec in enumerate(specs):
        out[spec.key()] = run_one(
            spec, config=config, use_cache=use_cache, cache=cache, obs=obs
        )
        if progress is not None:
            progress(i + 1, len(specs))
    return out
