"""Exhaustive policy x prefetcher shootout, enumerated from the registry.

The first-class artifact that the component registries exist for: every
registered eviction policy crossed with every registered prefetcher on one
application, run as a single batch through :func:`submit_batch` (memo +
disk cache + optional process pool), ranked by speedup over the baseline
setup.  Because the combos are *enumerated* — ``names("policy")`` x
``names("prefetcher")`` — a plugin that registers one new component at
import time automatically grows the matrix; nothing here is edited.

Pair combos that coincide with a registered named setup are run under that
setup's canonical name (:func:`repro.registry.canonical_setup_name`), so a
shootout shares cache entries with every other harness entry point — a
warm-cache re-run performs zero new simulations (asserted in CI).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..config import SimConfig
from ..registry import canonical_setup_name, names, setup_components
from .experiment import BatchStats, RunSpec, SimulationResult, submit_batch
from .faults import FaultTolerance
from .tables import TableResult

__all__ = [
    "BASELINE_SETUP",
    "ShootoutResult",
    "run_shootout",
    "shootout_setups",
    "shootout_table",
]

Progress = Optional[Callable[[int, int], None]]

#: Speedups are normalised against this registered setup (LRU eviction +
#: naive locality prefetch, the paper's baseline configuration).
BASELINE_SETUP = "baseline"


@dataclass
class ShootoutResult:
    """One shootout: the ranked table plus the batch's cache traffic."""

    app: str
    rate: float
    scale: float
    baseline: str
    table: TableResult
    stats: BatchStats
    #: Setups whose run crashed (thrashing detector) or failed (keep_going).
    crashed: List[str] = field(default_factory=list)
    failed: List[str] = field(default_factory=list)

    @property
    def combos(self) -> int:
        return len(self.table.rows)

    @property
    def new_simulations(self) -> int:
        """Simulations executed fresh for this shootout (0 on a warm cache)."""
        return self.stats.simulated

    @property
    def cached(self) -> int:
        return self.stats.cached

    def render(self) -> str:
        return self.table.render()

    def to_dict(self) -> Dict[str, object]:
        """JSON payload for ``repro shootout --json`` and CI assertions."""
        return {
            "app": self.app,
            "rate": self.rate,
            "scale": self.scale,
            "baseline": self.baseline,
            "combos": self.combos,
            "new_simulations": self.new_simulations,
            "cached": self.cached,
            "crashed": list(self.crashed),
            "failed": list(self.failed),
            "headers": list(self.table.headers),
            "rows": [list(r) for r in self.table.rows],
        }


def shootout_setups() -> List[str]:
    """Every policy x prefetcher combo as a canonical setup name.

    Sorted for deterministic batch order; canonicalisation folds pairs
    that match a registered named setup (e.g. ``lru+locality`` runs as
    ``baseline``) so the shootout hits the same cache keys as named runs.
    """
    return sorted(
        canonical_setup_name(policy, prefetcher)
        for policy in names("policy")
        for prefetcher in names("prefetcher")
    )


def _row(
    setup: str,
    result: SimulationResult,
    baseline: Optional[SimulationResult],
) -> List[object]:
    policy, prefetcher = setup_components(setup)
    if result.crashed or baseline is None or baseline.crashed:
        speedup: Optional[float] = None
    else:
        speedup = result.speedup_over(baseline)
    return [
        setup,
        policy,
        prefetcher,
        speedup,
        result.stats.far_faults,
        result.stats.chunks_evicted,
        f"{result.stats.prefetch_accuracy:.0%}",
        result.crashed,
    ]


def run_shootout(
    app: str,
    rate: float = 0.5,
    scale: float = 1.0,
    seed: Optional[int] = None,
    config: Optional[SimConfig] = None,
    jobs: Optional[int] = None,
    progress: Progress = None,
    fault_tolerance: Optional[FaultTolerance] = None,
) -> ShootoutResult:
    """Run every registered policy x prefetcher combo on ``app``.

    One :func:`submit_batch` call covers the whole matrix; rows rank by
    speedup over :data:`BASELINE_SETUP` (crashed or failed runs sink to
    the bottom with a ``-`` speedup — a crashed run's cycle count is not
    a runtime).  Pass a ``keep_going`` ``fault_tolerance`` to tolerate
    individual combo failures; failed combos are listed, not raised.
    """
    setups = shootout_setups()
    specs = [RunSpec(app, setup, rate, scale=scale, seed=seed)
             for setup in setups]
    results, stats = submit_batch(
        specs,
        config=config,
        jobs=jobs,
        progress=progress,
        fault_tolerance=fault_tolerance,
    )
    by_setup: Dict[str, Optional[SimulationResult]] = {
        spec.setup: results.get(spec.key()) for spec in specs
    }
    baseline = by_setup.get(BASELINE_SETUP)
    rows: List[List[object]] = []
    crashed: List[str] = []
    failed: List[str] = []
    for setup in setups:
        result = by_setup[setup]
        if result is None:  # keep_going dropped it
            failed.append(setup)
            continue
        if result.crashed:
            crashed.append(setup)
        rows.append(_row(setup, result, baseline))
    # Rank: completed runs by speedup descending, then crashed, then by
    # name — a total deterministic order even when speedups tie.
    rows.sort(key=lambda r: (r[3] is None, -(r[3] or 0.0), str(r[0])))
    headers = ["setup", "policy", "prefetcher", "speedup", "faults",
               "evictions", "prefetch acc", "crashed"]
    notes = []
    if failed:
        notes.append(f"failed (excluded): {', '.join(failed)}")
    if baseline is None or baseline.crashed:
        notes.append(
            f"baseline setup {BASELINE_SETUP!r} crashed or failed: "
            "speedups unavailable"
        )
    table = TableResult(
        name="shootout",
        description=(
            f"{app} at {rate:.0%} oversubscription — every registered "
            f"policy x prefetcher combo (speedup vs {BASELINE_SETUP!r})"
        ),
        headers=headers,
        rows=rows,
        notes=notes,
    )
    return ShootoutResult(
        app=app,
        rate=rate,
        scale=scale,
        baseline=BASELINE_SETUP,
        table=table,
        stats=stats,
        crashed=crashed,
        failed=failed,
    )


def shootout_table(
    apps: Optional[List[str]] = None,
    rate: float = 0.5,
    scale: float = 1.0,
    jobs: Optional[int] = None,
    progress: Progress = None,
    fault_tolerance: Optional[FaultTolerance] = None,
) -> TableResult:
    """Regenerator-shaped entry point (``repro table/regen shootout``,
    ``docgen``): same keyword surface as the paper-table generators.

    ``apps`` follows the regenerator convention but a shootout is a
    single-app artifact: the first entry (default ``SRD``, the canonical
    Type IV thrasher) is used.
    """
    app = (list(apps) or ["SRD"])[0] if apps else "SRD"
    return run_shootout(
        app,
        rate=rate,
        scale=scale,
        jobs=jobs,
        progress=progress,
        fault_tolerance=fault_tolerance,
    ).table
