"""Plain-text rendering of experiment outputs (tables and bar series).

The paper's figures are bar charts; in a terminal reproduction the same
information renders as rows of numbers plus a crude bar so the shape is
visible at a glance.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

__all__ = ["render_table", "render_series", "format_value"]


def format_value(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.2f}"
    # Control characters would break the row alignment.
    return " ".join(str(value).split()) or repr(str(value))


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    title: Optional[str] = None,
) -> str:
    """Render an aligned ASCII table."""
    str_rows = [[format_value(cell) for cell in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in str_rows)) if str_rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(
    series: Dict[str, Dict[str, Optional[float]]],
    title: Optional[str] = None,
    bar_scale: float = 20.0,
    reference: float = 1.0,
) -> str:
    """Render {series_name: {x_label: value}} as grouped text bars.

    ``None`` values (crashed runs) render as ``X``, mirroring the paper's
    crash markers in Fig. 10.
    """
    lines = []
    if title:
        lines.append(title)
    labels: List[str] = []
    for points in series.values():
        for label in points:
            if label not in labels:
                labels.append(label)
    max_val = max(
        (v for points in series.values() for v in points.values() if v is not None),
        default=1.0,
    )
    scale = bar_scale / max(max_val, reference)
    name_w = max((len(n) for n in series), default=4)
    for label in labels:
        lines.append(f"{label}:")
        for name, points in series.items():
            value = points.get(label)
            if value is None:
                lines.append(f"  {name.ljust(name_w)} {'X (crashed)'}")
                continue
            bar = "#" * max(1, int(round(value * scale)))
            lines.append(f"  {name.ljust(name_w)} {value:6.2f} {bar}")
    return "\n".join(lines)
