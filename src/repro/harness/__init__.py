"""Experiment harness: named configurations, runners, and per-figure/table
regenerators for the paper's entire evaluation section."""

from .baselines import (
    POLICY_NAMES,
    PREFETCHER_NAMES,
    SETUPS,
    build_policy,
    build_prefetcher,
    build_setup,
)
from .cache import (
    CACHE_SCHEMA_VERSION,
    ResultCache,
    get_active_cache,
    set_active_cache,
)
from .experiment import RunSpec, clear_cache, run_one, run_matrix
from .parallel import ParallelRunner, default_jobs
from .report import render_table, render_series
from . import figures, tables

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "ResultCache",
    "get_active_cache",
    "set_active_cache",
    "ParallelRunner",
    "default_jobs",
    "clear_cache",
    "POLICY_NAMES",
    "PREFETCHER_NAMES",
    "SETUPS",
    "build_policy",
    "build_prefetcher",
    "build_setup",
    "RunSpec",
    "run_one",
    "run_matrix",
    "render_table",
    "render_series",
    "figures",
    "tables",
]
