"""Experiment harness: named configurations, runners, and per-figure/table
regenerators for the paper's entire evaluation section."""

from .baselines import (
    POLICY_NAMES,
    PREFETCHER_NAMES,
    SETUPS,
    build_policy,
    build_prefetcher,
    build_setup,
)
from .experiment import RunSpec, run_one, run_matrix
from .report import render_table, render_series
from . import figures, tables

__all__ = [
    "POLICY_NAMES",
    "PREFETCHER_NAMES",
    "SETUPS",
    "build_policy",
    "build_prefetcher",
    "build_setup",
    "RunSpec",
    "run_one",
    "run_matrix",
    "render_table",
    "render_series",
    "figures",
    "tables",
]
