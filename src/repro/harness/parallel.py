"""Parallel experiment execution engine.

:class:`ParallelRunner` fans a batch of :class:`~repro.harness.experiment.RunSpec`
simulations out over a :class:`concurrent.futures.ProcessPoolExecutor`
(worker count configurable, default ``os.cpu_count()``), layered on the same
two caches as the serial path:

* specs already in the in-process memo or the persistent disk cache are
  served without touching the pool (counted in ``memo_hits`` /
  ``cache_hits``);
* the remainder are simulated in worker processes via the *same*
  ``experiment._execute`` code path the serial runner uses, then written to
  the disk cache and seeded into the memo (counted in ``simulated``).

Because simulations are seeded and deterministic, the runner's results are
field-for-field identical to serial ``run_matrix`` output — enforced by the
differential suite in ``tests/test_parallel_runner.py``.

When the pool cannot be started (e.g. a platform without working process
semaphores) or breaks mid-batch, the runner degrades gracefully to serial
in-process execution; ``jobs=1`` requests serial execution outright.
"""

from __future__ import annotations

import os
import sys
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..config import SimConfig
from ..engine.simulator import SimulationResult
from ..obs import Observability, ObsConfig
from . import experiment
from .cache import ResultCache
from .experiment import (
    RunSpec,
    _execute,
    _execute_traced,
    _memo_key,
    _resolve_cache,
    _spec_label,
)

__all__ = ["ParallelRunner", "default_jobs", "stderr_progress"]

#: Errors that mean "no usable process pool here" -> serial fallback.
_POOL_ERRORS = (
    OSError,
    NotImplementedError,
    ImportError,
    BrokenProcessPool,
    RuntimeError,
)


def default_jobs() -> int:
    """Default worker count: ``os.cpu_count()`` (at least 1)."""
    return os.cpu_count() or 1


def stderr_progress(label: str = "runs") -> Callable[[int, int], None]:
    """A progress callback that renders ``label: done/total`` on stderr."""

    def report(done: int, total: int) -> None:
        end = "\n" if done >= total else ""
        print(f"\r{label}: {done}/{total}", end=end, file=sys.stderr, flush=True)

    return report


def _simulate_spec(
    spec: RunSpec, config: Optional[SimConfig]
) -> SimulationResult:
    """Top-level worker entry point (must be picklable)."""
    return _execute(spec, config)


class ParallelRunner:
    """Run batches of specs concurrently, with persistent caching.

    Parameters
    ----------
    jobs:
        Worker processes; ``None`` means :func:`default_jobs`, ``1`` means
        serial in-process execution (no pool).
    cache:
        A :class:`ResultCache`, ``None`` to disable the disk layer, or the
        default (the process-wide active cache).
    progress:
        ``progress(done, total)`` called after every resolved spec
        (including cache hits).
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        cache=experiment._ACTIVE,
        progress: Optional[Callable[[int, int], None]] = None,
    ):
        self.jobs = jobs if jobs is not None and jobs > 0 else default_jobs()
        self._cache_arg = cache
        self.progress = progress
        # Lifetime counters (across run() calls on this instance):
        self.simulated = 0  # simulations actually executed
        self.memo_hits = 0  # served from the in-process memo
        self.cache_hits = 0  # served from the disk cache
        self.fell_back_serial = False  # pool unavailable/broken at least once

    @property
    def cache(self) -> Optional[ResultCache]:
        return _resolve_cache(self._cache_arg)

    # ------------------------------------------------------------------

    def run(
        self,
        specs: Sequence[RunSpec],
        config: Optional[SimConfig] = None,
        use_cache: bool = True,
        obs: Optional[Observability] = None,
    ) -> List[SimulationResult]:
        """Resolve every spec; returns results aligned with ``specs``.

        Duplicate specs are simulated once.  With ``use_cache=False`` both
        cache layers are bypassed (every distinct spec simulates).

        An enabled ``obs`` traces every distinct spec: caching is forced off
        (cached results have no trace; traced results must not pollute the
        cache), workers return their event lists and metrics snapshots, and
        the parent absorbs them in *input-spec order* once every run has
        finished — the merged trace never depends on pool scheduling.
        """
        obs_config: Optional[ObsConfig] = None
        if obs is not None and obs.enabled:
            obs_config = obs.config()
            use_cache = False
        traced = obs_config is not None
        specs = list(specs)
        total = len(specs)
        done = 0
        resolved: Dict[Tuple, SimulationResult] = {}
        pending: List[Tuple] = []  # distinct memo keys needing simulation
        pending_specs: Dict[Tuple, RunSpec] = {}
        traced_payloads: Dict[Tuple, Tuple[list, dict]] = {}
        disk = self.cache if use_cache else None

        for spec in specs:
            key = _memo_key(spec, config)
            if key in resolved or key in pending_specs:
                continue
            if use_cache and key in experiment._CACHE:
                resolved[key] = experiment._CACHE[key]
                self.memo_hits += 1
                done += 1
                self._report(done, total)
                continue
            if disk is not None:
                hit = disk.get(spec, config)
                if hit is not None:
                    resolved[key] = hit
                    experiment._CACHE[key] = hit
                    self.cache_hits += 1
                    done += 1
                    self._report(done, total)
                    continue
            pending.append(key)
            pending_specs[key] = spec

        def finish(key: Tuple, payload) -> None:
            nonlocal done
            spec = pending_specs[key]
            if traced:
                result, events, snapshot = payload
                traced_payloads[key] = (events, snapshot)
            else:
                result = payload
            resolved[key] = result
            self.simulated += 1
            if disk is not None:
                disk.put(spec, config, result)
            if use_cache:
                experiment._CACHE[key] = result
            done += 1
            self._report(done, total)

        if pending:
            remaining = list(pending)
            if self.jobs > 1:
                remaining = self._run_pool(
                    remaining, pending_specs, config, finish, obs_config
                )
            for key in remaining:  # serial path / fallback
                if obs_config is not None:
                    finish(
                        key,
                        _execute_traced(pending_specs[key], config, obs_config),
                    )
                else:
                    finish(key, _execute(pending_specs[key], config))

        if obs is not None and traced:
            # Absorb in first-appearance input order, never pool completion
            # order: the merged trace must be reproducible run-to-run.
            for key in pending:
                events, snapshot = traced_payloads[key]
                obs.absorb(_spec_label(pending_specs[key]), events, snapshot)

        # Duplicates in the input count as resolved work too.
        while done < total:
            done += 1
            self._report(done, total)
        return [resolved[_memo_key(spec, config)] for spec in specs]

    # ------------------------------------------------------------------

    def _run_pool(
        self,
        keys: List[Tuple],
        specs: Dict[Tuple, RunSpec],
        config: Optional[SimConfig],
        finish: Callable[[Tuple, object], None],
        obs_config: Optional[ObsConfig] = None,
    ) -> List[Tuple]:
        """Simulate ``keys`` on a process pool; returns keys still pending
        (all of them when no pool is available, for the serial fallback)."""
        completed: set = set()
        try:
            with ProcessPoolExecutor(max_workers=min(self.jobs, len(keys))) as pool:
                if obs_config is not None:
                    futures = {
                        pool.submit(
                            _execute_traced, specs[key], config, obs_config
                        ): key
                        for key in keys
                    }
                else:
                    futures = {
                        pool.submit(_simulate_spec, specs[key], config): key
                        for key in keys
                    }
                not_done = set(futures)
                while not_done:
                    just_done, not_done = wait(not_done, return_when=FIRST_COMPLETED)
                    for future in just_done:
                        key = futures[future]
                        exc = future.exception()
                        if exc is not None:
                            if isinstance(exc, _POOL_ERRORS):
                                raise exc
                            raise exc  # simulation-level error: propagate as-is
                        finish(key, future.result())
                        completed.add(key)
        except _POOL_ERRORS:
            self.fell_back_serial = True
            return [k for k in keys if k not in completed]
        return []

    def _report(self, done: int, total: int) -> None:
        if self.progress is not None:
            self.progress(done, total)

    # ------------------------------------------------------------------

    def summary(self) -> Dict[str, object]:
        """Counters snapshot (what ``repro regen`` prints per batch)."""
        return {
            "jobs": self.jobs,
            "simulated": self.simulated,
            "memo_hits": self.memo_hits,
            "cache_hits": self.cache_hits,
            "fell_back_serial": self.fell_back_serial,
        }
