"""Parallel experiment execution engine.

:class:`ParallelRunner` fans a batch of :class:`~repro.harness.experiment.RunSpec`
simulations out over a :class:`concurrent.futures.ProcessPoolExecutor`
(worker count configurable, default ``os.cpu_count()``), layered on the same
two caches as the serial path:

* specs already in the in-process memo or the persistent disk cache are
  served without touching the pool (counted in ``memo_hits`` /
  ``cache_hits``);
* the remainder are simulated in worker processes via the *same*
  ``experiment._execute`` code path the serial runner uses, then written to
  the disk cache and seeded into the memo (counted in ``simulated``).

Because simulations are seeded and deterministic, the runner's results are
field-for-field identical to serial ``run_matrix`` output — enforced by the
differential suite in ``tests/test_parallel_runner.py``.

Failure handling (``tests/test_fault_tolerance.py``) distinguishes two
families, and the distinction is structural, not type-based:

* the worker entry point (:func:`_pool_entry`) never lets an exception
  escape — it returns a :class:`_WorkerReply` envelope carrying either the
  payload or a picklable :class:`~repro.errors.WorkerFailure` with the spec
  label and remote traceback.  A *simulation-level* ``RuntimeError`` or
  ``OSError`` therefore surfaces as that spec's failure (fail fast, or
  record-and-continue under ``keep_going``), never as pool breakage;
* any exception that *does* cross the future boundary is by construction
  infrastructure-level: the pool is rebuilt with bounded backoff
  (``FaultTolerance.retries``) and, past the budget, the batch degrades to
  serial in-process execution.  A pool that cannot be created at all
  (platforms without working process semaphores) short-circuits to serial;
  ``jobs=1`` requests serial execution outright.
"""

from __future__ import annotations

import os
import sys
import time
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..config import SimConfig
from ..engine.simulator import SimulationResult
from ..errors import PoolError, WorkerFailure, WorkerTimeout
from ..obs import Observability, ObsConfig
from . import experiment
from .cache import ResultCache
from .experiment import (
    RunSpec,
    _execute,
    _execute_traced,
    _memo_key,
    _resolve_cache,
    _spec_label,
)
from .faults import FaultTolerance, SpecOutcome, active_fault_plan

__all__ = ["ParallelRunner", "default_jobs", "stderr_progress"]

#: Errors that mean "no usable process pool can be created here" -> serial
#: fallback.  Consulted around pool *construction* only: once workers run,
#: every worker-side exception travels back inside a ``_WorkerReply``
#: envelope, so an exception crossing the future boundary is always
#: infrastructure-level (see ``_dispatch``) — the old over-broad tuple that
#: also caught ``RuntimeError`` here silently reclassified simulation bugs
#: as pool breakage and re-ran whole batches serially to mask them.
_POOL_UNAVAILABLE = (OSError, NotImplementedError, ImportError)


def default_jobs() -> int:
    """Default worker count: ``os.cpu_count()`` (at least 1)."""
    return os.cpu_count() or 1


def stderr_progress(label: str = "runs") -> Callable[[int, int], None]:
    """A progress callback that renders ``label: done/total`` on stderr."""

    def report(done: int, total: int) -> None:
        end = "\n" if done >= total else ""
        print(f"\r{label}: {done}/{total}", end=end, file=sys.stderr, flush=True)

    return report


class _WorkerReply:
    """Picklable envelope a worker returns: payload or failure, never raise."""

    __slots__ = ("label", "payload", "failure")

    def __init__(self, label, payload=None, failure=None):
        self.label = label
        self.payload = payload
        self.failure = failure

    def __reduce__(self):
        return (_WorkerReply, (self.label, self.payload, self.failure))


def _pool_entry(
    spec: RunSpec,
    config: Optional[SimConfig],
    obs_config: Optional[ObsConfig] = None,
    in_worker: bool = True,
) -> _WorkerReply:
    """Guarded execution entry point (top-level, picklable).

    Shared by the pool workers and the serial/fallback path (with
    ``in_worker=False``), so fault-injection and failure classification
    behave identically under serial and parallel execution.  Consults the
    ``REPRO_FAULT_PLAN`` fault-injection hook before executing.
    """
    label = _spec_label(spec)
    try:
        plan = active_fault_plan()
        corrupt = (
            plan.apply(label, allow_hard_exit=in_worker)
            if plan is not None
            else False
        )
        if obs_config is not None:
            payload: object = _execute_traced(spec, config, obs_config)
        else:
            payload = _execute(spec, config)
        if corrupt:
            payload = "corrupted-payload"
        return _WorkerReply(label, payload=payload)
    except Exception as exc:
        import traceback

        return _WorkerReply(
            label,
            failure=WorkerFailure.from_exception(
                label, exc, remote_traceback=traceback.format_exc()
            ),
        )


def _validate_reply(reply: _WorkerReply, traced: bool) -> Optional[WorkerFailure]:
    """The reply's failure, or a synthesized one for a corrupted payload."""
    if reply.failure is not None:
        return reply.failure
    payload = reply.payload
    ok = (
        isinstance(payload, tuple)
        and len(payload) == 3
        and isinstance(payload[0], SimulationResult)
        if traced
        else isinstance(payload, SimulationResult)
    )
    if ok:
        return None
    return WorkerFailure(
        label=reply.label,
        exc_type="CorruptedResult",
        message=f"worker returned a corrupted payload ({type(payload).__name__})",
        kind="harness",
    )


class ParallelRunner:
    """Run batches of specs concurrently, with persistent caching.

    Parameters
    ----------
    jobs:
        Worker processes; ``None`` means :func:`default_jobs`, ``1`` means
        serial in-process execution (no pool).  Zero or negative raises
        ``ValueError`` (it used to silently become the default).
    cache:
        A :class:`ResultCache`, ``None`` to disable the disk layer, or the
        default (the process-wide active cache).
    progress:
        ``progress(done, total)`` called after every resolved spec
        (including cache hits; duplicate specs count the moment their
        shared result resolves).
    fault_tolerance:
        A :class:`~repro.harness.faults.FaultTolerance` policy; the default
        fails fast on the first spec failure and retries a broken pool
        twice.  Per-spec :class:`SpecOutcome` records accumulate on the
        policy object (and on ``self.outcomes``).
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        cache=experiment._ACTIVE,
        progress: Optional[Callable[[int, int], None]] = None,
        fault_tolerance: Optional[FaultTolerance] = None,
    ):
        if jobs is not None and jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs if jobs is not None else default_jobs()
        self._cache_arg = cache
        self.progress = progress
        self.fault_tolerance = fault_tolerance or FaultTolerance()
        # Lifetime counters (across run() calls on this instance):
        self.simulated = 0  # simulations actually executed
        self.memo_hits = 0  # served from the in-process memo
        self.cache_hits = 0  # served from the disk cache
        self.failed = 0  # specs whose simulation failed
        self.timed_out = 0  # specs reaped by the progress timeout
        self.pool_retries = 0  # broken-pool rebuild attempts
        self.fell_back_serial = False  # pool unavailable/broken at least once
        #: How many times each key was dispatched (retries = dispatches - 1).
        self._dispatches: Dict[Tuple, int] = {}

    @property
    def cache(self) -> Optional[ResultCache]:
        return _resolve_cache(self._cache_arg)

    @property
    def outcomes(self) -> List[SpecOutcome]:
        return self.fault_tolerance.outcomes

    # ------------------------------------------------------------------

    def run(
        self,
        specs: Sequence[RunSpec],
        config: Optional[SimConfig] = None,
        use_cache: bool = True,
        obs: Optional[Observability] = None,
    ) -> List[Optional[SimulationResult]]:
        """Resolve every spec; returns results aligned with ``specs``.

        Duplicate specs are simulated once.  With ``use_cache=False`` both
        cache layers are bypassed (every distinct spec simulates).

        A failing spec raises :class:`~repro.errors.WorkerFailure` (carrying
        the spec label and the remote traceback); under
        ``fault_tolerance.keep_going`` it instead records a ``failed`` /
        ``timed_out`` outcome and yields ``None`` at that spec's positions,
        while every other spec still resolves (and successful results still
        checkpoint into the disk cache, so a re-invocation resumes from
        cache instead of restarting).

        An enabled ``obs`` traces every distinct spec: caching is forced off
        (cached results have no trace; traced results must not pollute the
        cache), workers return their event lists and metrics snapshots, and
        the parent absorbs them in *input-spec order* once every run has
        finished — the merged trace never depends on pool scheduling.
        Worker failures are mirrored into ``obs`` as ``harness/...``
        counters and ``worker_failure`` events (also in input-spec order).
        """
        obs_config: Optional[ObsConfig] = None
        if obs is not None and obs.enabled:
            obs_config = obs.config()
            use_cache = False
        traced = obs_config is not None
        specs = list(specs)
        total = len(specs)
        done = 0
        keys = [_memo_key(spec, config) for spec in specs]
        multiplicity: Dict[Tuple, int] = {}
        for key in keys:
            multiplicity[key] = multiplicity.get(key, 0) + 1
        resolved: Dict[Tuple, Optional[SimulationResult]] = {}
        pending: List[Tuple] = []  # distinct memo keys needing simulation
        pending_specs: Dict[Tuple, RunSpec] = {}
        traced_payloads: Dict[Tuple, Tuple[list, dict]] = {}
        failures: Dict[Tuple, WorkerFailure] = {}
        statuses: Dict[Tuple, str] = {}
        disk = self.cache if use_cache else None
        ft = self.fault_tolerance

        for spec, key in zip(specs, keys):
            if key in resolved or key in pending_specs:
                continue
            if use_cache and key in experiment._CACHE:
                resolved[key] = experiment._CACHE[key]
                self.memo_hits += 1
                done += multiplicity[key]
                self._record_ok(key, spec)
                self._report(done, total)
                continue
            if disk is not None:
                hit = disk.get(spec, config)
                if hit is not None:
                    resolved[key] = hit
                    experiment._CACHE[key] = hit
                    self.cache_hits += 1
                    done += multiplicity[key]
                    self._record_ok(key, spec)
                    self._report(done, total)
                    continue
            pending.append(key)
            pending_specs[key] = spec

        def finish(key: Tuple, payload) -> None:
            nonlocal done
            spec = pending_specs[key]
            if traced:
                result, events, snapshot = payload
                traced_payloads[key] = (events, snapshot)
            else:
                result = payload
            resolved[key] = result
            self.simulated += 1
            if disk is not None:
                disk.put(spec, config, result)
            if use_cache:
                experiment._CACHE[key] = result
            done += multiplicity[key]
            self._record_ok(key, spec)
            self._report(done, total)

        def fail(key: Tuple, failure: WorkerFailure, status: str = "failed") -> None:
            nonlocal done
            retries = max(0, self._dispatches.get(key, 1) - 1)
            if status == "timed_out":
                self.timed_out += 1
            else:
                self.failed += 1
            failures[key] = failure
            statuses[key] = status
            ft.record(
                SpecOutcome(
                    label=_spec_label(pending_specs[key]),
                    status=status,
                    retries=retries,
                    error=failure,
                )
            )
            if not ft.keep_going:
                raise failure
            resolved[key] = None
            done += multiplicity[key]
            self._report(done, total)

        if pending:
            remaining = list(pending)
            if self.jobs > 1:
                remaining = self._run_pool(
                    remaining, pending_specs, config, finish, fail, obs_config
                )
            for key in remaining:  # serial path / fallback
                self._dispatches[key] = self._dispatches.get(key, 0) + 1
                reply = _pool_entry(
                    pending_specs[key], config, obs_config, in_worker=False
                )
                failure = _validate_reply(reply, traced)
                if failure is not None:
                    fail(key, failure)
                else:
                    finish(key, reply.payload)

        if obs is not None and traced:
            # Absorb in first-appearance input order, never pool completion
            # order: the merged trace must be reproducible run-to-run.
            for key in pending:
                if key in failures:
                    if statuses[key] == "timed_out":
                        obs.metrics.counter("harness/worker_timeouts").inc()
                    else:
                        obs.metrics.counter("harness/worker_failures").inc()
                    obs.tracer.emit(
                        "worker_failure",
                        time=0,
                        label=_spec_label(pending_specs[key]),
                        status=statuses[key],
                        error=str(failures[key].message),
                    )
                    continue
                events, snapshot = traced_payloads[key]
                obs.absorb(_spec_label(pending_specs[key]), events, snapshot)
            if self.pool_retries:
                obs.metrics.counter("harness/pool_retries").inc(self.pool_retries)

        return [resolved[key] for key in keys]

    # ------------------------------------------------------------------

    def _record_ok(self, key: Tuple, spec: RunSpec) -> None:
        retries = max(0, self._dispatches.get(key, 1) - 1)
        self.fault_tolerance.record(
            SpecOutcome(
                label=_spec_label(spec),
                status="retried" if retries else "ok",
                retries=retries,
            )
        )

    def _make_pool(self, workers: int) -> Optional[ProcessPoolExecutor]:
        """A fresh pool, or ``None`` when this platform cannot make one."""
        try:
            return ProcessPoolExecutor(max_workers=workers)
        except _POOL_UNAVAILABLE:
            return None

    def _run_pool(
        self,
        keys: List[Tuple],
        specs: Dict[Tuple, RunSpec],
        config: Optional[SimConfig],
        finish: Callable[[Tuple, object], None],
        fail: Callable[..., None],
        obs_config: Optional[ObsConfig] = None,
    ) -> List[Tuple]:
        """Simulate ``keys`` on process pools; returns keys still pending
        for the serial fallback (all of them when no pool is available).

        A broken pool is rebuilt up to ``fault_tolerance.retries`` times
        with exponential backoff; the keys that settled (finished, failed,
        or timed out) before each breakage are never re-dispatched.
        """
        ft = self.fault_tolerance
        remaining = list(keys)
        attempt = 0
        while remaining:
            pool = self._make_pool(min(self.jobs, len(remaining)))
            if pool is None:
                self.fell_back_serial = True
                return remaining
            settled, broke = self._dispatch(
                pool, remaining, specs, config, finish, fail, obs_config
            )
            remaining = [k for k in remaining if k not in settled]
            if not remaining:
                return []
            if not broke:  # pragma: no cover - defensive: cannot currently happen
                return remaining
            attempt += 1
            self.pool_retries += 1
            if attempt > ft.retries:
                self.fell_back_serial = True
                return remaining
            # Harness-side wall clock: backoff before rebuilding the pool
            # (never reachable from simulation state).  The delay is
            # clamped by FaultTolerance.max_backoff_s so a deep retry
            # budget cannot stall a service worker loop for minutes.
            time.sleep(ft.backoff_delay(attempt))
        return []

    def _dispatch(
        self,
        pool: ProcessPoolExecutor,
        keys: List[Tuple],
        specs: Dict[Tuple, RunSpec],
        config: Optional[SimConfig],
        finish: Callable[[Tuple, object], None],
        fail: Callable[..., None],
        obs_config: Optional[ObsConfig],
    ) -> Tuple[Set[Tuple], bool]:
        """One pool lifetime: returns (settled keys, pool broke?).

        "Settled" covers finished, failed and timed-out specs — anything
        that must not be re-dispatched.  Worker-side errors arrive inside
        ``_WorkerReply`` envelopes; an exception surfacing through a future
        is therefore infrastructure-level and flips ``broke``.
        """
        ft = self.fault_tolerance
        traced = obs_config is not None
        settled: Set[Tuple] = set()
        try:
            with pool:
                futures: Dict[Future, Tuple] = {}
                for key in keys:
                    self._dispatches[key] = self._dispatches.get(key, 0) + 1
                    futures[
                        pool.submit(_pool_entry, specs[key], config, obs_config)
                    ] = key
                not_done = set(futures)
                while not_done:
                    just_done, not_done = wait(
                        not_done,
                        timeout=ft.timeout_s,
                        return_when=FIRST_COMPLETED,
                    )
                    if not just_done:  # no progress within timeout_s: reap
                        settled |= self._reap_stalled(
                            pool, not_done, futures, specs, fail
                        )
                        return settled, True
                    for future in just_done:
                        key = futures[future]
                        exc = future.exception()
                        if exc is not None:
                            # Envelope discipline: this is pool breakage
                            # (worker died, pickling infra failed), never a
                            # simulation error — those come back as replies.
                            raise PoolError(
                                f"process pool broke: {type(exc).__name__}: {exc}"
                            ) from exc
                        reply = future.result()
                        failure = _validate_reply(reply, traced)
                        if failure is not None:
                            settled.add(key)
                            fail(key, failure)
                        else:
                            finish(key, reply.payload)
                            settled.add(key)
        except (BrokenProcessPool, PoolError):
            return settled, True
        return settled, False

    def _reap_stalled(
        self,
        pool: ProcessPoolExecutor,
        not_done: Set[Future],
        futures: Dict[Future, Tuple],
        specs: Dict[Tuple, RunSpec],
        fail: Callable[..., None],
    ) -> Set[Tuple]:
        """Terminate the pool's workers and settle the stalled futures.

        Futures that never started cancel cleanly and stay pending (they
        get re-dispatched on a fresh pool / the serial fallback); the ones
        actually running are the stalled workers — their specs settle as
        ``timed_out``.
        """
        ft = self.fault_tolerance
        stalled = [f for f in not_done if not f.cancel()]
        for proc in list(getattr(pool, "_processes", {}).values()):
            try:
                proc.terminate()
            except OSError:  # pragma: no cover - already-dead worker
                pass
        settled: Set[Tuple] = set()
        timeout = ft.timeout_s if ft.timeout_s is not None else 0.0
        for future in stalled:
            key = futures[future]
            settled.add(key)
            label = _spec_label(specs[key])
            fail(
                key,
                WorkerFailure(
                    label=label,
                    exc_type="WorkerTimeout",
                    message=str(WorkerTimeout(label, timeout)),
                    kind="harness",
                ),
                status="timed_out",
            )
        return settled

    def _report(self, done: int, total: int) -> None:
        if self.progress is not None:
            self.progress(done, total)

    # ------------------------------------------------------------------

    def summary(self) -> Dict[str, object]:
        """Counters snapshot (what ``repro regen`` prints per batch)."""
        return {
            "jobs": self.jobs,
            "simulated": self.simulated,
            "memo_hits": self.memo_hits,
            "cache_hits": self.cache_hits,
            "failed": self.failed,
            "timed_out": self.timed_out,
            "pool_retries": self.pool_retries,
            "fell_back_serial": self.fell_back_serial,
        }
