"""Named policy/prefetcher configurations used throughout the evaluation.

The paper's comparison points:

==================  ========================================================
``baseline``        LRU pre-eviction + sequential-local prefetcher that
                    keeps prefetching whole chunks when memory is full
                    (the state-of-the-art software baseline of [16]).
``cppe``            MHPE + pattern-aware prefetcher, Scheme-2 (the paper's
                    adopted configuration).
``cppe-s1``         CPPE with pattern deletion Scheme-1 (Fig. 7).
``random``          Random eviction + naive locality prefetch (Figs. 3, 9).
``lru-10`` /        Reserved LRU with the top 10% / 20% of the chain
``lru-20``          protected + naive locality prefetch (Figs. 3, 9).
``stop-on-full``    LRU + locality prefetch disabled once memory fills
                    (the mitigation of [11], Fig. 10).
``no-prefetch``     LRU + demand paging only.
``hpe``             Counter-based HPE + naive locality prefetch (shows the
                    counter-pollution inefficiency, Section III).
``tree``            LRU + tree-based neighborhood prefetcher (extension).
==================  ========================================================

Since the registry refactor this module is a *thin registration site*: the
tables that used to live here as module-private dicts are entries in
:mod:`repro.registry`, where ``repro components``, ``repro shootout``, the
CLI validators and the deep-lint ``registry:`` seam can all see them.  The
public API (``POLICY_NAMES`` / ``PREFETCHER_NAMES`` / ``SETUPS`` /
``build_*``) is unchanged — including the n-gram family and any plugin
components, which register through :func:`repro.registry.register` without
touching this file.
"""

from __future__ import annotations

from typing import Iterator, Mapping, Tuple, cast

from .. import registry as registry_mod
from ..config import PatternBufferConfig
from ..errors import ConfigError
from ..policies import (
    EvictionPolicy,
    HPEPolicy,
    LRUPolicy,
    MHPEPolicy,
    RandomPolicy,
    ReservedLRUPolicy,
)
from ..prefetch import (
    DisabledPrefetcher,
    LocalityPrefetcher,
    PatternAwarePrefetcher,
    Prefetcher,
    TreeNeighborhoodPrefetcher,
)
from ..registry import build, register

__all__ = [
    "POLICY_NAMES",
    "PREFETCHER_NAMES",
    "SETUPS",
    "build_policy",
    "build_prefetcher",
    "build_setup",
]

# --- eviction policies ------------------------------------------------------

register(
    "policy", "lru", LRUPolicy,
    doc="LRU pre-eviction chain (the 4-chunk eviction granularity of [16])",
)
register(
    "policy", "random", RandomPolicy,
    params_schema={"seed": "drawn from SimConfig.seed (policy stream)"},
    fingerprint_fields=("seed",),
    doc="random victim selection (Figs. 3, 9 comparison point)",
)
register(
    "policy", "lru-10", lambda: ReservedLRUPolicy(0.10),
    params_schema={"reserve_fraction": "0.10 (top of chain protected)"},
    doc="LRU with the top 10% of the chain protected from eviction",
)
register(
    "policy", "lru-20", lambda: ReservedLRUPolicy(0.20),
    params_schema={"reserve_fraction": "0.20 (top of chain protected)"},
    doc="LRU with the top 20% of the chain protected from eviction",
)
register(
    "policy", "hpe", HPEPolicy,
    params_schema={"hpe": "SimConfig.hpe (counter thresholds)"},
    fingerprint_fields=("hpe",),
    doc="counter-based hot-page eviction (Section III inefficiency study)",
)
register(
    "policy", "mhpe", MHPEPolicy,
    params_schema={"mhpe": "SimConfig.mhpe (T1/T2/T3 thresholds)"},
    fingerprint_fields=("mhpe",),
    doc="CPPE's multi-level hot-page eviction (Section IV-B)",
)

# --- prefetchers ------------------------------------------------------------

register(
    "prefetcher", "none", DisabledPrefetcher,
    doc="demand paging only (no prefetch)",
)
register(
    "prefetcher", "locality", lambda: LocalityPrefetcher("continue"),
    params_schema={"on_full": "'continue' (keep prefetching when full)"},
    doc="sequential-local 64 KB chunk prefetch, naive when full ([16] baseline)",
)
register(
    "prefetcher", "locality-stop", lambda: LocalityPrefetcher("stop"),
    params_schema={"on_full": "'stop' (demand-page only when full)"},
    doc="locality prefetch that stops once memory fills (the [11] mitigation)",
)
register(
    "prefetcher", "tree", lambda: TreeNeighborhoodPrefetcher(),
    doc="tree-based neighborhood prefetcher observed in the CUDA driver [16]",
)
register(
    "prefetcher", "pattern-s1",
    lambda: PatternAwarePrefetcher(PatternBufferConfig(deletion_scheme=1)),
    params_schema={"pattern_buffer": "PatternBufferConfig(deletion_scheme=1)"},
    fingerprint_fields=("pattern_buffer",),
    doc="CPPE pattern-aware prefetcher, deletion Scheme-1 (Fig. 7)",
)
register(
    "prefetcher", "pattern-s2",
    lambda: PatternAwarePrefetcher(PatternBufferConfig(deletion_scheme=2)),
    params_schema={"pattern_buffer": "PatternBufferConfig(deletion_scheme=2)"},
    fingerprint_fields=("pattern_buffer",),
    doc="CPPE pattern-aware prefetcher, deletion Scheme-2 (adopted)",
)

# --- named (policy, prefetcher) setups — the units the figures compare ------

register("setup", "baseline", ("lru", "locality"),
         doc="LRU + naive locality prefetch (software baseline of [16])")
register("setup", "cppe", ("mhpe", "pattern-s2"),
         doc="the paper's adopted configuration")
register("setup", "cppe-s1", ("mhpe", "pattern-s1"),
         doc="CPPE with pattern deletion Scheme-1 (Fig. 7)")
register("setup", "random", ("random", "locality"),
         doc="random eviction comparison point (Figs. 3, 9)")
register("setup", "lru-10", ("lru-10", "locality"),
         doc="reserved LRU, 10% protected (Figs. 3, 9)")
register("setup", "lru-20", ("lru-20", "locality"),
         doc="reserved LRU, 20% protected (Figs. 3, 9)")
register("setup", "stop-on-full", ("lru", "locality-stop"),
         doc="stop prefetching at capacity (the [11] mitigation, Fig. 10)")
register("setup", "no-prefetch", ("lru", "none"),
         doc="LRU + demand paging only")
register("setup", "hpe", ("hpe", "locality"),
         doc="counter-based HPE (Section III inefficiency study)")
register("setup", "tree", ("lru", "tree"),
         doc="tree-based neighborhood prefetcher (extension)")
register("setup", "mhpe-naive", ("mhpe", "locality"),
         doc="ablation: eviction half only")
register("setup", "lru-pattern", ("lru", "pattern-s2"),
         doc="ablation: prefetch half only")


class _SetupsView(Mapping[str, Tuple[str, str]]):
    """Live read-only mapping view of the setup registry.

    Iteration covers the *registered* setup names (sorted); lookup
    additionally resolves compositional ``"policy+prefetcher"`` pair names,
    mirroring :func:`repro.registry.setup_components`.
    """

    def __getitem__(self, name: str) -> Tuple[str, str]:
        try:
            return registry_mod.setup_components(name)
        except ConfigError:
            raise KeyError(name) from None

    def __iter__(self) -> Iterator[str]:
        return iter(registry_mod.names("setup"))

    def __len__(self) -> int:
        return len(registry_mod.names("setup"))


POLICY_NAMES = registry_mod.names("policy")
PREFETCHER_NAMES = registry_mod.names("prefetcher")

#: Named (policy, prefetcher) pairs — a live view over the setup registry.
SETUPS: Mapping[str, Tuple[str, str]] = _SetupsView()


def build_policy(name: str) -> EvictionPolicy:
    """Construct a fresh policy instance by its registered name."""
    return cast(EvictionPolicy, build("policy", name))


def build_prefetcher(name: str) -> Prefetcher:
    """Construct a fresh prefetcher instance by its registered name."""
    return cast(Prefetcher, build("prefetcher", name))


def build_setup(name: str) -> Tuple[EvictionPolicy, Prefetcher]:
    """Construct the named (policy, prefetcher) pair, freshly instantiated.

    Accepts registered setup names (``sorted(SETUPS)``) and compositional
    ``"<policy>+<prefetcher>"`` pair names (``repro shootout`` uses these
    to enumerate the cross product).
    """
    policy_name, prefetcher_name = registry_mod.setup_components(name)
    return (
        cast(EvictionPolicy, build("policy", policy_name)),
        cast(Prefetcher, build("prefetcher", prefetcher_name)),
    )
