"""Named policy/prefetcher configurations used throughout the evaluation.

The paper's comparison points:

==================  ========================================================
``baseline``        LRU pre-eviction + sequential-local prefetcher that
                    keeps prefetching whole chunks when memory is full
                    (the state-of-the-art software baseline of [16]).
``cppe``            MHPE + pattern-aware prefetcher, Scheme-2 (the paper's
                    adopted configuration).
``cppe-s1``         CPPE with pattern deletion Scheme-1 (Fig. 7).
``random``          Random eviction + naive locality prefetch (Figs. 3, 9).
``lru-10`` /        Reserved LRU with the top 10% / 20% of the chain
``lru-20``          protected + naive locality prefetch (Figs. 3, 9).
``stop-on-full``    LRU + locality prefetch disabled once memory fills
                    (the mitigation of [11], Fig. 10).
``no-prefetch``     LRU + demand paging only.
``hpe``             Counter-based HPE + naive locality prefetch (shows the
                    counter-pollution inefficiency, Section III).
``tree``            LRU + tree-based neighborhood prefetcher (extension).
==================  ========================================================
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from ..config import PatternBufferConfig
from ..errors import ConfigError
from ..policies import (
    EvictionPolicy,
    HPEPolicy,
    LRUPolicy,
    MHPEPolicy,
    RandomPolicy,
    ReservedLRUPolicy,
)
from ..prefetch import (
    DisabledPrefetcher,
    LocalityPrefetcher,
    PatternAwarePrefetcher,
    Prefetcher,
    TreeNeighborhoodPrefetcher,
)

__all__ = [
    "POLICY_NAMES",
    "PREFETCHER_NAMES",
    "SETUPS",
    "build_policy",
    "build_prefetcher",
    "build_setup",
]

_POLICY_BUILDERS: Dict[str, Callable[[], EvictionPolicy]] = {
    "lru": LRUPolicy,
    "random": RandomPolicy,
    "lru-10": lambda: ReservedLRUPolicy(0.10),
    "lru-20": lambda: ReservedLRUPolicy(0.20),
    "hpe": HPEPolicy,
    "mhpe": MHPEPolicy,
}

_PREFETCHER_BUILDERS: Dict[str, Callable[[], Prefetcher]] = {
    "none": DisabledPrefetcher,
    "locality": lambda: LocalityPrefetcher("continue"),
    "locality-stop": lambda: LocalityPrefetcher("stop"),
    "tree": lambda: TreeNeighborhoodPrefetcher(),
    "pattern-s1": lambda: PatternAwarePrefetcher(
        PatternBufferConfig(deletion_scheme=1)
    ),
    "pattern-s2": lambda: PatternAwarePrefetcher(
        PatternBufferConfig(deletion_scheme=2)
    ),
}

POLICY_NAMES = tuple(sorted(_POLICY_BUILDERS))
PREFETCHER_NAMES = tuple(sorted(_PREFETCHER_BUILDERS))

#: Named (policy, prefetcher) pairs — the units the figures compare.
SETUPS: Dict[str, Tuple[str, str]] = {
    "baseline": ("lru", "locality"),
    "cppe": ("mhpe", "pattern-s2"),
    "cppe-s1": ("mhpe", "pattern-s1"),
    "random": ("random", "locality"),
    "lru-10": ("lru-10", "locality"),
    "lru-20": ("lru-20", "locality"),
    "stop-on-full": ("lru", "locality-stop"),
    "no-prefetch": ("lru", "none"),
    "hpe": ("hpe", "locality"),
    "tree": ("lru", "tree"),
    "mhpe-naive": ("mhpe", "locality"),  # ablation: eviction half only
    "lru-pattern": ("lru", "pattern-s2"),  # ablation: prefetch half only
}


def build_policy(name: str) -> EvictionPolicy:
    """Construct a fresh policy instance by its harness name."""
    try:
        return _POLICY_BUILDERS[name]()
    except KeyError:
        raise ConfigError(
            f"unknown policy {name!r}; known: {', '.join(POLICY_NAMES)}"
        ) from None


def build_prefetcher(name: str) -> Prefetcher:
    """Construct a fresh prefetcher instance by its harness name."""
    try:
        return _PREFETCHER_BUILDERS[name]()
    except KeyError:
        raise ConfigError(
            f"unknown prefetcher {name!r}; known: {', '.join(PREFETCHER_NAMES)}"
        ) from None


def build_setup(name: str) -> Tuple[EvictionPolicy, Prefetcher]:
    """Construct the named (policy, prefetcher) pair, freshly instantiated."""
    try:
        policy_name, prefetcher_name = SETUPS[name]
    except KeyError:
        raise ConfigError(
            f"unknown setup {name!r}; known: {', '.join(sorted(SETUPS))}"
        ) from None
    return build_policy(policy_name), build_prefetcher(prefetcher_name)
