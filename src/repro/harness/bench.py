"""Engine throughput benchmark + CI ratchet arithmetic.

This module is the machine-readable contract behind ``repro bench`` and the
CI ``bench`` job: it times the simulation engine on both data-structure
backends (``SimConfig.backend = "object" | "array"``), verifies the runs
are byte-identical while it is at it, and compares the measurement against
a committed baseline (``BENCH_baseline.json``).

Two deliberate design points:

* **Ratchet on speedup ratios, not absolute times.**  Wall-clock per fault
  on a CI runner is not comparable to wall-clock on the machine that
  committed the baseline.  The ``array``/``object`` speedup measured within
  one process on one machine *is* comparable across machines, so the
  ratchet enforces (a) the per-case speedup does not regress below the
  baseline speedup beyond a tolerance band, and (b) the headline case
  stays above an absolute floor (``min_speedup``).  Absolute per-access /
  per-fault times are recorded for trend inspection only.

* **Equivalence is checked on every benchmark run.**  A fast path that
  drifted from the oracle is worse than a slow one; ``identical`` is part
  of the emitted JSON and a hard ratchet failure.

Harness code (wall-clock reads are allowed here; see
``repro.devtools.boundary``).
"""

from __future__ import annotations

import json
import pickle
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from ..config import SimConfig, SMConfig
from ..workloads.base import Workload
from .cache import _PICKLE_PROTOCOL, config_fingerprint

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "BenchCheck",
    "BenchReport",
    "bench_config",
    "compare_to_baseline",
    "hit_heavy_workload",
    "fault_heavy_workload",
    "load_baseline",
    "run_bench",
]

BENCH_SCHEMA_VERSION = 1

#: The acceptance headline: the array backend must deliver at least this
#: speedup on the headline (hit-heavy engine-throughput) case.
DEFAULT_MIN_SPEEDUP = 2.0

#: Relative regression band for speedup ratios (CI runners are noisy).
DEFAULT_TOLERANCE = 0.15

_HEADLINE_CASE = "hit_heavy"


def bench_config(backend: str = "object") -> SimConfig:
    """The fixed engine-benchmark configuration (8 SMs, default memory)."""
    return SimConfig(sm=SMConfig(num_sms=8), backend=backend)


def hit_heavy_workload(sweeps: int = 200) -> Workload:
    """One footprint pass then ``sweeps - 1`` re-touches of 512 pages.

    The footprint fits the L2 TLB, so after the cold pass nearly every
    access resolves in the translation hierarchy: this is the SM burst-loop
    / TLB hot path, the headline engine-throughput case.
    """
    footprint = 512
    sweep = np.arange(footprint, dtype=np.int64)
    return Workload(
        name="bench-hits",
        pattern_type="I",
        footprint_pages=footprint,
        accesses=np.concatenate([sweep] * sweeps),
    )


def fault_heavy_workload(sweeps: int = 6, config: Optional[SimConfig] = None) -> Workload:
    """Cyclic sweeps over 2048 pages — run at 50% oversubscription, nearly
    every chunk faults and thrashes through eviction.

    Write flags are drawn from the config-seeded simulation RNG
    (``SimConfig.make_rng``) so dirty-page writeback is exercised and the
    stream stays reproducible from the config seed alone.
    """
    cfg = config or bench_config()
    rng = cfg.make_rng()
    footprint = 2048
    sweep = np.arange(footprint, dtype=np.int64)
    accesses = np.concatenate([sweep] * sweeps)
    writes = np.fromiter(
        (rng.getrandbits(1) for _ in range(accesses.size)),
        dtype=bool,
        count=accesses.size,
    )
    return Workload(
        name="bench-faults",
        pattern_type="IV",
        footprint_pages=footprint,
        accesses=accesses,
        writes=writes,
    )


@dataclass
class _CaseSpec:
    name: str
    make_workload: Callable[[], Workload]
    oversubscription: Optional[float]
    unit: str  # denominator for the per-event time: "access" | "fault"


def _case_specs(quick: bool) -> List[_CaseSpec]:
    # The hit case needs enough re-touch sweeps that the cold-pass faults
    # (512 of them, at fault-path speed) are amortised away — otherwise the
    # "hit path" benchmark quietly measures the fault path.
    hit_sweeps = 100 if quick else 200
    fault_sweeps = 2 if quick else 6
    return [
        _CaseSpec(
            name="hit_heavy",
            make_workload=lambda: hit_heavy_workload(sweeps=hit_sweeps),
            oversubscription=None,
            unit="access",
        ),
        _CaseSpec(
            name="fault_heavy",
            make_workload=lambda: fault_heavy_workload(
                sweeps=fault_sweeps, config=bench_config()
            ),
            oversubscription=0.5,
            unit="fault",
        ),
    ]


def _time_run(
    workload: Workload,
    oversubscription: Optional[float],
    backend: str,
    rounds: int,
) -> Tuple[float, bytes, int, int]:
    """Best-of-``rounds`` wall time; returns (best_s, result_bytes, accesses, faults)."""
    from ..engine.simulator import Simulator

    best = float("inf")
    payload = b""
    accesses = faults = 0
    for _ in range(rounds + 1):  # first round is warmup
        sim = Simulator(
            workload,
            oversubscription=oversubscription,
            config=bench_config(backend),
        )
        start = time.perf_counter()
        result = sim.run()
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
        payload = pickle.dumps(result, protocol=_PICKLE_PROTOCOL)
        accesses = result.stats.accesses
        faults = result.stats.far_faults
    return best, payload, accesses, faults


def run_bench(quick: bool = False, rounds: Optional[int] = None) -> Dict[str, Any]:
    """Time both backends on each case and return the bench document.

    The document is JSON-serialisable and keyed by the benchmark config's
    cache fingerprint, so baselines recorded under a different simulation
    configuration are never compared against.
    """
    if rounds is None:
        rounds = 3 if quick else 5
    cases: Dict[str, Any] = {}
    for spec in _case_specs(quick):
        workload = spec.make_workload()
        obj_s, obj_bytes, accesses, faults = _time_run(
            workload, spec.oversubscription, "object", rounds
        )
        arr_s, arr_bytes, _, _ = _time_run(
            workload, spec.oversubscription, "array", rounds
        )
        events = faults if spec.unit == "fault" else accesses
        cases[spec.name] = {
            "unit": spec.unit,
            "accesses": accesses,
            "far_faults": faults,
            "object": {
                "best_s": obj_s,
                f"us_per_{spec.unit}": 1e6 * obj_s / max(events, 1),
            },
            "array": {
                "best_s": arr_s,
                f"us_per_{spec.unit}": 1e6 * arr_s / max(events, 1),
            },
            "speedup": obj_s / arr_s if arr_s > 0 else float("inf"),
            "identical": obj_bytes == arr_bytes,
        }
    return {
        "schema": BENCH_SCHEMA_VERSION,
        "quick": quick,
        "rounds": rounds,
        "config_fingerprint": config_fingerprint(bench_config()),
        "headline_case": _HEADLINE_CASE,
        "cases": cases,
    }


@dataclass
class BenchCheck:
    """One ratchet comparison."""

    name: str
    passed: bool
    detail: str


@dataclass
class BenchReport:
    """Outcome of :func:`compare_to_baseline`."""

    ok: bool
    checks: List[BenchCheck] = field(default_factory=list)
    warnings: List[str] = field(default_factory=list)

    def render(self) -> str:
        lines = []
        for check in self.checks:
            mark = "PASS" if check.passed else "FAIL"
            lines.append(f"[{mark}] {check.name}: {check.detail}")
        for warning in self.warnings:
            lines.append(f"[warn] {warning}")
        lines.append("ratchet: " + ("OK" if self.ok else "REGRESSION"))
        return "\n".join(lines)


def compare_to_baseline(
    current: Dict[str, Any],
    baseline: Optional[Dict[str, Any]],
    tolerance: float = DEFAULT_TOLERANCE,
    min_speedup: float = DEFAULT_MIN_SPEEDUP,
) -> BenchReport:
    """Ratchet ``current`` against ``baseline``.

    Checks, in order:

    * every case ran byte-identical across backends (hard failure);
    * the headline case's speedup stays >= ``min_speedup * (1 - tolerance)``
      (absolute floor — machine-independent by construction);
    * per case, the speedup has not regressed below
      ``baseline_speedup * (1 - tolerance)``.

    A missing baseline (first run, new machine class) passes with a
    warning; a baseline recorded under a different bench config or schema
    is ignored the same way.
    """
    report = BenchReport(ok=True)

    for name, case in current["cases"].items():
        identical = bool(case.get("identical"))
        report.checks.append(
            BenchCheck(
                name=f"{name}.identical",
                passed=identical,
                detail="array backend byte-identical to object backend"
                if identical
                else "array backend DIVERGED from object backend",
            )
        )
        if not identical:
            report.ok = False

    headline = current["cases"].get(current.get("headline_case", _HEADLINE_CASE))
    if headline is not None:
        floor = min_speedup * (1.0 - tolerance)
        passed = headline["speedup"] >= floor
        report.checks.append(
            BenchCheck(
                name=f"{current.get('headline_case', _HEADLINE_CASE)}.min_speedup",
                passed=passed,
                detail=(
                    f"speedup {headline['speedup']:.2f}x vs floor {floor:.2f}x "
                    f"(min {min_speedup:.2f}x, tolerance {tolerance:.0%})"
                ),
            )
        )
        if not passed:
            report.ok = False

    if baseline is None:
        report.warnings.append(
            "no baseline found — recording this run as the first measurement"
        )
        return report
    if baseline.get("schema") != current["schema"]:
        report.warnings.append(
            f"baseline schema {baseline.get('schema')!r} != {current['schema']!r}"
            " — baseline ignored"
        )
        return report
    if baseline.get("config_fingerprint") != current["config_fingerprint"]:
        report.warnings.append(
            "baseline was recorded under a different bench config — ignored"
        )
        return report

    for name, case in current["cases"].items():
        base_case = baseline.get("cases", {}).get(name)
        if base_case is None:
            report.warnings.append(f"case {name!r} missing from baseline — skipped")
            continue
        floor = base_case["speedup"] * (1.0 - tolerance)
        passed = case["speedup"] >= floor
        report.checks.append(
            BenchCheck(
                name=f"{name}.speedup_ratchet",
                passed=passed,
                detail=(
                    f"speedup {case['speedup']:.2f}x vs baseline "
                    f"{base_case['speedup']:.2f}x (floor {floor:.2f}x)"
                ),
            )
        )
        if not passed:
            report.ok = False
    return report


def load_baseline(path: str) -> Optional[Dict[str, Any]]:
    """Parse a baseline JSON file; ``None`` when absent or unreadable."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, ValueError):
        return None
    if not isinstance(data, dict):
        return None
    return data
