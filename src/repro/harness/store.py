"""Persist experiment artifacts to JSON.

The figure/table regenerators return structured objects; this module
round-trips them through JSON so expensive regenerations can be archived
(``benchmarks`` writes them via ``--benchmark-json``; ``docgen`` uses this
store for EXPERIMENTS.md provenance).

:func:`atomic_write_text` is the one sanctioned way to write small text
files that another process (or a restarted one) will read back: temp file
in the destination directory + ``os.replace``, always ``utf-8``.  It is
shared by :func:`save_artifact` and the experiment service's job snapshots
(:mod:`repro.service.jobs`) — a crash mid-write must leave either the old
file or the new one, never a truncated hybrid, and the bytes on disk must
not depend on the host's locale.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Union

from ..errors import ReproError
from .figures import FigureResult
from .tables import TableResult

__all__ = ["atomic_write_text", "save_artifact", "load_artifact"]


def atomic_write_text(path: Union[str, Path], text: str) -> Path:
    """Atomically replace ``path``'s contents with ``text`` (utf-8).

    The text is written to a temp file in the destination directory and
    moved into place with ``os.replace``, so readers only ever observe the
    previous complete file or the new complete file.  Parent directories
    are created as needed; the temp file is removed on any failure.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path

Artifact = Union[FigureResult, TableResult]


def _to_dict(artifact: Artifact) -> dict:
    if isinstance(artifact, FigureResult):
        return {
            "kind": "figure",
            "name": artifact.name,
            "description": artifact.description,
            "series": artifact.series,
            "averages": artifact.averages,
            "notes": artifact.notes,
        }
    if isinstance(artifact, TableResult):
        return {
            "kind": "table",
            "name": artifact.name,
            "description": artifact.description,
            "headers": artifact.headers,
            "rows": artifact.rows,
            "notes": artifact.notes,
        }
    raise ReproError(f"not an artifact: {type(artifact).__name__}")


def save_artifact(artifact: Artifact, path: Union[str, Path]) -> Path:
    """Write an artifact to ``path`` as JSON; returns the path.

    The write is atomic and explicitly utf-8 (:func:`atomic_write_text`):
    the old ``write_text`` path could leave truncated JSON behind after a
    crash mid-write — which :func:`load_artifact` then raised on — and its
    byte encoding depended on the host locale.
    """
    return atomic_write_text(
        path, json.dumps(_to_dict(artifact), indent=2, sort_keys=True)
    )


def load_artifact(path: Union[str, Path]) -> Artifact:
    """Read an artifact previously written by :func:`save_artifact`."""
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    kind = data.get("kind")
    if kind == "figure":
        return FigureResult(
            name=data["name"],
            description=data["description"],
            series=data["series"],
            averages=data.get("averages", {}),
            notes=data.get("notes", []),
        )
    if kind == "table":
        return TableResult(
            name=data["name"],
            description=data["description"],
            headers=data["headers"],
            rows=data["rows"],
            notes=data.get("notes", []),
        )
    raise ReproError(f"unknown artifact kind {kind!r} in {path}")
