"""Persist experiment artifacts to JSON.

The figure/table regenerators return structured objects; this module
round-trips them through JSON so expensive regenerations can be archived
(``benchmarks`` writes them via ``--benchmark-json``; ``docgen`` uses this
store for EXPERIMENTS.md provenance).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from ..errors import ReproError
from .figures import FigureResult
from .tables import TableResult

__all__ = ["save_artifact", "load_artifact"]

Artifact = Union[FigureResult, TableResult]


def _to_dict(artifact: Artifact) -> dict:
    if isinstance(artifact, FigureResult):
        return {
            "kind": "figure",
            "name": artifact.name,
            "description": artifact.description,
            "series": artifact.series,
            "averages": artifact.averages,
            "notes": artifact.notes,
        }
    if isinstance(artifact, TableResult):
        return {
            "kind": "table",
            "name": artifact.name,
            "description": artifact.description,
            "headers": artifact.headers,
            "rows": artifact.rows,
            "notes": artifact.notes,
        }
    raise ReproError(f"not an artifact: {type(artifact).__name__}")


def save_artifact(artifact: Artifact, path: Union[str, Path]) -> Path:
    """Write an artifact to ``path`` as JSON; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(_to_dict(artifact), indent=2, sort_keys=True))
    return path


def load_artifact(path: Union[str, Path]) -> Artifact:
    """Read an artifact previously written by :func:`save_artifact`."""
    data = json.loads(Path(path).read_text())
    kind = data.get("kind")
    if kind == "figure":
        return FigureResult(
            name=data["name"],
            description=data["description"],
            series=data["series"],
            averages=data.get("averages", {}),
            notes=data.get("notes", []),
        )
    if kind == "table":
        return TableResult(
            name=data["name"],
            description=data["description"],
            headers=data["headers"],
            rows=data["rows"],
            notes=data.get("notes", []),
        )
    raise ReproError(f"unknown artifact kind {kind!r} in {path}")
