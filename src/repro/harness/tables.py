"""Regenerators for the paper's tables and sensitivity studies.

* :func:`table3` — max per-interval untouch level in the first four active
  intervals (Table III);
* :func:`table4` — total untouch level in the first four active intervals
  for applications whose Table III maximum is below T1 (Table IV);
* :func:`sensitivity_fd` — untouch level vs fixed forward distance 1..10
  (the Section IV-B study that picked the 2..8 range);
* :func:`sensitivity_t3` — speedup vs the forward-distance limit T3 swept
  16..40 (Section VI-A: 32 is best);
* :func:`overhead` — structure entry counts / KB / buffer occupancy
  (Section VI-C).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.classify import untouch_profile
from ..analysis.metrics import mean, overhead_report
from ..config import MHPEConfig
from ..engine.simulator import Simulator
from ..policies.mhpe import MHPEPolicy
from ..prefetch.locality import LocalityPrefetcher
from ..workloads.suite import BENCHMARKS, make_workload
from .experiment import RunSpec, run_one
from .report import render_table

__all__ = [
    "TableResult",
    "table3",
    "table4",
    "sensitivity_fd",
    "sensitivity_t3",
    "overhead",
]


@dataclass
class TableResult:
    """Structured output of one table regeneration."""

    name: str
    description: str
    headers: List[str]
    rows: List[List]
    notes: List[str] = field(default_factory=list)

    def render(self) -> str:
        out = render_table(
            self.headers, self.rows, title=f"== {self.name}: {self.description} =="
        )
        if self.notes:
            out += "\n" + "\n".join(f"note: {n}" for n in self.notes)
        return out

    def as_dict(self) -> Dict[Tuple, object]:
        """{(first columns...): last column} for programmatic checks."""
        return {tuple(r[:-1]): r[-1] for r in self.rows}


def _characterisation_run(app: str, rate: float, scale: float,
                          forward_distance: Optional[int] = None):
    """Run MHPE in observation mode: MRU throughout, no threshold switching,
    locality prefetch (the Section VI-A methodology)."""
    kwargs = dict(switch_enabled=False, adjust_enabled=forward_distance is None)
    if forward_distance is not None:
        kwargs.update(init_lo=forward_distance, init_hi=forward_distance)
    policy = MHPEPolicy(MHPEConfig(**kwargs))
    workload = make_workload(app, scale=scale)
    return Simulator(
        workload,
        policy=policy,
        prefetcher=LocalityPrefetcher("continue"),
        oversubscription=rate,
    ).run()


def table3(
    apps: Optional[Sequence[str]] = None,
    rates: Sequence[float] = (0.75, 0.5),
    scale: float = 1.0,
) -> TableResult:
    """Maximum per-interval untouch level in the first four active intervals."""
    apps = list(apps or BENCHMARKS)
    rows = []
    for rate in rates:
        for app in apps:
            result = _characterisation_run(app, rate, scale)
            profile = untouch_profile(result)
            rows.append([f"{rate:.0%}", app, profile.max_first_four])
    rows.sort(key=lambda r: (r[0], -r[2]))
    return TableResult(
        name="table3",
        description="max untouch level in first four intervals (MRU, no switch)",
        headers=["rate", "app", "max untouch"],
        rows=rows,
        notes=[
            "paper: range 0..60; Types II/III/V/VI high, Types I/IV low; "
            "T1 is set to 32 so MRU-friendly apps (e.g. HSD) stay below it",
        ],
    )


def table4(
    apps: Optional[Sequence[str]] = None,
    rates: Sequence[float] = (0.75, 0.5),
    scale: float = 1.0,
    t1: int = 32,
) -> TableResult:
    """Total untouch level in the first four active intervals, for apps whose
    Table III maximum stays below ``t1`` (the paper's filtering rule)."""
    apps = list(apps or BENCHMARKS)
    rows = []
    for rate in rates:
        for app in apps:
            result = _characterisation_run(app, rate, scale)
            profile = untouch_profile(result)
            if profile.max_first_four >= t1:
                continue
            rows.append([f"{rate:.0%}", app, profile.total_first_four])
    rows.sort(key=lambda r: (r[0], -r[2]))
    return TableResult(
        name="table4",
        description=f"total untouch in first four intervals (apps with max < {t1})",
        headers=["rate", "app", "total untouch"],
        rows=rows,
        notes=["paper: T2 = 40 separates HSD (MRU-friendly) from LRU-favouring apps"],
    )


def sensitivity_fd(
    regular_apps: Sequence[str] = ("HSD", "SRD"),
    irregular_apps: Sequence[str] = ("B+T", "KMN"),
    distances: Sequence[int] = tuple(range(1, 11)),
    rate: float = 0.5,
    scale: float = 1.0,
) -> TableResult:
    """Untouch level of early intervals vs a fixed forward distance.

    Reproduces the Section IV-B finding: regular applications' untouch level
    drops sharply once the distance reaches ~2, while irregular applications
    stay high until ~8 — hence the 2..8 operating range.
    """
    rows = []
    for dist in distances:
        for group, apps in (("regular", regular_apps), ("irregular", irregular_apps)):
            levels = []
            for app in apps:
                result = _characterisation_run(app, rate, scale, forward_distance=dist)
                levels.append(untouch_profile(result).total_first_four)
            rows.append([dist, group, round(mean(levels), 1)])
    return TableResult(
        name="sensitivity-fd",
        description="early-interval untouch level vs fixed forward distance",
        headers=["forward distance", "group", "mean total untouch (first 4)"],
        rows=rows,
        notes=["paper: regular apps' untouch drops at distance >= 2; beyond 8 "
               "irregular apps' untouch also drops, blurring classification"],
    )


def sensitivity_t3(
    apps: Sequence[str] = ("SRD", "HSD", "MRQ"),
    candidates: Sequence[int] = (16, 20, 24, 28, 32, 36, 40),
    rates: Sequence[float] = (0.75, 0.5),
    scale: float = 1.0,
) -> TableResult:
    """Average CPPE speedup over the baseline vs the T3 limit (Section VI-A)."""
    from ..core.cppe import CPPE  # local import avoids a cycle at module load

    rows = []
    for t3 in candidates:
        speedups = []
        for rate in rates:
            for app in apps:
                base = run_one(RunSpec(app, "baseline", rate, scale=scale))
                pair = CPPE.create(mhpe_config=MHPEConfig(t3=t3))
                workload = make_workload(app, scale=scale)
                cand = Simulator(
                    workload,
                    policy=pair.policy,
                    prefetcher=pair.prefetcher,
                    oversubscription=rate,
                ).run()
                speedups.append(cand.speedup_over(base))
        rows.append([t3, round(mean(speedups), 3)])
    best = max(rows, key=lambda r: r[1])[0]
    return TableResult(
        name="sensitivity-t3",
        description="mean speedup of the continuously-adjusting apps vs T3",
        headers=["T3", "mean speedup vs baseline"],
        rows=rows,
        notes=[f"best candidate here: {best} (paper: 32)"],
    )


def overhead(
    apps: Optional[Sequence[str]] = None,
    rates: Sequence[float] = (0.75, 0.5),
    scale: float = 1.0,
) -> TableResult:
    """Structure storage overhead of CPPE (Section VI-C)."""
    apps = list(apps or BENCHMARKS)
    rows = []
    for rate in rates:
        reports = []
        for app in apps:
            result = run_one(RunSpec(app, "cppe", rate, scale=scale))
            reports.append(overhead_report(result))
        avg_entries = mean(r.total_entries for r in reports)
        avg_kb = mean(r.total_kb for r in reports)
        avg_evicted = mean(r.evicted_buffer_entries for r in reports)
        with_pattern = [r for r in reports if r.pattern_buffer_entries > 0]
        pattern_frac = (
            mean(r.pattern_buffer_vs_chain for r in with_pattern)
            if with_pattern
            else 0.0
        )
        rows.append(
            [
                f"{rate:.0%}",
                round(avg_entries, 1),
                round(avg_kb, 2),
                round(avg_evicted, 1),
                round(pattern_frac * 100, 1),
            ]
        )
    return TableResult(
        name="overhead",
        description="CPPE structure overhead, averaged over the suite",
        headers=[
            "rate",
            "avg entries",
            "avg KB",
            "avg evicted-buffer len",
            "pattern buffer vs chain (%)",
        ],
        rows=rows,
        notes=[
            "paper: 731 / 559 entries (8.6 / 6.6 KB) at 75% / 50%; evicted "
            "buffer 73 / 51; pattern buffer 37.2% / 88.7% of chain length "
            "(our footprints are scaled 1/4, so entry counts scale with them)",
        ],
    )
