"""Regenerators for the paper's tables and sensitivity studies.

* :func:`table3` — max per-interval untouch level in the first four active
  intervals (Table III);
* :func:`table4` — total untouch level in the first four active intervals
  for applications whose Table III maximum is below T1 (Table IV);
* :func:`sensitivity_fd` — untouch level vs fixed forward distance 1..10
  (the Section IV-B study that picked the 2..8 range);
* :func:`sensitivity_t3` — speedup vs the forward-distance limit T3 swept
  16..40 (Section VI-A: 32 is best);
* :func:`overhead` — structure entry counts / KB / buffer occupancy
  (Section VI-C).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..analysis.classify import untouch_profile
from ..analysis.metrics import mean, overhead_report
from ..config import MHPEConfig, SimConfig
from ..workloads.suite import BENCHMARKS
from .experiment import RunSpec, run_matrix, run_one
from .faults import FaultTolerance
from .report import render_table

Progress = Optional[Callable[[int, int], None]]
Tolerance = Optional[FaultTolerance]

__all__ = [
    "TableResult",
    "table3",
    "table4",
    "sensitivity_fd",
    "sensitivity_t3",
    "overhead",
]


@dataclass
class TableResult:
    """Structured output of one table regeneration."""

    name: str
    description: str
    headers: List[str]
    rows: List[List]
    notes: List[str] = field(default_factory=list)

    def render(self) -> str:
        out = render_table(
            self.headers, self.rows, title=f"== {self.name}: {self.description} =="
        )
        if self.notes:
            out += "\n" + "\n".join(f"note: {n}" for n in self.notes)
        return out

    def as_dict(self) -> Dict[Tuple, object]:
        """{(first columns...): last column} for programmatic checks."""
        return {tuple(r[:-1]): r[-1] for r in self.rows}


def _characterisation_config(forward_distance: Optional[int] = None) -> SimConfig:
    """MHPE observation mode: MRU throughout, no threshold switching,
    locality prefetch (the Section VI-A methodology).  Expressed as a
    ``SimConfig`` so characterisation runs flow through the experiment
    engine (memo + disk cache + parallel batches) like every other run."""
    kwargs = dict(switch_enabled=False, adjust_enabled=forward_distance is None)
    if forward_distance is not None:
        kwargs.update(init_lo=forward_distance, init_hi=forward_distance)
    return SimConfig(mhpe=MHPEConfig(**kwargs))


def _characterisation_run(app: str, rate: float, scale: float,
                          forward_distance: Optional[int] = None,
                          fault_tolerance: Tolerance = None):
    spec = RunSpec(app, "mhpe-naive", rate, scale=scale)
    config = _characterisation_config(forward_distance)
    if fault_tolerance is None:
        return run_one(spec, config=config)
    # Guarded path: a failed run yields None (recorded on the policy).
    return run_matrix(
        [spec], config=config, fault_tolerance=fault_tolerance
    )[spec.key()]


def _prewarm_characterisation(
    apps: Sequence[str],
    rates: Sequence[float],
    scale: float,
    jobs: Optional[int],
    progress: Progress = None,
    forward_distance: Optional[int] = None,
    fault_tolerance: Tolerance = None,
) -> None:
    if (jobs is None or jobs <= 1) and progress is None and fault_tolerance is None:
        return
    run_matrix(
        [RunSpec(app, "mhpe-naive", rate, scale=scale)
         for rate in rates for app in apps],
        config=_characterisation_config(forward_distance),
        jobs=jobs,
        progress=progress,
        fault_tolerance=fault_tolerance,
    )


def table3(
    apps: Optional[Sequence[str]] = None,
    rates: Sequence[float] = (0.75, 0.5),
    scale: float = 1.0,
    jobs: Optional[int] = None,
    progress: Progress = None,
    fault_tolerance: Tolerance = None,
) -> TableResult:
    """Maximum per-interval untouch level in the first four active intervals."""
    apps = list(apps or BENCHMARKS)
    _prewarm_characterisation(apps, rates, scale, jobs, progress,
                              fault_tolerance=fault_tolerance)
    rows = []
    notes = [
        "paper: range 0..60; Types II/III/V/VI high, Types I/IV low; "
        "T1 is set to 32 so MRU-friendly apps (e.g. HSD) stay below it",
    ]
    for rate in rates:
        for app in apps:
            result = _characterisation_run(app, rate, scale,
                                           fault_tolerance=fault_tolerance)
            if result is None:
                notes.append(f"{app}@{rate:.0%}: run failed (keep-going); omitted")
                continue
            profile = untouch_profile(result)
            rows.append([f"{rate:.0%}", app, profile.max_first_four])
    rows.sort(key=lambda r: (r[0], -r[2]))
    return TableResult(
        name="table3",
        description="max untouch level in first four intervals (MRU, no switch)",
        headers=["rate", "app", "max untouch"],
        rows=rows,
        notes=notes,
    )


def table4(
    apps: Optional[Sequence[str]] = None,
    rates: Sequence[float] = (0.75, 0.5),
    scale: float = 1.0,
    t1: int = 32,
    jobs: Optional[int] = None,
    progress: Progress = None,
    fault_tolerance: Tolerance = None,
) -> TableResult:
    """Total untouch level in the first four active intervals, for apps whose
    Table III maximum stays below ``t1`` (the paper's filtering rule)."""
    apps = list(apps or BENCHMARKS)
    _prewarm_characterisation(apps, rates, scale, jobs, progress,
                              fault_tolerance=fault_tolerance)
    rows = []
    for rate in rates:
        for app in apps:
            result = _characterisation_run(app, rate, scale,
                                           fault_tolerance=fault_tolerance)
            if result is None:
                continue
            profile = untouch_profile(result)
            if profile.max_first_four >= t1:
                continue
            rows.append([f"{rate:.0%}", app, profile.total_first_four])
    rows.sort(key=lambda r: (r[0], -r[2]))
    return TableResult(
        name="table4",
        description=f"total untouch in first four intervals (apps with max < {t1})",
        headers=["rate", "app", "total untouch"],
        rows=rows,
        notes=["paper: T2 = 40 separates HSD (MRU-friendly) from LRU-favouring apps"],
    )


def sensitivity_fd(
    regular_apps: Sequence[str] = ("HSD", "SRD"),
    irregular_apps: Sequence[str] = ("B+T", "KMN"),
    distances: Sequence[int] = tuple(range(1, 11)),
    rate: float = 0.5,
    scale: float = 1.0,
    jobs: Optional[int] = None,
    progress: Progress = None,
    fault_tolerance: Tolerance = None,
) -> TableResult:
    """Untouch level of early intervals vs a fixed forward distance.

    Reproduces the Section IV-B finding: regular applications' untouch level
    drops sharply once the distance reaches ~2, while irregular applications
    stay high until ~8 — hence the 2..8 operating range.
    """
    all_apps = list(regular_apps) + list(irregular_apps)
    for dist in distances:  # one batch per distance (distinct SimConfig)
        _prewarm_characterisation(
            all_apps, [rate], scale, jobs, progress, forward_distance=dist,
            fault_tolerance=fault_tolerance,
        )
    rows = []
    for dist in distances:
        for group, apps in (("regular", regular_apps), ("irregular", irregular_apps)):
            levels = []
            for app in apps:
                result = _characterisation_run(app, rate, scale,
                                               forward_distance=dist,
                                               fault_tolerance=fault_tolerance)
                if result is None:
                    continue
                levels.append(untouch_profile(result).total_first_four)
            if levels:
                rows.append([dist, group, round(mean(levels), 1)])
    return TableResult(
        name="sensitivity-fd",
        description="early-interval untouch level vs fixed forward distance",
        headers=["forward distance", "group", "mean total untouch (first 4)"],
        rows=rows,
        notes=["paper: regular apps' untouch drops at distance >= 2; beyond 8 "
               "irregular apps' untouch also drops, blurring classification"],
    )


def sensitivity_t3(
    apps: Sequence[str] = ("SRD", "HSD", "MRQ"),
    candidates: Sequence[int] = (16, 20, 24, 28, 32, 36, 40),
    rates: Sequence[float] = (0.75, 0.5),
    scale: float = 1.0,
    jobs: Optional[int] = None,
    progress: Progress = None,
    fault_tolerance: Tolerance = None,
) -> TableResult:
    """Average CPPE speedup over the baseline vs the T3 limit (Section VI-A)."""
    baseline_specs = [RunSpec(app, "baseline", rate, scale=scale)
                      for rate in rates for app in apps]
    cppe_specs = [RunSpec(app, "cppe", rate, scale=scale)
                  for rate in rates for app in apps]
    if (jobs is not None and jobs > 1) or progress is not None \
            or fault_tolerance is not None:
        run_matrix(baseline_specs, jobs=jobs, progress=progress,
                   fault_tolerance=fault_tolerance)
        for t3 in candidates:  # one batch per candidate (distinct SimConfig)
            run_matrix(
                cppe_specs,
                config=SimConfig(mhpe=MHPEConfig(t3=t3)),
                jobs=jobs,
                progress=progress,
                fault_tolerance=fault_tolerance,
            )
    rows = []
    for t3 in candidates:
        t3_config = SimConfig(mhpe=MHPEConfig(t3=t3))
        speedups = []
        for rate in rates:
            for app in apps:
                base_spec = RunSpec(app, "baseline", rate, scale=scale)
                cand_spec = RunSpec(app, "cppe", rate, scale=scale)
                if fault_tolerance is None:
                    base = run_one(base_spec)
                    cand = run_one(cand_spec, config=t3_config)
                else:
                    base = run_matrix(
                        [base_spec], fault_tolerance=fault_tolerance
                    )[base_spec.key()]
                    cand = run_matrix(
                        [cand_spec], config=t3_config,
                        fault_tolerance=fault_tolerance,
                    )[cand_spec.key()]
                if base is None or cand is None:
                    continue
                speedups.append(cand.speedup_over(base))
        if speedups:
            rows.append([t3, round(mean(speedups), 3)])
    best = max(rows, key=lambda r: r[1])[0]
    return TableResult(
        name="sensitivity-t3",
        description="mean speedup of the continuously-adjusting apps vs T3",
        headers=["T3", "mean speedup vs baseline"],
        rows=rows,
        notes=[f"best candidate here: {best} (paper: 32)"],
    )


def overhead(
    apps: Optional[Sequence[str]] = None,
    rates: Sequence[float] = (0.75, 0.5),
    scale: float = 1.0,
    jobs: Optional[int] = None,
    progress: Progress = None,
    fault_tolerance: Tolerance = None,
) -> TableResult:
    """Structure storage overhead of CPPE (Section VI-C)."""
    apps = list(apps or BENCHMARKS)
    if (jobs is not None and jobs > 1) or progress is not None \
            or fault_tolerance is not None:
        run_matrix(
            [RunSpec(app, "cppe", rate, scale=scale)
             for rate in rates for app in apps],
            jobs=jobs,
            progress=progress,
            fault_tolerance=fault_tolerance,
        )
    rows = []
    for rate in rates:
        reports = []
        for app in apps:
            spec = RunSpec(app, "cppe", rate, scale=scale)
            if fault_tolerance is None:
                result = run_one(spec)
            else:
                result = run_matrix(
                    [spec], fault_tolerance=fault_tolerance
                )[spec.key()]
                if result is None:
                    continue
            reports.append(overhead_report(result))
        if not reports:
            continue
        avg_entries = mean(r.total_entries for r in reports)
        avg_kb = mean(r.total_kb for r in reports)
        avg_evicted = mean(r.evicted_buffer_entries for r in reports)
        with_pattern = [r for r in reports if r.pattern_buffer_entries > 0]
        pattern_frac = (
            mean(r.pattern_buffer_vs_chain for r in with_pattern)
            if with_pattern
            else 0.0
        )
        rows.append(
            [
                f"{rate:.0%}",
                round(avg_entries, 1),
                round(avg_kb, 2),
                round(avg_evicted, 1),
                round(pattern_frac * 100, 1),
            ]
        )
    return TableResult(
        name="overhead",
        description="CPPE structure overhead, averaged over the suite",
        headers=[
            "rate",
            "avg entries",
            "avg KB",
            "avg evicted-buffer len",
            "pattern buffer vs chain (%)",
        ],
        rows=rows,
        notes=[
            "paper: 731 / 559 entries (8.6 / 6.6 KB) at 75% / 50%; evicted "
            "buffer 73 / 51; pattern buffer 37.2% / 88.7% of chain length "
            "(our footprints are scaled 1/4, so entry counts scale with them)",
        ],
    )
