"""Fault tolerance for the experiment harness: options, outcomes, injection.

Three small pieces, shared by :mod:`repro.harness.parallel` and
:mod:`repro.harness.experiment` (both import this module, so it must not
import either back):

* :class:`FaultTolerance` — the caller's policy for a batch: fail fast
  (default) or ``keep_going``; how often to retry a broken pool; how long
  to wait for worker progress.  It also accumulates :class:`SpecOutcome`
  records across every batch it is threaded through, so one object passed
  down ``repro regen`` collects the whole run's failure summary.
* :class:`SpecOutcome` — one per distinct spec: ``ok`` / ``retried`` /
  ``failed`` / ``timed_out``, plus the failure envelope when there is one.
* :class:`FaultPlan` — a deterministic fault-injection hook, parsed from
  the ``REPRO_FAULT_PLAN`` environment variable (a JSON list of rules), so
  tests and CI can crash, hang, or corrupt *specific* workers on demand.
  The plan is consulted by the guarded worker entry point on both the
  serial and the pool path, which is what makes serial-vs-parallel outcome
  parity testable.

Injection actions (``FaultRule.action``):

``raise``
    Raise ``exc_type`` (default ``RuntimeError``) inside the worker — a
    stand-in for a buggy simulation.
``crash``
    Hard-kill the worker process (``os._exit``), breaking the pool — a
    stand-in for a segfaulting/OOM-killed worker.  On the in-process path
    (where killing the process would take the test runner down with it)
    this degrades to a raised ``RuntimeError`` marked as a crash.
``hang``
    Sleep ``hang_s`` seconds — a stand-in for a deadlocked worker, used to
    exercise the timeout/reap path.
``corrupt``
    Complete the simulation but replace its payload with garbage — a
    stand-in for a poisoned result, used to prove validation keeps bad
    payloads out of the cache.

A rule with ``once_flag`` set fires at most once *across processes*: the
first worker to atomically create that flag file takes the fault, later
executions of the same spec pass.  That is what makes "crash once, then
succeed on retry" deterministic.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..errors import HarnessError, SimulationError, WorkerFailure, WorkerTimeout

__all__ = [
    "ENV_FAULT_PLAN",
    "FaultRule",
    "FaultPlan",
    "FaultTolerance",
    "SpecOutcome",
    "OUTCOME_STATUSES",
    "active_fault_plan",
    "summarize_outcomes",
    "render_failure_summary",
    "WorkerTimeout",  # re-export: raised by the runner, part of the taxonomy
]

#: Environment variable holding the JSON fault plan (inherited by workers).
ENV_FAULT_PLAN = "REPRO_FAULT_PLAN"

#: Exception types a ``raise`` rule may name.
_RAISABLE: Dict[str, type] = {
    "RuntimeError": RuntimeError,
    "OSError": OSError,
    "ValueError": ValueError,
    "KeyError": KeyError,
    "SimulationError": SimulationError,
}

_ACTIONS = frozenset({"raise", "crash", "hang", "corrupt"})


@dataclass(frozen=True)
class FaultRule:
    """One injection rule: when a spec label contains ``match``, do ``action``."""

    match: str
    action: str
    exc_type: str = "RuntimeError"
    message: str = "injected fault"
    hang_s: float = 600.0
    #: Fire only if this flag file does not exist yet (created atomically
    #: before firing), giving cross-process at-most-once semantics.
    once_flag: Optional[str] = None

    def __post_init__(self) -> None:
        if self.action not in _ACTIONS:
            raise HarnessError(
                f"fault rule action {self.action!r} not in {sorted(_ACTIONS)}"
            )
        if self.action == "raise" and self.exc_type not in _RAISABLE:
            raise HarnessError(
                f"fault rule exc_type {self.exc_type!r} not in "
                f"{sorted(_RAISABLE)}"
            )

    def applies_to(self, label: str) -> bool:
        return self.match in label

    def claim(self) -> bool:
        """True if this firing is allowed (and claimed) under ``once_flag``."""
        if self.once_flag is None:
            return True
        try:
            fd = os.open(self.once_flag, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        os.close(fd)
        return True


class FaultPlan:
    """An ordered list of :class:`FaultRule`\\ s (first match wins)."""

    def __init__(self, rules: Sequence[FaultRule] = ()) -> None:
        self.rules: Tuple[FaultRule, ...] = tuple(rules)

    def __bool__(self) -> bool:
        return bool(self.rules)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            raw = json.loads(text)
        except json.JSONDecodeError as exc:
            raise HarnessError(f"unparseable {ENV_FAULT_PLAN}: {exc}") from exc
        if not isinstance(raw, list):
            raise HarnessError(f"{ENV_FAULT_PLAN} must be a JSON list of rules")
        rules = []
        for entry in raw:
            if not isinstance(entry, dict):
                raise HarnessError(f"fault rule must be an object: {entry!r}")
            try:
                rules.append(FaultRule(**entry))
            except TypeError as exc:
                raise HarnessError(f"bad fault rule {entry!r}: {exc}") from exc
        return cls(rules)

    @classmethod
    def from_env(
        cls, env: Optional[Mapping[str, str]] = None
    ) -> Optional["FaultPlan"]:
        """The plan in ``$REPRO_FAULT_PLAN``, or ``None`` when unset/empty."""
        text = (env if env is not None else os.environ).get(ENV_FAULT_PLAN, "")
        if not text.strip():
            return None
        return cls.from_json(text)

    def rule_for(self, label: str) -> Optional[FaultRule]:
        for rule in self.rules:
            if rule.applies_to(label):
                return rule
        return None

    def apply(self, label: str, allow_hard_exit: bool = True) -> bool:
        """Fire the first matching rule for ``label``; returns True when the
        payload should be corrupted after the simulation completes.

        ``raise``/``crash``/``hang`` take effect here (``crash`` degrades to
        a raised error when ``allow_hard_exit`` is False, i.e. in-process).
        """
        rule = self.rule_for(label)
        if rule is None or not rule.claim():
            return False
        if rule.action == "raise":
            raise _RAISABLE[rule.exc_type](f"{rule.message} [{label}]")
        if rule.action == "crash":
            if allow_hard_exit:
                os._exit(17)
            raise RuntimeError(f"injected worker crash (in-process) [{label}]")
        if rule.action == "hang":
            # Harness-side wall clock (simulating a deadlocked worker);
            # never reachable from simulation state.
            time.sleep(rule.hang_s)
            return False
        return True  # corrupt


def active_fault_plan() -> Optional[FaultPlan]:
    """The environment's fault plan, re-read per call (no caching: tests
    monkeypatch the variable, and worker processes inherit it at spawn)."""
    return FaultPlan.from_env()


# --------------------------------------------------------------------------
# Outcomes & batch policy
# --------------------------------------------------------------------------

#: Valid ``SpecOutcome.status`` values.
OUTCOME_STATUSES: Tuple[str, ...] = ("ok", "retried", "failed", "timed_out")


@dataclass
class SpecOutcome:
    """Terminal state of one distinct spec within a batch.

    ``retried`` means the spec ultimately succeeded but needed more than one
    dispatch (its pool died under it at least once); ``retries`` counts the
    extra dispatches for any status.
    """

    label: str
    status: str
    retries: int = 0
    error: Optional[WorkerFailure] = None

    def __post_init__(self) -> None:
        if self.status not in OUTCOME_STATUSES:
            raise HarnessError(
                f"outcome status {self.status!r} not in {OUTCOME_STATUSES}"
            )


@dataclass
class FaultTolerance:
    """Batch failure policy, threaded from the CLI down to the runner.

    * ``keep_going`` — record a failed spec's outcome and continue the
      batch (its result becomes ``None``); default is to fail fast by
      raising :class:`~repro.errors.WorkerFailure`.
    * ``retries`` — how many times a *broken pool* is rebuilt (with
      exponential backoff from ``backoff_s``) before degrading to serial
      execution.  Simulation-level failures are never retried: they are
      deterministic.
    * ``timeout_s`` — if no worker completes for this long, in-flight
      workers are reaped and their specs marked ``timed_out`` (pool path
      only; an in-process simulation cannot be safely interrupted).
    * ``max_backoff_s`` — hard cap on any single pool-rebuild sleep.  The
      exponential schedule ``backoff_s * 2**(attempt-1)`` used to grow
      without bound, so a generous ``retries`` budget could stall a
      long-running service's worker loop for minutes; every delay is now
      clamped (see :meth:`backoff_delay`).

    The object accumulates outcomes across every batch it is passed to;
    ``repro regen`` shares one instance across all its artifacts and renders
    the batch-end failure summary from it.
    """

    keep_going: bool = False
    retries: int = 2
    timeout_s: Optional[float] = None
    backoff_s: float = 0.05
    max_backoff_s: float = 2.0
    outcomes: List[SpecOutcome] = field(default_factory=list)

    def backoff_delay(self, attempt: int) -> float:
        """Sleep before pool-rebuild ``attempt`` (1-based): exponential from
        ``backoff_s``, clamped to ``max_backoff_s`` (and never negative)."""
        if attempt < 1:
            return 0.0
        return max(0.0, min(self.backoff_s * 2 ** (attempt - 1),
                            self.max_backoff_s))

    def record(self, outcome: SpecOutcome) -> SpecOutcome:
        self.outcomes.append(outcome)
        return outcome

    def failures(self) -> List[SpecOutcome]:
        """Deduplicated (last state per label) failed/timed-out outcomes."""
        return [
            o
            for o in summarize_outcomes(self.outcomes).values()
            if o.status in ("failed", "timed_out")
        ]


def summarize_outcomes(
    outcomes: Sequence[SpecOutcome],
) -> Dict[str, SpecOutcome]:
    """Last-state-wins dedup by label, preserving first-appearance order.

    A spec can be resolved several times across batches (e.g. a figure
    prewarm then its per-app lookups); the latest outcome is its state.
    """
    final: Dict[str, SpecOutcome] = {}
    for outcome in outcomes:
        final[outcome.label] = outcome
    return final


def render_failure_summary(outcomes: Sequence[SpecOutcome]) -> str:
    """Human-readable batch-end summary (what ``repro regen`` prints)."""
    final = summarize_outcomes(outcomes)
    counts = {status: 0 for status in OUTCOME_STATUSES}
    for outcome in final.values():
        counts[outcome.status] += 1
    lines = [
        "failure summary: "
        + ", ".join(f"{counts[s]} {s}" for s in OUTCOME_STATUSES)
    ]
    for outcome in final.values():
        if outcome.status in ("failed", "timed_out"):
            reason = ""
            if outcome.error is not None:
                reason = f" ({outcome.error.exc_type}: {outcome.error.message})"
            lines.append(
                f"  {outcome.status}: {outcome.label}{reason}"
                + (f" after {outcome.retries} retr"
                   f"{'y' if outcome.retries == 1 else 'ies'}"
                   if outcome.retries else "")
            )
    return "\n".join(lines)
