"""Configuration dataclasses for the simulated system.

Defaults mirror Table I of the paper:

====================  ======================================================
GPU cores             28 SMs, 1.4 GHz
Private L1 TLB        128-entry per SM, 1-cycle latency, LRU
Shared L2 TLB         512-entry, 16-way associative, 10-cycle latency
Page table walker     64 concurrent walks, 4-level page table
Page walk cache       8 KB, 16-way, 10-cycle latency
DRAM                  flat-latency model (see DESIGN.md deviation #4)
CPU-GPU interconnect  16 GB/s, 20 us page fault service time
====================  ======================================================
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Any, Optional

from .errors import ConfigError
from .units import (
    DEFAULT_CLOCK_HZ,
    PAGES_PER_CHUNK,
    PAGE_SIZE_BYTES,
    page_transfer_cycles,
    us_to_cycles,
)

__all__ = [
    "TLBConfig",
    "PageWalkCacheConfig",
    "WalkerConfig",
    "TranslationConfig",
    "SMConfig",
    "UVMConfig",
    "MHPEConfig",
    "HPEConfig",
    "PatternBufferConfig",
    "SimConfig",
]


@dataclass(frozen=True)
class TLBConfig:
    """A set-associative TLB."""

    entries: int = 128
    associativity: int = 128  # L1 default: fully associative
    hit_latency: int = 1

    def __post_init__(self) -> None:
        if self.entries <= 0:
            raise ConfigError(f"TLB entries must be positive, got {self.entries}")
        if self.associativity <= 0 or self.entries % self.associativity != 0:
            raise ConfigError(
                f"associativity {self.associativity} must divide entries "
                f"{self.entries}"
            )
        if self.hit_latency < 0:
            raise ConfigError("hit_latency must be non-negative")

    @property
    def num_sets(self) -> int:
        return self.entries // self.associativity


@dataclass(frozen=True)
class PageWalkCacheConfig:
    """Shared page walk cache (caches upper-level page-table entries)."""

    size_bytes: int = 8 * 1024
    associativity: int = 16
    entry_bytes: int = 8
    latency: int = 10

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.entry_bytes <= 0:
            raise ConfigError("page walk cache sizes must be positive")
        if self.entries % self.associativity != 0:
            raise ConfigError("PWC associativity must divide entry count")

    @property
    def entries(self) -> int:
        return self.size_bytes // self.entry_bytes


@dataclass(frozen=True)
class WalkerConfig:
    """Highly-threaded page table walker."""

    concurrent_walks: int = 64
    levels: int = 4
    memory_access_latency: int = 160  # cycles per radix level fetched from DRAM

    def __post_init__(self) -> None:
        if self.concurrent_walks <= 0:
            raise ConfigError("walker must support at least one walk")
        if self.levels <= 0:
            raise ConfigError("page table must have at least one level")


@dataclass(frozen=True)
class TranslationConfig:
    """Two-level TLB hierarchy + walker (Fig. 1 of the paper)."""

    l1: TLBConfig = field(default_factory=TLBConfig)
    l2: TLBConfig = field(
        default_factory=lambda: TLBConfig(entries=512, associativity=16, hit_latency=10)
    )
    pwc: PageWalkCacheConfig = field(default_factory=PageWalkCacheConfig)
    walker: WalkerConfig = field(default_factory=WalkerConfig)
    enabled: bool = True  # disable to model an ideal-translation ablation
    #: Route walker memory accesses through the GDDR5 channel model instead
    #: of the flat per-level latency (Table I's DRAM row; opt-in).
    use_dram_model: bool = False


@dataclass(frozen=True)
class SMConfig:
    """Streaming multiprocessor execution model."""

    num_sms: int = 28
    compute_cycles_per_access: int = 4
    #: Replayable far faults: how many faulted accesses an SM can park while
    #: continuing to issue subsequent accesses (models other warps running).
    #: Four keeps the migration frontier's lead over the touch wavefront
    #: within the chunk chain's protected (new+middle) partitions, matching
    #: the paper's observation that MRU-with-forward-distance evictions of
    #: regular applications have untouch level ~0 (Table III).
    max_outstanding_faults: int = 4
    #: Max consecutive non-faulting accesses processed inside one event.
    burst_length: int = 64

    def __post_init__(self) -> None:
        if self.num_sms <= 0:
            raise ConfigError("need at least one SM")
        if self.max_outstanding_faults <= 0:
            raise ConfigError("max_outstanding_faults must be positive")
        if self.burst_length <= 0:
            raise ConfigError("burst_length must be positive")


@dataclass(frozen=True)
class UVMConfig:
    """Unified-memory runtime (GMMU + host driver) parameters."""

    clock_hz: float = DEFAULT_CLOCK_HZ
    page_size: int = PAGE_SIZE_BYTES
    pages_per_chunk: int = PAGES_PER_CHUNK
    #: Interval length in *pages migrated* (paper: 64 = four chunk prefetches).
    interval_pages: int = 64
    fault_latency_cycles: int = us_to_cycles(20.0)
    interconnect_gbps: float = 16.0
    #: Fixed per-victim-chunk eviction overhead (unmap + TLB shootdown).
    eviction_overhead_cycles: int = 1000
    #: Number of fault-service operations the runtime can overlap.
    fault_parallelism: int = 1
    #: Distinct fault groups (chunks) one service op may drain from the
    #: fault buffer.  1 reproduces the paper's per-fault servicing; larger
    #: values model UVM batch processing of the fault buffer, amortising
    #: the 20 us base cost across chunks (ablation, not used by the paper).
    fault_batch_size: int = 1
    #: Fraction of accesses that dirty their page (writeback accounting).
    write_fraction: float = 0.3
    #: Crash model: a run whose chunk evictions exceed
    #: ``crash_eviction_budget_factor * footprint_chunks`` raises
    #: :class:`~repro.errors.ThrashingCrash`.  ``None`` disables it.
    crash_eviction_budget_factor: Optional[float] = None

    def __post_init__(self) -> None:
        if self.pages_per_chunk <= 0:
            raise ConfigError("pages_per_chunk must be positive")
        if self.interval_pages % self.pages_per_chunk != 0:
            raise ConfigError(
                "interval_pages must be a whole number of chunks "
                f"({self.interval_pages} % {self.pages_per_chunk} != 0)"
            )
        if self.fault_parallelism <= 0:
            raise ConfigError("fault_parallelism must be positive")
        if self.fault_batch_size <= 0:
            raise ConfigError("fault_batch_size must be positive")
        if not 0.0 <= self.write_fraction <= 1.0:
            raise ConfigError("write_fraction must be in [0, 1]")

    @property
    def page_transfer_cycles(self) -> int:
        return page_transfer_cycles(self.interconnect_gbps, self.clock_hz)

    @property
    def chunks_per_interval(self) -> int:
        return self.interval_pages // self.pages_per_chunk


@dataclass(frozen=True)
class MHPEConfig:
    """MHPE thresholds and knobs (Algorithm 1 + Section VI-A)."""

    #: Switch MRU -> LRU when one interval's total untouch level reaches T1.
    t1: int = 32
    #: Switch MRU -> LRU when the first four intervals' cumulative untouch
    #: level reaches T2 (checked once, at the end of the fourth interval).
    t2: int = 40
    #: Forward-distance growth limit.
    t3: int = 32
    #: Initial forward distance = clamp(chain_len // init_divisor, lo, hi).
    init_divisor: int = 100
    init_lo: int = 2
    init_hi: int = 8
    #: Evicted-chunk buffer length = max(min_buffer, buffer_unit *
    #: (chain_len // buffer_divisor)).
    buffer_divisor: int = 64
    buffer_unit: int = 8
    min_buffer: int = 8
    #: Disable to pin the forward distance at its initial value (used by the
    #: Section IV-B forward-distance sensitivity study).
    adjust_enabled: bool = True
    #: Disable to stay on MRU regardless of untouch level (used by the
    #: Table III/IV characterisation runs, which observe untouch under MRU).
    switch_enabled: bool = True

    def __post_init__(self) -> None:
        if not (0 < self.init_lo <= self.init_hi):
            raise ConfigError("need 0 < init_lo <= init_hi")
        if self.t1 <= 0 or self.t2 <= 0 or self.t3 <= 0:
            raise ConfigError("thresholds must be positive")


@dataclass(frozen=True)
class HPEConfig:
    """HPE (the prior, counter-based policy) knobs — see DESIGN.md dev. #1."""

    #: Counter threshold separating regular from irregular chunks.
    regular_counter_fraction: float = 0.75
    #: Number of intervals a strategy must underperform before switching.
    switch_patience: int = 2


@dataclass(frozen=True)
class PatternBufferConfig:
    """Access pattern-aware prefetcher's pattern buffer (Section IV-C)."""

    #: Record only evicted chunks with untouch level >= this (paper: 8,
    #: i.e. half a chunk).
    min_untouch_level: int = 8
    #: Deletion scheme: 1 = delete on any mismatch; 2 = delete only when the
    #: first lookup of the entry mismatches (paper adopts Scheme-2).
    deletion_scheme: int = 2
    #: Optional hard cap on entries (None = unbounded, as in the paper).
    max_entries: Optional[int] = None
    #: Record patterns only once the eviction strategy has switched to LRU
    #: (Section VI-C: "the buffer is used in limited cases").
    lru_only: bool = True

    def __post_init__(self) -> None:
        if self.deletion_scheme not in (1, 2):
            raise ConfigError("deletion_scheme must be 1 or 2")
        if self.min_untouch_level < 0:
            raise ConfigError("min_untouch_level must be non-negative")


@dataclass(frozen=True)
class SimConfig:
    """Top-level simulation configuration."""

    sm: SMConfig = field(default_factory=SMConfig)
    uvm: UVMConfig = field(default_factory=UVMConfig)
    translation: TranslationConfig = field(default_factory=TranslationConfig)
    mhpe: MHPEConfig = field(default_factory=MHPEConfig)
    hpe: HPEConfig = field(default_factory=HPEConfig)
    pattern_buffer: PatternBufferConfig = field(default_factory=PatternBufferConfig)
    seed: int = 0
    #: Simulation data-structure backend.  ``"object"`` is the reference
    #: implementation (per-page dicts, linked ChunkEntry objects);
    #: ``"array"`` is the flat-array fast path (``repro.memsim.array_backend``),
    #: proven byte-identical by ``tests/test_backend_differential.py``.
    #: Because both backends produce identical results, ``backend`` is
    #: deliberately excluded from the cache fingerprints
    #: (:func:`repro.harness.cache.config_fingerprint`) so they share
    #: cached entries.
    backend: str = "object"

    def __post_init__(self) -> None:
        if self.backend not in ("object", "array"):
            raise ConfigError(
                f"backend must be 'object' or 'array', got {self.backend!r}"
            )

    def with_(self, **kwargs: Any) -> "SimConfig":
        """Return a copy with the given top-level fields replaced."""
        return replace(self, **kwargs)

    def make_rng(self) -> random.Random:
        """The simulation's seeded mechanism-layer RNG stream.

        Every stage of the memory system draws from this one injected
        instance (the seed is XOR-folded so policy-side streams seeded
        directly from ``seed`` stay decorrelated).  Constructing RNGs
        anywhere inside ``repro.memsim`` instead of here is a lint
        finding (REPRO106): the seed must flow from the config — and
        therefore through the cache content hash — not from ad-hoc
        constants scattered through mechanism code.
        """
        return random.Random(self.seed ^ 0x5EED)
