"""Typed, deterministic component registries (policies / prefetchers /
workloads / setups).

Every pluggable component of the harness lives in one of four registries:

``policy``
    Eviction policies (:class:`~repro.policies.base.EvictionPolicy`
    factories).
``prefetcher``
    Page prefetchers (:class:`~repro.prefetch.base.Prefetcher` factories).
``workload``
    The benchmark suite (Table II specs; registered in bulk from
    ``repro.workloads.suite.BENCHMARKS``).
``setup``
    Named ``(policy, prefetcher)`` pairs — the units the figures compare.

Components self-register **at import time** via :func:`register` (or
:func:`register_table` for table-driven bulk registration).  Registration
after boot is an error: the registry freezes on the first component build,
so the set of components — and therefore every cache key, CLI choice list
and lint closure derived from it — is a pure function of which modules were
imported, never of runtime control flow.  ``repro lint`` enforces the
import-time discipline statically (REPRO108), and ``repro lint --deep``
resolves registered builders through the ``registry:`` call-graph seam so
the taint/reachability analyses walk into every builder (LINTING.md).

Out-of-tree plugins are discovered from the ``REPRO_PLUGINS`` environment
variable (comma/colon-separated module names) and the ``repro.plugins``
entry-point group, in deterministically sorted order, when this module is
first imported.  A plugin component's identity enters the simulation cache
key (:func:`plugin_components_payload`) **only when a plugin component is
actually part of the spec's setup** — purely in-tree setups keep
byte-identical pre-registry fingerprints, so warm caches survive
(tests/test_registry.py golden-key test).

Setups also resolve *compositionally*: any ``"<policy>+<prefetcher>"``
name (e.g. ``"lru+ngram"``) is a valid setup naming that exact pair, with
a stable cache key, without any runtime registration.  ``repro shootout``
uses this to enumerate the full policy x prefetcher cross product.
"""

from __future__ import annotations

import os
import sys
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from .errors import ConfigError

__all__ = [
    "KINDS",
    "PAIR_SEPARATOR",
    "PLUGIN_ENV",
    "PLUGIN_GROUP",
    "Registration",
    "Registry",
    "RegistryError",
    "build",
    "build_setup",
    "canonical_setup_name",
    "default_registry",
    "discovered_plugins",
    "get",
    "items",
    "names",
    "pair_setup_name",
    "plugin_components_payload",
    "register",
    "register_table",
    "setup_components",
]

#: The closed set of registry kinds.  A closed set (not an open namespace)
#: keeps the ``registry:<kind>`` lint seam enumerable.
KINDS: Tuple[str, ...] = ("policy", "prefetcher", "setup", "workload")

#: Separator for compositional setup names (``"lru+ngram"``).  Reserved:
#: no registered component name may contain it.
PAIR_SEPARATOR = "+"

#: Environment variable naming plugin modules to import at boot
#: (comma/colon-separated), e.g. ``REPRO_PLUGINS=my_lab.prefetchers``.
PLUGIN_ENV = "REPRO_PLUGINS"

#: Entry-point group third-party distributions use to advertise plugins.
PLUGIN_GROUP = "repro.plugins"


class RegistryError(ConfigError):
    """A registration violated the registry contract (collision, frozen
    registry, reserved name, non-buildable component)."""


@dataclass(frozen=True)
class Registration:
    """One registered component.

    ``builder`` is a zero-argument factory for ``policy``/``prefetcher``
    kinds, a ``(policy_name, prefetcher_name)`` pair for ``setup``, and an
    arbitrary descriptor object (the :class:`BenchmarkSpec`) for
    ``workload``.  ``fingerprint_fields`` declares which ``SimConfig``
    sections parameterise the component's behaviour — the machine-readable
    contract the cache layer and ``repro lint --deep`` (REPRO501) audit.
    ``origin`` is the defining module; anything outside the ``repro``
    package is a plugin and enters the cache key when used
    (:func:`plugin_components_payload`).
    """

    kind: str
    name: str
    builder: Any
    params_schema: Mapping[str, str] = field(default_factory=dict)
    fingerprint_fields: Tuple[str, ...] = ()
    doc: str = ""
    origin: str = ""

    @property
    def plugin(self) -> bool:
        """True for out-of-tree components (origin outside ``repro.*``)."""
        root = self.origin.split(".", 1)[0]
        return root != "repro"


class Registry:
    """A set of component tables with deterministic iteration order and
    frozen-after-boot mutation semantics."""

    def __init__(self) -> None:
        self._entries: Dict[str, Dict[str, Registration]] = {
            kind: {} for kind in KINDS
        }
        self._frozen = False

    # --- mutation (import time only) -------------------------------------

    @property
    def frozen(self) -> bool:
        return self._frozen

    def freeze(self) -> None:
        """Seal the registry: any later :meth:`add` raises.

        Called automatically on the first component build — after boot the
        component set must be a pure function of the imported modules.
        """
        self._frozen = True

    def add(
        self,
        kind: str,
        name: str,
        builder: Any,
        *,
        params_schema: Optional[Mapping[str, str]] = None,
        fingerprint_fields: Tuple[str, ...] = (),
        doc: str = "",
        origin: str = "",
    ) -> Registration:
        if kind not in KINDS:
            raise RegistryError(
                f"unknown registry kind {kind!r}; kinds: {', '.join(KINDS)}"
            )
        if self._frozen:
            raise RegistryError(
                f"registry is frozen: cannot register {kind} {name!r} after "
                "boot — components register at module import time only "
                "(REPRO108)"
            )
        if not name or not isinstance(name, str):
            raise RegistryError(f"component name must be a non-empty string, got {name!r}")
        if PAIR_SEPARATOR in name and kind in ("policy", "prefetcher", "setup"):
            # Workload names may contain '+' ("B+T"); setup-side names may
            # not — '+' is the compositional pair separator there.
            raise RegistryError(
                f"{kind} name {name!r} contains the reserved pair "
                f"separator {PAIR_SEPARATOR!r}"
            )
        existing = self._entries[kind].get(name)
        if existing is not None:
            raise RegistryError(
                f"duplicate {kind} {name!r}: already registered by "
                f"{existing.origin or 'an earlier import'}"
            )
        entry = Registration(
            kind=kind,
            name=name,
            builder=builder,
            params_schema=dict(params_schema or {}),
            fingerprint_fields=tuple(fingerprint_fields),
            doc=doc,
            origin=origin,
        )
        self._entries[kind][name] = entry
        return entry

    # --- lookup (freezes on first build) ----------------------------------

    def names(self, kind: str) -> Tuple[str, ...]:
        """Registered component names of ``kind``, sorted."""
        if kind not in KINDS:
            raise RegistryError(
                f"unknown registry kind {kind!r}; kinds: {', '.join(KINDS)}"
            )
        return tuple(sorted(self._entries[kind]))

    def items(self, kind: str) -> Tuple[Registration, ...]:
        """Registrations of ``kind``, sorted by name."""
        return tuple(
            self._entries[kind][name] for name in self.names(kind)
        )

    def get(self, kind: str, name: str) -> Registration:
        """Look up one registration; unknown names list the valid choices."""
        if kind not in KINDS:
            raise RegistryError(
                f"unknown registry kind {kind!r}; kinds: {', '.join(KINDS)}"
            )
        entry = self._entries[kind].get(name)
        if entry is None:
            raise ConfigError(
                f"unknown {kind} {name!r}; known: {', '.join(self.names(kind))}"
            )
        return entry

    def build(self, kind: str, name: str) -> Any:
        """Construct a fresh component instance (and freeze the registry)."""
        self.freeze()
        entry = self.get(kind, name)
        factory = entry.builder
        if not callable(factory):
            raise RegistryError(
                f"{kind} {name!r} is not buildable: its builder is a "
                f"{type(factory).__name__}, not a callable"
            )
        return factory()

    def setup_components(self, name: str) -> Tuple[str, str]:
        """Resolve a setup name to its ``(policy, prefetcher)`` names.

        Accepts registered setup names and compositional
        ``"<policy>+<prefetcher>"`` pair names.
        """
        entry = self._entries["setup"].get(name)
        if entry is not None:
            pair = entry.builder
            if (
                not isinstance(pair, tuple)
                or len(pair) != 2
                or not all(isinstance(part, str) for part in pair)
            ):
                raise RegistryError(
                    f"setup {name!r} must register a (policy, prefetcher) "
                    f"name pair, got {pair!r}"
                )
            return (pair[0], pair[1])
        pair_names = split_pair_name(name)
        if pair_names is not None:
            return pair_names
        raise ConfigError(
            f"unknown setup {name!r}; known: {', '.join(self.names('setup'))}"
        )


def split_pair_name(name: str) -> Optional[Tuple[str, str]]:
    """``"lru+ngram"`` -> ``("lru", "ngram")``; ``None`` if not a pair."""
    if PAIR_SEPARATOR not in name:
        return None
    policy_name, _, prefetcher_name = name.partition(PAIR_SEPARATOR)
    if not policy_name or not prefetcher_name:
        return None
    if PAIR_SEPARATOR in prefetcher_name:
        return None
    return policy_name, prefetcher_name


def pair_setup_name(policy_name: str, prefetcher_name: str) -> str:
    """The compositional setup name for a ``(policy, prefetcher)`` pair."""
    return f"{policy_name}{PAIR_SEPARATOR}{prefetcher_name}"


# --- module-level facade over the default registry --------------------------

_default = Registry()


def default_registry() -> Registry:
    """The process-wide registry every in-tree component registers into."""
    return _default


def _caller_module(depth: int = 2) -> str:
    """Module name of the registration call site (for ``origin``)."""
    frame = sys._getframe(depth)
    return str(frame.f_globals.get("__name__", "<unknown>"))


def register(
    kind: str,
    name: str,
    builder: Any,
    *,
    params_schema: Optional[Mapping[str, str]] = None,
    fingerprint_fields: Tuple[str, ...] = (),
    doc: str = "",
) -> Registration:
    """Register one component into the default registry.

    Must be called at module import time with literal ``kind``/``name``
    arguments — runtime registration and computed names are lint findings
    (REPRO108): the component set has to be statically enumerable for the
    deep-lint ``registry:`` seam and the CLI choice lists to be sound.
    """
    return _default.add(
        kind,
        name,
        builder,
        params_schema=params_schema,
        fingerprint_fields=fingerprint_fields,
        doc=doc,
        origin=_caller_module(),
    )


def register_table(
    kind: str,
    table: Mapping[str, Any],
    *,
    doc: str = "",
) -> Tuple[Registration, ...]:
    """Bulk-register a module-level table (e.g. the Table II workload suite).

    Keys become component names (sorted — registration order is
    deterministic regardless of the table's insertion order); values are the
    builders/descriptors.  The table argument must be a module-level name,
    not an expression (REPRO108), so the deep-lint seam can resolve it.
    """
    origin = _caller_module()
    registered = []
    for name in sorted(table):
        value = table[name]
        entry_doc = doc
        description = getattr(value, "description", "")
        if description:
            entry_doc = f"{doc}: {description}" if doc else str(description)
        registered.append(
            _default.add(kind, name, value, doc=entry_doc, origin=origin)
        )
    return tuple(registered)


def names(kind: str) -> Tuple[str, ...]:
    return _default.names(kind)


def items(kind: str) -> Tuple[Registration, ...]:
    return _default.items(kind)


def get(kind: str, name: str) -> Registration:
    return _default.get(kind, name)


def build(kind: str, name: str) -> Any:
    return _default.build(kind, name)


def setup_components(name: str) -> Tuple[str, str]:
    return _default.setup_components(name)


def build_setup(name: str) -> Tuple[Any, Any]:
    """Construct the named (or pair-named) setup's fresh component pair."""
    policy_name, prefetcher_name = _default.setup_components(name)
    return build("policy", policy_name), build("prefetcher", prefetcher_name)


def canonical_setup_name(policy_name: str, prefetcher_name: str) -> str:
    """The stable display/cache name for a component pair.

    The first registered setup (sorted by name) naming exactly this pair
    wins — so the shootout reuses the named setups' warm cache entries —
    and unregistered pairs fall back to the compositional pair name.
    """
    for entry in _default.items("setup"):
        if entry.builder == (policy_name, prefetcher_name):
            return entry.name
    return pair_setup_name(policy_name, prefetcher_name)


def plugin_components_payload(setup_name: str) -> Optional[Dict[str, object]]:
    """Extra ``spec_fingerprint`` payload when a plugin component is used.

    Returns ``None`` — and therefore leaves the fingerprint payload
    byte-identical to the pre-registry format — unless the setup resolves
    to at least one out-of-tree component.  For plugin components the
    section pins the component's identity (name, origin module, declared
    ``fingerprint_fields``) into the cache key, so two plugins squatting
    the same name from different modules can never share cache entries.
    """
    sections: Dict[str, object] = {}
    setup_entry = _default._entries["setup"].get(setup_name)
    if setup_entry is not None and setup_entry.plugin:
        sections["setup"] = _component_section(setup_entry)
    try:
        policy_name, prefetcher_name = _default.setup_components(setup_name)
    except ConfigError:
        return sections or None
    for kind, component in (
        ("policy", policy_name),
        ("prefetcher", prefetcher_name),
    ):
        entry = _default._entries[kind].get(component)
        if entry is not None and entry.plugin:
            sections[kind] = _component_section(entry)
    return sections or None


def _component_section(entry: Registration) -> Dict[str, object]:
    return {
        "name": entry.name,
        "origin": entry.origin,
        "fingerprint_fields": sorted(entry.fingerprint_fields),
    }


# --- plugin discovery --------------------------------------------------------

_discovered: Tuple[str, ...] = ()


def discovered_plugins() -> Tuple[str, ...]:
    """The plugin modules imported at boot, in import order (sorted)."""
    return _discovered


def _plugin_env_modules(raw: str) -> List[str]:
    parts: List[str] = []
    for chunk in raw.replace(",", ":").split(":"):
        module = chunk.strip()
        if module and module not in parts:
            parts.append(module)
    return sorted(parts)


def _entry_point_modules() -> List[str]:
    """Plugin modules advertised under the ``repro.plugins`` group."""
    try:
        from importlib import metadata
    except ImportError:  # pragma: no cover - python < 3.8
        return []
    try:
        eps: Any = metadata.entry_points()
    except Exception:  # pragma: no cover - broken metadata backend
        return []
    if hasattr(eps, "select"):
        group: Any = eps.select(group=PLUGIN_GROUP)
    else:  # pragma: no cover - python 3.9 mapping API
        group = eps.get(PLUGIN_GROUP, ())
    modules = {str(ep.value).partition(":")[0] for ep in group}
    return sorted(modules)


def _discover_plugins(registry: Registry, raw_env: str) -> Tuple[str, ...]:
    """Import plugin modules in deterministically sorted order.

    Importing a plugin module runs its import-time ``register`` calls.  A
    plugin that fails to import fails loudly: a half-registered component
    set would make cache keys and CLI behaviour dependent on the failure
    mode instead of the configuration.
    """
    import importlib

    modules: List[str] = []
    for module in _plugin_env_modules(raw_env) + _entry_point_modules():
        if module not in modules:
            modules.append(module)
    imported: List[str] = []
    for module in modules:
        try:
            importlib.import_module(module)
        except RegistryError:
            raise
        except Exception as exc:
            raise ConfigError(
                f"plugin module {module!r} (from ${PLUGIN_ENV} / "
                f"{PLUGIN_GROUP} entry points) failed to import: "
                f"{type(exc).__name__}: {exc}"
            ) from exc
        imported.append(module)
    return tuple(imported)


# Import-time discovery: deliberately a module-level statement, so plugins
# are in place before any in-tree registrations complete and before the
# registry can freeze.  Env/entry-point reads happen once per process at
# import — never inside any function reachable from the simulation entry
# points (REPRO603 would flag that; see LINTING.md).
_discovered = _discover_plugins(_default, os.environ.get(PLUGIN_ENV, ""))
