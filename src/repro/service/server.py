"""Stdlib HTTP front end for the experiment service.

Routes (all JSON; the event stream is newline-delimited JSON):

* ``POST /batches`` — submit a batch; body ``{"specs": [...], "config":
  {...}, "tenant": "...", "priority": N}``.  201 with the job's status
  view; 400 on a bad payload, 429 on rate-limit/admission denial.
* ``GET /batches`` — summaries of every known job.
* ``GET /batches/<id>`` — one job's full status (specs, per-spec
  outcomes, results, ``BatchStats``).
* ``DELETE /batches/<id>`` — cancel a queued job.
* ``GET /batches/<id>/events`` — NDJSON event stream
  (``events.schema.json``).  ``?after=N`` resumes past sequence number
  ``N``; ``?follow=1`` keeps the connection open, streaming live events
  until the job's bus closes (default is a snapshot of what is buffered).
* ``GET /healthz`` — liveness + queue counts.

Built on :mod:`http.server` (``ThreadingHTTPServer``) — the container has
no web framework and does not need one.  Errors of the
:class:`~repro.errors.ServiceError` family map to their ``http_status``;
everything else is a 500.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Tuple, Type
from urllib.parse import parse_qs, urlparse

from ..errors import InvalidJobRequest, RateLimited, ServiceError
from .core import ExperimentService
from .wire import JSONDict

__all__ = ["make_server", "serve"]

#: Poll interval for ``?follow=1`` streams (bounds shutdown latency).
_FOLLOW_WAIT_S = 0.5


class _Handler(BaseHTTPRequestHandler):
    """One request.  ``server.service`` is bound by :func:`make_server`."""

    protocol_version = "HTTP/1.1"
    #: Bound by the _Server subclass; declared for the type checker.
    service: ExperimentService

    # --- plumbing ---------------------------------------------------------

    def log_message(self, format: str, *args: Any) -> None:
        pass  # quiet by default; the service has its own event stream

    def _send_json(
        self, status: int, payload: JSONDict, extra_headers: Tuple[Tuple[str, str], ...] = ()
    ) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in extra_headers:
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_error(self, exc: ServiceError) -> None:
        headers: Tuple[Tuple[str, str], ...] = ()
        if isinstance(exc, RateLimited):
            headers = (("Retry-After", f"{exc.retry_after_s:.3f}"),)
        self._send_json(
            exc.http_status,
            {"error": str(exc), "type": type(exc).__name__},
            headers,
        )

    def _read_body(self) -> Any:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise InvalidJobRequest("empty request body (expected JSON)")
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise InvalidJobRequest(f"request body is not JSON: {exc}") from exc

    # --- routing ----------------------------------------------------------

    def _dispatch(self, method: str) -> None:
        service = self.service
        url = urlparse(self.path)
        parts = [p for p in url.path.split("/") if p]
        query = parse_qs(url.query)
        try:
            if method == "GET" and parts == ["healthz"]:
                self._send_json(
                    200,
                    {
                        "ok": True,
                        "scheduler": service.scheduler.running,
                        "jobs": service.store.counts(),
                    },
                )
            elif method == "POST" and parts == ["batches"]:
                self._send_json(201, service.submit(self._read_body()))
            elif method == "GET" and parts == ["batches"]:
                self._send_json(200, {"batches": service.list_jobs()})
            elif method == "GET" and len(parts) == 2 and parts[0] == "batches":
                self._send_json(200, service.status(parts[1]))
            elif method == "DELETE" and len(parts) == 2 and parts[0] == "batches":
                self._send_json(200, service.cancel(parts[1]))
            elif (
                method == "GET"
                and len(parts) == 3
                and parts[0] == "batches"
                and parts[2] == "events"
            ):
                self._stream_events(parts[1], query)
            else:
                self._send_json(
                    404, {"error": f"no route for {method} {url.path}"}
                )
        except ServiceError as exc:
            self._send_error(exc)
        except BrokenPipeError:
            pass  # client hung up mid-stream
        except Exception as exc:  # pragma: no cover - defensive
            self._send_json(500, {"error": f"{type(exc).__name__}: {exc}"})

    def _stream_events(self, job_id: str, query: Dict[str, List[str]]) -> None:
        service = self.service
        bus = service.events_bus(job_id)  # raises UnknownJob -> 404
        try:
            after = int(query.get("after", ["0"])[0])
        except ValueError as exc:
            raise InvalidJobRequest(f"bad 'after' value: {exc}") from exc
        follow = query.get("follow", ["0"])[0] not in ("0", "", "false")
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        # Chunked would be the HTTP/1.1-correct answer; closing the
        # connection at end-of-stream is simpler and every client here
        # (urllib, curl, the tests) handles it.
        self.send_header("Connection", "close")
        self.end_headers()
        seq = after
        while True:
            if follow:
                events, closed = bus.wait_since(seq, timeout=_FOLLOW_WAIT_S)
            else:
                events, closed = bus.events_since(seq), bus.closed
            for event in events:
                line = json.dumps(event.to_dict(), sort_keys=True) + "\n"
                self.wfile.write(line.encode("utf-8"))
                seq = max(seq, event.seq)
            self.wfile.flush()
            if closed and not bus.events_since(seq):
                return
            if not follow:
                return

    # --- HTTP verbs -------------------------------------------------------

    def do_GET(self) -> None:
        self._dispatch("GET")

    def do_POST(self) -> None:
        self._dispatch("POST")

    def do_DELETE(self) -> None:
        self._dispatch("DELETE")


class _Server(ThreadingHTTPServer):
    daemon_threads = True

    def __init__(
        self,
        address: Tuple[str, int],
        handler: Type[BaseHTTPRequestHandler],
        service: ExperimentService,
    ) -> None:
        super().__init__(address, handler)
        self.service = service


def make_server(
    service: ExperimentService, host: str = "127.0.0.1", port: int = 0
) -> ThreadingHTTPServer:
    """An HTTP server bound to ``host:port`` (0 = ephemeral), not yet
    serving.  Call ``serve_forever()`` (typically on a thread) and
    ``shutdown()`` yourself; tests read the bound port from
    ``server.server_address``."""

    class BoundHandler(_Handler):
        pass

    BoundHandler.service = service
    return _Server((host, port), BoundHandler, service)


def serve(
    service: ExperimentService,
    host: str = "127.0.0.1",
    port: int = 8765,
    ready: Optional[threading.Event] = None,
) -> None:
    """Run the service until interrupted: resume -> schedule -> serve.

    This is what ``repro serve`` calls.  ``ready`` (if given) is set once
    the socket is bound — the e2e tests use it to avoid polling.
    """
    server = make_server(service, host, port)
    service.resume()
    service.start()
    if ready is not None:
        ready.set()
    try:
        server.serve_forever(poll_interval=0.2)
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        service.stop()
