"""The service's drain loop: queued jobs -> ``submit_batch`` -> outcomes.

One :class:`Scheduler` owns one worker thread.  It pops job ids off the
:class:`~repro.service.jobs.JobQueue` in priority order and executes each
batch through :func:`repro.harness.experiment.submit_batch` — deliberately
the *same* entry point the CLI uses, so a service job inherits the whole
harness stack for free: the process pool (``jobs > 1``), fault tolerance
(``keep_going`` + pool retries + worker timeouts + the ``REPRO_FAULT_PLAN``
injection hook) and both result-cache layers.  Re-submitting a batch the
cache already holds therefore comes back with ``BatchStats.simulated == 0``
— the warm path the API exposes verbatim.

Progress and outcomes are published to the job's
:class:`~repro.obs.bus.EventBus`; the bus assigns sequence numbers but no
timestamps (it lives on the simulation side of the determinism boundary),
so this module stamps wall-clock ``ts`` into every payload itself.
"""

from __future__ import annotations

import threading
import time
import traceback
from typing import Callable, Dict, List, Optional, Tuple

from ..engine.simulator import SimulationResult
from ..errors import ReproError
from ..harness.experiment import BatchStats, spec_label, submit_batch
from ..harness.faults import FaultTolerance, SpecOutcome, summarize_outcomes
from ..obs import EventBus, Observability
from .jobs import Job, JobQueue, JobStore
from .wire import JSONDict, config_from_overrides, result_to_dict

__all__ = ["Scheduler"]


def _outcome_to_dict(outcome: SpecOutcome) -> JSONDict:
    error: Optional[str] = None
    if outcome.error is not None:
        error = f"{outcome.error.exc_type}: {outcome.error.message}"
    return {
        "label": outcome.label,
        "status": outcome.status,
        "retries": outcome.retries,
        "error": error,
    }


class Scheduler:
    """Single worker thread draining the job queue through the harness."""

    def __init__(
        self,
        queue: JobQueue,
        store: JobStore,
        bus_for: Callable[[str], EventBus],
        jobs: int = 1,
        use_cache: bool = True,
        fault_retries: int = 2,
        spec_timeout_s: Optional[float] = None,
        max_backoff_s: float = 2.0,
        obs: Optional[Observability] = None,
        clock: Callable[[], float] = time.time,
        on_terminal: Optional[Callable[[Job], None]] = None,
    ) -> None:
        self._queue = queue
        self._store = store
        self._bus_for = bus_for
        self._jobs = jobs
        self._use_cache = use_cache
        self._fault_retries = fault_retries
        self._spec_timeout_s = spec_timeout_s
        self._max_backoff_s = max_backoff_s
        self._obs = obs
        self._clock = clock
        self._on_terminal = on_terminal
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()

    # --- lifecycle --------------------------------------------------------

    def start(self) -> None:
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._drain, name="repro-service-scheduler", daemon=True
        )
        self._thread.start()

    def stop(self, timeout: Optional[float] = 10.0) -> None:
        self._stop.set()
        self._queue.close()
        if self._thread is not None:
            self._thread.join(timeout)
            self._thread = None

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    # --- drain loop -------------------------------------------------------

    def _drain(self) -> None:
        while not self._stop.is_set():
            job_id = self._queue.pop(timeout=0.2)
            if job_id is None:
                continue
            try:
                job = self._store.get(job_id)
            except ReproError:
                continue
            if job.state != "queued":  # cancelled while queued
                continue
            self._execute(job)

    def _publish(self, job: Job, kind: str, payload: JSONDict) -> None:
        bus = self._bus_for(job.job_id)
        if bus.closed:
            return
        body = dict(payload)
        body.setdefault("job", job.job_id)
        body.setdefault("ts", self._clock())
        bus.publish(kind, body)

    def _count(self, name: str) -> None:
        if self._obs is not None and self._obs.enabled:
            self._obs.metrics.counter(name).inc()

    def _execute(self, job: Job) -> None:
        job.transition("running")
        job.started_ts = self._clock()
        self._store.save(job)
        self._count("service/jobs_started")
        self._publish(job, "started", {"attempt": job.attempts})

        ft = FaultTolerance(
            keep_going=True,
            retries=self._fault_retries,
            timeout_s=self._spec_timeout_s,
            max_backoff_s=self._max_backoff_s,
        )

        def progress(done: int, total: int) -> None:
            self._publish(job, "progress", {"done": done, "total": total})

        try:
            results, stats = submit_batch(
                job.specs,
                config=config_from_overrides(job.overrides),
                use_cache=self._use_cache,
                jobs=self._jobs,
                progress=progress,
                fault_tolerance=ft,
            )
        except ReproError as exc:
            self._finish_crashed(job, f"{type(exc).__name__}: {exc}")
            return
        except Exception:
            self._finish_crashed(job, traceback.format_exc(limit=3))
            return
        self._finish(job, results, stats, ft.outcomes)

    def _finish(
        self,
        job: Job,
        results: Dict[Tuple, Optional[SimulationResult]],
        stats: BatchStats,
        outcomes: List[SpecOutcome],
    ) -> None:
        by_label = summarize_outcomes(outcomes)
        job.outcomes = []
        job.results = []
        failed_specs = 0
        for spec in job.specs:
            label = spec_label(spec)
            outcome = by_label.get(label)
            if outcome is None:
                # Cache/memo hits never reach the fault-tolerance layer;
                # a missing outcome is a success served from a cache.
                outcome = SpecOutcome(label=label, status="ok")
            record = _outcome_to_dict(outcome)
            self._publish(job, "spec_outcome", record)
            job.outcomes.append(record)
            result = results.get(spec.key())
            if result is None or outcome.status in ("failed", "timed_out"):
                failed_specs += 1
                job.results.append(None)
            else:
                job.results.append(result_to_dict(result))
        job.stats = {
            "simulated": stats.simulated,
            "memo_hits": stats.memo_hits,
            "cache_hits": stats.cache_hits,
            "failed": stats.failed,
            "timed_out": stats.timed_out,
        }
        self._publish(job, "batch_stats", dict(job.stats))
        job.finished_ts = self._clock()
        if failed_specs:
            job.error = f"{failed_specs} of {len(job.specs)} spec(s) failed"
            job.transition("failed")
            self._count("service/jobs_failed")
            self._publish(
                job, "failed", {"state": job.state, "error": job.error}
            )
        else:
            job.transition("done")
            self._count("service/jobs_done")
            self._publish(job, "done", {"state": job.state})
        self._store.save(job)
        self._bus_for(job.job_id).close()
        if self._on_terminal is not None:
            self._on_terminal(job)

    def _finish_crashed(self, job: Job, error: str) -> None:
        """The batch machinery itself raised — the job fails wholesale."""
        job.error = error.strip()
        job.finished_ts = self._clock()
        job.transition("failed")
        self._count("service/jobs_failed")
        self._publish(job, "failed", {"state": job.state, "error": job.error})
        self._store.save(job)
        self._bus_for(job.job_id).close()
        if self._on_terminal is not None:
            self._on_terminal(job)
