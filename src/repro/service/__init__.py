"""Always-on experiment service: submit / queue / stream / serve.

The one-shot CLI graduates to a long-running service here (ROADMAP item 2):

* :mod:`repro.service.wire` — JSON wire format: ``RunSpec`` / ``SimConfig``
  override parsing, result rendering, and the newline-delimited event
  schema (``events.schema.json``) with its stdlib validator;
* :mod:`repro.service.jobs` — the job lifecycle state machine
  (``queued -> running -> done | failed | cancelled``), the prioritized
  :class:`~repro.service.jobs.JobQueue`, and the persistent
  :class:`~repro.service.jobs.JobStore` whose atomic JSON snapshots let a
  restarted service resume its queue;
* :mod:`repro.service.ratelimit` — token-bucket rate limiting and
  per-tenant admission caps;
* :mod:`repro.service.scheduler` — the drain loop: jobs execute through
  :func:`repro.harness.experiment.submit_batch`, inheriting worker pools,
  fault tolerance and the persistent result cache (warm submissions come
  back with ``BatchStats.simulated == 0``);
* :mod:`repro.service.core` — :class:`~repro.service.core.ExperimentService`,
  the façade the HTTP layer and tests drive;
* :mod:`repro.service.server` — the stdlib ``http.server`` front end
  (``POST /batches``, ``GET /batches/<id>``, ``GET /batches/<id>/events``);
* :mod:`repro.service.client` — the thin client behind ``repro submit`` /
  ``repro status``.
"""

from .client import ServiceClient
from .core import ExperimentService, ServiceConfig
from .jobs import JOB_STATES, TERMINAL_STATES, Job, JobQueue, JobStore
from .ratelimit import TenantAdmission, TokenBucket
from .scheduler import Scheduler
from .server import make_server, serve
from .wire import (
    load_event_schema,
    result_to_dict,
    spec_from_dict,
    spec_to_dict,
    validate_event,
)

__all__ = [
    "ExperimentService",
    "ServiceConfig",
    "ServiceClient",
    "Scheduler",
    "JOB_STATES",
    "TERMINAL_STATES",
    "Job",
    "JobQueue",
    "JobStore",
    "TokenBucket",
    "TenantAdmission",
    "make_server",
    "serve",
    "spec_from_dict",
    "spec_to_dict",
    "result_to_dict",
    "load_event_schema",
    "validate_event",
]
