"""Admission control for the experiment service.

Two independent gates, both consulted by ``POST /batches`` before a job
is accepted:

* :class:`TokenBucket` — a classic token bucket bounding the *rate* of
  submissions service-wide.  The clock is injectable so tests drive it
  deterministically (the default is ``time.monotonic`` — this is harness
  code, wall time is allowed).
* :class:`TenantAdmission` — a cap on *concurrently active* (queued or
  running) jobs per tenant, so one chatty client cannot starve the queue.

Both raise the matching :class:`~repro.errors.ServiceError` subclass
(:class:`~repro.errors.RateLimited` / :class:`~repro.errors.AdmissionDenied`),
which the HTTP layer renders as 429s.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Optional

from ..errors import AdmissionDenied, RateLimited, ServiceError

__all__ = ["TokenBucket", "TenantAdmission"]


class TokenBucket:
    """Token bucket: ``capacity`` burst, ``refill_per_s`` sustained rate.

    ``acquire`` takes one token or raises :class:`RateLimited` carrying the
    time until a token will be available.  ``refill_per_s <= 0`` disables
    the limiter (every acquire succeeds) — the service's default.
    """

    def __init__(
        self,
        capacity: int,
        refill_per_s: float,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if capacity < 1:
            raise ServiceError(f"token bucket capacity must be >= 1: {capacity}")
        self._capacity = float(capacity)
        self._refill_per_s = refill_per_s
        self._clock = clock if clock is not None else time.monotonic
        self._tokens = float(capacity)
        self._last = self._clock()
        self._lock = threading.Lock()

    @property
    def enabled(self) -> bool:
        return self._refill_per_s > 0

    def _refill_locked(self) -> None:
        now = self._clock()
        elapsed = max(0.0, now - self._last)
        self._last = now
        self._tokens = min(
            self._capacity, self._tokens + elapsed * self._refill_per_s
        )

    def available(self) -> float:
        """Current token count (after refill accrual)."""
        with self._lock:
            if not self.enabled:
                return self._capacity
            self._refill_locked()
            return self._tokens

    def acquire(self) -> None:
        """Take one token or raise :class:`RateLimited`."""
        if not self.enabled:
            return
        with self._lock:
            self._refill_locked()
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                return
            retry_after = (1.0 - self._tokens) / self._refill_per_s
        raise RateLimited(retry_after)


class TenantAdmission:
    """Per-tenant cap on concurrently active (queued or running) jobs.

    ``admit`` reserves a slot or raises :class:`AdmissionDenied`;
    ``release`` frees it when the job reaches a terminal state.  A cap of
    0 (or below) disables the gate.  On service restart, recovered
    non-terminal jobs are re-admitted via ``admit`` so the accounting
    survives the process boundary.
    """

    def __init__(self, cap_per_tenant: int) -> None:
        self._cap = cap_per_tenant
        self._active: Dict[str, int] = {}
        self._lock = threading.Lock()

    @property
    def enabled(self) -> bool:
        return self._cap > 0

    def active(self, tenant: str) -> int:
        with self._lock:
            return self._active.get(tenant, 0)

    def admit(self, tenant: str) -> None:
        """Reserve one slot for ``tenant`` or raise :class:`AdmissionDenied`."""
        with self._lock:
            current = self._active.get(tenant, 0)
            if self.enabled and current >= self._cap:
                raise AdmissionDenied(tenant, current, self._cap)
            self._active[tenant] = current + 1

    def release(self, tenant: str) -> None:
        """Free one slot (idempotent past zero: never goes negative)."""
        with self._lock:
            current = self._active.get(tenant, 0)
            if current <= 1:
                self._active.pop(tenant, None)
            else:
                self._active[tenant] = current - 1
