"""Thin stdlib client for the experiment service.

Backs ``repro submit`` / ``repro status`` and the e2e tests; it is just
``urllib`` plus the wire format — no retries, no connection pooling.  The
one non-trivial piece is :meth:`ServiceClient.events`, which iterates the
NDJSON stream line by line so callers can react to progress while the
batch is still running.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Dict, Iterator, Optional
from urllib.parse import quote

from ..errors import ServiceError
from .wire import JSONDict

__all__ = ["ServiceClient"]


class ServiceClient:
    """Talk to one running service at ``base_url``."""

    def __init__(self, base_url: str, timeout_s: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s

    # --- plumbing ---------------------------------------------------------

    def _request(
        self, method: str, path: str, body: Optional[JSONDict] = None
    ) -> JSONDict:
        data = None
        headers: Dict[str, str] = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        req = urllib.request.Request(
            self.base_url + path, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(req, timeout=self.timeout_s) as resp:
                payload = json.loads(resp.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            detail = ""
            try:
                detail = json.loads(exc.read().decode("utf-8")).get("error", "")
            except Exception:
                pass
            raise ServiceError(
                f"{method} {path} -> {exc.code}"
                + (f": {detail}" if detail else "")
            ) from exc
        except urllib.error.URLError as exc:
            raise ServiceError(f"{method} {path} failed: {exc.reason}") from exc
        assert isinstance(payload, dict)
        return payload

    # --- API --------------------------------------------------------------

    def health(self) -> JSONDict:
        return self._request("GET", "/healthz")

    def submit(self, payload: JSONDict) -> JSONDict:
        """``POST /batches``; returns the new job's status view."""
        return self._request("POST", "/batches", body=payload)

    def status(self, job_id: str) -> JSONDict:
        return self._request("GET", f"/batches/{quote(job_id)}")

    def list_batches(self) -> JSONDict:
        return self._request("GET", "/batches")

    def cancel(self, job_id: str) -> JSONDict:
        return self._request("DELETE", f"/batches/{quote(job_id)}")

    def events(
        self, job_id: str, after: int = 0, follow: bool = False
    ) -> Iterator[JSONDict]:
        """Iterate the job's NDJSON event stream (parsed per line)."""
        path = (
            f"/batches/{quote(job_id)}/events"
            f"?after={after}&follow={'1' if follow else '0'}"
        )
        req = urllib.request.Request(
            self.base_url + path, headers={"Accept": "application/x-ndjson"}
        )
        try:
            with urllib.request.urlopen(req, timeout=self.timeout_s) as resp:
                for raw in resp:
                    line = raw.decode("utf-8").strip()
                    if not line:
                        continue
                    event = json.loads(line)
                    assert isinstance(event, dict)
                    yield event
        except urllib.error.HTTPError as exc:
            raise ServiceError(
                f"GET {path} -> {exc.code}"
            ) from exc

    def wait(
        self,
        job_id: str,
        timeout_s: float = 120.0,
        poll_s: float = 0.2,
    ) -> JSONDict:
        """Poll until the job is terminal; returns its final status view."""
        deadline = time.monotonic() + timeout_s
        while True:
            view = self.status(job_id)
            state = view.get("state")
            if state in ("done", "failed", "cancelled"):
                return view
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"batch {job_id!r} still {state!r} after {timeout_s:g}s"
                )
            time.sleep(poll_s)
