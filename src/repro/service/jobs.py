"""Job lifecycle for the experiment service: state machine, queue, store.

A *job* is one submitted batch (``POST /batches``): a list of run specs,
optional config overrides, a tenant and a priority.  Its life is the
state machine::

    queued -> running -> done | failed
    queued -> cancelled
    running -> queued        (restart recovery only)

``done`` / ``failed`` / ``cancelled`` are terminal.  The only legal way
back from ``running`` is the restart path: a job found ``running`` in a
loaded snapshot belonged to a service process that died mid-drain, so the
store re-queues it (results already in the persistent cache make the
replay cheap — completed specs are not re-simulated).

Persistence is one JSON snapshot per job under ``<state_dir>/jobs/``,
written with :func:`repro.harness.store.atomic_write_text` so a crash
mid-write can never leave a truncated snapshot for the next boot to trip
over.
"""

from __future__ import annotations

import heapq
import json
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Set, Tuple, Union

from ..errors import InvalidJobRequest, ServiceError, UnknownJob
from ..harness.experiment import RunSpec
from ..harness.store import atomic_write_text
from .wire import JSONDict, spec_from_dict, spec_to_dict

__all__ = [
    "JOB_STATES",
    "TERMINAL_STATES",
    "Job",
    "JobQueue",
    "JobStore",
]

#: Every job state, in lifecycle order.
JOB_STATES: Tuple[str, ...] = ("queued", "running", "done", "failed", "cancelled")

#: States a job never leaves.
TERMINAL_STATES: Tuple[str, ...] = ("done", "failed", "cancelled")

#: Legal transitions.  ``running -> queued`` exists only for restart
#: recovery (see :meth:`JobStore.load_all`).
_TRANSITIONS: Dict[str, Tuple[str, ...]] = {
    "queued": ("running", "cancelled"),
    "running": ("done", "failed", "cancelled", "queued"),
    "done": (),
    "failed": (),
    "cancelled": (),
}

_SNAPSHOT_VERSION = 1


@dataclass
class Job:
    """One submitted batch and everything the API reports about it."""

    job_id: str
    specs: List[RunSpec]
    tenant: str = "default"
    priority: int = 0
    #: Raw (already-validated) config override mapping, kept in JSON form so
    #: snapshots round-trip without re-deriving a SimConfig.
    overrides: Optional[JSONDict] = None
    state: str = "queued"
    #: FIFO tiebreak within a priority class; assigned by the queue.
    enqueue_seq: int = 0
    #: Wall-clock timestamps (epoch seconds), supplied by the service layer.
    created_ts: float = 0.0
    started_ts: Optional[float] = None
    finished_ts: Optional[float] = None
    #: Times this job entered ``running`` (> 1 means restart recovery).
    attempts: int = 0
    #: Per-spec terminal outcomes: label / status / retries / error.
    outcomes: List[JSONDict] = field(default_factory=list)
    #: Per-spec result summaries (position-aligned with ``specs``; ``None``
    #: for specs that failed or have not finished).
    results: List[Optional[JSONDict]] = field(default_factory=list)
    #: The batch's ``BatchStats`` as a dict (set when the job finishes).
    stats: Optional[JSONDict] = None
    #: Failure description for ``failed`` jobs.
    error: Optional[str] = None

    def __post_init__(self) -> None:
        if self.state not in JOB_STATES:
            raise ServiceError(f"unknown job state {self.state!r}")
        if not self.specs:
            raise InvalidJobRequest("a job needs at least one spec")

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def transition(self, new_state: str) -> None:
        """Move to ``new_state``; illegal moves raise :class:`ServiceError`."""
        if new_state not in JOB_STATES:
            raise ServiceError(f"unknown job state {new_state!r}")
        if new_state not in _TRANSITIONS[self.state]:
            raise ServiceError(
                f"job {self.job_id}: illegal transition "
                f"{self.state!r} -> {new_state!r}"
            )
        if new_state == "running":
            self.attempts += 1
        self.state = new_state

    # --- persistence ------------------------------------------------------

    def to_dict(self) -> JSONDict:
        return {
            "version": _SNAPSHOT_VERSION,
            "job_id": self.job_id,
            "tenant": self.tenant,
            "priority": self.priority,
            "specs": [spec_to_dict(s) for s in self.specs],
            "overrides": self.overrides,
            "state": self.state,
            "enqueue_seq": self.enqueue_seq,
            "created_ts": self.created_ts,
            "started_ts": self.started_ts,
            "finished_ts": self.finished_ts,
            "attempts": self.attempts,
            "outcomes": self.outcomes,
            "results": self.results,
            "stats": self.stats,
            "error": self.error,
        }

    @classmethod
    def from_dict(cls, raw: Mapping[str, Any]) -> "Job":
        version = raw.get("version")
        if version != _SNAPSHOT_VERSION:
            raise ServiceError(
                f"job snapshot version {version!r} != {_SNAPSHOT_VERSION}"
            )
        specs = [spec_from_dict(entry) for entry in raw["specs"]]
        return cls(
            job_id=str(raw["job_id"]),
            specs=specs,
            tenant=str(raw.get("tenant", "default")),
            priority=int(raw.get("priority", 0)),
            overrides=raw.get("overrides"),
            state=str(raw.get("state", "queued")),
            enqueue_seq=int(raw.get("enqueue_seq", 0)),
            created_ts=float(raw.get("created_ts", 0.0)),
            started_ts=raw.get("started_ts"),
            finished_ts=raw.get("finished_ts"),
            attempts=int(raw.get("attempts", 0)),
            outcomes=list(raw.get("outcomes", [])),
            results=list(raw.get("results", [])),
            stats=raw.get("stats"),
            error=raw.get("error"),
        )


class JobQueue:
    """Priority queue of job ids: higher ``priority`` first, FIFO within a
    priority class (by ``enqueue_seq``).  Thread-safe; ``pop`` blocks."""

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._heap: List[Tuple[int, int, str]] = []
        self._cancelled: Set[str] = set()
        self._next_seq = 1
        self._closed = False

    def reserve_seq(self) -> int:
        """Pre-assign an enqueue sequence number, so a job can be persisted
        *before* it is pushed (the scheduler must never pop a job the store
        has not yet saved)."""
        with self._cond:
            seq = self._next_seq
            self._next_seq += 1
            return seq

    def push(self, job: Job) -> None:
        with self._cond:
            if self._closed:
                raise ServiceError("push on a closed JobQueue")
            if job.enqueue_seq == 0:
                job.enqueue_seq = self._next_seq
            self._next_seq = max(self._next_seq, job.enqueue_seq) + 1
            self._cancelled.discard(job.job_id)
            heapq.heappush(
                self._heap, (-job.priority, job.enqueue_seq, job.job_id)
            )
            self._cond.notify()

    def remove(self, job_id: str) -> bool:
        """Lazily drop a queued job (cancellation); True if it was queued."""
        with self._cond:
            if any(entry[2] == job_id for entry in self._heap):
                self._cancelled.add(job_id)
                return True
            return False

    def pop(self, timeout: Optional[float] = None) -> Optional[str]:
        """Next job id by priority, or ``None`` on close/timeout."""
        with self._cond:
            while True:
                while self._heap:
                    _, _, job_id = heapq.heappop(self._heap)
                    if job_id in self._cancelled:
                        self._cancelled.discard(job_id)
                        continue
                    return job_id
                if self._closed:
                    return None
                if not self._cond.wait(timeout):
                    return None

    def close(self) -> None:
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    def __len__(self) -> int:
        with self._cond:
            return sum(
                1 for entry in self._heap if entry[2] not in self._cancelled
            )


class JobStore:
    """All known jobs, mirrored to one JSON snapshot per job on disk."""

    def __init__(self, state_dir: Union[str, Path]) -> None:
        self._dir = Path(state_dir) / "jobs"
        self._dir.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._jobs: Dict[str, Job] = {}

    @property
    def directory(self) -> Path:
        return self._dir

    def _path(self, job_id: str) -> Path:
        return self._dir / f"{job_id}.json"

    def save(self, job: Job) -> None:
        """Register (or update) ``job`` and persist its snapshot atomically."""
        with self._lock:
            self._jobs[job.job_id] = job
            atomic_write_text(
                self._path(job.job_id),
                json.dumps(job.to_dict(), indent=2, sort_keys=True),
            )

    def get(self, job_id: str) -> Job:
        with self._lock:
            try:
                return self._jobs[job_id]
            except KeyError:
                raise UnknownJob(job_id) from None

    def all_jobs(self) -> List[Job]:
        with self._lock:
            return sorted(self._jobs.values(), key=lambda j: j.enqueue_seq)

    def counts(self, tenant: Optional[str] = None) -> Dict[str, int]:
        """Jobs per state (optionally for one tenant)."""
        with self._lock:
            counts = {state: 0 for state in JOB_STATES}
            for job in self._jobs.values():
                if tenant is None or job.tenant == tenant:
                    counts[job.state] += 1
            return counts

    def load_all(self) -> List[Job]:
        """Load every snapshot from disk; returns jobs needing re-queue.

        Jobs found ``running`` belonged to a dead service process: they are
        moved back to ``queued`` (the restart-recovery transition) and
        re-persisted.  The returned list is every non-terminal job, in
        original enqueue order, ready to be pushed onto a fresh queue.
        """
        pending: List[Job] = []
        for path in sorted(self._dir.glob("*.json")):
            raw = json.loads(path.read_text(encoding="utf-8"))
            job = Job.from_dict(raw)
            if job.state == "running":
                job.transition("queued")
                self.save(job)
            else:
                with self._lock:
                    self._jobs[job.job_id] = job
            if not job.terminal:
                pending.append(job)
        pending.sort(key=lambda j: j.enqueue_seq)
        return pending
