"""JSON wire format for the experiment service.

Everything that crosses the HTTP boundary goes through this module:

* submissions — ``spec_from_dict`` parses one :class:`RunSpec` (validating
  app / setup / rate eagerly, so a bad spec is a 400 at submission, not a
  worker crash minutes later) and ``config_from_overrides`` folds a nested
  override mapping into a :class:`~repro.config.SimConfig`;
* responses — ``spec_to_dict`` / ``result_to_dict`` render specs and
  :class:`~repro.engine.simulator.SimulationResult` objects back to JSON;
* the event stream — ``GET /batches/<id>/events`` emits newline-delimited
  JSON whose shape is pinned by the checked-in ``events.schema.json``
  (a JSON-Schema subset: ``type`` / ``required`` / ``properties`` /
  ``enum`` / ``additionalProperties``, plus a per-kind ``kinds`` table).
  :func:`validate_event` is the stdlib validator for it, used by the tests
  and the CI ``service`` job — no third-party schema library required.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence

from ..config import SimConfig
from ..engine.simulator import SimulationResult
from ..errors import ConfigError, InvalidJobRequest
from ..harness.experiment import RunSpec
from ..registry import setup_components
from ..workloads.suite import BENCHMARKS

__all__ = [
    "spec_from_dict",
    "spec_to_dict",
    "specs_from_payload",
    "config_from_overrides",
    "result_to_dict",
    "load_event_schema",
    "validate_event",
    "validate_event_lines",
]

JSONDict = Dict[str, Any]

#: RunSpec fields accepted on the wire (and their JSON spelling).
_SPEC_FIELDS = (
    "app",
    "setup",
    "oversubscription",
    "scale",
    "seed",
    "crash_budget_factor",
    "instances",
)


def spec_from_dict(raw: Mapping[str, Any]) -> RunSpec:
    """Parse one submitted spec object; raises :class:`InvalidJobRequest`.

    ``oversubscription`` follows the CLI convention: ``null`` or any rate
    >= 1.0 means "no oversubscription" (stored as ``None``).
    """
    if not isinstance(raw, Mapping):
        raise InvalidJobRequest(f"spec must be an object, got {type(raw).__name__}")
    unknown = sorted(set(raw) - set(_SPEC_FIELDS))
    if unknown:
        raise InvalidJobRequest(f"unknown spec field(s): {', '.join(unknown)}")
    app = raw.get("app")
    if not isinstance(app, str) or app not in BENCHMARKS:
        raise InvalidJobRequest(
            f"spec.app must be one of the suite apps, got {app!r}"
        )
    setup = raw.get("setup", "cppe")
    if not isinstance(setup, str):
        raise InvalidJobRequest(f"spec.setup must be a string, got {setup!r}")
    try:
        setup_components(setup)
    except ConfigError as exc:
        raise InvalidJobRequest(str(exc)) from exc
    rate = raw.get("oversubscription")
    if rate is not None:
        if not isinstance(rate, (int, float)) or isinstance(rate, bool):
            raise InvalidJobRequest(
                f"spec.oversubscription must be a number or null, got {rate!r}"
            )
        rate = None if rate >= 1.0 else float(rate)
        if rate is not None and rate <= 0.0:
            raise InvalidJobRequest(
                "spec.oversubscription must be in (0, 1] or null"
            )
    scale = raw.get("scale", 1.0)
    if not isinstance(scale, (int, float)) or isinstance(scale, bool) or scale <= 0:
        raise InvalidJobRequest(f"spec.scale must be a positive number, got {scale!r}")
    seed = raw.get("seed")
    if seed is not None and (not isinstance(seed, int) or isinstance(seed, bool)):
        raise InvalidJobRequest(f"spec.seed must be an integer or null, got {seed!r}")
    cbf = raw.get("crash_budget_factor")
    if cbf is not None and (
        not isinstance(cbf, (int, float)) or isinstance(cbf, bool) or cbf <= 0
    ):
        raise InvalidJobRequest(
            f"spec.crash_budget_factor must be a positive number or null, got {cbf!r}"
        )
    instances = raw.get("instances", 1)
    if not isinstance(instances, int) or isinstance(instances, bool) or instances < 1:
        raise InvalidJobRequest(
            f"spec.instances must be an integer >= 1, got {instances!r}"
        )
    return RunSpec(
        app=app,
        setup=setup,
        oversubscription=rate,
        scale=float(scale),
        seed=seed,
        crash_budget_factor=None if cbf is None else float(cbf),
        instances=instances,
    )


def spec_to_dict(spec: RunSpec) -> JSONDict:
    """JSON view of a spec (round-trips through :func:`spec_from_dict`)."""
    return {
        "app": spec.app,
        "setup": spec.setup,
        "oversubscription": spec.oversubscription,
        "scale": spec.scale,
        "seed": spec.seed,
        "crash_budget_factor": spec.crash_budget_factor,
        "instances": spec.instances,
    }


def specs_from_payload(raw: Any) -> List[RunSpec]:
    """Parse the ``specs`` list of a submission payload."""
    if not isinstance(raw, Sequence) or isinstance(raw, (str, bytes)):
        raise InvalidJobRequest("'specs' must be a JSON list of spec objects")
    if not raw:
        raise InvalidJobRequest("'specs' must not be empty")
    return [spec_from_dict(entry) for entry in raw]


def config_from_overrides(
    overrides: Optional[Mapping[str, Any]],
) -> Optional[SimConfig]:
    """A :class:`SimConfig` with ``overrides`` applied over the defaults.

    ``overrides`` mirrors the dataclass nesting: ``{"sm": {"num_sms": 4}}``
    replaces one field of one sub-config and leaves everything else at its
    default.  ``None`` / ``{}`` mean "defaults" and return ``None`` so the
    cache key matches an unconfigured run.  Unknown fields are rejected.
    """
    if not overrides:
        return None
    config = _apply_overrides(SimConfig(), overrides, path="config")
    assert isinstance(config, SimConfig)
    return config


def _apply_overrides(obj: Any, overrides: Mapping[str, Any], path: str) -> Any:
    if not isinstance(overrides, Mapping):
        raise InvalidJobRequest(f"{path} must be an object, got {overrides!r}")
    known = {f.name for f in dataclasses.fields(obj)}
    updates: Dict[str, Any] = {}
    for name, value in overrides.items():
        if name not in known:
            raise InvalidJobRequest(
                f"{path}.{name} is not a configuration field"
            )
        current = getattr(obj, name)
        if dataclasses.is_dataclass(current) and not isinstance(current, type):
            updates[name] = _apply_overrides(current, value, f"{path}.{name}")
        else:
            updates[name] = value
    try:
        return dataclasses.replace(obj, **updates)
    except (TypeError, ValueError, ConfigError) as exc:
        raise InvalidJobRequest(f"invalid {path}: {exc}") from exc


def result_to_dict(result: SimulationResult) -> JSONDict:
    """JSON summary of one simulation result (the API's ``result`` block)."""
    return {
        "label": result.label(),
        "workload": result.workload,
        "policy": result.policy,
        "prefetcher": result.prefetcher,
        "oversubscription": result.oversubscription,
        "capacity_pages": result.capacity_pages,
        "footprint_pages": result.footprint_pages,
        "crashed": result.crashed,
        "crash_reason": result.crash_reason,
        "total_cycles": result.total_cycles,
        "stats": result.stats.summary(),
    }


# --------------------------------------------------------------------------
# Event schema
# --------------------------------------------------------------------------

_SCHEMA_PATH = Path(__file__).with_name("events.schema.json")
_TYPE_CHECKS = {
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
    "string": lambda v: isinstance(v, str),
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "number": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "boolean": lambda v: isinstance(v, bool),
    "null": lambda v: v is None,
}


def load_event_schema() -> JSONDict:
    """The checked-in schema for the NDJSON event stream."""
    payload = json.loads(_SCHEMA_PATH.read_text(encoding="utf-8"))
    assert isinstance(payload, dict)
    return payload


def _type_ok(value: Any, allowed: Any) -> bool:
    names = allowed if isinstance(allowed, list) else [allowed]
    return any(
        name in _TYPE_CHECKS and _TYPE_CHECKS[name](value) for name in names
    )


def _check_object(
    obj: Any, spec: Mapping[str, Any], where: str, errors: List[str]
) -> None:
    for name in spec.get("required", []):
        if name not in obj:
            errors.append(f"{where}: missing required field {name!r}")
    properties = spec.get("properties", {})
    for name, prop in properties.items():
        if name not in obj:
            continue
        value = obj[name]
        if "type" in prop and not _type_ok(value, prop["type"]):
            errors.append(
                f"{where}.{name}: expected {prop['type']}, "
                f"got {type(value).__name__}"
            )
        if "enum" in prop and value not in prop["enum"]:
            errors.append(f"{where}.{name}: {value!r} not in {prop['enum']}")
    if spec.get("additionalProperties") is False:
        for name in obj:
            if name not in properties:
                errors.append(f"{where}: unexpected field {name!r}")


def validate_event(
    event: Any, schema: Optional[JSONDict] = None
) -> List[str]:
    """Validation errors for one streamed event (empty list = valid)."""
    if schema is None:
        schema = load_event_schema()
    errors: List[str] = []
    if not isinstance(event, dict):
        return [f"event must be an object, got {type(event).__name__}"]
    _check_object(event, schema, "event", errors)
    kind = event.get("kind")
    kinds = schema.get("kinds", {})
    if isinstance(kind, str):
        if kind not in kinds:
            errors.append(f"event.kind: unknown kind {kind!r}")
        else:
            _check_object(event, kinds[kind], f"event[{kind}]", errors)
    return errors


def validate_event_lines(
    lines: Sequence[str], schema: Optional[JSONDict] = None
) -> List[str]:
    """Validate a whole NDJSON stream; returns per-line errors."""
    if schema is None:
        schema = load_event_schema()
    errors: List[str] = []
    for i, line in enumerate(lines, 1):
        if not line.strip():
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError as exc:
            errors.append(f"line {i}: not JSON: {exc}")
            continue
        errors.extend(f"line {i}: {e}" for e in validate_event(event, schema))
    return errors
