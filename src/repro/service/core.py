"""The experiment service façade: submit / status / cancel / events.

:class:`ExperimentService` wires the pieces together — the persistent
:class:`~repro.service.jobs.JobStore`, the prioritized
:class:`~repro.service.jobs.JobQueue`, one per-job
:class:`~repro.obs.bus.EventBus`, the admission gates and the
:class:`~repro.service.scheduler.Scheduler` thread — behind a small
in-process API that the HTTP layer (:mod:`repro.service.server`) and the
tests drive directly.  Nothing here knows about sockets.

Restart semantics: :meth:`resume` reloads every job snapshot.  Jobs that
were ``queued`` or ``running`` when the previous process died go back on
the queue (the ``running -> queued`` recovery transition); because results
live in the persistent cache, replaying a half-finished batch re-simulates
only the specs that never completed.  Terminal jobs stay terminal and
their event streams are *replayed* from the snapshot on demand, marked
``resumed: true``, so a client that reconnects after a service restart
still gets a complete, schema-valid stream.
"""

from __future__ import annotations

import threading
import time
import uuid
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping, Optional, Union

from ..errors import InvalidJobRequest, ServiceError
from ..harness.experiment import spec_label
from ..obs import EventBus, Observability
from .jobs import Job, JobQueue, JobStore
from .ratelimit import TenantAdmission, TokenBucket
from .scheduler import Scheduler
from .wire import JSONDict, config_from_overrides, specs_from_payload, spec_to_dict

__all__ = ["ServiceConfig", "ExperimentService"]


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables for one service instance."""

    #: Directory holding job snapshots (and the once-flags of fault drills).
    state_dir: Union[str, Path] = "service-state"
    #: Worker processes per batch (1 = serial in-process).
    jobs: int = 1
    #: Thread the persistent result cache through every batch.
    use_cache: bool = True
    #: Token-bucket burst size for submissions.
    rate_capacity: int = 20
    #: Sustained submissions per second (<= 0 disables rate limiting).
    rate_refill_per_s: float = 0.0
    #: Max queued+running jobs per tenant (<= 0 disables the cap).
    tenant_cap: int = 0
    #: Pool-rebuild retries per spec (see FaultTolerance.retries).
    fault_retries: int = 2
    #: Per-batch worker stall timeout (None = wait forever).
    spec_timeout_s: Optional[float] = None
    #: Clamp on the pool-rebuild backoff schedule.
    max_backoff_s: float = 2.0
    #: Per-job event journal bound (None = unbounded).
    history_limit: Optional[int] = None


class ExperimentService:
    """Everything behind the HTTP API, usable in-process."""

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        obs: Optional[Observability] = None,
        clock: Callable[[], float] = time.time,
    ) -> None:
        self.config = config or ServiceConfig()
        self._clock = clock
        self._obs = obs
        self.store = JobStore(self.config.state_dir)
        self.queue = JobQueue()
        self.bucket = TokenBucket(
            self.config.rate_capacity, self.config.rate_refill_per_s
        )
        self.admission = TenantAdmission(self.config.tenant_cap)
        self._buses: Dict[str, EventBus] = {}
        self._bus_lock = threading.Lock()
        self.scheduler = Scheduler(
            self.queue,
            self.store,
            self._bus_for,
            jobs=self.config.jobs,
            use_cache=self.config.use_cache,
            fault_retries=self.config.fault_retries,
            spec_timeout_s=self.config.spec_timeout_s,
            max_backoff_s=self.config.max_backoff_s,
            obs=obs,
            clock=clock,
            on_terminal=self._job_finished,
        )

    # --- lifecycle --------------------------------------------------------

    def resume(self) -> List[Job]:
        """Reload snapshots; re-queue unfinished jobs.  Returns them."""
        pending = self.store.load_all()
        for job in pending:
            self.admission.admit(job.tenant)
            self.queue.push(job)
        return pending

    def start(self) -> None:
        self.scheduler.start()

    def stop(self) -> None:
        self.scheduler.stop()
        with self._bus_lock:
            for bus in self._buses.values():
                bus.close()

    def __enter__(self) -> "ExperimentService":
        self.resume()
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # --- internals --------------------------------------------------------

    def _bus_for(self, job_id: str) -> EventBus:
        with self._bus_lock:
            bus = self._buses.get(job_id)
            if bus is None:
                bus = EventBus(history_limit=self.config.history_limit)
                self._buses[job_id] = bus
            return bus

    def _job_finished(self, job: Job) -> None:
        self.admission.release(job.tenant)
        if self._obs is not None and self._obs.enabled:
            self._obs.metrics.counter("service/jobs_finished").inc()

    def _replay_bus(self, job: Job) -> EventBus:
        """Synthesize a terminal job's event stream from its snapshot.

        Used after a restart, when the live bus died with the old process.
        Replayed events carry ``resumed: true`` and the snapshot's stored
        timestamps, so the stream stays schema-valid and honest about when
        things actually happened.
        """
        bus = EventBus()
        base: JSONDict = {"job": job.job_id, "resumed": True}
        created = job.created_ts
        finished = job.finished_ts if job.finished_ts is not None else created
        bus.publish(
            "queued",
            {
                **base,
                "ts": created,
                "tenant": job.tenant,
                "priority": job.priority,
                "specs": len(job.specs),
            },
        )
        if job.started_ts is not None:
            bus.publish(
                "started",
                {**base, "ts": job.started_ts, "attempt": job.attempts},
            )
        for outcome in job.outcomes:
            bus.publish("spec_outcome", {**base, "ts": finished, **outcome})
        if job.stats is not None:
            bus.publish("batch_stats", {**base, "ts": finished, **job.stats})
        terminal: JSONDict = {**base, "ts": finished, "state": job.state}
        if job.state == "failed":
            bus.publish("failed", {**terminal, "error": job.error})
        elif job.state == "cancelled":
            bus.publish("cancelled", terminal)
        else:
            bus.publish("done", terminal)
        bus.close()
        return bus

    # --- API --------------------------------------------------------------

    def submit(self, payload: Mapping[str, Any]) -> JSONDict:
        """Accept one submission; returns the job's status view.

        ``payload``: ``{"specs": [...], "config": {...}, "tenant": str,
        "priority": int}`` (``config``/``tenant``/``priority`` optional).
        Raises the :class:`~repro.errors.ServiceError` family on bad input,
        rate limiting or admission denial.
        """
        if not isinstance(payload, Mapping):
            raise InvalidJobRequest("submission payload must be a JSON object")
        unknown = sorted(set(payload) - {"specs", "config", "tenant", "priority"})
        if unknown:
            raise InvalidJobRequest(
                f"unknown submission field(s): {', '.join(unknown)}"
            )
        specs = specs_from_payload(payload.get("specs"))
        overrides = payload.get("config")
        if overrides is not None and not isinstance(overrides, Mapping):
            raise InvalidJobRequest("'config' must be a JSON object")
        config_from_overrides(overrides)  # validate eagerly: reject at submit
        tenant = payload.get("tenant", "default")
        if not isinstance(tenant, str) or not tenant:
            raise InvalidJobRequest(f"'tenant' must be a non-empty string, got {tenant!r}")
        priority = payload.get("priority", 0)
        if not isinstance(priority, int) or isinstance(priority, bool):
            raise InvalidJobRequest(f"'priority' must be an integer, got {priority!r}")

        self.bucket.acquire()
        self.admission.admit(tenant)
        try:
            job = Job(
                job_id=f"b-{uuid.uuid4().hex[:12]}",
                specs=specs,
                tenant=tenant,
                priority=priority,
                overrides=dict(overrides) if overrides else None,
                created_ts=self._clock(),
                enqueue_seq=self.queue.reserve_seq(),
            )
            # Persist before pushing: the scheduler must never pop a job id
            # the store cannot resolve.
            self.store.save(job)
            self.queue.push(job)
        except BaseException:
            self.admission.release(tenant)
            raise
        if self._obs is not None and self._obs.enabled:
            self._obs.metrics.counter("service/jobs_submitted").inc()
        self._bus_for(job.job_id).publish(
            "queued",
            {
                "job": job.job_id,
                "ts": job.created_ts,
                "tenant": tenant,
                "priority": priority,
                "specs": len(specs),
            },
        )
        return self.status(job.job_id)

    def status(self, job_id: str) -> JSONDict:
        """The job's full status view (``GET /batches/<id>``)."""
        job = self.store.get(job_id)
        per_spec: List[JSONDict] = []
        for i, spec in enumerate(job.specs):
            entry: JSONDict = {
                "spec": spec_to_dict(spec),
                "label": spec_label(spec),
                "status": job.state if not job.terminal else "failed",
                "retries": 0,
                "error": None,
                "result": None,
            }
            if job.terminal and i < len(job.outcomes):
                outcome = job.outcomes[i]
                entry["status"] = outcome.get("status", entry["status"])
                entry["retries"] = outcome.get("retries", 0)
                entry["error"] = outcome.get("error")
            if job.state == "cancelled":
                entry["status"] = "cancelled"
            if i < len(job.results):
                entry["result"] = job.results[i]
            per_spec.append(entry)
        return {
            "job": job.job_id,
            "state": job.state,
            "tenant": job.tenant,
            "priority": job.priority,
            "created_ts": job.created_ts,
            "started_ts": job.started_ts,
            "finished_ts": job.finished_ts,
            "attempts": job.attempts,
            "error": job.error,
            "stats": job.stats,
            "specs": per_spec,
        }

    def list_jobs(self) -> List[JSONDict]:
        """Summaries of every known job (``GET /batches``)."""
        return [
            {
                "job": job.job_id,
                "state": job.state,
                "tenant": job.tenant,
                "priority": job.priority,
                "specs": len(job.specs),
                "created_ts": job.created_ts,
            }
            for job in self.store.all_jobs()
        ]

    def cancel(self, job_id: str) -> JSONDict:
        """Cancel a *queued* job (``DELETE /batches/<id>``)."""
        job = self.store.get(job_id)
        if job.terminal:
            return self.status(job_id)
        if job.state != "queued" or not self.queue.remove(job_id):
            raise ServiceError(
                f"batch {job_id!r} is {job.state}; only queued batches "
                "can be cancelled"
            )
        job.transition("cancelled")
        job.finished_ts = self._clock()
        self.store.save(job)
        bus = self._bus_for(job_id)
        bus.publish(
            "cancelled",
            {"job": job_id, "ts": job.finished_ts, "state": job.state},
        )
        bus.close()
        self._job_finished(job)
        return self.status(job_id)

    def events_bus(self, job_id: str) -> EventBus:
        """The job's event bus, replaying from the snapshot if the live bus
        belonged to a previous service process."""
        job = self.store.get(job_id)
        with self._bus_lock:
            bus = self._buses.get(job_id)
            if bus is None and job.terminal:
                bus = self._replay_bus(job)
                self._buses[job_id] = bus
        if bus is None:
            bus = self._bus_for(job_id)
        return bus
