"""Online n-gram (order-k Markov) next-chunk prefetcher.

The learned-prefetching baseline the registry seam exists for (PAPERS.md:
Long et al., "Deep Learning based Data Prefetching in CPU-GPU UVM"): learn
chunk-to-chunk transitions from the run's *own* far-fault stream and, on
each fault, prefetch the chunk the model predicts will fault next.

Mechanics (all deterministic, all O(1) per fault):

* The fault stream is reduced to 64 KB chunk ids.  A sliding window of the
  last ``order`` distinct-chunk faults forms the *context*; every observed
  ``context -> next chunk`` transition increments a counter in a bounded
  FIFO table (``max_contexts`` contexts; the oldest context is dropped when
  the table is full — the same bounded-staleness idea as the paper's
  pattern buffer).
* On a fault the prefetcher always migrates the demand chunk (like the
  locality baseline), then consults the model with the *new* context: if
  the most frequent successor has been seen at least ``min_count`` times,
  that chunk's pages are appended to the batch.  Ties break toward the
  lower chunk id, so the batch never depends on dict insertion order.
* Coordination with eviction: when memory is full the speculative chunk is
  suppressed (demand chunk only — every extra page would force an
  eviction), and chunks the policy just evicted are blacklisted from
  prediction until they fault again (``on_chunk_evicted`` feedback), so
  the predictor does not fight the eviction policy.

This module is deliberately wired through the *public* registry API only —
no edits to ``harness/baselines.py``, ``config.py`` or ``cli.py`` — as the
proof that third-party prefetcher families can do the same.  It works
unchanged on both data-structure backends (the prefetcher interface is
backend-agnostic; tests/test_ngram.py runs the differential).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Tuple

from ..errors import ConfigError
from ..registry import register
from .base import Prefetcher

__all__ = ["NGramPrefetcher"]

#: Evicted chunks stay blacklisted from prediction until they fault again,
#: bounded FIFO so a long run cannot accumulate unbounded state.
_EVICTED_CAPACITY = 64


class NGramPrefetcher(Prefetcher):
    """Predict the next faulting chunk from the last ``order`` transitions."""

    def __init__(
        self,
        order: int = 2,
        min_count: int = 2,
        max_contexts: int = 4096,
    ) -> None:
        super().__init__()
        if order < 1:
            raise ConfigError(f"ngram order must be >= 1, got {order}")
        if min_count < 1:
            raise ConfigError(f"ngram min_count must be >= 1, got {min_count}")
        if max_contexts < 1:
            raise ConfigError(
                f"ngram max_contexts must be >= 1, got {max_contexts}"
            )
        self.order = order
        self.min_count = min_count
        self.max_contexts = max_contexts
        self.name = f"ngram/{order}"
        #: Sliding window of the last ``order`` faulted chunk ids.
        self._context: Tuple[int, ...] = ()
        #: context -> {next chunk id: observation count}, bounded FIFO.
        self._model: "OrderedDict[Tuple[int, ...], Dict[int, int]]" = (
            OrderedDict()
        )
        #: Recently evicted chunks (insertion-ordered dict used as a
        #: bounded FIFO set — set iteration is banned, REPRO105).
        self._evicted: "OrderedDict[int, None]" = OrderedDict()
        #: Telemetry counters (inspectable by tests; not part of results).
        self.predictions = 0
        self.trained_transitions = 0

    # --- model maintenance -------------------------------------------------

    def _observe(self, chunk: int) -> None:
        """Record the ``context -> chunk`` transition and slide the window."""
        context = self._context
        if context and context[-1] == chunk:
            return  # repeated faults into one chunk carry no transition
        if len(context) == self.order:
            bucket = self._model.get(context)
            if bucket is None:
                if len(self._model) >= self.max_contexts:
                    self._model.popitem(last=False)
                bucket = {}
                self._model[context] = bucket
            bucket[chunk] = bucket.get(chunk, 0) + 1
            self.trained_transitions += 1
        self._context = (context + (chunk,))[-self.order:]

    def _predict(self) -> Optional[int]:
        """Most frequent successor of the current context, if confident.

        Deterministic selection: highest count wins, ties break toward the
        lower chunk id — never dict order.
        """
        if len(self._context) < self.order:
            return None
        bucket = self._model.get(self._context)
        if not bucket:
            return None
        best_chunk = -1
        best_count = 0
        for candidate, count in bucket.items():
            if count > best_count or (
                count == best_count and candidate < best_chunk
            ):
                best_chunk = candidate
                best_count = count
        if best_count < self.min_count:
            return None
        if best_chunk in self._evicted:
            return None  # do not fight the eviction policy
        return best_chunk

    # --- Prefetcher interface ----------------------------------------------

    def pages_to_migrate(
        self,
        vpn: int,
        memory_full: bool,
        skip: Callable[[int], bool],
        time: int = 0,
    ) -> List[int]:
        ppc = self.ctx.pages_per_chunk
        chunk = vpn // ppc
        # A fault into a chunk proves it live again: lift the blacklist.
        self._evicted.pop(chunk, None)
        self._observe(chunk)
        pages = self._chunk_pages(vpn, skip)
        if memory_full:
            return pages  # demand chunk only: no speculation at capacity
        predicted = self._predict()
        if predicted is None or predicted == chunk:
            return pages
        self.predictions += 1
        base = predicted * ppc
        pages.extend(p for p in range(base, base + ppc) if not skip(p))
        return pages

    def on_chunk_evicted(
        self,
        chunk_id: int,
        touched_mask: int,
        untouch_level: int,
        strategy: str,
        time: int = 0,
    ) -> None:
        self._evicted.pop(chunk_id, None)
        if len(self._evicted) >= _EVICTED_CAPACITY:
            self._evicted.popitem(last=False)
        self._evicted[chunk_id] = None


# Registered through the public API only — the acceptance proof that a new
# prefetcher family needs no edits to baselines.py / config.py / cli.py.
register(
    "prefetcher", "ngram", NGramPrefetcher,
    params_schema={
        "order": "context length in chunk transitions (default 2)",
        "min_count": "observations before a prediction fires (default 2)",
        "max_contexts": "bounded FIFO model size (default 4096)",
    },
    doc="online n-gram/Markov next-chunk predictor over the fault stream",
)
register(
    "setup", "ngram", ("lru", "ngram"),
    doc="LRU + n-gram predictor (learned-prefetching baseline)",
)
register(
    "setup", "cppe-ngram", ("mhpe", "ngram"),
    doc="MHPE eviction + n-gram prefetch (coordination with a learned family)",
)
