"""Demand paging only — no prefetch.  Every touched page costs a fault."""

from __future__ import annotations

from typing import Callable, List

from .base import Prefetcher

__all__ = ["DisabledPrefetcher"]


class DisabledPrefetcher(Prefetcher):
    """Migrate exactly the faulted page."""

    name = "none"

    def pages_to_migrate(
        self, vpn: int, memory_full: bool, skip: Callable[[int], bool],
        time: int = 0,
    ) -> List[int]:
        return [] if skip(vpn) else [vpn]
