"""Sequential-local (chunk) prefetcher — Zheng et al. [9].

On a fault, migrate the whole 64 KB chunk (16 pages) containing the faulted
page, amortising the 20 us fault service cost over up to 16 pages.

``on_full`` controls behaviour once device memory is at capacity:

* ``"continue"`` — keep prefetching whole chunks (the *naive* baseline of
  [16], used in Figs. 8-10; thrashes irregular applications, Fig. 4);
* ``"stop"`` — demand-page only when full (the mitigation of [11],
  evaluated in Fig. 10; slows regular applications by up to 85%).
"""

from __future__ import annotations

from typing import Callable, List

from ..errors import ConfigError
from .base import Prefetcher

__all__ = ["LocalityPrefetcher"]


class LocalityPrefetcher(Prefetcher):
    """64 KB basic-block prefetch with configurable on-full behaviour."""

    def __init__(self, on_full: str = "continue"):
        super().__init__()
        if on_full not in ("continue", "stop"):
            raise ConfigError(f"on_full must be 'continue' or 'stop', got {on_full!r}")
        self.on_full = on_full
        self.name = f"locality/{on_full}"

    def attach(self, ctx) -> None:  # noqa: ANN001 - see base class
        super().attach(ctx)
        metrics = ctx.obs.metrics
        self._m_batches = metrics.counter("prefetch.chunk_batches")
        self._m_demand_only = metrics.counter("prefetch.demand_only")
        self._m_batch_pages = metrics.histogram("prefetch.batch_pages")

    def pages_to_migrate(
        self, vpn: int, memory_full: bool, skip: Callable[[int], bool],
        time: int = 0,
    ) -> List[int]:
        if memory_full and self.on_full == "stop":
            self._m_demand_only.inc()
            return [] if skip(vpn) else [vpn]
        pages = self._chunk_pages(vpn, skip)
        self._m_batches.inc()
        self._m_batch_pages.observe(len(pages))
        return pages
