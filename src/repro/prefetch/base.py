"""Prefetcher interface.

On every far fault the GMMU asks the active prefetcher which pages to
migrate alongside the faulted page.  The prefetcher never sees residency
state directly; the GMMU passes a ``skip`` predicate that is True for pages
already resident or already covered by an in-flight migration, so a
prefetcher cannot double-migrate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

from ..config import SimConfig
from ..engine.stats import SimStats
from ..obs import DISABLED, Observability

__all__ = ["PrefetchContext", "Prefetcher"]


@dataclass
class PrefetchContext:
    """Handed to the prefetcher by the GMMU at attach time."""

    config: SimConfig
    stats: SimStats
    #: Observability sink (tracer + metrics registry); the DISABLED
    #: singleton is stateless, so sharing it as a default is safe.
    obs: Observability = DISABLED

    @property
    def pages_per_chunk(self) -> int:
        return self.config.uvm.pages_per_chunk


class Prefetcher:
    """Base prefetcher: demand page only (subclasses widen the batch)."""

    name = "none"

    def __init__(self) -> None:
        self.ctx: PrefetchContext = None  # type: ignore[assignment]

    def attach(self, ctx: PrefetchContext) -> None:
        self.ctx = ctx

    def pages_to_migrate(
        self,
        vpn: int,
        memory_full: bool,
        skip: Callable[[int], bool],
        time: int = 0,
    ) -> List[int]:
        """Pages to migrate for a fault on ``vpn``.

        Must include ``vpn`` itself (unless it is skipped, i.e. already
        covered in flight) and must not include any page for which
        ``skip(page)`` is True.  ``memory_full`` tells the prefetcher the
        device is at capacity and every extra page forces an eviction.
        ``time`` is the fault's simulation time, used only for telemetry
        (trace events) — it must never influence the page batch.
        """
        return [] if skip(vpn) else [vpn]

    def on_chunk_evicted(
        self,
        chunk_id: int,
        touched_mask: int,
        untouch_level: int,
        strategy: str,
        time: int = 0,
    ) -> None:
        """Eviction feedback (CPPE coordination point).  Default: ignore."""

    # --- helpers -----------------------------------------------------------

    def _chunk_pages(self, vpn: int, skip: Callable[[int], bool]) -> List[int]:
        """All non-skipped pages of the chunk containing ``vpn``, with the
        faulted page first (it is the demand page; the rest are prefetch)."""
        ppc = self.ctx.pages_per_chunk
        base = (vpn // ppc) * ppc
        pages = [] if skip(vpn) else [vpn]
        pages.extend(
            p for p in range(base, base + ppc) if p != vpn and not skip(p)
        )
        return pages
