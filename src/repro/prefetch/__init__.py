"""Page prefetchers.

* :class:`DisabledPrefetcher` — demand paging only;
* :class:`LocalityPrefetcher` — sequential-local 64 KB chunk prefetch [9],
  with configurable behaviour once memory is full (continue naively, as the
  baseline of [16] does, or stop, as [11] suggests);
* :class:`TreeNeighborhoodPrefetcher` — the tree-based neighborhood
  prefetcher Ganguly et al. observed in the CUDA driver [16] (extension);
* :class:`PatternAwarePrefetcher` — CPPE's access pattern-aware prefetcher
  (Section IV-C) with Scheme-1/Scheme-2 pattern deletion;
* :class:`NGramPrefetcher` — online n-gram/Markov next-chunk predictor over
  the fault stream (the learned-prefetching baseline; registers itself and
  its setups through :mod:`repro.registry` alone).
"""

from .base import Prefetcher, PrefetchContext
from .disabled import DisabledPrefetcher
from .locality import LocalityPrefetcher
from .ngram import NGramPrefetcher
from .tree_neighborhood import TreeNeighborhoodPrefetcher
from .pattern_aware import PatternAwarePrefetcher, PatternBuffer, PatternEntry

__all__ = [
    "Prefetcher",
    "PrefetchContext",
    "DisabledPrefetcher",
    "LocalityPrefetcher",
    "NGramPrefetcher",
    "TreeNeighborhoodPrefetcher",
    "PatternAwarePrefetcher",
    "PatternBuffer",
    "PatternEntry",
]
