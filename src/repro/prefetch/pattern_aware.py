"""CPPE's access pattern-aware prefetcher (Section IV-C).

Behaves as the sequential-local prefetcher until eviction feedback arrives.
A **pattern buffer** records the touch bit-vector of evicted chunks whose
untouch level is >= 8 (half a chunk) — by default only once the eviction
strategy has switched to LRU, matching Section VI-C ("the buffer is used in
limited cases").  On a fault whose chunk hits the buffer:

* faulted page **matches** the pattern (its touch bit is 1): migrate only
  the pattern's touched pages — strided chunks (NW stride-2, MVT stride-4)
  stop dragging their dead pages across PCIe;
* faulted page **mismatches**: migrate the whole chunk and apply the
  deletion scheme — Scheme-1 deletes the entry on any mismatch, Scheme-2
  only when the *first* lookup of that entry mismatches (Fig. 6).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..config import PatternBufferConfig
from .base import Prefetcher

__all__ = ["PatternEntry", "PatternBuffer", "PatternAwarePrefetcher"]


class PatternEntry:
    """One recorded touch pattern."""

    __slots__ = ("chunk_id", "touched_mask", "looked_up", "first_matched")

    def __init__(self, chunk_id: int, touched_mask: int):
        self.chunk_id = chunk_id
        self.touched_mask = touched_mask
        self.looked_up = False
        self.first_matched = False

    def matches(self, page_index: int) -> bool:
        return bool(self.touched_mask >> page_index & 1)


class PatternBuffer:
    """FIFO-bounded map chunk_id -> :class:`PatternEntry`."""

    def __init__(self, config: PatternBufferConfig):
        self.config = config
        self._entries: Dict[int, PatternEntry] = {}
        self.inserts = 0
        self.deletions = 0
        self.peak = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, chunk_id: int) -> bool:
        return chunk_id in self._entries

    def get(self, chunk_id: int) -> Optional[PatternEntry]:
        return self._entries.get(chunk_id)

    def record(self, chunk_id: int, touched_mask: int, untouch_level: int) -> bool:
        """Record an evicted chunk's pattern if it qualifies."""
        if untouch_level < self.config.min_untouch_level:
            return False
        if touched_mask == 0:
            # A never-touched chunk has no pattern to replay.
            return False
        if chunk_id in self._entries:
            # Delete-then-reinsert: a refreshed pattern moves to the FIFO
            # tail.  Plain reassignment would keep the old dict insertion
            # position, making the *newest* pattern the first one evicted.
            del self._entries[chunk_id]
        else:
            cap = self.config.max_entries
            if cap is not None:
                while len(self._entries) >= cap:
                    oldest = next(iter(self._entries))
                    del self._entries[oldest]
                    self.deletions += 1
        self._entries[chunk_id] = PatternEntry(chunk_id, touched_mask)
        self.inserts += 1
        if len(self._entries) > self.peak:
            self.peak = len(self._entries)
        return True

    def delete(self, chunk_id: int) -> None:
        if self._entries.pop(chunk_id, None) is not None:
            self.deletions += 1

    def handle_mismatch(self, entry: PatternEntry) -> None:
        """Apply the configured deletion scheme after a pattern mismatch."""
        scheme = self.config.deletion_scheme
        if scheme == 1 or not entry.first_matched:
            self.delete(entry.chunk_id)


class PatternAwarePrefetcher(Prefetcher):
    """Locality prefetch + pattern buffer (the prefetch half of CPPE)."""

    def __init__(self, config: Optional[PatternBufferConfig] = None):
        super().__init__()
        self._cfg_override = config
        self.buffer: PatternBuffer = None  # type: ignore[assignment]
        self.name = "pattern-aware"

    def attach(self, ctx) -> None:  # noqa: ANN001 - see base class
        super().attach(ctx)
        cfg = self._cfg_override or ctx.config.pattern_buffer
        self.buffer = PatternBuffer(cfg)
        self.name = f"pattern-aware/s{cfg.deletion_scheme}"
        obs = ctx.obs
        self._trace = obs.tracer
        self._g_occupancy = obs.metrics.gauge("pattern.occupancy")
        self._m_hits = obs.metrics.counter("pattern.hits")
        self._m_mismatches = obs.metrics.counter("pattern.mismatches")
        self._m_records = obs.metrics.counter("pattern.records")
        self._m_deletions = obs.metrics.counter("pattern.deletions")

    # --- coordination: MHPE evictions feed the buffer -----------------------

    def on_chunk_evicted(
        self, chunk_id: int, touched_mask: int, untouch_level: int, strategy: str,
        time: int = 0,
    ) -> None:
        cfg = self.buffer.config
        if cfg.lru_only and strategy != "lru":
            return
        if self.buffer.record(chunk_id, touched_mask, untouch_level):
            stats = self.ctx.stats
            stats.pattern_inserts += 1
            stats.pattern_buffer_peak = self.buffer.peak
            stats.pattern_buffer_len_samples.append(len(self.buffer))
            self._m_records.inc()
            self._g_occupancy.set(len(self.buffer))
            if self._trace.enabled:
                self._trace.emit(
                    "pattern_record", time, chunk=chunk_id,
                    untouch=untouch_level, occupancy=len(self.buffer),
                )

    # --- prefetch decision ----------------------------------------------------

    def pages_to_migrate(
        self, vpn: int, memory_full: bool, skip: Callable[[int], bool],
        time: int = 0,
    ) -> List[int]:
        ppc = self.ctx.pages_per_chunk
        chunk_id = vpn // ppc
        entry = self.buffer.get(chunk_id)
        if entry is None:
            return self._chunk_pages(vpn, skip)

        stats = self.ctx.stats
        page_index = vpn % ppc
        first_lookup = not entry.looked_up
        entry.looked_up = True
        if entry.matches(page_index):
            if first_lookup:
                entry.first_matched = True
            stats.pattern_hits += 1
            self._m_hits.inc()
            base = chunk_id * ppc
            pages = [] if skip(vpn) else [vpn]
            for i in range(ppc):
                p = base + i
                if p != vpn and entry.matches(i) and not skip(p):
                    pages.append(p)
            stats.pattern_prefetches += max(0, len(pages) - 1)
            if self._trace.enabled:
                self._trace.emit(
                    "pattern_hit", time, chunk=chunk_id, page=page_index,
                    pages=len(pages),
                )
            return pages

        # Mismatch: whole chunk, then apply the deletion scheme.
        stats.pattern_mismatches += 1
        self._m_mismatches.inc()
        deletions_before = self.buffer.deletions
        self.buffer.handle_mismatch(entry)
        stats.pattern_deletions = self.buffer.deletions
        deleted = self.buffer.deletions > deletions_before
        if deleted:
            self._m_deletions.inc()
            self._g_occupancy.set(len(self.buffer))
        if self._trace.enabled:
            self._trace.emit(
                "pattern_mismatch", time, chunk=chunk_id, page=page_index,
            )
            if deleted:
                self._trace.emit("pattern_delete", time, chunk=chunk_id)
        return self._chunk_pages(vpn, skip)
