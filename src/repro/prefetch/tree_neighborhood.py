"""Tree-based neighborhood prefetcher (Ganguly et al. [16], Section II-B).

Ganguly et al. discovered via microbenchmarks that the NVIDIA CUDA driver
prefetches with a binary tree built over the 64 KB basic blocks of each 2 MB
large-page region: when a fault makes more than half of the pages under a
tree node valid, the driver prefetches the remainder of that node, walking
up the tree as long as the occupancy condition holds.

This is an *extension* in our reproduction (the paper's own evaluation uses
the sequential-local prefetcher); the ablation bench ``bench_ablation_tree``
compares the two under LRU.
"""

from __future__ import annotations

from typing import Callable, List

from ..errors import ConfigError
from .base import Prefetcher

__all__ = ["TreeNeighborhoodPrefetcher"]


class TreeNeighborhoodPrefetcher(Prefetcher):
    """Binary-tree neighborhood prefetch over 2 MB regions."""

    def __init__(self, region_pages: int = 512, on_full: str = "continue",
                 occupancy_threshold: float = 0.5):
        super().__init__()
        if region_pages <= 0 or region_pages & (region_pages - 1):
            raise ConfigError("region_pages must be a positive power of two")
        if on_full not in ("continue", "stop"):
            raise ConfigError(f"on_full must be 'continue' or 'stop', got {on_full!r}")
        if not 0.0 < occupancy_threshold <= 1.0:
            raise ConfigError("occupancy_threshold must be in (0, 1]")
        self.region_pages = region_pages
        self.on_full = on_full
        self.occupancy_threshold = occupancy_threshold
        self.name = f"tree/{on_full}"

    def pages_to_migrate(
        self, vpn: int, memory_full: bool, skip: Callable[[int], bool],
        time: int = 0,
    ) -> List[int]:
        if memory_full and self.on_full == "stop":
            return [] if skip(vpn) else [vpn]

        ppc = self.ctx.pages_per_chunk
        # Start from the faulted basic block (chunk).
        node_base = (vpn // ppc) * ppc
        node_size = ppc
        pages = self._collect(node_base, node_size, vpn, skip)

        # Walk up the tree while the enclosing node would be >50% valid
        # after this migration.
        region_base = (vpn // self.region_pages) * self.region_pages
        valid = set(pages)
        while node_size < self.region_pages:
            parent_size = node_size * 2
            parent_base = region_base + ((node_base - region_base) // parent_size) * parent_size
            occupied = sum(
                1
                for p in range(parent_base, parent_base + parent_size)
                if skip(p) or p in valid
            )
            # '>=': completing one half of a node triggers the other half,
            # which is what produces the geometrically growing migration
            # sizes Ganguly et al. measured from the CUDA driver.
            if occupied / parent_size < self.occupancy_threshold:
                break
            extra = self._collect(parent_base, parent_size, vpn, skip)
            for p in extra:
                if p not in valid:
                    pages.append(p)
                    valid.add(p)
            node_base, node_size = parent_base, parent_size
        return pages

    def _collect(
        self, base: int, size: int, faulted: int, skip: Callable[[int], bool]
    ) -> List[int]:
        """Non-skipped pages of [base, base+size), faulted page first."""
        pages = [] if skip(faulted) or not base <= faulted < base + size else [faulted]
        pages.extend(
            p for p in range(base, base + size) if p != faulted and not skip(p)
        )
        return pages
