"""Exception hierarchy for the CPPE reproduction.

Two families matter to the experiment harness:

* **simulation-level** errors (:class:`SimulationError`, :class:`WorkloadError`,
  :class:`ConfigError`, :class:`CapacityError`, or any non-Repro exception a
  buggy simulation raises) mean *this spec's simulation is wrong* — rerunning
  it elsewhere reproduces the same failure;
* **harness-level** errors (:class:`HarnessError` and below) mean the
  *infrastructure* failed: :class:`PoolError` when the process pool broke or
  could not start (worth a bounded retry), :class:`WorkerTimeout` when a
  worker stopped making progress, :class:`WorkerFailure` as the picklable
  envelope the coordinator raises for a failure that happened inside a
  worker (carrying the spec label and the remote traceback).

:func:`classify_failure` is the single authority on which family an
exception caught around a simulation belongs to.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigError(ReproError):
    """A configuration value is invalid or inconsistent."""


class CapacityError(ReproError):
    """Device memory cannot satisfy an allocation request."""


class SimulationError(ReproError):
    """The simulator reached an inconsistent internal state."""


class WorkloadError(ReproError):
    """A workload/trace definition is invalid."""


class HarnessError(ReproError):
    """The experiment harness (not a simulation) failed."""


class PoolError(HarnessError):
    """The process pool broke or could not be started.

    Distinct from a simulation failing *inside* a worker: a pool error says
    nothing about any spec, so the remedy is a bounded pool retry and then
    a serial fallback — never blaming (or skipping) a spec.
    """


class ServiceError(HarnessError):
    """The experiment service (queue, scheduler, HTTP layer) failed.

    Like every :class:`HarnessError`, a service error says nothing about
    any simulation: the specs behind a rejected or lost job are simply not
    run (yet), never misreported as failed simulations.  Subclasses carry
    the HTTP status the server maps them to.
    """

    #: HTTP status code the service layer renders this error as.
    http_status = 500


class RateLimited(ServiceError):
    """A submission exceeded the service's token-bucket rate limit."""

    http_status = 429

    def __init__(self, retry_after_s: float):
        super().__init__(
            f"rate limit exceeded; retry after {retry_after_s:.2f}s"
        )
        self.retry_after_s = retry_after_s

    def __reduce__(self):
        return (RateLimited, (self.retry_after_s,))


class AdmissionDenied(ServiceError):
    """A tenant exceeded its cap of queued/running jobs."""

    http_status = 429

    def __init__(self, tenant: str, active: int, cap: int):
        super().__init__(
            f"tenant {tenant!r} has {active} active job(s), cap is {cap}; "
            "wait for one to finish"
        )
        self.tenant = tenant
        self.active = active
        self.cap = cap

    def __reduce__(self):
        return (AdmissionDenied, (self.tenant, self.active, self.cap))


class UnknownJob(ServiceError):
    """A batch/job id that the service has no record of."""

    http_status = 404

    def __init__(self, job_id: str):
        super().__init__(f"unknown batch {job_id!r}")
        self.job_id = job_id

    def __reduce__(self):
        return (UnknownJob, (self.job_id,))


class InvalidJobRequest(ServiceError):
    """A submission payload that cannot be turned into a job."""

    http_status = 400


class WorkerTimeout(HarnessError):
    """A worker stopped making progress within the configured timeout."""

    def __init__(self, label: str, timeout_s: float):
        super().__init__(
            f"spec {label!r} still running after {timeout_s:g}s with no "
            "worker completing; worker terminated"
        )
        self.label = label
        self.timeout_s = timeout_s

    def __reduce__(self):
        return (WorkerTimeout, (self.label, self.timeout_s))


def classify_failure(exc: BaseException) -> str:
    """``"harness"`` or ``"simulation"`` for an exception caught around a
    simulation execution.

    Anything that is not explicitly harness-side infrastructure — including
    bare ``RuntimeError``/``OSError``/``KeyError`` raised by a buggy
    simulation — classifies as ``"simulation"``: rerunning the spec will
    reproduce it, so it must surface, not trigger infra fallbacks.
    """
    return "harness" if isinstance(exc, HarnessError) else "simulation"


class WorkerFailure(HarnessError):
    """Picklable envelope for an exception raised inside a worker.

    Raised by the coordinator (``ParallelRunner``) so the caller sees *which
    spec* failed and the *remote* traceback, instead of either a bare
    exception with no context or — worse — a silent serial re-run of the
    whole batch.  ``kind`` is :func:`classify_failure` of the original
    exception; ``exc_type`` its class name; ``remote_traceback`` the
    formatted traceback captured in the worker process.
    """

    def __init__(
        self,
        label: str,
        exc_type: str,
        message: str,
        remote_traceback: str = "",
        kind: str = "simulation",
    ):
        detail = f"spec {label!r} failed in worker: {exc_type}: {message}"
        if remote_traceback:
            detail += f"\n--- remote traceback ---\n{remote_traceback}"
        super().__init__(detail)
        self.label = label
        self.exc_type = exc_type
        self.message = message
        self.remote_traceback = remote_traceback
        self.kind = kind

    @classmethod
    def from_exception(
        cls, label: str, exc: BaseException, remote_traceback: str = ""
    ) -> "WorkerFailure":
        return cls(
            label=label,
            exc_type=type(exc).__name__,
            message=str(exc),
            remote_traceback=remote_traceback,
            kind=classify_failure(exc),
        )

    def __reduce__(self):
        return (
            WorkerFailure,
            (
                self.label,
                self.exc_type,
                self.message,
                self.remote_traceback,
                self.kind,
            ),
        )


class ThrashingCrash(SimulationError):
    """Raised when a run exceeds its eviction budget (models the paper's
    observation that MVT/BIC *crash* in the baseline due to severe thrashing).

    The harness catches this and reports the configuration as ``crashed``
    instead of producing a speedup number, mirroring the 'X' marks in
    Fig. 10 of the paper.
    """

    def __init__(self, evictions: int, budget: int):
        super().__init__(
            f"runaway thrashing: {evictions} chunk evictions exceeded the "
            f"crash budget of {budget}"
        )
        self.evictions = evictions
        self.budget = budget
