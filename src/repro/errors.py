"""Exception hierarchy for the CPPE reproduction."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigError(ReproError):
    """A configuration value is invalid or inconsistent."""


class CapacityError(ReproError):
    """Device memory cannot satisfy an allocation request."""


class SimulationError(ReproError):
    """The simulator reached an inconsistent internal state."""


class WorkloadError(ReproError):
    """A workload/trace definition is invalid."""


class ThrashingCrash(SimulationError):
    """Raised when a run exceeds its eviction budget (models the paper's
    observation that MVT/BIC *crash* in the baseline due to severe thrashing).

    The harness catches this and reports the configuration as ``crashed``
    instead of producing a speedup number, mirroring the 'X' marks in
    Fig. 10 of the paper.
    """

    def __init__(self, evictions: int, budget: int):
        super().__init__(
            f"runaway thrashing: {evictions} chunk evictions exceeded the "
            f"crash budget of {budget}"
        )
        self.evictions = evictions
        self.budget = budget
