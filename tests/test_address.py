"""Address arithmetic (repro.memsim.address)."""

from repro.memsim.address import (
    chunk_base_vpn,
    chunk_of,
    chunk_vpns,
    page_index_in_chunk,
)


class TestChunkMath:
    def test_chunk_of_boundaries(self):
        assert chunk_of(0) == 0
        assert chunk_of(15) == 0
        assert chunk_of(16) == 1
        assert chunk_of(31) == 1

    def test_base_vpn(self):
        assert chunk_base_vpn(0) == 0
        assert chunk_base_vpn(3) == 48

    def test_chunk_vpns_covers_exactly_one_chunk(self):
        vpns = chunk_vpns(2)
        assert vpns == list(range(32, 48))
        assert len(vpns) == 16

    def test_page_index(self):
        assert page_index_in_chunk(32) == 0
        assert page_index_in_chunk(47) == 15

    def test_roundtrip(self):
        for vpn in (0, 1, 15, 16, 12345, 0x80000):
            c = chunk_of(vpn)
            idx = page_index_in_chunk(vpn)
            assert chunk_base_vpn(c) + idx == vpn

    def test_custom_chunk_size(self):
        assert chunk_of(7, pages_per_chunk=4) == 1
        assert chunk_vpns(1, pages_per_chunk=4) == [4, 5, 6, 7]
        assert page_index_in_chunk(7, pages_per_chunk=4) == 3
