"""SM execution model (repro.engine.sm)."""

import numpy as np
import pytest

from repro.config import SimConfig, SMConfig, TranslationConfig, UVMConfig
from repro.engine.events import EventQueue
from repro.engine.sm import StreamingMultiprocessor
from repro.engine.stats import SimStats
from repro.errors import SimulationError
from repro.memsim.gmmu import GMMU
from repro.policies.lru import LRUPolicy
from repro.prefetch.locality import LocalityPrefetcher


def make_sm(trace, capacity=256, max_outstanding=4, burst=8, writes=None):
    config = SimConfig(
        sm=SMConfig(
            num_sms=1, max_outstanding_faults=max_outstanding, burst_length=burst
        ),
        translation=TranslationConfig(enabled=False),
    )
    events = EventQueue()
    stats = SimStats()
    gmmu = GMMU(
        config=config,
        capacity_frames=capacity,
        events=events,
        stats=stats,
        policy=LRUPolicy(),
        prefetcher=LocalityPrefetcher("continue"),
    )
    finished = []
    sm = StreamingMultiprocessor(
        sm_id=0,
        trace=np.asarray(trace, dtype=np.int64),
        writes=None if writes is None else np.asarray(writes, dtype=bool),
        config=config,
        gmmu=gmmu,
        translation=None,
        events=events,
        stats=stats,
        on_finish=lambda sm_id, t: finished.append((sm_id, t)),
    )
    return sm, gmmu, events, stats, finished


class TestExecution:
    def test_runs_trace_to_completion(self):
        sm, gmmu, events, stats, finished = make_sm([0, 1, 2, 3])
        sm.start(0)
        events.run()
        assert sm.done
        assert finished and finished[0][0] == 0
        assert stats.accesses == 4

    def test_faults_then_hits_within_chunk(self):
        sm, gmmu, events, stats, _ = make_sm(list(range(16)))
        sm.start(0)
        events.run()
        # First access faults; the rest hit the prefetched chunk (modulo
        # accesses issued before the migration resolves, which merge).
        assert stats.fault_service_ops == 1
        assert stats.pages_migrated == 16

    def test_touches_recorded_for_all_accesses(self):
        sm, gmmu, events, stats, _ = make_sm(list(range(16)))
        sm.start(0)
        events.run()
        entry = gmmu.chain.get(0)
        assert entry.touched_pages == 16

    def test_write_flags_dirty_pages(self):
        sm, gmmu, events, stats, _ = make_sm(
            [0, 1], writes=[True, False]
        )
        sm.start(0)
        events.run()
        assert stats.writes == 1
        assert gmmu.page_table.dirty(0)
        assert not gmmu.page_table.dirty(1)

    def test_mismatched_writes_length_rejected(self):
        with pytest.raises(SimulationError):
            make_sm([0, 1, 2], writes=[True])

    def test_finish_time_includes_trailing_fault(self):
        sm, gmmu, events, stats, finished = make_sm([0])
        sm.start(0)
        events.run()
        assert finished[0][1] >= gmmu.uvm.fault_latency_cycles


class TestReplayableFaults:
    def test_sm_continues_past_fault(self):
        # Accesses to two different chunks: the SM issues the second fault
        # before the first resolves (replayable far faults).
        sm, gmmu, events, stats, _ = make_sm([0, 16], max_outstanding=2)
        sm.start(0)
        events.run()
        assert stats.far_faults == 2
        # Both faults were outstanding concurrently; the GMMU serialised
        # the services, so total time ~ 2 services, not 2 * (service+issue).
        assert stats.fault_service_ops == 2

    def test_stall_at_max_outstanding(self):
        trace = [i * 16 for i in range(8)]  # 8 distinct chunks
        sm, gmmu, events, stats, _ = make_sm(trace, max_outstanding=2, capacity=256)
        sm.start(0)
        events.run()
        assert stats.sm_stall_events > 0
        assert sm.done

    def test_burst_yields_between_sms(self):
        # A long hit run must not exceed burst_length per event.
        sm, gmmu, events, stats, _ = make_sm(list(range(16)) * 8, burst=4)
        sm.start(0)
        events.run()
        assert sm.done
        assert stats.accesses == 128
