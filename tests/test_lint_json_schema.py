"""`repro lint --json` output validates against the checked-in schema.

CI uploads the deep-lint JSON report as a build artifact, so its shape is a
public contract: `tests/lint_output.schema.json` *is* that contract, and
this module validates real CLI output against it with a small stdlib-only
validator (the container has no `jsonschema` package — the validator
supports exactly the keywords the schema uses, and refuses schemas that
use anything else so the contract cannot silently outgrow the checker).
"""

from __future__ import annotations

import json
import re
from pathlib import Path

import pytest

from repro.cli import main

REPO = Path(__file__).resolve().parent.parent
SCHEMA_PATH = REPO / "tests" / "lint_output.schema.json"
CORPUS = REPO / "tests" / "lint_corpus"

_KNOWN_KEYWORDS = {
    "$schema", "title", "description",
    "type", "const", "required", "properties", "additionalProperties",
    "items", "minimum", "pattern", "minLength",
}

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "boolean": bool,
    "integer": int,
}


def validate(instance, schema, where="$"):
    """Minimal JSON Schema (draft-07 subset) validator; raises on mismatch."""
    unknown = set(schema) - _KNOWN_KEYWORDS
    assert not unknown, f"{where}: schema uses unsupported keywords {unknown}"

    if "const" in schema:
        assert instance == schema["const"], (
            f"{where}: {instance!r} != const {schema['const']!r}"
        )
    if "type" in schema:
        expected = _TYPES[schema["type"]]
        assert isinstance(instance, expected) and not (
            expected is int and isinstance(instance, bool)
        ), f"{where}: {instance!r} is not of type {schema['type']}"
    if "minimum" in schema:
        assert instance >= schema["minimum"], (
            f"{where}: {instance!r} < minimum {schema['minimum']}"
        )
    if "minLength" in schema:
        assert len(instance) >= schema["minLength"], (
            f"{where}: shorter than minLength {schema['minLength']}"
        )
    if "pattern" in schema:
        assert re.search(schema["pattern"], instance), (
            f"{where}: {instance!r} does not match {schema['pattern']!r}"
        )
    if "required" in schema:
        missing = set(schema["required"]) - set(instance)
        assert not missing, f"{where}: missing required keys {missing}"
    if "properties" in schema:
        if schema.get("additionalProperties") is False:
            extra = set(instance) - set(schema["properties"])
            assert not extra, f"{where}: unexpected keys {extra}"
        for key, subschema in schema["properties"].items():
            if key in instance:
                validate(instance[key], subschema, f"{where}.{key}")
    if "items" in schema:
        for idx, item in enumerate(instance):
            validate(item, schema["items"], f"{where}[{idx}]")


@pytest.fixture(scope="module")
def schema():
    return json.loads(SCHEMA_PATH.read_text(encoding="utf-8"))


def _lint_json(capsys, *argv):
    main(["lint", "--json", *argv])
    return json.loads(capsys.readouterr().out)


class TestValidator:
    """The mini validator actually rejects bad documents."""

    def test_rejects_wrong_type(self, schema):
        with pytest.raises(AssertionError):
            validate({"version": 2, "files_checked": "3"}, schema)

    def test_rejects_missing_required(self, schema):
        with pytest.raises(AssertionError):
            validate({"version": 2}, schema)

    def test_rejects_unknown_key(self, schema):
        with pytest.raises(AssertionError):
            validate(
                {
                    "version": 2,
                    "files_checked": 0,
                    "deep": {
                        "enabled": False,
                        "summaries_extracted": 0,
                        "summaries_from_cache": 0,
                    },
                    "findings": [],
                    "surprise": 1,
                },
                schema,
            )

    def test_rejects_bad_rule_id(self, schema):
        finding = {
            "path": "x.py",
            "line": 1,
            "column": 1,
            "rule": "E501",
            "message": "m",
            "fix_hint": "h",
        }
        with pytest.raises(AssertionError):
            validate(
                {
                    "version": 2,
                    "files_checked": 1,
                    "deep": {
                        "enabled": False,
                        "summaries_extracted": 0,
                        "summaries_from_cache": 0,
                    },
                    "findings": [finding],
                },
                schema,
            )


class TestRealOutputValidates:
    def test_cheap_clean_run(self, capsys, schema):
        payload = _lint_json(capsys, str(CORPUS / "suppressed_wallclock.py"))
        validate(payload, schema)
        assert payload["deep"]["enabled"] is False

    def test_cheap_run_with_findings(self, capsys, schema):
        payload = _lint_json(capsys, str(CORPUS / "det_wallclock.py"))
        validate(payload, schema)
        assert payload["findings"]

    def test_deep_run_with_findings(self, capsys, schema):
        payload = _lint_json(
            capsys, "--deep", str(CORPUS / "taint_unhashed_field_read.py")
        )
        validate(payload, schema)
        assert payload["deep"]["enabled"] is True
        assert payload["deep"]["summaries_extracted"] == 1
        assert {f["rule"] for f in payload["findings"]} == {"REPRO501"}

    def test_deep_repo_run(self, capsys, schema):
        payload = _lint_json(capsys, "--deep", str(REPO / "src"))
        validate(payload, schema)
        assert payload["findings"] == []
        assert payload["files_checked"] == payload["deep"][
            "summaries_extracted"
        ]
