"""Observability end-to-end invariants.

The layer's two hard promises, enforced here:

* **invisible when off AND on** — a traced run returns a result
  byte-identical (canonical cache serialization) to the untraced run of the
  same spec, and never reads or writes either cache layer;
* **deterministic when on** — the same traced run always yields the same
  event stream, and a multi-run merged trace is identical however the batch
  was scheduled (serial, pool, any worker count).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import SimConfig, SMConfig, TranslationConfig
from repro.engine.simulator import Simulator
from repro.harness import cache as cache_mod
from repro.harness.baselines import build_setup
from repro.harness.cache import serialize_result, spec_fingerprint
from repro.harness.experiment import RunSpec, clear_cache, run_matrix, run_one
from repro.harness.parallel import ParallelRunner
from repro.obs import Observability

from conftest import make_simple_workload

FAST = SimConfig(sm=SMConfig(num_sms=4))
NO_XLAT = SimConfig(sm=SMConfig(num_sms=4), translation=TranslationConfig(enabled=False))

SPEC = RunSpec("NW", "cppe", 0.5, scale=0.25)


def event_payload(events):
    """Comparable view of a trace (args dicts made order-insensitive)."""
    return [(e.run, e.time, e.kind, sorted(e.args.items())) for e in events]


class TestBitIdentical:
    def test_traced_equals_untraced_serialization(self):
        untraced = run_one(SPEC, config=FAST, use_cache=False)
        obs = Observability.enabled_()
        traced = run_one(SPEC, config=FAST, obs=obs)
        assert serialize_result(traced) == serialize_result(untraced)
        assert len(obs.tracer.events) > 0  # the trace actually recorded

    def test_cache_key_ignores_observability(self):
        # The fingerprint is a pure function of (spec, config): there is no
        # obs parameter to vary, and a traced session leaves the key alone.
        before = spec_fingerprint(SPEC, FAST)
        run_one(SPEC, config=FAST, obs=Observability.enabled_())
        assert spec_fingerprint(SPEC, FAST) == before

    @settings(max_examples=4, deadline=None)
    @given(
        footprint=st.sampled_from([128, 256]),
        setup=st.sampled_from(["cppe", "baseline"]),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_traced_invariance_property(self, footprint, setup, seed):
        rng = np.random.default_rng(seed)
        accesses = rng.integers(0, footprint, size=footprint * 3, dtype=np.int64)

        def simulate(obs=None):
            policy, prefetcher = build_setup(setup)
            return Simulator(
                make_simple_workload(footprint, accesses=accesses),
                policy=policy,
                prefetcher=prefetcher,
                oversubscription=0.5,
                config=NO_XLAT,
                obs=obs,
            ).run()

        untraced = simulate()
        traced = simulate(obs=Observability.enabled_())
        assert serialize_result(traced) == serialize_result(untraced)


class TestCacheBypass:
    def test_traced_run_touches_neither_cache_layer(self):
        active = cache_mod.get_active_cache()
        run_one(SPEC, config=FAST, obs=Observability.enabled_())
        assert active.stores == 0 and active.hits == 0
        # An untraced re-run simulates fresh (nothing was memoised) and only
        # then populates the caches.
        run_one(SPEC, config=FAST)
        assert active.stores == 1

    def test_traced_run_ignores_poisoned_cache(self):
        # Seed the cache with a different spec's result under this key: the
        # traced run must simulate live, not serve the cached object.
        active = cache_mod.get_active_cache()
        wrong = run_one(RunSpec("HIS", "baseline", 0.5, scale=0.25), config=FAST,
                        use_cache=False)
        active.put(SPEC, FAST, wrong)
        traced = run_one(SPEC, config=FAST, obs=Observability.enabled_())
        assert traced.workload == "NW"


class TestDeterministicTrace:
    def test_same_run_same_trace(self):
        first = Observability.enabled_()
        second = Observability.enabled_()
        run_one(SPEC, config=FAST, obs=first)
        run_one(SPEC, config=FAST, obs=second)
        assert event_payload(first.tracer.events) == event_payload(second.tracer.events)
        assert first.metrics.snapshot() == second.metrics.snapshot()

    def test_merged_trace_independent_of_scheduling(self):
        specs = [
            RunSpec("NW", "cppe", 0.5, scale=0.25),
            RunSpec("HIS", "baseline", 0.5, scale=0.25),
            RunSpec("STN", "cppe", 0.75, scale=0.25),
        ]

        def merged(jobs):
            clear_cache(disk=False)
            obs = Observability.enabled_()
            ParallelRunner(jobs=jobs, cache=None).run(specs, config=FAST, obs=obs)
            return event_payload(obs.tracer.events), obs.metrics.snapshot()

        serial_events, serial_metrics = merged(jobs=1)
        pool_events, pool_metrics = merged(jobs=2)
        assert pool_events == serial_events
        assert pool_metrics == serial_metrics
        # Events arrive grouped in input-spec order, tagged per run.
        runs = [e[0] for e in serial_events]
        assert runs == sorted(runs, key=runs.index)
        assert runs[0].startswith("NW@50%") and runs[-1].startswith("STN@75%")

    def test_run_matrix_traced_results_match_untraced(self):
        specs = [SPEC, RunSpec("HIS", "baseline", 0.5, scale=0.25)]
        plain = run_matrix(specs, config=FAST, cache=None)
        clear_cache(disk=False)
        obs = Observability.enabled_()
        traced = run_matrix(specs, config=FAST, cache=None, jobs=2, obs=obs)
        assert set(traced) == set(plain)
        for key in plain:
            assert serialize_result(traced[key]) == serialize_result(plain[key])
        assert obs.tracer.of_kind("run_start")


class TestTraceContent:
    def _traced(self, spec=SPEC):
        obs = Observability.enabled_()
        result = run_one(spec, config=FAST, obs=obs)
        return result, obs

    def test_run_bracketed(self):
        _, obs = self._traced()
        events = obs.tracer.events
        assert events[0].kind == "run_start"
        assert events[-1].kind == "run_end"
        assert events[-1].args["crashed"] is False

    def test_interval_telemetry_complete(self):
        _, obs = self._traced()
        intervals = obs.tracer.of_kind("interval")
        assert intervals
        required = {
            "index", "strategy", "forward_distance", "untouch_level",
            "wrong_evictions", "faults", "chunks_evicted",
            "pattern_occupancy", "bytes_h2d", "bytes_d2h",
        }
        for event in intervals:
            assert required <= set(event.args)

    def test_forward_distance_never_exceeds_t3(self):
        # The clamp bugfix: every emitted forward_distance value respects T3.
        _, obs = self._traced()
        t3 = SimConfig().mhpe.t3
        values = [e.args["value"] for e in obs.tracer.of_kind("forward_distance")]
        assert values and all(v <= t3 for v in values)
        intervals = [e.args["forward_distance"] for e in obs.tracer.of_kind("interval")]
        assert all(v <= t3 for v in intervals)

    def test_metrics_mirror_stats(self):
        # run_one absorbs the worker registry under the spec label, so the
        # merged names are "<label>/<metric>".
        result, obs = self._traced()

        def value(name):
            return obs.metrics.value(f"NW@50%/cppe/x0.25/{name}")

        assert value("gmmu.far_faults") == result.stats.far_faults
        assert value("gmmu.chunks_evicted") == result.stats.chunks_evicted
        assert value("pcie.bytes_h2d") == result.stats.bytes_host_to_device
        assert value("stats.total_cycles") == result.stats.total_cycles
