"""The 23-application benchmark suite (repro.workloads.suite)."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads.suite import (
    BENCHMARKS,
    CRASHING_APPS,
    FIG3_APPS,
    benchmarks_by_type,
    get_benchmark,
    make_workload,
)


class TestCatalogue:
    def test_all_23_applications_present(self):
        assert len(BENCHMARKS) == 23

    def test_table2_type_counts(self):
        counts = {}
        for spec in BENCHMARKS.values():
            counts[spec.pattern_type] = counts.get(spec.pattern_type, 0) + 1
        assert counts == {"I": 4, "II": 4, "III": 5, "IV": 4, "V": 4, "VI": 2}

    def test_footprint_ratios_match_table2(self):
        # KMN (130 MB) is the largest; STN (4 MB) among the smallest.
        assert BENCHMARKS["KMN"].footprint_pages == max(
            s.footprint_pages for s in BENCHMARKS.values()
        )
        ratio = BENCHMARKS["KMN"].footprint_pages / BENCHMARKS["NW"].footprint_pages
        assert ratio == pytest.approx(130 / 32, rel=0.05)

    def test_fig3_apps_are_thrashing_or_region_moving(self):
        for app in FIG3_APPS:
            assert BENCHMARKS[app].pattern_type in ("IV", "VI")

    def test_crashing_apps_are_strided_type3(self):
        for app in CRASHING_APPS:
            spec = BENCHMARKS[app]
            assert spec.pattern_type == "III"
            assert spec.params.get("stride") == 4

    def test_lookup_case_insensitive(self):
        assert get_benchmark("srd").abbr == "SRD"

    def test_unknown_benchmark(self):
        with pytest.raises(WorkloadError):
            get_benchmark("NOPE")

    def test_benchmarks_by_type(self):
        assert {s.abbr for s in benchmarks_by_type("VI")} == {"B+T", "HYB"}
        with pytest.raises(WorkloadError):
            benchmarks_by_type("VII")


class TestMakeWorkload:
    @pytest.mark.parametrize("abbr", sorted(BENCHMARKS))
    def test_every_benchmark_generates(self, abbr):
        wl = make_workload(abbr, scale=0.25)
        assert wl.num_accesses > 0
        assert wl.unique_pages_touched <= wl.footprint_pages
        assert wl.pattern_type == BENCHMARKS[abbr].pattern_type

    def test_deterministic_by_default(self):
        a = make_workload("BFS", scale=0.25)
        b = make_workload("BFS", scale=0.25)
        assert np.array_equal(a.accesses, b.accesses)

    def test_seed_override_changes_random_patterns(self):
        a = make_workload("BFS", scale=0.25, seed=1)
        b = make_workload("BFS", scale=0.25, seed=2)
        assert not np.array_equal(a.accesses, b.accesses)

    def test_scale_shrinks_footprint(self):
        full = make_workload("SRD")
        half = make_workload("SRD", scale=0.5)
        assert half.footprint_pages == full.footprint_pages // 2

    def test_invalid_scale(self):
        with pytest.raises(WorkloadError):
            make_workload("SRD", scale=0)

    def test_nw_stride2_intra_chunk(self):
        wl = make_workload("NW", scale=0.5)
        # First phase touches only even pages.
        first = wl.accesses[: wl.footprint_pages // 4]
        assert (first % 2 == 0).all()

    def test_mvt_stride4_intra_chunk(self):
        wl = make_workload("MVT", scale=0.5)
        first = wl.accesses[: wl.footprint_pages // 8]
        assert (first % 4 == 0).all()

    def test_type_iv_tiled_distributions(self):
        assert make_workload("SRD").distribution == "block"
        assert make_workload("STN").distribution == "block"
        assert make_workload("MRQ").distribution == "interleave"
