"""N-gram prefetcher unit and integration tests.

Unit level: the online Markov model learns transitions deterministically,
predicts only above ``min_count``, ties break toward the lower chunk id,
speculation is suppressed at capacity, and evicted chunks are blacklisted
until they fault again (the CPPE coordination feedback).

Integration level: the prefetcher reaches the simulator purely through the
registry — ``run_one`` with the ``"ngram"`` setup and the ``"mhpe+ngram"``
pair name — and produces byte-identical results on both data-structure
backends, without any edit to baselines.py/config.py/cli.py.
"""

from __future__ import annotations

import pickle

import pytest

from helpers import attach_prefetcher, never_skip
from repro.config import SimConfig, SMConfig
from repro.errors import ConfigError
from repro.harness.cache import _PICKLE_PROTOCOL
from repro.harness.experiment import RunSpec, run_one
from repro.prefetch.ngram import NGramPrefetcher


def _fault(prefetcher, chunk, memory_full=False):
    ppc = prefetcher.ctx.pages_per_chunk
    return prefetcher.pages_to_migrate(chunk * ppc, memory_full, never_skip)


def _chunks(prefetcher, pages):
    ppc = prefetcher.ctx.pages_per_chunk
    return sorted({page // ppc for page in pages})


class TestValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigError, match="order"):
            NGramPrefetcher(order=0)
        with pytest.raises(ConfigError, match="min_count"):
            NGramPrefetcher(min_count=0)
        with pytest.raises(ConfigError, match="max_contexts"):
            NGramPrefetcher(max_contexts=0)

    def test_name_reflects_order(self):
        assert NGramPrefetcher(order=3).name == "ngram/3"


class TestLearning:
    def test_learns_cyclic_pattern(self):
        p = NGramPrefetcher(order=2, min_count=2)
        attach_prefetcher(p)
        # Three cycles give the (3, 1) -> 2 transition two observations.
        for _ in range(3):
            for chunk in (1, 2, 3):
                _fault(p, chunk)
        before = p.predictions
        pages = _fault(p, 1)
        ppc = p.ctx.pages_per_chunk
        # Demand chunk 1 plus predicted chunk 2.
        assert _chunks(p, pages) == [1, 2]
        assert len(pages) == 2 * ppc
        assert p.predictions == before + 1

    def test_below_min_count_stays_quiet(self):
        p = NGramPrefetcher(order=2, min_count=3)
        attach_prefetcher(p)
        for _ in range(3):
            for chunk in (1, 2, 3):
                _fault(p, chunk)
        assert _chunks(p, _fault(p, 1)) == [1]
        assert p.predictions == 0

    def test_tie_breaks_toward_lower_chunk(self):
        p = NGramPrefetcher(order=1, min_count=1)
        attach_prefetcher(p)
        # Context (5,) -> 9 and (5,) -> 7, one observation each: tie.
        for successor in (9, 7):
            _fault(p, 5)
            _fault(p, successor)
        pages = _fault(p, 5)
        assert _chunks(p, pages) == [5, 7]

    def test_repeated_faults_carry_no_transition(self):
        p = NGramPrefetcher(order=1, min_count=1)
        attach_prefetcher(p)
        for _ in range(4):
            _fault(p, 5)
        assert p.trained_transitions == 0

    def test_model_is_bounded_fifo(self):
        p = NGramPrefetcher(order=1, min_count=1, max_contexts=2)
        attach_prefetcher(p)
        for chunk in (1, 2, 3, 4):
            _fault(p, chunk)
        assert len(p._model) <= 2
        # Oldest context (1,) was evicted from the model.
        assert (1,) not in p._model


class TestCoordination:
    def test_no_speculation_at_capacity(self):
        p = NGramPrefetcher(order=2, min_count=2)
        attach_prefetcher(p)
        for _ in range(3):
            for chunk in (1, 2, 3):
                _fault(p, chunk)
        before = p.predictions
        pages = _fault(p, 1, memory_full=True)
        assert _chunks(p, pages) == [1]
        assert p.predictions == before

    def test_evicted_chunk_blacklisted_until_refault(self):
        p = NGramPrefetcher(order=2, min_count=2)
        attach_prefetcher(p)
        for _ in range(3):
            for chunk in (1, 2, 3):
                _fault(p, chunk)
        p.on_chunk_evicted(2, 0xFFFF, 0, "full")
        # (3, 1) predicts 2, but 2 was just evicted: demand only.
        assert _chunks(p, _fault(p, 1)) == [1]
        # A fault into chunk 2 proves it live again and lifts the ban.
        _fault(p, 2)
        _fault(p, 3)
        assert _chunks(p, _fault(p, 1)) == [1, 2]

    def test_blacklist_is_bounded(self):
        p = NGramPrefetcher()
        attach_prefetcher(p)
        for chunk in range(200):
            p.on_chunk_evicted(chunk, 0xFFFF, 0, "full")
        assert len(p._evicted) <= 64


class TestThroughRegistry:
    """End-to-end: the ngram family rides the public component seam."""

    def test_runs_via_named_setup(self):
        spec = RunSpec("NW", "ngram", 0.75, scale=0.25)
        result = run_one(spec, use_cache=False)
        assert result.total_cycles > 0
        assert result.stats.far_faults > 0
        assert result.prefetcher.startswith("ngram")

    def test_runs_via_pair_setup(self):
        spec = RunSpec("NW", "mhpe+ngram", 0.75, scale=0.25)
        result = run_one(spec, use_cache=False)
        assert result.total_cycles > 0
        assert result.policy == "mhpe"

    @pytest.mark.parametrize("setup", ["ngram", "mhpe+ngram"])
    def test_backends_byte_identical(self, setup):
        spec = RunSpec("NW", setup, 0.75, scale=0.25)
        config = SimConfig(sm=SMConfig(num_sms=4))
        results = [
            run_one(spec, config.with_(backend=backend), use_cache=False)
            for backend in ("object", "array")
        ]
        blobs = [
            pickle.dumps(r, protocol=_PICKLE_PROTOCOL) for r in results
        ]
        assert blobs[0] == blobs[1]

    def test_deterministic_across_runs(self):
        spec = RunSpec("SRD", "ngram", 0.5, scale=0.25)
        first = run_one(spec, use_cache=False)
        second = run_one(spec, use_cache=False)
        assert pickle.dumps(first, protocol=_PICKLE_PROTOCOL) == pickle.dumps(
            second, protocol=_PICKLE_PROTOCOL
        )
