"""Metrics registry (repro.obs.metrics)."""

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
)


class TestInstruments:
    def test_counter_increments(self):
        c = Counter("x")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("x").inc(-1)

    def test_gauge_last_write_wins(self):
        g = Gauge("x")
        g.set(3)
        g.set(7)
        assert g.value == 7

    def test_histogram_buckets(self):
        h = Histogram("x", bounds=(1, 4, 16))
        for v in (1, 2, 5, 100):
            h.observe(v)
        assert h.bucket_counts == [1, 1, 1, 1]
        assert h.count == 4
        assert h.total == 108

    def test_histogram_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError):
            Histogram("x", bounds=(4, 1))

    def test_histogram_snapshot_shape(self):
        h = Histogram("x", bounds=(2,))
        h.observe(1)
        snap = h.snapshot_value()
        assert snap == {"bounds": [2], "buckets": [1, 0], "count": 1, "total": 1}


class TestRegistry:
    def test_registration_idempotent(self):
        reg = MetricsRegistry()
        a = reg.counter("hits")
        b = reg.counter("hits")
        assert a is b
        a.inc()
        assert reg.value("hits") == 1

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x")

    def test_value_reads_counters_and_gauges(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(3)
        reg.gauge("g").set(9)
        assert reg.value("c") == 3
        assert reg.value("g") == 9
        assert reg.value("missing", default=-1) == -1

    def test_value_ignores_histograms(self):
        reg = MetricsRegistry()
        reg.histogram("h").observe(1)
        assert reg.value("h", default=42) == 42

    def test_snapshot_is_name_sorted(self):
        reg = MetricsRegistry()
        reg.counter("zebra").inc()
        reg.gauge("apple").set(1)
        snap = reg.snapshot()
        assert list(snap) == ["apple", "zebra"]
        assert snap["zebra"] == {"kind": "counter", "value": 1}

    def test_absorb_prefixes_and_freezes(self):
        worker = MetricsRegistry()
        worker.counter("faults").inc(5)
        worker.histogram("batch", bounds=(2,)).observe(1)
        parent = MetricsRegistry()
        parent.absorb(worker.snapshot(), prefix="run-a")
        assert parent.value("run-a/faults") == 5
        frozen = parent.snapshot()["run-a/batch"]["value"]
        assert frozen == {"bounds": [2], "buckets": [1, 0], "count": 1, "total": 1}

    def test_absorb_roundtrip_deterministic(self):
        worker = MetricsRegistry()
        worker.counter("a").inc()
        worker.gauge("b").set(2)
        p1, p2 = MetricsRegistry(), MetricsRegistry()
        p1.absorb(worker.snapshot(), prefix="r")
        p2.absorb(worker.snapshot(), prefix="r")
        assert p1.snapshot() == p2.snapshot()


class TestNullRegistry:
    def test_disabled_flag(self):
        assert NullRegistry().enabled is False
        assert MetricsRegistry().enabled is True

    def test_hands_out_shared_noops(self):
        reg = NullRegistry()
        assert reg.counter("a") is reg.counter("b")
        assert reg.gauge("a") is reg.gauge("b")
        assert reg.histogram("a") is reg.histogram("b")

    def test_updates_are_noops(self):
        reg = NullRegistry()
        reg.counter("c").inc(100)
        reg.gauge("g").set(100)
        reg.histogram("h").observe(100)
        assert reg.counter("c").value == 0
        assert reg.gauge("g").value == 0
        assert reg.histogram("h").count == 0

    def test_snapshot_empty_and_value_default(self):
        reg = NullRegistry()
        reg.counter("c").inc()
        assert reg.snapshot() == {}
        assert reg.value("c", default=7) == 7
