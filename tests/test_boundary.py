"""The boundary partition in devtools/boundary.py matches the real tree.

These tests pin the *declared* partition (simulation / harness / shared,
plus PARALLEL_SCOPE and the deep-mode entry points) against the package
tree on disk: renaming a package, adding a new top-level module without
classifying it, or pointing an entry point at a function that no longer
exists must fail the suite — not silently widen or narrow what the lint
rules police.
"""

from __future__ import annotations

from pathlib import Path

from repro.devtools.boundary import (
    CLI_ENTRY_POINTS,
    HARNESS_PACKAGES,
    HASHED_CONFIG_MODULES,
    PARALLEL_SCOPE,
    SHARED_MODULES,
    SIMULATION_ENTRY_POINTS,
    SIMULATION_PACKAGES,
    WORKER_ENTRY_POINTS,
)

REPO = Path(__file__).resolve().parent.parent
PKG = REPO / "src" / "repro"

CLASSIFICATION_SETS = {
    "SIMULATION_PACKAGES": SIMULATION_PACKAGES,
    "HARNESS_PACKAGES": HARNESS_PACKAGES,
    "SHARED_MODULES": SHARED_MODULES,
}


def _module_path(dotted: str) -> Path:
    """On-disk location of a dotted name (package dir or module file)."""
    rel = Path(*dotted.split(".")[1:]) if "." in dotted else Path()
    return PKG / rel


def _on_disk(dotted: str) -> bool:
    base = _module_path(dotted)
    return base.is_dir() or base.with_suffix(".py").is_file()


def _top_level_children() -> set:
    """Dotted names of everything directly under src/repro."""
    children = {"repro"}  # the package itself (__init__.py)
    for entry in PKG.iterdir():
        if entry.name in {"__pycache__", "py.typed", "__init__.py"}:
            continue
        if entry.is_dir() or entry.suffix == ".py":
            children.add("repro." + entry.stem)
    return children


class TestPartition:
    def test_classification_sets_are_disjoint(self):
        names = list(CLASSIFICATION_SETS)
        for i, a in enumerate(names):
            for b in names[i + 1 :]:
                overlap = CLASSIFICATION_SETS[a] & CLASSIFICATION_SETS[b]
                assert not overlap, f"{a} and {b} both claim {overlap}"

    def test_every_real_module_is_classified_exactly_once(self):
        # The load-bearing direction: a renamed or brand-new package that
        # nobody classified must fail here, because the per-file rules
        # would otherwise silently skip it.
        for child in sorted(_top_level_children()):
            claims = [
                name
                for name, members in CLASSIFICATION_SETS.items()
                if child in members
            ]
            assert len(claims) == 1, (
                f"{child} is classified by {claims or 'no set'}; every "
                "top-level module must appear in exactly one of "
                "SIMULATION_PACKAGES / HARNESS_PACKAGES / SHARED_MODULES "
                "(see devtools/boundary.py)"
            )

    def test_no_classification_entry_is_stale(self):
        # The other direction: the sets must not keep names for code that
        # no longer exists (a rename leaves the old name dangling).
        for name, members in CLASSIFICATION_SETS.items():
            for dotted in members:
                assert _on_disk(dotted), f"{name} lists missing {dotted}"

    def test_parallel_scope_members_exist(self):
        for dotted in PARALLEL_SCOPE:
            assert _on_disk(dotted), f"PARALLEL_SCOPE lists missing {dotted}"

    def test_parallel_scope_covers_simulation_and_shared(self):
        # Workers import the whole simulation plus the shared leaf modules;
        # the deep pass (REPRO604) checks this against the real closure.
        assert PARALLEL_SCOPE >= SIMULATION_PACKAGES
        assert PARALLEL_SCOPE >= SHARED_MODULES - {"repro"}

    def test_hashed_config_modules_exist(self):
        for dotted in HASHED_CONFIG_MODULES:
            assert _on_disk(dotted), f"HASHED_CONFIG_MODULES: {dotted}"


class TestEntryPoints:
    """The deep-mode closure roots point at functions that really exist."""

    @staticmethod
    def _assert_defines(qualified: str) -> None:
        module, func = qualified.rsplit(".", 1)
        path = _module_path(module).with_suffix(".py")
        assert path.is_file(), f"{qualified}: no module file {path}"
        assert f"def {func}(" in path.read_text(encoding="utf-8"), (
            f"{qualified}: {path.name} does not define {func}() — the deep "
            "closures would be empty and REPRO5xx/6xx would check nothing"
        )

    def test_worker_entry_points_exist(self):
        for qual in WORKER_ENTRY_POINTS:
            self._assert_defines(qual)

    def test_simulation_entry_points_exist(self):
        for qual in SIMULATION_ENTRY_POINTS:
            self._assert_defines(qual)

    def test_cli_entry_points_exist(self):
        for qual in CLI_ENTRY_POINTS:
            self._assert_defines(qual)
