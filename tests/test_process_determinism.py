"""Property-based determinism guarantees for the disk cache's soundness.

The persistent result cache assumes a ``SimulationResult`` is a pure
function of ``(RunSpec, SimConfig)``.  Hidden global state (an unseeded
RNG, import-order-dependent dict, leaked module-level counter) would break
that silently: cached results would differ from fresh ones.  These
properties assert that the *serialized bytes* of a result — exactly what
the cache stores — are identical when the same spec runs twice, both
within one process and across fresh spawned interpreters.
"""

import multiprocessing

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import SimConfig, SMConfig
from repro.harness.cache import serialize_result
from repro.harness.experiment import RunSpec, run_one

FAST = SimConfig(sm=SMConfig(num_sms=4))

APPS = ("STN", "NW", "HIS", "B+T")
SETUPS = ("baseline", "cppe", "random", "stop-on-full")

spec_strategy = st.builds(
    RunSpec,
    app=st.sampled_from(APPS),
    setup=st.sampled_from(SETUPS),
    oversubscription=st.sampled_from((0.75, 0.5)),
    scale=st.just(0.25),
    seed=st.sampled_from((None, 0, 7)),
    crash_budget_factor=st.sampled_from((None, 0.25)),
)


def _simulate_bytes(spec: RunSpec) -> bytes:
    """Top-level so a spawned interpreter can import and run it."""
    return serialize_result(run_one(spec, config=FAST, use_cache=False))


@given(spec=spec_strategy)
@settings(max_examples=12, deadline=None)
def test_same_spec_serializes_identically_in_process(spec):
    assert _simulate_bytes(spec) == _simulate_bytes(spec)


@given(spec=spec_strategy)
@settings(
    max_examples=3,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_same_spec_serializes_identically_in_fresh_processes(spec):
    """Run the spec in two freshly *spawned* interpreters (no inherited
    state at all) and require byte-identical serialized results."""
    ctx = multiprocessing.get_context("spawn")
    with ctx.Pool(processes=1, maxtasksperchild=1) as pool:
        first, second = pool.map(_simulate_bytes, [spec, spec])
    assert first == second


def test_fresh_process_matches_parent_process():
    """A worker's result must also match the parent's own simulation —
    the exact situation the parallel runner + disk cache create."""
    spec = RunSpec("STN", "cppe", 0.5, scale=0.25)
    ctx = multiprocessing.get_context("spawn")
    with ctx.Pool(processes=1, maxtasksperchild=1) as pool:
        (child,) = pool.map(_simulate_bytes, [spec])
    assert child == _simulate_bytes(spec)
