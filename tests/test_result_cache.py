"""Persistent result cache correctness (repro.harness.cache).

Covers hit/miss accounting, key sensitivity to every RunSpec and SimConfig
field, corruption tolerance (corrupted or truncated entries are misses, not
crashes), schema-version invalidation, and the run_one / clear_cache
integration that the test-isolation fixture relies on.
"""

import dataclasses
import pickle
import shutil

import pytest

from repro.config import (
    MHPEConfig,
    SimConfig,
    SMConfig,
    TranslationConfig,
    UVMConfig,
)
from repro.harness import cache as cache_mod
from repro.harness.cache import (
    CACHE_SCHEMA_VERSION,
    ResultCache,
    config_fingerprint,
    spec_fingerprint,
)
from repro.harness.experiment import (
    RunSpec,
    clear_cache,
    execution_count,
    run_one,
)

FAST = SimConfig(sm=SMConfig(num_sms=4))
SPEC = RunSpec("STN", "baseline", 0.5, scale=0.25)


@pytest.fixture
def cache(tmp_path) -> ResultCache:
    return ResultCache(tmp_path / "cache")


@pytest.fixture
def result():
    return run_one(SPEC, config=FAST, use_cache=False)


class TestAccounting:
    def test_miss_then_hit(self, cache, result):
        assert cache.get(SPEC, FAST) is None
        assert (cache.hits, cache.misses) == (0, 1)
        cache.put(SPEC, FAST, result)
        assert cache.stores == 1
        loaded = cache.get(SPEC, FAST)
        assert loaded is not None
        assert (cache.hits, cache.misses) == (1, 1)
        assert dataclasses.asdict(loaded) == dataclasses.asdict(result)

    def test_stats_snapshot(self, cache, result):
        cache.put(SPEC, FAST, result)
        stats = cache.stats()
        assert stats["entries"] == 1
        assert stats["bytes"] > 0
        assert stats["schema_version"] == CACHE_SCHEMA_VERSION

    def test_clear_removes_entries(self, cache, result):
        cache.put(SPEC, FAST, result)
        cache.put(dataclasses.replace(SPEC, app="NW"), FAST, result)
        assert cache.clear() == 2
        assert cache.stats()["entries"] == 0
        assert cache.get(SPEC, FAST) is None

    def test_clear_on_missing_root_is_noop(self, tmp_path):
        assert ResultCache(tmp_path / "never-created").clear() == 0


class TestKeySensitivity:
    @pytest.mark.parametrize(
        "change",
        [
            {"app": "NW"},
            {"setup": "cppe"},
            {"oversubscription": 0.75},
            {"oversubscription": None},
            {"scale": 0.5},
            {"seed": 1},
            {"crash_budget_factor": 2.0},
        ],
    )
    def test_any_runspec_field_changes_the_key(self, change):
        base = spec_fingerprint(SPEC, FAST)
        assert spec_fingerprint(dataclasses.replace(SPEC, **change), FAST) != base

    @pytest.mark.parametrize(
        "config",
        [
            SimConfig(sm=SMConfig(num_sms=8)),
            SimConfig(sm=SMConfig(num_sms=4), seed=1),
            SimConfig(sm=SMConfig(num_sms=4), uvm=UVMConfig(write_fraction=0.5)),
            SimConfig(sm=SMConfig(num_sms=4), mhpe=MHPEConfig(t1=16)),
            SimConfig(
                sm=SMConfig(num_sms=4),
                translation=TranslationConfig(enabled=False),
            ),
        ],
    )
    def test_any_simconfig_field_changes_the_key(self, config):
        assert spec_fingerprint(SPEC, config) != spec_fingerprint(SPEC, FAST)

    def test_none_config_equals_explicit_default(self):
        assert spec_fingerprint(SPEC, None) == spec_fingerprint(SPEC, SimConfig())
        assert config_fingerprint(None) == config_fingerprint(SimConfig())

    def test_schema_version_changes_the_key(self):
        assert spec_fingerprint(SPEC, FAST, schema_version=2) != spec_fingerprint(
            SPEC, FAST, schema_version=1
        )


class TestCorruptionTolerance:
    def _entry_path(self, cache, result):
        cache.put(SPEC, FAST, result)
        return cache.path_for(cache.key_for(SPEC, FAST))

    def test_corrupted_entry_is_a_miss_and_removed(self, cache, result):
        path = self._entry_path(cache, result)
        path.write_bytes(b"\x80not a pickle at all")
        assert cache.get(SPEC, FAST) is None
        assert cache.misses == 1
        assert not path.exists()

    def test_truncated_entry_is_a_miss(self, cache, result):
        path = self._entry_path(cache, result)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])
        assert cache.get(SPEC, FAST) is None
        assert cache.misses == 1

    def test_empty_entry_is_a_miss(self, cache, result):
        path = self._entry_path(cache, result)
        path.write_bytes(b"")
        assert cache.get(SPEC, FAST) is None

    def test_wrong_payload_type_is_a_miss(self, cache, result):
        path = self._entry_path(cache, result)
        path.write_bytes(pickle.dumps(["not", "a", "payload"]))
        assert cache.get(SPEC, FAST) is None

    def test_entry_under_wrong_key_is_a_miss(self, cache, result):
        """A valid payload stored under a different key (e.g. a stale hash
        function) must fail the embedded-key check."""
        path = self._entry_path(cache, result)
        other = dataclasses.replace(SPEC, app="NW")
        other_path = cache.path_for(cache.key_for(other, FAST))
        other_path.parent.mkdir(parents=True, exist_ok=True)
        shutil.copy(path, other_path)
        assert cache.get(other, FAST) is None


class TestSchemaInvalidation:
    def test_bump_invalidates_old_entries(self, tmp_path, result):
        root = tmp_path / "cache"
        v1 = ResultCache(root, schema_version=1)
        v1.put(SPEC, FAST, result)
        v2 = ResultCache(root, schema_version=2)
        assert v2.get(SPEC, FAST) is None  # old entry unreachable
        v2.put(SPEC, FAST, result)
        assert v2.get(SPEC, FAST) is not None
        assert v1.get(SPEC, FAST) is not None  # both versions coexist on disk

    def test_stats_scoped_to_own_schema(self, tmp_path, result):
        # Regression: stats() used to glob every entry under the root, so a
        # schema bump silently inflated entries/bytes with unreachable data.
        root = tmp_path / "cache"
        v1 = ResultCache(root, schema_version=1)
        v1.put(SPEC, FAST, result)
        v1.put(dataclasses.replace(SPEC, app="NW"), FAST, result)
        v2 = ResultCache(root, schema_version=2)
        v2.put(SPEC, FAST, result)
        stats = v2.stats()
        assert stats["entries"] == 1
        assert stats["stale_entries"] == 2
        assert stats["stale_bytes"] > 0
        v1_stats = v1.stats()
        assert v1_stats["entries"] == 2
        assert v1_stats["stale_entries"] == 1

    def test_unreadable_entry_counts_as_stale(self, tmp_path, result):
        root = tmp_path / "cache"
        cache = ResultCache(root, schema_version=1)
        cache.put(SPEC, FAST, result)
        junk = next(iter(root.rglob("*.pkl"))).with_name("junk.pkl")
        junk.write_bytes(b"not a pickle")
        stats = cache.stats()
        assert stats["entries"] == 1
        assert stats["stale_entries"] == 1

    def test_clear_spares_other_schema_generations(self, tmp_path, result):
        # Regression: clear() used to delete every generation, so clearing
        # after a bump destroyed entries a rolled-back checkout still needs.
        root = tmp_path / "cache"
        v1 = ResultCache(root, schema_version=1)
        v1.put(SPEC, FAST, result)
        v2 = ResultCache(root, schema_version=2)
        v2.put(SPEC, FAST, result)
        assert v2.clear() == 1
        assert v2.get(SPEC, FAST) is None
        assert v1.get(SPEC, FAST) is not None  # v1 generation untouched
        assert v1.clear() == 1


class TestRunOneIntegration:
    def test_disk_hit_after_memo_cleared(self):
        active = cache_mod.get_active_cache()  # per-test tmp dir (conftest)
        before = execution_count()
        first = run_one(SPEC, config=FAST)
        assert execution_count() == before + 1
        assert active.stores == 1

        clear_cache(disk=False)  # fresh-process simulation: memo gone
        second = run_one(SPEC, config=FAST)
        assert execution_count() == before + 1  # served from disk
        assert active.hits == 1
        assert dataclasses.asdict(first) == dataclasses.asdict(second)

    def test_memo_hit_does_not_touch_disk(self):
        active = cache_mod.get_active_cache()
        run_one(SPEC, config=FAST)
        lookups = active.hits + active.misses
        run_one(SPEC, config=FAST)
        assert active.hits + active.misses == lookups

    def test_use_cache_false_bypasses_both_layers(self):
        active = cache_mod.get_active_cache()
        before = execution_count()
        a = run_one(SPEC, config=FAST, use_cache=False)
        b = run_one(SPEC, config=FAST, use_cache=False)
        assert a is not b
        assert execution_count() == before + 2
        assert active.stores == 0 and active.hits == 0 and active.misses == 0

    def test_cache_none_skips_disk_but_memoises(self):
        active = cache_mod.get_active_cache()
        a = run_one(SPEC, config=FAST, cache=None)
        b = run_one(SPEC, config=FAST, cache=None)
        assert a is b
        assert active.stores == 0

    def test_clear_cache_empties_disk_too(self):
        active = cache_mod.get_active_cache()
        run_one(SPEC, config=FAST)
        assert active.stats()["entries"] == 1
        clear_cache()  # disk=True by default
        assert active.stats()["entries"] == 0
        before = execution_count()
        run_one(SPEC, config=FAST)
        assert execution_count() == before + 1  # really re-simulated

    def test_equivalent_configs_share_one_entry(self):
        active = cache_mod.get_active_cache()
        run_one(SPEC)  # config=None -> defaults
        clear_cache(disk=False)
        before = execution_count()
        run_one(SPEC, config=SimConfig())  # explicit defaults, same content
        assert execution_count() == before
        assert active.hits == 1
