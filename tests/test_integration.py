"""Cross-module integration: full simulations exercising every subsystem."""

import numpy as np
import pytest

from repro import SimConfig, Simulator, make_workload
from repro.config import SMConfig, TranslationConfig, UVMConfig
from repro.core.cppe import CPPE
from repro.harness.baselines import SETUPS, build_setup
from repro.policies.hpe import HPEPolicy
from repro.policies.lru import LRUPolicy
from repro.prefetch.disabled import DisabledPrefetcher
from repro.prefetch.locality import LocalityPrefetcher
from repro.prefetch.tree_neighborhood import TreeNeighborhoodPrefetcher

from conftest import make_simple_workload

FAST = SimConfig(sm=SMConfig(num_sms=4))


class TestEverySetupRuns:
    @pytest.mark.parametrize("setup", sorted(SETUPS))
    def test_setup_completes_under_oversubscription(self, setup):
        wl = make_workload("STN", scale=0.5)
        policy, prefetcher = build_setup(setup)
        result = Simulator(
            wl, policy=policy, prefetcher=prefetcher,
            oversubscription=0.5, config=FAST,
        ).run()
        assert result.total_cycles > 0
        assert result.stats.accesses == wl.num_accesses
        assert not result.crashed


class TestPrefetchAmortisation:
    def test_locality_prefetch_reduces_service_ops(self):
        wl = make_simple_workload(
            footprint=256, accesses=np.arange(256), pattern_type="I"
        )
        demand = Simulator(
            wl, prefetcher=DisabledPrefetcher(), oversubscription=None, config=FAST
        ).run()
        wl2 = make_simple_workload(
            footprint=256, accesses=np.arange(256), pattern_type="I"
        )
        prefetch = Simulator(
            wl2, prefetcher=LocalityPrefetcher("continue"),
            oversubscription=None, config=FAST,
        ).run()
        # 16 pages per service op instead of (at best) a few merged faults.
        assert prefetch.stats.fault_service_ops < demand.stats.fault_service_ops
        assert prefetch.total_cycles < demand.total_cycles

    def test_tree_prefetcher_migrates_at_least_chunk_granularity(self):
        wl = make_simple_workload(
            footprint=512, accesses=np.arange(512), pattern_type="I"
        )
        result = Simulator(
            wl, prefetcher=TreeNeighborhoodPrefetcher(),
            oversubscription=None, config=FAST,
        ).run()
        assert result.stats.fault_service_ops <= 512 // 16


class TestThrashingDynamics:
    def test_lru_thrashes_on_cyclic_sweeps(self):
        wl = make_simple_workload()  # 3 cyclic sweeps of 256 pages
        result = Simulator(
            wl, policy=LRUPolicy(), oversubscription=0.5, config=FAST
        ).run()
        # Under LRU at 50%, (nearly) every sweep access re-faults.
        assert result.stats.chunks_evicted > wl.footprint_chunks

    def test_cppe_beats_baseline_on_thrashing(self):
        wl = make_workload("STN", scale=0.5)
        base = Simulator(
            wl, policy=LRUPolicy(), prefetcher=LocalityPrefetcher("continue"),
            oversubscription=0.5, config=FAST,
        ).run()
        pair = CPPE.create()
        cppe = Simulator(
            make_workload("STN", scale=0.5),
            policy=pair.policy, prefetcher=pair.prefetcher,
            oversubscription=0.5, config=FAST,
        ).run()
        assert cppe.speedup_over(base) > 1.0

    def test_hpe_counter_pollution_under_prefetch(self):
        # With prefetching, every chunk's counter saturates at migration, so
        # HPE classifies even an irregular app as 'regular' (Inefficiency 1).
        wl = make_workload("B+T", scale=0.5)
        policy = HPEPolicy()
        Simulator(
            wl, policy=policy, prefetcher=LocalityPrefetcher("continue"),
            oversubscription=0.5, config=FAST,
        ).run()
        assert policy._category == "regular"


class TestOversubscriptionScaling:
    def test_more_memory_is_never_slower(self):
        results = {}
        for rate in (None, 0.75, 0.5):
            wl = make_workload("HSD", scale=0.5)
            results[rate] = Simulator(
                wl, oversubscription=rate, config=FAST
            ).run().total_cycles
        assert results[None] <= results[0.75] <= results[0.5]

    def test_unlimited_memory_has_no_evictions_for_all_types(self):
        for app in ("HOT", "NW", "STN", "B+T"):
            wl = make_workload(app, scale=0.25)
            result = Simulator(wl, oversubscription=None, config=FAST).run()
            assert result.stats.chunks_evicted == 0, app


class TestFaultParallelismAblation:
    def test_parallel_fault_servicing_helps(self):
        # Block distribution puts each SM in its own region, so distinct
        # chunks are in flight concurrently and extra service contexts help.
        # (Interleaved SMs all fault on the same chunk and merge, so there
        # parallelism is moot — see TestFaultMerging in test_gmmu.)
        def run(par):
            cfg = SimConfig(
                sm=SMConfig(num_sms=4), uvm=UVMConfig(fault_parallelism=par)
            )
            wl = make_simple_workload(
                footprint=1024,
                accesses=np.arange(1024),
                distribution="block",
                pattern_type="I",
            )
            return Simulator(wl, oversubscription=None, config=cfg).run()

        serial = run(1)
        parallel = run(4)
        assert parallel.total_cycles < serial.total_cycles
