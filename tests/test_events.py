"""Event queue (repro.engine.events)."""

import pytest

from repro.engine.events import Event, EventQueue
from repro.errors import SimulationError


class TestScheduling:
    def test_events_fire_in_time_order(self):
        q = EventQueue()
        fired = []
        q.schedule(30, lambda t: fired.append(("c", t)))
        q.schedule(10, lambda t: fired.append(("a", t)))
        q.schedule(20, lambda t: fired.append(("b", t)))
        q.run()
        assert fired == [("a", 10), ("b", 20), ("c", 30)]

    def test_ties_break_by_schedule_order(self):
        q = EventQueue()
        fired = []
        q.schedule(5, lambda t: fired.append("first"))
        q.schedule(5, lambda t: fired.append("second"))
        q.run()
        assert fired == ["first", "second"]

    def test_now_advances_with_pops(self):
        q = EventQueue()
        q.schedule(42, lambda t: None)
        assert q.now == 0
        q.run()
        assert q.now == 42

    def test_schedule_after(self):
        q = EventQueue()
        fired = []
        q.schedule(10, lambda t: q.schedule_after(5, lambda t2: fired.append(t2)))
        q.run()
        assert fired == [15]

    def test_cannot_schedule_in_past(self):
        q = EventQueue()
        q.schedule(10, lambda t: None)
        q.run()
        with pytest.raises(SimulationError):
            q.schedule(5, lambda t: None)

    def test_negative_delay_rejected(self):
        q = EventQueue()
        with pytest.raises(SimulationError):
            q.schedule_after(-1, lambda t: None)


class TestCancellation:
    def test_cancelled_event_skipped(self):
        q = EventQueue()
        fired = []
        ev = q.schedule(10, lambda t: fired.append("cancelled"))
        q.schedule(20, lambda t: fired.append("kept"))
        ev.cancel()
        q.run()
        assert fired == ["kept"]

    def test_len_excludes_cancelled(self):
        q = EventQueue()
        ev = q.schedule(10, lambda t: None)
        q.schedule(20, lambda t: None)
        assert len(q) == 2
        ev.cancel()
        assert len(q) == 1


class TestRun:
    def test_run_returns_dispatch_count(self):
        q = EventQueue()
        for i in range(7):
            q.schedule(i, lambda t: None)
        assert q.run() == 7

    def test_events_scheduled_during_run_are_dispatched(self):
        q = EventQueue()
        fired = []

        def chain(t):
            fired.append(t)
            if t < 5:
                q.schedule(t + 1, chain)

        q.schedule(0, chain)
        q.run()
        assert fired == [0, 1, 2, 3, 4, 5]

    def test_max_events_guard(self):
        q = EventQueue()

        def forever(t):
            q.schedule(t + 1, forever)

        q.schedule(0, forever)
        with pytest.raises(SimulationError):
            q.run(max_events=100)

    def test_empty_queue_returns_zero(self):
        assert EventQueue().run() == 0

    def test_pop_returns_none_when_empty(self):
        assert EventQueue().pop() is None
