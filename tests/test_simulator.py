"""Top-level simulator (repro.engine.simulator)."""

import numpy as np
import pytest

from repro.config import SimConfig, SMConfig, TranslationConfig, UVMConfig
from repro.engine.simulator import SimulationResult, Simulator
from repro.errors import SimulationError
from repro.policies.lru import LRUPolicy
from repro.policies.mhpe import MHPEPolicy
from repro.prefetch.disabled import DisabledPrefetcher
from repro.prefetch.locality import LocalityPrefetcher

from conftest import make_simple_workload


class TestRunLifecycle:
    def test_unlimited_memory_never_evicts(self, fast_config, cyclic_workload):
        result = Simulator(
            cyclic_workload, oversubscription=None, config=fast_config
        ).run()
        assert result.stats.chunks_evicted == 0
        assert result.total_cycles > 0
        assert not result.crashed

    def test_oversubscription_evicts(self, fast_config, cyclic_workload):
        result = Simulator(
            cyclic_workload, oversubscription=0.5, config=fast_config
        ).run()
        assert result.stats.chunks_evicted > 0
        assert result.capacity_pages == 128

    def test_all_accesses_executed(self, fast_config, cyclic_workload):
        result = Simulator(
            cyclic_workload, oversubscription=0.5, config=fast_config
        ).run()
        assert result.stats.accesses == cyclic_workload.num_accesses

    def test_every_sm_finishes(self, fast_config, cyclic_workload):
        sim = Simulator(cyclic_workload, oversubscription=0.5, config=fast_config)
        sim.run()
        assert all(sm.done for sm in sim.sms)

    def test_defaults_are_baseline(self, fast_config, cyclic_workload):
        result = Simulator(cyclic_workload, config=fast_config).run()
        assert result.policy == "lru"
        assert result.prefetcher == "locality/continue"

    def test_explicit_capacity_overrides_rate(self, fast_config, cyclic_workload):
        result = Simulator(
            cyclic_workload,
            oversubscription=0.5,
            capacity_pages=96,
            config=fast_config,
        ).run()
        assert result.capacity_pages == 96


class TestDeterminism:
    def test_identical_runs_are_bit_identical(self, fast_config):
        def run():
            wl = make_simple_workload()
            return Simulator(
                wl,
                policy=MHPEPolicy(),
                prefetcher=LocalityPrefetcher("continue"),
                oversubscription=0.5,
                config=fast_config,
            ).run()

        a, b = run(), run()
        assert a.total_cycles == b.total_cycles
        assert a.stats.far_faults == b.stats.far_faults
        assert a.stats.chunks_evicted == b.stats.chunks_evicted
        assert [r.untouch_total for r in a.stats.intervals] == [
            r.untouch_total for r in b.stats.intervals
        ]


class TestMemoryAccounting:
    def test_residency_never_exceeds_capacity(self, fast_config, cyclic_workload):
        sim = Simulator(cyclic_workload, oversubscription=0.5, config=fast_config)
        sim.run()
        assert sim.gmmu.device.peak_allocated <= sim.capacity
        assert sim.gmmu.page_table.resident_peak <= sim.capacity

    def test_migrated_equals_demand_plus_prefetch(self, fast_config, cyclic_workload):
        result = Simulator(
            cyclic_workload, oversubscription=0.5, config=fast_config
        ).run()
        s = result.stats
        assert s.pages_migrated == s.demand_pages + s.prefetched_pages

    def test_bytes_match_pages(self, fast_config, cyclic_workload):
        result = Simulator(
            cyclic_workload, oversubscription=0.5, config=fast_config
        ).run()
        s = result.stats
        assert s.bytes_host_to_device == s.pages_migrated * 4096


class TestSpeedupAPI:
    def test_speedup_over(self, fast_config, cyclic_workload):
        fast = Simulator(cyclic_workload, oversubscription=None, config=fast_config).run()
        slow = Simulator(
            cyclic_workload,
            prefetcher=DisabledPrefetcher(),
            oversubscription=0.5,
            config=fast_config,
        ).run()
        assert fast.speedup_over(slow) > 1.0
        assert slow.speedup_over(fast) < 1.0

    def test_speedup_with_crashed_run_rejected(self):
        a = SimulationResult("x", "I", "lru", "none", 0.5, 10, 10)
        b = SimulationResult("x", "I", "lru", "none", 0.5, 10, 10, crashed=True)
        a.stats.total_cycles = 10
        with pytest.raises(SimulationError):
            a.speedup_over(b)

    def test_speedup_with_crashed_baseline_rejected(self):
        # Fig. 10's 'X' entries: a crashed baseline has no defined runtime,
        # so the comparison must refuse in *both* directions.
        crashed = SimulationResult(
            "x", "I", "lru", "none", 0.5, 10, 10, crashed=True
        )
        ok = SimulationResult("x", "I", "lru", "none", 0.5, 10, 10)
        ok.stats.total_cycles = 10
        with pytest.raises(SimulationError):
            crashed.speedup_over(ok)

    def test_speedup_with_zero_cycle_run_rejected(self):
        ran = SimulationResult("x", "I", "lru", "none", 0.5, 10, 10)
        ran.stats.total_cycles = 10
        unexecuted = SimulationResult("x", "I", "lru", "none", 0.5, 10, 10)
        with pytest.raises(SimulationError):
            unexecuted.speedup_over(ran)

    def test_speedup_with_zero_cycle_baseline_rejected(self):
        # A 0-cycle baseline would silently report speedup 0.0 — refuse it
        # the same way as a 0-cycle candidate.
        ran = SimulationResult("x", "I", "lru", "none", 0.5, 10, 10)
        ran.stats.total_cycles = 10
        unexecuted = SimulationResult("x", "I", "lru", "none", 0.5, 10, 10)
        with pytest.raises(SimulationError):
            ran.speedup_over(unexecuted)

    def test_label(self, fast_config, cyclic_workload):
        result = Simulator(cyclic_workload, oversubscription=0.5, config=fast_config).run()
        assert "unit@50%" in result.label()


class TestTranslationIntegration:
    def test_tlb_stats_populated(self, fast_config, cyclic_workload):
        result = Simulator(
            cyclic_workload, oversubscription=None, config=fast_config
        ).run()
        s = result.stats
        assert s.l1_tlb_hits + s.l1_tlb_misses == s.accesses
        assert s.page_walks > 0

    def test_disabled_translation_is_faster_wallclock_equivalent(
        self, no_translation_config, cyclic_workload
    ):
        result = Simulator(
            cyclic_workload, oversubscription=None, config=no_translation_config
        ).run()
        assert result.stats.l1_tlb_hits == 0
        assert result.stats.page_walks == 0
        assert result.total_cycles > 0

    def test_shootdowns_on_eviction(self, fast_config, cyclic_workload):
        result = Simulator(
            cyclic_workload, oversubscription=0.5, config=fast_config
        ).run()
        assert result.stats.tlb_shootdowns > 0
