"""Page walk cache + threaded walker (repro.translation)."""

import pytest

from repro.config import PageWalkCacheConfig, WalkerConfig
from repro.memsim.page_table import PageTable
from repro.translation.page_walk_cache import PageWalkCache
from repro.translation.walker import PageTableWalker


def make_walker(concurrent=2, levels=4, mem_latency=100):
    pt = PageTable(levels=levels)
    pwc = PageWalkCache(PageWalkCacheConfig())
    walker = PageTableWalker(
        WalkerConfig(
            concurrent_walks=concurrent, levels=levels,
            memory_access_latency=mem_latency,
        ),
        pt,
        pwc,
    )
    return pt, pwc, walker


class TestPageWalkCache:
    def test_miss_then_hit(self):
        pwc = PageWalkCache(PageWalkCacheConfig())
        key = (0, 42)
        assert not pwc.lookup(key)
        pwc.insert(key)
        assert pwc.lookup(key)

    def test_flush(self):
        pwc = PageWalkCache(PageWalkCacheConfig())
        pwc.insert((1, 1))
        pwc.flush()
        assert pwc.occupancy() == 0

    def test_replacement_bounded_by_associativity(self):
        cfg = PageWalkCacheConfig(size_bytes=64, associativity=4, entry_bytes=8)
        pwc = PageWalkCache(cfg)
        for i in range(100):
            pwc.insert((0, i))
        assert pwc.occupancy() <= cfg.entries


class TestWalkLatency:
    def test_cold_walk_fetches_all_levels(self):
        pt, pwc, walker = make_walker()
        latency, resident = walker.walk(100, time=0)
        # PWC probe + 4 memory accesses.
        assert latency == pwc.latency + 4 * 100
        assert not resident  # nothing mapped

    def test_warm_walk_skips_cached_levels(self):
        pt, pwc, walker = make_walker()
        walker.walk(100, time=0)
        # Second walk to a nearby vpn shares all interior nodes: only the
        # leaf level must be fetched.
        latency, _ = walker.walk(101, time=1000)
        assert latency == pwc.latency + 1 * 100

    def test_resident_detection(self):
        pt, pwc, walker = make_walker()
        pt.map(100, 0)
        _, resident = walker.walk(100, time=0)
        assert resident

    def test_walk_counter(self):
        pt, pwc, walker = make_walker()
        walker.walk(1, 0)
        walker.walk(2, 0)
        assert walker.walks == 2


class TestWalkerConcurrency:
    def test_queueing_delay_when_saturated(self):
        pt, pwc, walker = make_walker(concurrent=1)
        first, _ = walker.walk(0, time=0)
        # Second walk at the same instant must wait for the first to retire.
        second, _ = walker.walk(1 << 20, time=0)
        assert second > first

    def test_no_delay_after_walks_retire(self):
        pt, pwc, walker = make_walker(concurrent=1)
        lat1, _ = walker.walk(0, time=0)
        lat2, _ = walker.walk(1 << 20, time=lat1 + 1)
        assert walker.total_queue_delay == 0
        assert lat2 <= lat1

    def test_parallel_walks_within_limit(self):
        pt, pwc, walker = make_walker(concurrent=8)
        for i in range(8):
            walker.walk(i << 20, time=0)
        assert walker.total_queue_delay == 0
