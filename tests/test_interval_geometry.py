"""Interval geometry: one interval == 64 migrated pages == 4 chunk
prefetches (Section IV-B), and everything the policies derive from it."""

import numpy as np

from repro.config import SimConfig, SMConfig, TranslationConfig, UVMConfig
from repro.engine.simulator import Simulator
from repro.policies.mhpe import MHPEPolicy
from repro.prefetch.locality import LocalityPrefetcher

from conftest import make_simple_workload

FAST = SimConfig(sm=SMConfig(num_sms=4), translation=TranslationConfig(enabled=False))


def run_mhpe(workload, rate=0.5, config=FAST):
    sim = Simulator(
        workload,
        policy=MHPEPolicy(),
        prefetcher=LocalityPrefetcher("continue"),
        oversubscription=rate,
        config=config,
    )
    return sim, sim.run()


class TestIntervalAccounting:
    def test_intervals_match_pages_migrated(self):
        sim, result = run_mhpe(make_simple_workload())
        expected = result.stats.pages_migrated // 64
        assert len(result.stats.intervals) == expected

    def test_wrong_evictions_bounded_per_interval(self):
        # W ranges 0..4: at most four chunk prefetches per interval.
        sim, result = run_mhpe(make_simple_workload())
        for record in result.stats.intervals:
            assert 0 <= record.wrong_evictions <= 4 + 1  # +1: boundary slack

    def test_untouch_bounded_by_evictions(self):
        sim, result = run_mhpe(make_simple_workload())
        for record in result.stats.intervals:
            assert record.untouch_total <= 16 * max(record.chunks_evicted, 4)

    def test_interval_end_times_monotone(self):
        sim, result = run_mhpe(make_simple_workload())
        times = [r.end_time for r in result.stats.intervals]
        assert times == sorted(times)

    def test_custom_interval_length(self):
        cfg = SimConfig(
            sm=SMConfig(num_sms=4),
            uvm=UVMConfig(interval_pages=32),
            translation=TranslationConfig(enabled=False),
        )
        sim, result = run_mhpe(make_simple_workload(), config=cfg)
        expected = result.stats.pages_migrated // 32
        assert len(result.stats.intervals) == expected


class TestChainGeometry:
    def test_chain_length_tracks_capacity(self):
        sim, result = run_mhpe(make_simple_workload())
        # 128-page capacity = 8 chunks: the chain can never exceed that.
        assert result.stats.chain_length_peak <= 8

    def test_unlimited_memory_chain_equals_footprint(self):
        wl = make_simple_workload()
        sim = Simulator(
            wl, policy=MHPEPolicy(), prefetcher=LocalityPrefetcher("continue"),
            oversubscription=None, config=FAST,
        )
        result = sim.run()
        assert result.stats.chain_length_peak == wl.footprint_chunks
