"""Interval geometry: one interval == 64 migrated pages == 4 chunk
prefetches (Section IV-B), and everything the policies derive from it."""

import numpy as np

from repro.config import SimConfig, SMConfig, TranslationConfig, UVMConfig
from repro.engine.simulator import Simulator
from repro.policies.mhpe import MHPEPolicy
from repro.prefetch.locality import LocalityPrefetcher

from conftest import make_simple_workload

FAST = SimConfig(sm=SMConfig(num_sms=4), translation=TranslationConfig(enabled=False))


def run_mhpe(workload, rate=0.5, config=FAST):
    sim = Simulator(
        workload,
        policy=MHPEPolicy(),
        prefetcher=LocalityPrefetcher("continue"),
        oversubscription=rate,
        config=config,
    )
    return sim, sim.run()


class TestIntervalAccounting:
    def test_intervals_match_pages_migrated(self):
        sim, result = run_mhpe(make_simple_workload())
        expected = result.stats.pages_migrated // 64
        assert len(result.stats.intervals) == expected

    def test_wrong_evictions_bounded_per_interval(self):
        # W ranges 0..4: at most four chunk prefetches per interval.
        sim, result = run_mhpe(make_simple_workload())
        for record in result.stats.intervals:
            assert 0 <= record.wrong_evictions <= 4 + 1  # +1: boundary slack

    def test_untouch_bounded_by_evictions(self):
        sim, result = run_mhpe(make_simple_workload())
        for record in result.stats.intervals:
            assert record.untouch_total <= 16 * max(record.chunks_evicted, 4)

    def test_interval_end_times_monotone(self):
        sim, result = run_mhpe(make_simple_workload())
        times = [r.end_time for r in result.stats.intervals]
        assert times == sorted(times)

    def test_custom_interval_length(self):
        cfg = SimConfig(
            sm=SMConfig(num_sms=4),
            uvm=UVMConfig(interval_pages=32),
            translation=TranslationConfig(enabled=False),
        )
        sim, result = run_mhpe(make_simple_workload(), config=cfg)
        expected = result.stats.pages_migrated // 32
        assert len(result.stats.intervals) == expected


class TestChainGeometry:
    def test_chain_length_tracks_capacity(self):
        sim, result = run_mhpe(make_simple_workload())
        # 128-page capacity = 8 chunks: the chain can never exceed that.
        assert result.stats.chain_length_peak <= 8

    def test_unlimited_memory_chain_equals_footprint(self):
        wl = make_simple_workload()
        sim = Simulator(
            wl, policy=MHPEPolicy(), prefetcher=LocalityPrefetcher("continue"),
            oversubscription=None, config=FAST,
        )
        result = sim.run()
        assert result.stats.chain_length_peak == wl.footprint_chunks


class TestBoundaryStraddle:
    """A migration batch that straddles the 64-page interval boundary.

    ``IntervalClock.advance`` is credited with whole batches, so a single
    call can cross one interval boundary (or several at once); every
    boundary crossed must produce its own :class:`IntervalRecord`, and
    fault/eviction counters must reset exactly at each tick.
    """

    def make_clock(self):
        from repro.engine.stats import SimStats
        from repro.memsim.pcie import PCIeLink
        from repro.memsim.system import IntervalClock
        from repro.obs import DISABLED
        from repro.policies.base import EvictionPolicy

        stats = SimStats()
        clock = IntervalClock(
            UVMConfig(), stats, EvictionPolicy(), PCIeLink(), DISABLED
        )
        return clock, stats

    def test_batch_straddles_one_boundary(self):
        clock, stats = self.make_clock()
        clock.advance(40, time=100)
        assert clock.current_interval == 0 and not stats.intervals
        # 40 + 48 = 88: crosses 64, remainder 24 carries into interval 1.
        clock.advance(48, time=200)
        assert clock.current_interval == 1
        assert [r.index for r in stats.intervals] == [0]
        assert stats.intervals[0].end_time == 200
        # 24 carried + 40 = 64 exactly: second boundary.
        clock.advance(40, time=300)
        assert clock.current_interval == 2
        assert [r.index for r in stats.intervals] == [0, 1]
        assert clock.pages_migrated == 128

    def test_batch_straddles_multiple_boundaries(self):
        clock, stats = self.make_clock()
        # One giant batch spanning three whole intervals plus a remainder.
        clock.advance(3 * 64 + 10, time=500)
        assert clock.current_interval == 3
        assert [r.index for r in stats.intervals] == [0, 1, 2]
        assert all(r.end_time == 500 for r in stats.intervals)

    def test_counters_reset_at_each_tick(self):
        clock, stats = self.make_clock()
        for _ in range(3):
            clock.note_fault()
        clock.note_eviction()
        clock.advance(64, time=10)
        assert stats.intervals[0].faults == 3
        assert stats.intervals[0].chunks_evicted == 1
        # Post-tick activity belongs to the next interval only.
        clock.note_fault()
        clock.advance(64, time=20)
        assert stats.intervals[1].faults == 1
        assert stats.intervals[1].chunks_evicted == 0

    def test_exact_boundary_does_not_double_tick(self):
        clock, stats = self.make_clock()
        clock.advance(64, time=10)
        clock.advance(0, time=20)
        assert clock.current_interval == 1
        assert [r.index for r in stats.intervals] == [0]
