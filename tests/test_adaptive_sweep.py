"""Adaptive convergence-driven sweeps (repro.analysis.adaptive)."""

import json
import math

import numpy as np
import pytest

from repro.analysis.adaptive import (
    AdaptiveConfig,
    AdaptiveSweep,
    adaptive_sweep,
    fit_monotone_model,
    models_agree,
    propose_rates,
)
from repro.analysis.sweep import capacity_sweep, crash_rate, find_knee
from repro.engine.simulator import SimulationResult
from repro.engine.stats import SimStats
from repro.errors import HarnessError, ReproError
from repro.harness import cache as cache_mod
from repro.harness.experiment import BatchStats, clear_cache
from repro.harness.faults import ENV_FAULT_PLAN, FaultTolerance


# ---------------------------------------------------------------------------
# The response-surface model.
# ---------------------------------------------------------------------------


class TestMonotoneModel:
    def test_interpolates_knots_exactly(self):
        rates = (0.4, 0.6, 0.8, 1.0)
        slow = (6.0, 2.5, 1.4, 1.0)
        model = fit_monotone_model(rates, slow)
        for r, s in zip(rates, slow):
            assert model(r) == pytest.approx(s)

    def test_monotone_data_never_overshoots(self):
        # Slowdown decreasing in rate; PCHIP must stay decreasing between
        # knots (a plain cubic spline would ring around the cliff).
        rates = (0.4, 0.5, 0.6, 0.75, 0.9, 1.0)
        slow = (20.0, 8.0, 3.0, 1.6, 1.1, 1.0)
        model = fit_monotone_model(rates, slow)
        grid = np.linspace(0.4, 1.0, 601)
        vals = model.predict(grid)
        assert np.all(np.diff(vals) <= 1e-9)
        assert vals.min() >= 1.0 - 1e-9 and vals.max() <= 20.0 + 1e-9

    def test_two_points_is_linear(self):
        model = fit_monotone_model((0.5, 1.0), (3.0, 1.0))
        assert model(0.75) == pytest.approx(2.0)

    def test_clamps_outside_span(self):
        model = fit_monotone_model((0.5, 1.0), (3.0, 1.0))
        assert model(0.1) == pytest.approx(3.0)
        assert model(1.2) == pytest.approx(1.0)

    def test_knee_brackets_threshold(self):
        model = fit_monotone_model((0.4, 0.7, 1.0), (8.0, 2.0, 1.0))
        knee = model.knee(1.5)
        assert knee is not None and 0.7 < knee < 1.0
        assert model(knee) == pytest.approx(1.5, abs=1e-6)

    def test_knee_none_when_curve_below_threshold(self):
        model = fit_monotone_model((0.4, 1.0), (1.2, 1.0))
        assert model.knee(1.5) is None

    def test_single_point_rejected(self):
        with pytest.raises(ReproError):
            fit_monotone_model((1.0,), (1.0,))

    def test_duplicate_rates_rejected(self):
        with pytest.raises(ReproError):
            fit_monotone_model((1.0, 1.0), (1.0, 2.0))

    def test_models_agree_tolerance(self):
        a = fit_monotone_model((0.4, 1.0), (5.0, 1.0))
        b = fit_monotone_model((0.4, 1.0), (5.2, 1.0))
        assert models_agree(a, b, tolerance=0.1)
        assert not models_agree(a, b, tolerance=0.001)


# ---------------------------------------------------------------------------
# Proposals: pure, deterministic function of prior results.
# ---------------------------------------------------------------------------


class TestProposeRates:
    def test_crossing_interval_wins(self):
        # Threshold 1.5 is crossed between 0.7 and 1.0: that interval must
        # be sampled before the (wider, equally curved) tail.
        valid = [(0.4, 8.0), (0.7, 2.0), (1.0, 1.0)]
        got = propose_rates(valid, [r for r, _ in valid], 1, threshold=1.5)
        assert got == [0.85]

    def test_respects_min_gap(self):
        valid = [(0.96, 2.0), (1.0, 1.0)]
        assert propose_rates(valid, [0.96, 1.0], 1, min_gap=0.05) == []

    def test_deterministic(self):
        valid = [(0.4, 9.0), (0.6, 3.0), (0.8, 1.6), (1.0, 1.0)]
        sampled = [r for r, _ in valid]
        first = propose_rates(valid, sampled, 2)
        assert first == propose_rates(list(reversed(valid)), sampled, 2)

    def test_skips_already_sampled(self):
        valid = [(0.4, 8.0), (0.7, 2.0), (1.0, 1.0)]
        got = propose_rates(valid, [0.4, 0.7, 0.85, 1.0], 1, threshold=1.5)
        assert 0.85 not in got

    def test_degenerate_bisects_toward_broken_region(self):
        # Only the anchor survived; 0.6 crashed.  Bisect the gap.
        assert propose_rates([(1.0, 1.0)], [0.6, 1.0], 1) == [0.8]

    def test_degenerate_nothing_below(self):
        assert propose_rates([(1.0, 1.0)], [1.0], 1) == []
        assert propose_rates([], [1.0], 1) == []

    def test_count_zero(self):
        assert propose_rates([(0.4, 8.0), (1.0, 1.0)], [0.4, 1.0], 0) == []


# ---------------------------------------------------------------------------
# The driver, over synthetic closed-form curves (no simulator involved).
# ---------------------------------------------------------------------------

ANCHOR_CYCLES = 1_000_000


def synthetic_result(rate, slowdown, crashed=False) -> SimulationResult:
    stats = SimStats()
    stats.total_cycles = int(round(ANCHOR_CYCLES * slowdown))
    stats.far_faults = int(100 * slowdown)
    stats.chunks_evicted = int(10 * slowdown)
    return SimulationResult(
        workload="synthetic",
        pattern_type="IV",
        policy="lru",
        prefetcher="locality",
        oversubscription=None if rate >= 1.0 else rate,
        capacity_pages=1024,
        footprint_pages=1024,
        stats=stats,
        crashed=crashed,
        crash_reason="synthetic thrash" if crashed else "",
    )


def make_submit(curve, crash_below=None, calls=None):
    """A fake ``submit_batch``: resolves specs from a closed-form curve."""

    def submit(specs, **kwargs):
        if calls is not None:
            calls.append(tuple(
                1.0 if s.oversubscription is None else s.oversubscription
                for s in specs
            ))
        results = {}
        for spec in specs:
            rate = 1.0 if spec.oversubscription is None else spec.oversubscription
            crashed = crash_below is not None and rate < crash_below
            results[spec.key()] = synthetic_result(rate, curve(rate), crashed)
        return results, BatchStats(
            simulated=len(specs), memo_hits=0, cache_hits=0,
            failed=0, timed_out=0,
        )

    return submit


def quadratic_curve(rate):
    return 1.0 + 9.0 * (1.0 - rate) ** 2


class TestAdaptiveSweepSynthetic:
    def test_converges_on_smooth_curve(self):
        driver = AdaptiveSweep(
            "synthetic", submit=make_submit(quadratic_curve),
            adaptive=AdaptiveConfig(budget=12, tolerance=0.1),
        )
        sweep = driver.run()
        assert sweep.converged is True
        assert sweep.rounds >= 2
        assert sweep.simulations() <= 12
        # Points arrive sorted by descending rate, anchored at 1.0.
        rates = [p.rate for p in sweep.points]
        assert rates == sorted(rates, reverse=True)
        assert rates[0] == 1.0 and sweep.slowdown_at(1.0) == 1.0
        # The fitted model reproduces the generating curve to tolerance.
        for rate in (0.45, 0.6, 0.85, 0.95):
            assert driver.model(rate) == pytest.approx(
                quadratic_curve(rate), rel=0.15
            )

    def test_budget_exhaustion_reports_not_converged(self):
        driver = AdaptiveSweep(
            "synthetic", submit=make_submit(quadratic_curve),
            adaptive=AdaptiveConfig(budget=5, tolerance=0.0),
        )
        sweep = driver.run()
        assert sweep.converged is False
        assert sweep.simulations() == 5

    def test_budget_truncates_seed_but_keeps_anchor(self):
        driver = AdaptiveSweep(
            "synthetic", submit=make_submit(quadratic_curve),
            adaptive=AdaptiveConfig(budget=2, tolerance=0.0),
        )
        sweep = driver.run()
        assert sweep.simulations() == 2
        assert sweep.points[0].rate == 1.0

    def test_proposals_are_pure_function_of_results(self):
        calls_a, calls_b = [], []
        for calls in (calls_a, calls_b):
            AdaptiveSweep(
                "synthetic",
                submit=make_submit(quadratic_curve, calls=calls),
                adaptive=AdaptiveConfig(budget=10, tolerance=0.05),
            ).run()
        assert calls_a == calls_b

    def test_knee_neighbourhood_gets_sampled(self):
        # threshold 1.5 crossing of the quadratic sits at rate ~0.764.
        driver = AdaptiveSweep(
            "synthetic", submit=make_submit(quadratic_curve),
            adaptive=AdaptiveConfig(budget=10, tolerance=0.05),
        )
        sweep = driver.run()
        knee = driver.knee_estimate()
        assert knee == pytest.approx(1.0 - math.sqrt(0.5 / 9.0), abs=0.05)
        sampled = [p.rate for p in sweep.points]
        assert any(abs(r - knee) < 0.15 for r in sampled)

    def test_crash_region_excluded_from_model(self):
        driver = AdaptiveSweep(
            "synthetic",
            submit=make_submit(quadratic_curve, crash_below=0.55),
            adaptive=AdaptiveConfig(budget=10, tolerance=0.1),
        )
        sweep = driver.run()
        crashed = [p for p in sweep.points if p.crashed]
        assert crashed and all(math.isnan(p.slowdown) for p in crashed)
        assert crash_rate(sweep) == max(p.rate for p in crashed)
        assert min(driver.model.rates) >= 0.55
        # find_knee never reports a crashed point.
        knee = find_knee(sweep, threshold=1.5)
        assert knee is not None
        assert not [p for p in sweep.points if p.rate == knee][0].crashed

    def test_crashed_anchor_raises(self):
        driver = AdaptiveSweep(
            "synthetic",
            submit=make_submit(quadratic_curve, crash_below=2.0),
        )
        with pytest.raises(HarnessError, match="anchor run crashed"):
            driver.run()

    def test_config_validation(self):
        with pytest.raises(ReproError):
            AdaptiveConfig(budget=1)
        with pytest.raises(ReproError):
            AdaptiveConfig(round_size=0)
        with pytest.raises(ReproError):
            AdaptiveConfig(seed_rates=())
        with pytest.raises(ReproError):
            AdaptiveConfig(seed_rates=(1.5,))
        with pytest.raises(ReproError):
            AdaptiveConfig(tolerance=-0.1)


# ---------------------------------------------------------------------------
# End-to-end through the real engine (small scale).
# ---------------------------------------------------------------------------


class TestAdaptiveSweepEngine:
    def test_beats_fixed_grid_on_thrashing_app(self):
        # The acceptance bar: >= 30% fewer simulations than DEFAULT_RATES
        # for an equal-or-better knee estimate.
        fixed = capacity_sweep("SRD", "baseline", scale=0.25)
        fixed_knee = find_knee(fixed)
        clear_cache()
        driver = AdaptiveSweep("SRD", "baseline", scale=0.25)
        sweep = driver.run()
        assert sweep.converged is True
        assert sweep.simulations() <= 0.7 * fixed.simulations()
        # The model knee is continuous; the fixed grid only brackets the
        # crossing between its 0.9 sample (below threshold) and its 0.8
        # sample (above) — equal-or-better means inside that bracket, at
        # or above the grid's answer.
        model_knee = driver.knee_estimate()
        assert model_knee is not None and fixed_knee is not None
        assert model_knee >= fixed_knee
        upper = min((p.rate for p in fixed.points
                     if p.slowdown < 1.5 and p.rate > fixed_knee), default=1.0)
        assert model_knee <= upper

    def test_warm_cache_resume_runs_zero_simulations(self):
        first = AdaptiveSweep("STN", "baseline", scale=0.25)
        result_a = first.run()
        assert first.new_simulations > 0
        second = AdaptiveSweep("STN", "baseline", scale=0.25)
        result_b = second.run()
        assert second.new_simulations == 0
        assert second.cached == result_b.simulations()
        assert result_a == result_b

    def test_warm_disk_cache_survives_fresh_memo(self):
        AdaptiveSweep("STN", "baseline", scale=0.25).run()
        clear_cache(disk=False)  # drop the memo, keep the disk cache
        resumed = AdaptiveSweep("STN", "baseline", scale=0.25)
        result = resumed.run()
        assert resumed.new_simulations == 0
        assert result.converged is True

    def test_serial_and_parallel_propose_identically(self, tmp_path):
        runs = {}
        for jobs, cache_dir in ((1, "serial"), (2, "parallel")):
            previous = cache_mod.set_active_cache(
                cache_mod.ResultCache(tmp_path / cache_dir)
            )
            clear_cache(disk=False)
            try:
                driver = AdaptiveSweep("STN", "baseline", scale=0.25, jobs=jobs)
                runs[jobs] = (driver.run(), driver.history)
            finally:
                cache_mod.set_active_cache(previous)
        sweep_serial, history_serial = runs[1]
        sweep_parallel, history_parallel = runs[2]
        assert history_serial == history_parallel
        assert sweep_serial == sweep_parallel

    def test_adaptive_sweep_helper(self):
        sweep = adaptive_sweep(
            "STN", "baseline", scale=0.25,
            adaptive=AdaptiveConfig(budget=4, tolerance=0.5),
        )
        assert sweep.simulations() <= 4
        assert sweep.rounds >= 1

    def test_fault_plan_anchor_loss_raises(self, monkeypatch):
        monkeypatch.setenv(
            ENV_FAULT_PLAN,
            json.dumps([{"match": "STN@unl", "action": "raise",
                         "message": "injected anchor loss"}]),
        )
        driver = AdaptiveSweep(
            "STN", "baseline", scale=0.25,
            fault_tolerance=FaultTolerance(keep_going=True),
        )
        with pytest.raises(HarnessError, match="anchor"):
            driver.run()

    def test_fault_plan_non_anchor_failure_keeps_going(self, monkeypatch):
        monkeypatch.setenv(
            ENV_FAULT_PLAN,
            json.dumps([{"match": "STN@70%", "action": "raise",
                         "message": "injected point loss"}]),
        )
        driver = AdaptiveSweep(
            "STN", "baseline", scale=0.25,
            fault_tolerance=FaultTolerance(keep_going=True),
        )
        sweep = driver.run()
        assert 0.7 in sweep.failures
        assert all(p.rate != 0.7 for p in sweep.points)
        assert len(sweep.points) >= 2


# ---------------------------------------------------------------------------
# Observability counters.
# ---------------------------------------------------------------------------


class TestAdaptiveObs:
    def test_counters(self):
        from repro.obs import Observability

        obs = Observability.enabled_()
        driver = AdaptiveSweep(
            "synthetic", submit=make_submit(quadratic_curve),
            adaptive=AdaptiveConfig(budget=8, tolerance=0.1), obs=obs,
        )
        sweep = driver.run()
        metrics = obs.metrics
        assert metrics.value("sweep/rounds") == sweep.rounds
        assert metrics.value("sweep/simulated_points") == sweep.simulations()
        assert metrics.value("sweep/cached_points") == 0
        # Every non-seed point was proposed by the adapter.
        assert metrics.value("sweep/proposed_points") >= (
            sweep.simulations() - 3
        )

    def test_disabled_obs_is_default_and_free(self):
        driver = AdaptiveSweep(
            "synthetic", submit=make_submit(quadratic_curve),
            adaptive=AdaptiveConfig(budget=4, tolerance=0.5),
        )
        sweep = driver.run()  # must not blow up without an obs layer
        assert sweep.simulations() <= 4
