"""HPE — the prior counter-based policy (repro.policies.hpe)."""

from repro.engine.stats import IntervalRecord
from repro.policies.hpe import HPEPolicy

from helpers import IntervalClock, attach_policy, full_entry, populate


def polluted_entry(chunk_id, counter):
    entry = full_entry(chunk_id)
    entry.counter = counter
    return entry


class TestClassification:
    def _classified(self, counters):
        policy = HPEPolicy()
        attach_policy(policy)
        for i, c in enumerate(counters):
            policy.insert_chunk(polluted_entry(i, c), 0)
        policy.on_memory_full(0)
        return policy

    def test_high_counters_classified_regular(self):
        policy = self._classified([16] * 8)
        assert policy._category == "regular"
        assert policy.current_strategy == "mru"

    def test_low_counters_classified_irregular1(self):
        policy = self._classified([1] * 8)
        assert policy._category == "irregular1"
        assert policy.current_strategy == "lru"

    def test_medium_counters_classified_irregular2(self):
        policy = self._classified([8] * 8)
        assert policy._category == "irregular2"
        assert policy.current_strategy == "lru"

    def test_counter_pollution_misclassifies(self):
        # Inefficiency 1: with prefetching the GMMU sets counters to the
        # migrated page count, so *any* application looks 'regular'.
        policy = self._classified([16] * 8)  # all polluted to chunk size
        assert policy._category == "regular"


class TestTouchUpdates:
    def test_touch_increments_counter_and_moves(self):
        policy = HPEPolicy()
        chain, _, _ = attach_policy(policy)
        entries = populate(policy, [1, 2])
        entries[0].counter = 0
        policy.on_page_touched(entries[0], vpn=16, time=0)
        assert entries[0].counter == 1
        assert [e.chunk_id for e in chain.from_head()] == [2, 1]

    def test_counter_saturates_at_16(self):
        policy = HPEPolicy()
        attach_policy(policy)
        entries = populate(policy, [1])
        entries[0].counter = 16
        policy.on_page_touched(entries[0], vpn=16, time=0)
        assert entries[0].counter == 16


class TestMRUCSelection:
    def test_qualified_chunks_first(self):
        policy = HPEPolicy()
        clock = IntervalClock(0)
        attach_policy(policy, interval=clock)
        for cid, counter in ((1, 16), (2, 2), (3, 16)):
            policy.insert_chunk(polluted_entry(cid, counter), 0)
        clock.value = 3  # everything old
        policy.on_memory_full(0)
        policy._strategy = "mru-c"
        policy._qualify_threshold = 10
        victims = policy.select_victims(16, 0)
        # MRU-first among qualified (counter >= 10): 3 before 1; 2 is last.
        assert victims[0].chunk_id == 3

    def test_lru_strategy_selects_head(self):
        policy = HPEPolicy()
        clock = IntervalClock(3)
        attach_policy(policy, interval=clock)
        populate(policy, [1, 2, 3])
        clock.value = 6
        policy._strategy = "lru"
        assert policy.select_victims(16, 0)[0].chunk_id == 1


class TestWrongEvictionSwitching:
    def test_irregular2_switches_on_wrong_evictions(self):
        policy = HPEPolicy()
        attach_policy(policy)
        policy._category = "irregular2"
        policy._strategy = "lru"
        policy.on_chunk_evicted(full_entry(9), 0)
        policy.on_fault(9 * 16, 9, 0)
        policy.on_fault(10 * 16, 10, 0)
        policy._evicted_buffer.append(10)
        policy.on_fault(10 * 16, 10, 0)
        policy.on_interval_end(IntervalRecord(index=0), 0)
        assert policy._strategy == "mru-c"

    def test_regular_never_switches(self):
        policy = HPEPolicy()
        _, stats, _ = attach_policy(policy)
        policy._category = "regular"
        policy._strategy = "mru-c"
        policy._wrong_this_interval = 10
        policy.on_interval_end(IntervalRecord(index=0), 0)
        assert policy._strategy == "mru-c"

    def test_wrong_eviction_counted_once_per_chunk(self):
        policy = HPEPolicy()
        _, stats, _ = attach_policy(policy)
        policy.on_chunk_evicted(full_entry(5), 0)
        policy.on_fault(80, 5, 0)
        policy.on_fault(81, 5, 0)
        assert stats.wrong_evictions == 1
