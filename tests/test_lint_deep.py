"""Whole-program analysis behind `repro lint --deep`.

Covers the acceptance gates for the deep pass:

* the shipped tree is deep-clean, with non-trivial closures (the analysis
  is actually resolving calls through the pool/policy seams, not returning
  empty sets);
* deleting a field from the spec fingerprint makes the lint fail (REPRO501);
* adding a ``global`` write to a ``_pool_entry``-reachable function makes
  the lint fail (REPRO601 + REPRO604);
* a warm call-graph cache makes the second deep run extract zero summaries
  while producing identical findings;
* discovery survives symlink loops and unreadable paths (REPRO901 and
  continue).
"""

from __future__ import annotations

import ast
import os
import shutil
from pathlib import Path

import pytest

from repro.devtools import boundary, run_lint
from repro.devtools import deep as deep_mod
from repro.devtools.checker import PARSE_ERROR_RULE, module_name_for
from repro.devtools.deep import build_deep_analysis
from repro.devtools.rules import FileContext, module_directive

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"


def _contexts(root: Path):
    contexts = []
    for path in sorted(root.rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        source = path.read_text(encoding="utf-8")
        contexts.append(
            FileContext(
                path=path,
                display_path=str(path),
                module=module_directive(source) or module_name_for(path),
                source=source,
                tree=ast.parse(source),
            )
        )
    return contexts


@pytest.fixture(scope="module")
def repo_analysis():
    return build_deep_analysis(_contexts(SRC))


def _copy_src(tmp_path: Path) -> Path:
    dst = tmp_path / "src"
    shutil.copytree(
        SRC, dst, ignore=shutil.ignore_patterns("__pycache__")
    )
    return dst


class TestRepoClosures:
    """The analysis resolves real seams — closures are non-trivial."""

    def test_repo_is_deep_clean(self):
        report = run_lint([SRC], deep=True)
        assert report.deep
        assert [f.render() for f in report.findings] == []
        assert report.summaries_extracted == report.files_checked > 50

    def test_worker_closure_spans_the_execution_path(self, repo_analysis):
        # _pool_entry -> _execute -> build_setup -> engine: the closure
        # must cross the harness/simulation boundary, not stop at the
        # entry file.
        assert (
            "repro.harness.parallel._pool_entry"
            in repo_analysis.worker_functions
        )
        assert (
            "repro.harness.experiment._execute"
            in repo_analysis.worker_functions
        )
        assert len(repo_analysis.worker_functions) > 50
        for needed in (
            "repro.harness.experiment",
            "repro.harness.baselines",
            "repro.config",
        ):
            assert needed in repo_analysis.worker_modules

    def test_worker_closure_stays_inside_parallel_scope(self, repo_analysis):
        # The repo-clean REPRO604 invariant, stated directly.
        for module in repo_analysis.worker_modules:
            assert boundary.is_parallel_scope(module), module

    def test_sim_closure_reaches_the_engine(self, repo_analysis):
        assert any(
            module.startswith("repro.engine")
            for module in repo_analysis.sim_modules
        )
        assert len(repo_analysis.sim_functions) > 50

    def test_fingerprint_closure_and_elisions(self, repo_analysis):
        quals = repo_analysis.fingerprint_functions
        assert "repro.harness.cache.spec_fingerprint" in quals
        assert "repro.harness.cache.config_fingerprint" in quals
        assert "repro.harness.cache._config_payload" in quals
        elided = {site.field for site in repo_analysis.elisions}
        assert elided == {"backend", "instances"}

    def test_allowlist_parsed_from_cache_module(self, repo_analysis):
        entries = {
            (entry.dataclass_name, entry.field)
            for entry in repo_analysis.allowlist
        }
        assert {("SimConfig", "backend"), ("RunSpec", "instances")} <= entries
        assert all(
            len(entry.reason) >= 10 for entry in repo_analysis.allowlist
        )

    def test_hashed_classes_cover_the_cached_configs(self, repo_analysis):
        assert {"SimConfig", "RunSpec"} <= set(repo_analysis.hashed_classes)
        sim_config = repo_analysis.hashed_classes["SimConfig"]
        assert sim_config.whole_object
        assert "sm" in sim_config.fields

    def test_sim_config_reads_are_recorded(self, repo_analysis):
        fields_read = {site.field for site in repo_analysis.sim_config_reads}
        assert fields_read  # _execute and friends read spec/config attrs

    def test_registry_seam_collects_registrations(self, repo_analysis):
        # Module-level register()/register_table() calls are aggregated
        # per kind; the workload table rides the existing table: seam.
        registrations = repo_analysis.graph.registrations
        assert {"policy", "prefetcher", "workload"} <= set(registrations)
        assert any(
            "table:repro.workloads.suite" in ref
            for ref in registrations["workload"]
        )

    def test_registry_seam_fans_builders_into_closures(self, repo_analysis):
        # build_setup dispatches through build("policy"/...) — without the
        # registry: seam no builder constructor would be reachable, and
        # determinism/taint coverage would silently shrink.  The ngram
        # prefetcher registers purely through the public API, so its
        # presence here proves the seam resolves plugins too.
        for closure in (
            repo_analysis.sim_functions,
            repo_analysis.worker_functions,
        ):
            assert (
                "repro.prefetch.ngram.NGramPrefetcher.__init__" in closure
            )
            assert "repro.policies.mhpe.MHPEPolicy.__init__" in closure
        for module in (
            "repro.prefetch.ngram",
            "repro.prefetch.tree_neighborhood",
            "repro.policies.hpe",
        ):
            assert module in repo_analysis.sim_modules


class TestAcceptanceFailures:
    """The two mandated failure-mode demonstrations."""

    def test_deleting_hashed_field_fails_deep_lint(self, tmp_path):
        dst = _copy_src(tmp_path)
        cache_py = dst / "repro" / "harness" / "cache.py"
        text = cache_py.read_text(encoding="utf-8")
        marker = "    spec_fields = dataclasses.asdict(spec)\n"
        assert marker in text
        cache_py.write_text(
            text.replace(marker, marker + '    del spec_fields["seed"]\n'),
            encoding="utf-8",
        )
        report = run_lint([dst], deep=True)
        taint = [f for f in report.findings if f.rule == "REPRO501"]
        assert taint, [f.render() for f in report.findings]
        assert any("seed" in f.message for f in taint)
        # The cheap pass stays blind to it — only --deep catches this.
        assert not any(
            f.rule == "REPRO501" for f in run_lint([dst]).findings
        )

    def test_worker_reachable_global_write_fails_deep_lint(self, tmp_path):
        dst = _copy_src(tmp_path)
        warmup = dst / "repro" / "analysis" / "warmup.py"
        warmup.write_text(
            '"""Injected for the test: stateful helper outside '
            'PARALLEL_SCOPE."""\n'
            "_CALLS = 0\n"
            "\n"
            "def bump():\n"
            "    global _CALLS\n"
            "    _CALLS += 1\n"
            "    return _CALLS\n",
            encoding="utf-8",
        )
        parallel_py = dst / "repro" / "harness" / "parallel.py"
        text = parallel_py.read_text(encoding="utf-8")
        marker = "    label = _spec_label(spec)\n"
        assert marker in text
        text = text.replace(marker, "    _warm_bump()\n" + marker, 1)
        text += "\nfrom repro.analysis.warmup import bump as _warm_bump\n"
        parallel_py.write_text(text, encoding="utf-8")

        report = run_lint([dst], deep=True)
        rules = {f.rule for f in report.findings}
        assert "REPRO601" in rules, [f.render() for f in report.findings]
        assert "REPRO604" in rules
        flagged = {
            Path(f.path).name
            for f in report.findings
            if f.rule in {"REPRO601", "REPRO604"}
        }
        assert flagged == {"warmup.py"}  # anchored in the culprit module


class TestSummaryCache:
    """Warm deep runs re-extract nothing for unchanged files."""

    def test_warm_run_extracts_zero_summaries(self, tmp_path, monkeypatch):
        cache = tmp_path / "callgraph.json"
        cold = run_lint([SRC], deep=True, callgraph_cache=cache)
        assert cold.summaries_extracted == cold.files_checked > 0
        assert cold.summaries_from_cache == 0
        assert cache.is_file()

        extracted = []
        real = deep_mod.extract_module_summary

        def counting(ctx):
            extracted.append(ctx.module)
            return real(ctx)

        monkeypatch.setattr(deep_mod, "extract_module_summary", counting)
        warm = run_lint([SRC], deep=True, callgraph_cache=cache)
        assert extracted == []  # no file was re-summarised
        assert warm.summaries_extracted == 0
        assert warm.summaries_from_cache == warm.files_checked
        assert warm.files_checked == cold.files_checked
        assert [f.to_dict() for f in warm.findings] == [
            f.to_dict() for f in cold.findings
        ]

    def test_invalidation_is_per_file(self, tmp_path):
        dst = _copy_src(tmp_path)
        cache = tmp_path / "callgraph.json"
        cold = run_lint([dst], deep=True, callgraph_cache=cache)
        target = dst / "repro" / "units.py"
        target.write_text(
            target.read_text(encoding="utf-8") + "\n# touched\n",
            encoding="utf-8",
        )
        warm = run_lint([dst], deep=True, callgraph_cache=cache)
        assert warm.summaries_extracted == 1
        assert warm.summaries_from_cache == cold.files_checked - 1

    def test_corrupt_cache_is_advisory_not_fatal(self, tmp_path):
        cache = tmp_path / "callgraph.json"
        cache.write_text("{definitely not json", encoding="utf-8")
        report = run_lint([SRC], deep=True, callgraph_cache=cache)
        assert report.summaries_extracted == report.files_checked
        assert [f.render() for f in report.findings] == []


class TestResilientDiscovery:
    """One bad path yields REPRO901; everything else is still checked."""

    def test_symlink_loop_reported_and_run_continues(self, tmp_path):
        good = tmp_path / "good.py"
        good.write_text(
            "# repro-lint: module=repro.engine.x\n"
            "import time\n"
            "t = time.time()\n",
            encoding="utf-8",
        )
        loop = tmp_path / "loop.py"
        loop.symlink_to(loop)
        report = run_lint([tmp_path])
        by_rule = {}
        for finding in report.findings:
            by_rule.setdefault(finding.rule, []).append(finding)
        assert PARSE_ERROR_RULE in by_rule  # the loop itself
        assert "REPRO102" in by_rule  # good.py was still checked
        assert report.files_checked == 1

    def test_broken_symlink_reported_not_fatal(self, tmp_path):
        (tmp_path / "dead.py").symlink_to(tmp_path / "missing.py")
        (tmp_path / "ok.py").write_text("x = 1\n", encoding="utf-8")
        report = run_lint([tmp_path])
        assert [f.rule for f in report.findings] == [PARSE_ERROR_RULE]
        assert report.files_checked == 1

    @pytest.mark.skipif(
        os.geteuid() == 0, reason="permission checks do not bind as root"
    )
    def test_unreadable_directory_reported(self, tmp_path):
        locked = tmp_path / "locked"
        locked.mkdir()
        (locked / "hidden.py").write_text("x = 1\n", encoding="utf-8")
        (tmp_path / "ok.py").write_text("x = 1\n", encoding="utf-8")
        locked.chmod(0)
        try:
            report = run_lint([tmp_path])
        finally:
            locked.chmod(0o755)
        assert any(f.rule == PARSE_ERROR_RULE for f in report.findings)
        assert report.files_checked == 1

    def test_deep_mode_survives_a_bad_file(self, tmp_path):
        # A symlink loop must not kill the whole-program pass either.
        (tmp_path / "loop.py").symlink_to(tmp_path / "loop.py")
        (tmp_path / "ok.py").write_text(
            "# repro-lint: module=repro.harness.parallel\n"
            "_SEEN = {}\n"
            "def _pool_entry(spec, config):\n"
            "    _SEEN[spec] = True\n",
            encoding="utf-8",
        )
        report = run_lint([tmp_path], deep=True)
        rules = {f.rule for f in report.findings}
        assert rules == {PARSE_ERROR_RULE, "REPRO602"}


class TestBoundaryDrift:
    """Shrinking PARALLEL_SCOPE reintroduces exactly the drift findings."""

    def test_scope_shrink_is_caught_by_repro604(self, monkeypatch):
        removed = {
            "repro.config",
            "repro.errors",
            "repro.units",
            "repro.harness.baselines",
        }
        shrunk = frozenset(boundary.PARALLEL_SCOPE - removed)
        monkeypatch.setattr(boundary, "PARALLEL_SCOPE", shrunk)
        report = run_lint([SRC], deep=True)
        drifted = {
            finding.message.split("`")[1]
            for finding in report.findings
            if finding.rule == "REPRO604"
        }
        assert drifted == removed
