"""GDDR5 channel model (repro.memsim.dram) and walker integration."""

import pytest

from repro.config import (
    PageWalkCacheConfig,
    SimConfig,
    SMConfig,
    TranslationConfig,
    WalkerConfig,
)
from repro.errors import ConfigError
from repro.memsim.dram import DRAMConfig, DRAMModel
from repro.memsim.page_table import PageTable
from repro.translation.page_walk_cache import PageWalkCache
from repro.translation.walker import PageTableWalker

from conftest import make_simple_workload


class TestDRAMConfig:
    def test_table1_defaults(self):
        cfg = DRAMConfig()
        assert cfg.channels == 12

    def test_invalid_channels(self):
        with pytest.raises(ConfigError):
            DRAMConfig(channels=0)

    def test_invalid_timing(self):
        with pytest.raises(ConfigError):
            DRAMConfig(row_hit_cycles=100, row_miss_cycles=50)


class TestDRAMModel:
    def test_first_access_is_row_miss(self):
        dram = DRAMModel()
        lat = dram.read(0x1000, time=0)
        assert lat == dram.config.row_miss_cycles
        assert dram.row_misses == 1

    def test_same_row_hits(self):
        dram = DRAMModel()
        dram.read(0x1000, time=0)
        lat = dram.read(0x1008, time=10_000)  # same 2 KB row
        assert lat == dram.config.row_hit_cycles
        assert dram.row_hit_rate == 0.5

    def test_row_conflict_reopens(self):
        dram = DRAMModel(DRAMConfig(channels=1, banks_per_channel=1))
        dram.read(0, time=0)
        dram.read(4096, time=10_000)  # different row, same bank
        lat = dram.read(0, time=20_000)  # original row closed again
        assert lat == dram.config.row_miss_cycles

    def test_channel_queueing(self):
        dram = DRAMModel(DRAMConfig(channels=1))
        first = dram.read(0, time=0)
        second = dram.read(1 << 20, time=0)  # same (only) channel, busy
        assert second > first
        assert dram.total_queue_cycles > 0

    def test_channels_are_independent(self):
        dram = DRAMModel()
        # Find two addresses on different channels.
        c0 = dram._map(0)[0]
        other = next(
            a for a in range(0, 1 << 22, 2048) if dram._map(a)[0] != c0
        )
        dram.read(0, time=0)
        lat = dram.read(other, time=0)
        assert lat == dram.config.row_miss_cycles  # no queueing

    def test_read_counter(self):
        dram = DRAMModel()
        for i in range(5):
            dram.read(i * 4096, time=i * 1000)
        assert dram.reads == 5


class TestWalkerWithDRAM:
    def test_walk_latency_uses_dram(self):
        pt = PageTable()
        pwc = PageWalkCache(PageWalkCacheConfig())
        dram = DRAMModel()
        walker = PageTableWalker(WalkerConfig(), pt, pwc, dram=dram)
        latency, _ = walker.walk(100, time=0)
        assert dram.reads == 4  # all levels fetched cold
        assert latency >= pwc.latency + 4 * dram.config.row_hit_cycles

    def test_simulation_with_dram_model(self):
        from repro.engine.simulator import Simulator

        cfg = SimConfig(
            sm=SMConfig(num_sms=4),
            translation=TranslationConfig(use_dram_model=True),
        )
        wl = make_simple_workload()
        result = Simulator(wl, oversubscription=0.5, config=cfg).run()
        assert result.total_cycles > 0
        assert result.stats.page_walks > 0

    def test_dram_model_changes_walk_costs(self):
        from repro.engine.simulator import Simulator

        def run(use_dram):
            cfg = SimConfig(
                sm=SMConfig(num_sms=4),
                translation=TranslationConfig(use_dram_model=use_dram),
            )
            return Simulator(
                make_simple_workload(), oversubscription=None, config=cfg
            ).run()

        flat, dram = run(False), run(True)
        # Same work, different walk timing model.
        assert flat.stats.page_walks == dram.stats.page_walks
        assert flat.total_cycles != dram.total_cycles
