"""Runtime twin of the static cache-integrity rule (REPRO201).

The static rule proves that fingerprint functions *structurally* cover every
hashed field; these tests prove the same property dynamically: injecting a
field into ``SimConfig`` (or changing any existing field) must change the
cache key, or the persistent cache would serve results from the wrong
configuration.
"""

from __future__ import annotations

import dataclasses
from dataclasses import replace
from pathlib import Path

import pytest

from repro.config import SimConfig
from repro.harness.cache import config_fingerprint, spec_fingerprint
from repro.harness.experiment import RunSpec

SPEC = RunSpec("SRD", "cppe", 0.5)


def _perturb(obj):
    """A copy of a (possibly nested) config dataclass with one leaf changed,
    trying leaves until one passes the config's own validation."""
    for leaf in dataclasses.fields(obj):
        value = getattr(obj, leaf.name)
        candidates = []
        if isinstance(value, bool):
            candidates = [not value]
        elif isinstance(value, (int, float)):
            candidates = [value + 1]
        elif value is None:
            candidates = [1.5]
        elif dataclasses.is_dataclass(value):
            try:
                candidates = [_perturb(value)]
            except ValueError:
                candidates = []
        for new_value in candidates:
            try:
                return replace(obj, **{leaf.name: new_value})
            except Exception:
                continue  # violates the dataclass's validation; next leaf
    raise ValueError(f"could not perturb any field of {type(obj).__name__}")


@dataclasses.dataclass(frozen=True)
class _ExtendedSimConfig(SimConfig):
    """SimConfig with one extra injected field (simulates a future PR that
    adds a knob): the content hash must pick it up automatically."""

    injected_knob: int = 0


class TestInjectedField:
    def test_injected_field_changes_config_fingerprint(self):
        base = SimConfig()
        extended = _ExtendedSimConfig()
        assert config_fingerprint(base) != config_fingerprint(extended)

    def test_injected_field_value_changes_cache_key(self):
        a = _ExtendedSimConfig(injected_knob=0)
        b = _ExtendedSimConfig(injected_knob=1)
        assert spec_fingerprint(SPEC, a) != spec_fingerprint(SPEC, b)

    def test_equal_extended_configs_share_a_key(self):
        a = _ExtendedSimConfig(injected_knob=3)
        b = _ExtendedSimConfig(injected_knob=3)
        assert spec_fingerprint(SPEC, a) == spec_fingerprint(SPEC, b)


class TestEveryFieldReachesTheHash:
    @pytest.mark.parametrize(
        "field_name", [f.name for f in dataclasses.fields(SimConfig)]
    )
    def test_top_level_field_perturbs_fingerprint(self, field_name):
        base = SimConfig()
        value = getattr(base, field_name)
        if field_name == "seed":
            changed = replace(base, seed=base.seed + 1)
        elif dataclasses.is_dataclass(value):
            changed = replace(base, **{field_name: _perturb(value)})
        else:  # pragma: no cover - no such field today
            pytest.skip(f"unhandled field type for {field_name}")
        assert config_fingerprint(base) != config_fingerprint(changed)

    @pytest.mark.parametrize(
        "field_name", [f.name for f in dataclasses.fields(RunSpec)]
    )
    def test_every_runspec_field_perturbs_cache_key(self, field_name):
        value = getattr(SPEC, field_name)
        if isinstance(value, str):
            changed = replace(SPEC, **{field_name: value + "x"})
        elif isinstance(value, (int, float)):
            changed = replace(SPEC, **{field_name: value + 1})
        elif value is None:
            changed = replace(SPEC, **{field_name: 1.5})
        else:  # pragma: no cover - no such field today
            pytest.skip(f"unhandled field type for {field_name}")
        assert spec_fingerprint(SPEC) != spec_fingerprint(changed)

    def test_asdict_sees_every_declared_field(self):
        # The structural property REPRO201 relies on: whole-object hashing
        # via dataclasses.asdict() covers exactly the declared field set.
        payload = dataclasses.asdict(SimConfig())
        assert set(payload) == {f.name for f in dataclasses.fields(SimConfig)}

    def test_nested_uvm_field_reaches_the_hash(self):
        base = SimConfig()
        changed = base.with_(uvm=replace(base.uvm, write_fraction=0.7))
        assert spec_fingerprint(SPEC, base) != spec_fingerprint(SPEC, changed)

    def test_none_config_equals_default_config(self):
        assert config_fingerprint(None) == config_fingerprint(SimConfig())
        assert spec_fingerprint(SPEC, None) == spec_fingerprint(SPEC, SimConfig())


class TestTypedPackaging:
    def test_py_typed_marker_ships_with_the_package(self):
        import repro

        assert (Path(repro.__file__).parent / "py.typed").is_file()
